// Figure 12 — profiling overhead (§5.4.1): per-packet counter updates add
// latency and cost throughput. Sweep 20/30/40 counter updates per packet
// (programs with that many tables), simple (1-primitive) vs complex
// (4-primitive) actions, with and without 1/1024 sampling, on the Agilio CX
// model (12a latency, 12b throughput) and BlueField2 (12c throughput).
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

double mean_cycles(const sim::NicModel& nic, int tables, int prims,
                   const profile::InstrumentationConfig& instr) {
    ir::Program prog = ir::chain_of_exact_tables("ovh", tables, 2, prims);
    sim::Emulator emu(nic, prog, instr);
    util::Rng rng(9);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < tables; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 31});
    }
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 256, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 3);
    // 4096 packets = a multiple of the 1024 sampling period.
    return bench::run_window(emu, wl, 4096, 1.0).mean_cycles;
}

/// Returns the worst (largest) unsampled overhead percentage seen.
double run_target(const sim::NicModel& nic, bool show_latency) {
    std::printf("\n-- %s --\n", nic.name.c_str());
    profile::InstrumentationConfig off{false, 1.0};
    profile::InstrumentationConfig full{true, 1.0};
    profile::InstrumentationConfig sampled{true, 1.0 / 1024.0};

    double worst = 0.0;
    util::TextTable table({"counter updates", "simple action", "complex action",
                           "simple + 1/1024 sampling"});
    for (int updates : {20, 30, 40}) {
        std::vector<std::string> row{std::to_string(updates)};
        for (auto [prims, cfg] :
             {std::pair{1, full}, std::pair{4, full}, std::pair{1, sampled}}) {
            double base = mean_cycles(nic, updates, prims, off);
            double with = mean_cycles(nic, updates, prims, cfg);
            double overhead = 100.0 * (with - base) / base;
            worst = std::max(worst, overhead);
            row.push_back(util::format("%+.2f%%", overhead));
        }
        table.add_row(std::move(row));
    }
    std::printf("%s of %s\n%s", show_latency ? "latency increase" : "overhead",
                "per-packet cost (equals throughput degradation at fixed "
                "budget)",
                table.to_string().c_str());
    return worst;
}

}  // namespace

int main() {
    bench::section("Figure 12: runtime profiling overhead");
    double agilio = run_target(sim::agilio_cx_model(), true);    // 12a/12b
    double bf2 = run_target(sim::bluefield2_model(), false);     // 12c
    std::printf(
        "\npaper shape: Agilio counter updates are expensive (~20-35%%\n"
        "unsampled; ~4-5%% at 1/1024 sampling); BlueField2 counters are\n"
        "nearly free (<2%% even unsampled).\n");

    bench::Reporter rep("fig12_profiling_overhead", sim::agilio_cx_model());
    rep.metric("agilio_worst_overhead_pct", agilio);
    rep.metric("bluefield2_worst_overhead_pct", bf2);
    rep.write();
    return 0;
}
