// Figure 2 — the motivating experiment: "Profile-guided optimizations adapt
// to traffic profile changes and achieve higher performance on BlueField2."
//
// A program of four ACL tables, regular processing tables, and a routing
// table runs under a traffic mix whose dropping pattern changes at t=32 s
// ("Dropping rate change" in the figure). The dynamic deployment (Pipeleon
// reordering ACLs by observed drop rate every 8 s) recovers line rate; any
// static ACL order is wrong for at least one phase.
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"
#include "telemetry/bench_report.h"

using namespace pipeleon;

int main() {
    bench::section("Figure 2: dynamic vs static ACL order on BlueField2");
    const int window_packets = bench::BenchEnv::quick() ? 2000 : 20000;

    // Eight ACLs + nine ternary processing tables + routing: the full path
    // costs more than the line-rate budget, so whether the hot ACL drops
    // early decides whether the NIC keeps up with the wire.
    ir::Program program = apps::acl_routing_program(
        /*regular_tables=*/9, /*n_acls=*/8, ir::MatchKind::Ternary);
    sim::NicModel nic = sim::bluefield2_model();

    // Flow tuple covers every ACL key plus routing.
    std::vector<trafficgen::FieldRange> tuple;
    for (auto& [name, key] : apps::acl_specs(8)) tuple.push_back({key, 0, 99999});
    tuple.push_back({"ipv4_dst", 0, 0xFFFFFF});
    util::Rng rng(2);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 1000, rng);

    sim::Emulator dyn_emu(nic, program, {});
    sim::Emulator sta_emu(nic, program, {});
    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.allow_cache = false;  // Fig 2 isolates reordering
    cfg.optimizer.search.allow_merge = false;
    cfg.optimizer.pipelet.max_length = 20;     // keep the chain one pipelet
    cfg.detector.threshold = 0.05;
    runtime::Controller dyn_ctl(dyn_emu, program, cost::CostModel(nic.costs, {}),
                                cfg);
    runtime::Controller sta_ctl(sta_emu, program, cost::CostModel(nic.costs, {}),
                                cfg);  // present but never ticked

    // Default route everywhere.
    ir::TableEntry route;
    route.key = {ir::FieldMatch::lpm(0, 0)};
    route.action_index = 0;
    route.action_data = {1};
    dyn_ctl.api().insert(dyn_emu, "routing", route);
    sta_ctl.api().insert(sta_emu, "routing", route);

    // Ternary rules in the processing tables (3 masks -> 3 probes each).
    for (int i = 0; i < 9; ++i) {
        for (int m = 4; m <= 6; ++m) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::ternary(0, 0xFULL << m)};
            e.action_index = m % 2;
            e.priority = m;
            dyn_ctl.api().insert(dyn_emu, "proc" + std::to_string(i), e);
            sta_ctl.api().insert(sta_emu, "proc" + std::to_string(i), e);
        }
    }

    // Phase 1 (t < 32): acl_geo (the LAST ACL) denies 60% of flows.
    // Phase 2 (t >= 32): dropping moves to acl_service.
    trafficgen::Workload picker(flows, trafficgen::Locality::Uniform, 0.0, 9);
    std::vector<std::size_t> phase1 = picker.pick_flows(0.65);
    std::vector<std::size_t> phase2 = picker.pick_flows(0.65);
    auto install_phase = [&](int phase) {
        for (auto* pair : {&dyn_ctl, &sta_ctl}) {
            sim::Emulator& emu = pair == &dyn_ctl ? dyn_emu : sta_emu;
            if (phase == 1) {
                for (std::size_t f : phase1) {
                    pair->api().insert(emu, "acl_geo",
                                       flows.exact_entry(f, {"geo_id"}, 1));
                }
            } else {
                for (std::size_t f : phase1) {
                    pair->api().erase(
                        emu, "acl_geo",
                        {ir::FieldMatch::exact(flows.value(f, "geo_id"))});
                }
                for (std::size_t f : phase2) {
                    pair->api().insert(emu, "acl_service",
                                       flows.exact_entry(f, {"service_id"}, 1));
                }
            }
        }
    };

    trafficgen::Workload dyn_wl(flows, trafficgen::Locality::Uniform, 0.0, 4);
    trafficgen::Workload sta_wl(flows, trafficgen::Locality::Uniform, 0.0, 4);

    install_phase(1);
    std::printf("\n%6s  %10s  %10s  %s\n", "t(s)", "dynamic", "static", "note");
    std::printf("%6s  %10s  %10s\n", "", "(Gbps)", "(Gbps)");
    const double step = 8.0;
    telemetry::CsvSeries series(
        {"t_s", "dynamic_gbps", "static_gbps", "dynamic_drop_rate"});
    double dyn_final = 0.0, sta_final = 0.0;
    for (int tick = 0; tick <= 9; ++tick) {
        double t = tick * step;
        if (tick == 4) install_phase(2);  // t = 32: dropping rate change

        bench::WindowResult dyn =
            bench::run_window(dyn_emu, dyn_wl, window_packets, step);
        bench::WindowResult sta =
            bench::run_window(sta_emu, sta_wl, window_packets, step);
        dyn_ctl.tick();  // profile-guided adaptation every window

        series.add_row({t, dyn.throughput_gbps, sta.throughput_gbps,
                        dyn.drop_rate});
        dyn_final = dyn.throughput_gbps;
        sta_final = sta.throughput_gbps;

        const char* note = "";
        if (tick == 4) note = "<- dropping rate change";
        std::printf("%6.0f  %10.1f  %10.1f  %s\n", t, dyn.throughput_gbps,
                    sta.throughput_gbps, note);
    }

    const ir::Node& front = dyn_emu.program().node(dyn_emu.program().root());
    std::printf("\nfinal dynamic ACL order starts with: %s\n",
                front.table.name.c_str());
    std::printf("paper: static orders plateau below line rate after the "
                "change; the dynamic order returns to ~100 Gbps.\n");

    bench::Reporter rep("fig02_motivation", nic);
    rep.param("window_packets", window_packets);
    rep.param("windows", 10);
    rep.metric("throughput_gbps", dyn_final);
    rep.metric("static_gbps", sta_final);
    rep.from_emulator(dyn_emu);
    series.write(rep.raw().csv_path());
    std::printf("[bench-report] wrote %s\n", rep.raw().csv_path().c_str());
    rep.write();
    return 0;
}
