// bench/common.h — shared measurement helpers for the figure benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/emulator.h"
#include "trafficgen/workload.h"
#include "util/stats.h"
#include "util/strings.h"

namespace pipeleon::bench {

/// One measurement window: streams `packets` packets and advances the
/// emulator clock by `window_seconds`.
struct WindowResult {
    double mean_cycles = 0.0;
    double drop_rate = 0.0;
    double throughput_gbps = 0.0;
    std::uint64_t packets = 0;
};

inline WindowResult run_window(sim::Emulator& emulator,
                               trafficgen::Workload& workload, int packets,
                               double window_seconds) {
    util::RunningStats cycles;
    std::uint64_t dropped = 0;
    double dt = window_seconds / std::max(1, packets);
    for (int i = 0; i < packets; ++i) {
        sim::Packet pkt = workload.next_packet(emulator.fields());
        sim::ProcessResult r = emulator.process(pkt);
        cycles.add(r.cycles);
        dropped += r.dropped ? 1 : 0;
        emulator.advance_time(dt);
    }
    WindowResult w;
    w.mean_cycles = cycles.mean();
    w.packets = static_cast<std::uint64_t>(packets);
    w.drop_rate = packets > 0
                      ? static_cast<double>(dropped) / static_cast<double>(packets)
                      : 0.0;
    w.throughput_gbps = emulator.throughput_gbps(w.mean_cycles);
    return w;
}

inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_cdf(const std::string& label, const std::vector<double>& xs) {
    util::EmpiricalCdf cdf(xs);
    std::printf("%s (n=%zu):\n%s", label.c_str(), cdf.size(),
                cdf.to_table(11).c_str());
}

}  // namespace pipeleon::bench
