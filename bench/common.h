// bench/common.h — shared measurement helpers for the figure benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "sim/emulator.h"
#include "telemetry/telemetry.h"
#include "trafficgen/workload.h"
#include "util/stats.h"
#include "util/strings.h"

namespace pipeleon::bench {

/// Benches measure the optimization and data-plane hot paths, so nothing
/// observational may sit inside the measured loops: including this header
/// configures the process once — the plan-apply verifier (ISSUE 2) goes off
/// (optimizer-output correctness is tests/test_verify.cpp's job, not a
/// bench's) and the telemetry tracer stays disabled so span sites cost one
/// relaxed load. The sharded metrics/histogram path stays on: it is part of
/// the data plane being measured (micro_telemetry quantifies it).
struct BenchEnv {
    BenchEnv() {
        analysis::set_verify_mode(analysis::VerifyMode::Off);
        telemetry::Tracer::global().set_enabled(false);
    }

    /// CI smoke mode: benches scale their iteration counts down when
    /// PIPELEON_BENCH_QUICK is set (schema and code paths stay identical,
    /// only the numbers get noisier).
    static bool quick() {
        const char* v = std::getenv("PIPELEON_BENCH_QUICK");
        return v != nullptr && *v != '\0' && *v != '0';
    }
};
inline const BenchEnv kBenchEnv{};

/// One measurement window: streams `packets` packets and advances the
/// emulator clock by `window_seconds`.
struct WindowResult {
    double mean_cycles = 0.0;
    double drop_rate = 0.0;
    double throughput_gbps = 0.0;
    std::uint64_t packets = 0;
};

/// Pumps the window through the batched data plane: packets are generated
/// and processed `batch_size` at a time, and the clock advances per batch.
/// With the emulator's default single worker (or deterministic mode) the
/// packet-level execution is identical to the old scalar loop.
inline WindowResult run_window(sim::Emulator& emulator,
                               trafficgen::Workload& workload, int packets,
                               double window_seconds,
                               std::size_t batch_size = 256) {
    util::RunningStats cycles;
    std::uint64_t dropped = 0;
    if (batch_size == 0) batch_size = 1;
    int done = 0;
    while (done < packets) {
        std::size_t n = std::min<std::size_t>(
            batch_size, static_cast<std::size_t>(packets - done));
        sim::PacketBatch batch = workload.next_batch(emulator.fields(), n);
        sim::BatchResult r = emulator.process_batch(batch);
        for (const sim::ProcessResult& pr : r.results) cycles.add(pr.cycles);
        dropped += r.dropped;
        emulator.advance_time(window_seconds * static_cast<double>(n) /
                              static_cast<double>(std::max(1, packets)));
        done += static_cast<int>(n);
    }
    WindowResult w;
    w.mean_cycles = cycles.mean();
    w.packets = static_cast<std::uint64_t>(packets);
    w.drop_rate = packets > 0
                      ? static_cast<double>(dropped) / static_cast<double>(packets)
                      : 0.0;
    w.throughput_gbps = emulator.throughput_gbps(w.mean_cycles);
    return w;
}

inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_cdf(const std::string& label, const std::vector<double>& xs) {
    util::EmpiricalCdf cdf(xs);
    std::printf("%s (n=%zu):\n%s", label.c_str(), cdf.size(),
                cdf.to_table(11).c_str());
}

}  // namespace pipeleon::bench
