// bench/common.h — shared measurement helpers for the figure benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "sim/emulator.h"
#include "telemetry/telemetry.h"
#include "trafficgen/workload.h"
#include "util/stats.h"
#include "util/strings.h"

namespace pipeleon::bench {

/// Benches measure the optimization and data-plane hot paths, so nothing
/// observational may sit inside the measured loops: including this header
/// configures the process once — the plan-apply verifier (ISSUE 2) goes off
/// (optimizer-output correctness is tests/test_verify.cpp's job, not a
/// bench's) and the telemetry tracer stays disabled so span sites cost one
/// relaxed load. The sharded metrics/histogram path stays on: it is part of
/// the data plane being measured (micro_telemetry quantifies it).
struct BenchEnv {
    BenchEnv() {
        analysis::set_verify_mode(analysis::VerifyMode::Off);
        telemetry::Tracer::global().set_enabled(false);
    }

    /// CI smoke mode: benches scale their iteration counts down when
    /// PIPELEON_BENCH_QUICK is set (schema and code paths stay identical,
    /// only the numbers get noisier).
    static bool quick() {
        const char* v = std::getenv("PIPELEON_BENCH_QUICK");
        return v != nullptr && *v != '\0' && *v != '0';
    }
};
inline const BenchEnv kBenchEnv{};

/// One measurement window: streams `packets` packets and advances the
/// emulator clock by `window_seconds`.
struct WindowResult {
    double mean_cycles = 0.0;
    double drop_rate = 0.0;
    double throughput_gbps = 0.0;
    std::uint64_t packets = 0;
};

/// The ring-front-end pump (ISSUE 6): owns an RSS dispatcher built from the
/// emulator and replays bursts through dispatch -> poll. This is the thin
/// compatibility shim the figure benches migrate through — the old direct
/// `Workload::next_batch -> Emulator::process_batch` handoff is retired
/// from the bench layer (the micro benches that measure the batch engine
/// itself, micro_batch/micro_benchmarks, deliberately keep calling
/// process_batch: they benchmark the engine, not the I/O path).
///
/// Rings are sized to twice the largest expected burst, so the closed-loop
/// pump never overflow-drops and per-packet execution — and therefore every
/// emulated-cycle number a bench prints — is unchanged from the pre-ring
/// path on the default single-worker emulator.
class RingPump {
public:
    explicit RingPump(sim::Emulator& emulator, std::size_t max_burst = 1024)
        : emulator_(emulator) {
        sim::RingConfig cfg;
        cfg.rx_capacity = 2 * std::max<std::size_t>(1, max_burst);
        rings_ = emulator.make_rings(cfg);
    }

    /// Dispatches the burst at the current virtual time and polls it to
    /// completion. The returned result is reused across calls.
    const sim::BatchResult& pump(const sim::PacketBatch& batch) {
        rings_->dispatch_batch(batch, emulator_.now_seconds());
        emulator_.poll(*rings_, out_);
        return out_;
    }

    sim::RssDispatcher& rings() { return *rings_; }

private:
    sim::Emulator& emulator_;
    std::optional<sim::RssDispatcher> rings_;
    sim::BatchResult out_;
};

/// Pumps the window through the descriptor-ring data plane: packets are
/// generated and dispatched `batch_size` at a time, each burst is polled to
/// completion, and the clock advances per burst. With the emulator's
/// default single worker (or deterministic mode) the packet-level execution
/// is identical to the old direct process_batch loop.
inline WindowResult run_window(sim::Emulator& emulator,
                               trafficgen::Workload& workload, int packets,
                               double window_seconds,
                               std::size_t batch_size = 256) {
    util::RunningStats cycles;
    std::uint64_t dropped = 0;
    if (batch_size == 0) batch_size = 1;
    RingPump pump(emulator, batch_size);
    int done = 0;
    while (done < packets) {
        std::size_t n = std::min<std::size_t>(
            batch_size, static_cast<std::size_t>(packets - done));
        sim::PacketBatch batch = workload.next_batch(emulator.fields(), n);
        const sim::BatchResult& r = pump.pump(batch);
        for (const sim::ProcessResult& pr : r.results) cycles.add(pr.cycles);
        dropped += r.dropped;
        emulator.advance_time(window_seconds * static_cast<double>(n) /
                              static_cast<double>(std::max(1, packets)));
        done += static_cast<int>(n);
    }
    WindowResult w;
    w.mean_cycles = cycles.mean();
    w.packets = static_cast<std::uint64_t>(packets);
    w.drop_rate = packets > 0
                      ? static_cast<double>(dropped) / static_cast<double>(packets)
                      : 0.0;
    w.throughput_gbps = emulator.throughput_gbps(w.mean_cycles);
    return w;
}

inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_cdf(const std::string& label, const std::vector<double>& xs) {
    util::EmpiricalCdf cdf(xs);
    std::printf("%s (n=%zu):\n%s", label.c_str(), cdf.size(),
                cdf.to_table(11).c_str());
}

}  // namespace pipeleon::bench
