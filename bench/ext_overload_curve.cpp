// bench/ext_overload_curve.cpp — the drop-on-overflow overload policy under
// an open-loop offered-load sweep (ISSUE 6 acceptance bench). A paced
// OfferedLoad source pushes packets into small RX rings at 0.25x..3x the
// calibrated service capacity; workers poll under a per-tick cycle budget
// that models the cores' clock. The curve the DROP principle predicts:
//
//   goodput   rises linearly, then PLATEAUS at capacity (never collapses —
//             excess load is shed at the ring, not queued unboundedly);
//   p99       rises toward saturation but stays BOUNDED by the ring depth
//             (a full ring is a fixed-length queue, not an open one);
//   drops     zero below saturation, nonzero and growing past it.
//
// Everything is measured in virtual time (paced arrivals, budgeted service,
// emulated cycles), so the curve is deterministic and CI-gateable. Emits
// BENCH_ext_overload_curve.json + the offered/goodput/p99/drop_rate series
// as BENCH_ext_overload_curve.csv (one row per sweep point).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"
#include "sim/rss.h"
#include "util/strings.h"

using namespace pipeleon;

namespace {

constexpr int kChainLen = 6;
constexpr int kFlows = 256;
constexpr std::size_t kRingCapacity = 512;  // small on purpose: bounds p99

/// A deliberately small NIC so the sweep saturates with a few hundred
/// thousand virtual packets: two run-to-completion cores at 10 MHz.
sim::NicModel overload_nic() {
    sim::NicModel nic = sim::bluefield2_model();
    nic.name = "overload_2core_10mhz";
    nic.cycles_per_second = 1.0e7;
    nic.cores = 2;
    return nic;
}

std::vector<trafficgen::FieldRange> field_tuple() {
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    return tuple;
}

void setup_emulator(sim::Emulator& emu, const trafficgen::FlowSet& flows) {
    emu.set_worker_count(emu.model().cores);
    apps::install_flow_entries(emu, flows);
}

/// Mean service cycles per packet, measured closed-loop (ample rings, no
/// budget) — the denominator of the capacity estimate.
double calibrate_service_cycles(const ir::Program& prog,
                                const trafficgen::FlowSet& flows) {
    sim::Emulator emu(overload_nic(), prog, {});
    setup_emulator(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 21);
    bench::RingPump pump(emu, 256);
    double cycles = 0.0;
    std::uint64_t packets = 0;
    for (int round = 0; round < 8; ++round) {
        sim::PacketBatch batch = wl.next_batch(emu.fields(), 256);
        const sim::BatchResult& r = pump.pump(batch);
        if (round == 0) continue;  // warm caches before counting
        cycles += r.total_cycles;
        packets += r.results.size();
    }
    return packets > 0 ? cycles / static_cast<double>(packets) : 1.0;
}

struct SweepPoint {
    double load_factor = 0.0;
    double offered_pps = 0.0;
    double goodput_pps = 0.0;
    double drop_rate = 0.0;
    double p99_cycles = 0.0;
};

/// One open-loop run at a fixed offered rate: paced arrivals into the
/// rings, budgeted service per tick, latency = service + ring wait.
SweepPoint run_point(const ir::Program& prog,
                     const trafficgen::FlowSet& flows, double capacity_pps,
                     double factor, double duration_s) {
    sim::Emulator emu(overload_nic(), prog, {});
    setup_emulator(emu, flows);
    sim::RingConfig cfg;
    cfg.rx_capacity = kRingCapacity;
    sim::RssDispatcher io = emu.make_rings(cfg);

    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 22);
    trafficgen::OfferedLoad src(wl, capacity_pps * factor);

    const sim::NicModel& nic = emu.model();
    const double dt = 1e-4;
    // Each core has cps * dt cycles per tick; poll splits the budget evenly
    // across workers, so the total is cores * cps * dt.
    const double tick_budget =
        nic.cycles_per_second * dt * static_cast<double>(nic.cores);
    const int ticks = static_cast<int>(duration_s / dt);

    sim::BatchResult out;
    std::vector<double> latencies;
    std::uint64_t completed = 0;
    for (int t = 0; t < ticks; ++t) {
        const std::size_t due = src.accrue(dt);
        if (due > 0) src.offer(io, emu.fields(), due, emu.now_seconds());
        emu.advance_time(dt);
        emu.poll(io, out, tick_budget);
        completed += out.results.size();
        for (const sim::ProcessResult& r : out.results) {
            latencies.push_back(r.cycles + r.queue_cycles);
        }
    }

    SweepPoint p;
    p.load_factor = factor;
    p.offered_pps = static_cast<double>(src.offered()) / duration_s;
    p.goodput_pps = static_cast<double>(completed) / duration_s;
    const sim::RingStats rs = io.stats();
    p.drop_rate = rs.offered() > 0 ? static_cast<double>(rs.dropped) /
                                         static_cast<double>(rs.offered())
                                   : 0.0;
    p.p99_cycles = util::percentile(std::move(latencies), 99.0);
    return p;
}

}  // namespace

int main() {
    bench::section("overload curve: offered load vs goodput under the "
                   "drop-on-overflow policy");
    const bool quick = bench::BenchEnv::quick();
    const double duration_s = quick ? 0.05 : 0.25;

    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    util::Rng rng(19);
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(field_tuple(), kFlows, rng);

    const double service_cycles = calibrate_service_cycles(prog, flows);
    const sim::NicModel nic = overload_nic();
    const double capacity_pps = nic.cycles_per_second *
                                static_cast<double>(nic.cores) /
                                service_cycles;
    std::printf("calibrated service cost: %.1f cycles/packet -> capacity "
                "%.0f pps (%d cores @ %.0e Hz)\n",
                service_cycles, capacity_pps, nic.cores,
                nic.cycles_per_second);

    const double factors[] = {0.25, 0.5, 0.75, 0.9, 1.0,
                              1.1,  1.25, 1.5, 2.0, 3.0};
    telemetry::CsvSeries series(
        {"load_factor", "offered_pps", "goodput_pps", "drop_rate",
         "p99_cycles"});
    util::TextTable table(
        {"load", "offered pps", "goodput pps", "drop rate", "p99 cycles"});
    std::vector<SweepPoint> points;
    for (double factor : factors) {
        SweepPoint p = run_point(prog, flows, capacity_pps, factor,
                                 duration_s);
        points.push_back(p);
        series.add_row({p.load_factor, p.offered_pps, p.goodput_pps,
                        p.drop_rate, p.p99_cycles});
        table.add_row({util::format("%.2fx", p.load_factor),
                       util::format("%.0f", p.offered_pps),
                       util::format("%.0f", p.goodput_pps),
                       util::format("%.4f", p.drop_rate),
                       util::format("%.0f", p.p99_cycles)});
    }
    std::printf("%s", table.to_string().c_str());

    const SweepPoint& at_1x = points[4];
    const SweepPoint& at_2x = points[8];
    const SweepPoint& at_3x = points.back();
    const double plateau_pps = std::max(at_2x.goodput_pps, at_3x.goodput_pps);
    double p99_max = 0.0;
    for (const SweepPoint& p : points) p99_max = std::max(p99_max, p.p99_cycles);

    std::printf("\nplateau goodput %.0f pps (%.2fx calibrated capacity); "
                "saturation drop rate %.3f; p99 bounded at %.0f cycles\n",
                plateau_pps, plateau_pps / capacity_pps, at_3x.drop_rate,
                p99_max);

    bench::Reporter rep("ext_overload_curve", nic);
    rep.param("ring_capacity", static_cast<double>(kRingCapacity));
    rep.param("duration_s", duration_s);
    rep.param("chain_len", static_cast<double>(kChainLen));
    rep.metric("service_cycles", service_cycles);
    rep.metric("capacity_pps", capacity_pps);
    rep.metric("goodput_plateau_pps", plateau_pps);
    rep.metric("goodput_1x_pps", at_1x.goodput_pps);
    rep.metric("saturation_drop_rate", at_3x.drop_rate);
    rep.metric("p99_max_cycles", p99_max);
    // The gated pair: plateau goodput on 512 B packets, worst-case p99.
    rep.metric("throughput_gbps", plateau_pps * 512.0 * 8.0 / 1e9);
    rep.metric("latency_p99", p99_max);
    rep.write();
    series.write(rep.raw().csv_path());
    std::printf("[bench-report] wrote %s\n", rep.raw().csv_path().c_str());
    return 0;
}
