// Figure 18 / Appendix A.3 — pipelet traffic distributions at three entropy
// levels: 2000 random runtime profiles are synthesized for one program; the
// 10th/50th/90th-entropy profiles' per-pipelet traffic shares are printed.
// Low entropy = traffic aggregated on few pipelets; high entropy = spread
// out (but never uniform — the first pipelet always sees 100%).
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

int main() {
    bench::section("Figure 18: pipelet traffic distribution by entropy "
                   "percentile");

    synth::SynthConfig scfg;
    scfg.pipelets = 12;
    scfg.min_pipelet_len = 2;
    scfg.max_pipelet_len = 2;
    scfg.diamond_fraction = 0.4;
    synth::ProgramSynthesizer gen(scfg, 1234);
    ir::Program prog = gen.generate("entropy");
    auto pipelets = analysis::form_pipelets(prog);
    std::printf("\nprogram: %zu tables in %zu pipelets\n", prog.table_count(),
                pipelets.size());

    const int kProfiles = 2000;
    std::vector<std::pair<double, profile::RuntimeProfile>> profs;
    profs.reserve(kProfiles);
    std::vector<double> entropies;
    for (int p = 0; p < kProfiles; ++p) {
        synth::ProfileSynthesizer profgen(synth::heavy_drop_config(),
                                          static_cast<std::uint64_t>(p));
        profile::RuntimeProfile prof = profgen.generate(prog);
        double h = synth::pipelet_traffic_entropy(prog, pipelets, prof);
        entropies.push_back(h);
        profs.emplace_back(h, std::move(prof));
    }
    std::sort(profs.begin(), profs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    bench::print_cdf("entropy over 2000 random profiles", entropies);

    for (int pct : {10, 50, 90}) {
        std::size_t idx =
            static_cast<std::size_t>(pct / 100.0 * (profs.size() - 1));
        const auto& [h, prof] = profs[idx];
        std::printf("\n-- %dth-percentile entropy profile (H = %.3f bits) --\n",
                    pct, h);
        auto shares = synth::pipelet_traffic_shares(prog, pipelets, prof);
        util::TextTable table({"pipelet", "traffic share"});
        for (std::size_t i = 0; i < shares.size(); ++i) {
            std::string bar(static_cast<std::size_t>(shares[i] * 200), '#');
            table.add_row({std::to_string(i + 1),
                           util::format("%5.1f%%  %s", 100.0 * shares[i],
                                        bar.c_str())});
        }
        std::printf("%s", table.to_string().c_str());
    }

    std::printf("\npaper shape: low-entropy profiles concentrate traffic on a\n"
                "few pipelets; high-entropy profiles spread it, though early\n"
                "pipelets always carry more (the root pipelet sees 100%%).\n");

    bench::Reporter rep("fig18_entropy_dist", "model");
    rep.param("profiles", util::Json(std::uint64_t(kProfiles)));
    rep.metric("entropy_p10_bits", util::percentile(entropies, 10));
    rep.metric("entropy_p50_bits", util::median(entropies));
    rep.metric("entropy_p90_bits", util::percentile(entropies, 90));
    rep.write();
    return 0;
}
