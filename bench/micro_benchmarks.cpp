// micro_benchmarks — google-benchmark suite for the core data structures:
// match-engine lookups (the emulator's hot path), packet processing,
// candidate enumeration, and full optimizer rounds. These are sanity gauges
// for the library itself, not paper figures.
#include <benchmark/benchmark.h>

#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "search/optimizer.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"
#include "trafficgen/workload.h"

using namespace pipeleon;

namespace {

std::vector<ir::TableEntry> exact_entries(int n) {
    std::vector<ir::TableEntry> entries;
    for (int i = 0; i < n; ++i) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::exact(static_cast<std::uint64_t>(i))};
        e.action_index = 0;
        entries.push_back(e);
    }
    return entries;
}

void BM_ExactEngineLookup(benchmark::State& state) {
    ir::Table t = ir::TableSpec("t").key("f").noop_action("a").build();
    auto engine = sim::make_engine(t);
    auto entries = exact_entries(static_cast<int>(state.range(0)));
    engine->rebuild(t, entries);
    std::uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine->lookup({key++ % entries.size()}));
    }
}
BENCHMARK(BM_ExactEngineLookup)->Arg(64)->Arg(4096)->Arg(65536);

void BM_TernaryEngineLookup(benchmark::State& state) {
    ir::Table t =
        ir::TableSpec("t").key("f", ir::MatchKind::Ternary).noop_action("a").build();
    auto engine = sim::make_engine(t);
    std::vector<ir::TableEntry> entries;
    for (int m = 0; m < state.range(0); ++m) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::ternary(0, 0xFFULL << (m % 32))};
        e.action_index = 0;
        e.priority = m;
        entries.push_back(e);
    }
    engine->rebuild(t, entries);
    std::uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine->lookup({key++}));
    }
}
BENCHMARK(BM_TernaryEngineLookup)->Arg(5)->Arg(16)->Arg(32);

void BM_EmulatorProcess(benchmark::State& state) {
    ir::Program prog =
        ir::chain_of_exact_tables("bench", static_cast<int>(state.range(0)), 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    util::Rng rng(1);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < state.range(0); ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 128, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 2);
    for (auto _ : state) {
        sim::Packet pkt = wl.next_packet(emu.fields());
        benchmark::DoNotOptimize(emu.process(pkt));
    }
}
BENCHMARK(BM_EmulatorProcess)->Arg(4)->Arg(12)->Arg(24);

// micro_batch — the batched data plane with a worker sweep. Compare
// items_per_second against BM_EmulatorProcess (the scalar loop) and across
// worker counts; the speedup is wall-clock, so UseRealTime() is required
// (the workers' cycles do not land on the main thread's CPU clock).
void BM_EmulatorProcessBatch(benchmark::State& state) {
    ir::Program prog = ir::chain_of_exact_tables("bench", 12, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(static_cast<int>(state.range(0)));
    util::Rng rng(1);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 12; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 128, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 2);
    constexpr std::size_t kBatch = 512;
    for (auto _ : state) {
        state.PauseTiming();
        sim::PacketBatch batch = wl.next_batch(emu.fields(), kBatch);
        state.ResumeTiming();
        benchmark::DoNotOptimize(emu.process_batch(batch));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_EmulatorProcessBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_OptimizerRound(benchmark::State& state) {
    synth::SynthConfig scfg;
    scfg.pipelets = static_cast<int>(state.range(0));
    scfg.min_pipelet_len = 2;
    scfg.max_pipelet_len = 3;
    synth::ProgramSynthesizer gen(scfg, 42);
    ir::Program prog = gen.generate("bench");
    synth::ProfileSynthesizer profgen(synth::heavy_drop_config(), 43);
    profile::RuntimeProfile prof = profgen.generate(prog);
    cost::CostModel model(sim::bluefield2_model().costs, {});
    search::OptimizerConfig cfg;
    cfg.top_k_fraction = 0.2;
    search::Optimizer optimizer(model, cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimizer.optimize(prog, prof));
    }
}
BENCHMARK(BM_OptimizerRound)->Arg(6)->Arg(12)->Arg(18);

void BM_CostModelExpectedLatency(benchmark::State& state) {
    synth::SynthConfig scfg;
    scfg.pipelets = static_cast<int>(state.range(0));
    synth::ProgramSynthesizer gen(scfg, 7);
    ir::Program prog = gen.generate("bench");
    synth::ProfileSynthesizer profgen(synth::heavy_drop_config(), 8);
    profile::RuntimeProfile prof = profgen.generate(prog);
    cost::CostModel model(sim::bluefield2_model().costs, {});
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.expected_latency(prog, prof));
    }
}
BENCHMARK(BM_CostModelExpectedLatency)->Arg(8)->Arg(16);

}  // namespace

// Custom main (instead of benchmark_main) so the run also emits the
// machine-readable BenchReport that every bench binary produces.
int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    bench::Reporter rep("micro_benchmarks");
    rep.metric("benchmarks_run", static_cast<double>(ran));
    rep.write();
    return 0;
}
