// ablation_search — ablations of Pipeleon's search design choices (not a
// paper figure; supports DESIGN.md §5):
//   (1) global knapsack vs greedy best-per-pipelet under resource limits,
//   (2) the greedy drop-order seed vs pure permutation enumeration,
//   (3) sensitivity to the per-pipelet candidate cap.
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

namespace {

struct Instance {
    ir::Program program;
    profile::RuntimeProfile profile;
};

std::vector<Instance> make_instances(int n, std::uint64_t seed_base) {
    std::vector<Instance> out;
    for (int i = 0; i < n; ++i) {
        synth::SynthConfig scfg;
        scfg.pipelets = 10;
        scfg.min_pipelet_len = 2;
        scfg.max_pipelet_len = 4;
        scfg.ternary_fraction = 0.3;
        scfg.drop_table_fraction = 0.4;
        synth::ProgramSynthesizer gen(scfg, seed_base + static_cast<std::uint64_t>(i));
        Instance inst{gen.generate("abl"), {}};
        synth::ProfileSynthesizer profgen(synth::heavy_drop_config(),
                                          seed_base + 1000 + i);
        inst.profile = profgen.generate(inst.program);
        out.push_back(std::move(inst));
    }
    return out;
}

double mean_gain(const std::vector<Instance>& instances,
                 const search::OptimizerConfig& cfg, const cost::CostModel& model) {
    double total = 0.0;
    int n = 0;
    for (const Instance& inst : instances) {
        search::Optimizer opt(model, cfg);
        search::OptimizationOutcome out = opt.optimize(inst.program, inst.profile);
        if (out.baseline_latency > 0.0) {
            total += out.predicted_gain / out.baseline_latency;
            ++n;
        }
    }
    return n > 0 ? 100.0 * total / n : 0.0;
}

}  // namespace

int main() {
    bench::section("Ablation: search design choices");
    cost::CostModel model(sim::bluefield2_model().costs, {});
    std::vector<Instance> instances = make_instances(40, 9000);

    // (1) Knapsack vs greedy under a shrinking memory budget. Greedy =
    // "pick the best candidate per pipelet until the budget runs out",
    // approximated here by a 1-cell knapsack grid (first-fit behavior).
    std::printf("\n(1) resource-constrained plan selection\n");
    double tight_fine = 0.0, tight_coarse = 0.0;
    util::TextTable t1({"memory budget", "knapsack gain", "coarse-grid gain"});
    for (double mb : {1e9, 4e6, 1e6, 2.5e5}) {
        search::OptimizerConfig cfg;
        cfg.top_k_fraction = 1.0;
        cfg.limits.memory_bytes = mb;
        cfg.knapsack.memory_grid = 64;
        double fine = mean_gain(instances, cfg, model);
        cfg.knapsack.memory_grid = 2;  // nearly greedy
        double coarse = mean_gain(instances, cfg, model);
        tight_fine = fine;
        tight_coarse = coarse;
        t1.add_row({util::format("%.0f KB", mb / 1024.0),
                    util::format("%.1f%%", fine),
                    util::format("%.1f%%", coarse)});
    }
    std::printf("%s", t1.to_string().c_str());
    std::printf("expected: the fine-grained knapsack never loses to the\n"
                "coarse grid, and wins as the budget tightens.\n");

    // (2) Greedy drop-order seeding: long pipelets cannot be exhaustively
    // permuted; the seed keeps reordering effective.
    std::printf("\n(2) greedy drop-order seed (reordering only)\n");
    util::TextTable t2({"max orders", "with seed", "permutations only"});
    for (std::size_t cap : {4u, 16u, 64u}) {
        search::OptimizerConfig cfg;
        cfg.top_k_fraction = 1.0;
        cfg.search.allow_cache = false;
        cfg.search.allow_merge = false;
        cfg.search.max_orders = cap;
        double with_seed = mean_gain(instances, cfg, model);
        // Disabling the seed is emulated by zeroing drop rates' influence:
        // no public toggle exists, so compare against a tiny order cap where
        // the seed dominates vs a large cap where enumeration catches up.
        t2.add_row({std::to_string(cap), util::format("%.1f%%", with_seed), "-"});
    }
    std::printf("%s", t2.to_string().c_str());
    std::printf("expected: gains are nearly flat in the cap — the greedy\n"
                "seed already contains the important order.\n");

    // (3) Candidate-cap sensitivity.
    std::printf("\n(3) per-pipelet candidate cap\n");
    util::TextTable t3({"max candidates", "gain", "mean search ms"});
    for (std::size_t cap : {16u, 64u, 256u, 2048u}) {
        search::OptimizerConfig cfg;
        cfg.top_k_fraction = 1.0;
        cfg.search.max_candidates = cap;
        double total_ms = 0.0;
        double total_gain = 0.0;
        int n = 0;
        for (const Instance& inst : instances) {
            search::Optimizer opt(model, cfg);
            auto out = opt.optimize(inst.program, inst.profile);
            total_ms += out.search_seconds * 1000.0;
            if (out.baseline_latency > 0.0) {
                total_gain += out.predicted_gain / out.baseline_latency;
                ++n;
            }
        }
        t3.add_row({std::to_string(cap),
                    util::format("%.1f%%", 100.0 * total_gain / std::max(1, n)),
                    util::format("%.2f", total_ms / instances.size())});
    }
    std::printf("%s", t3.to_string().c_str());
    std::printf("expected: gains saturate well below the default cap because\n"
                "high-coverage cache candidates are enumerated first.\n");

    bench::Reporter rep("ablation_search", sim::bluefield2_model());
    rep.param("instances", util::Json(std::uint64_t(instances.size())));
    rep.metric("knapsack_gain_tight_budget_pct", tight_fine);
    rep.metric("coarse_grid_gain_tight_budget_pct", tight_coarse);
    rep.write();
    return 0;
}
