// Figure 11c — network-function composition on the BMv2-based emulated NIC
// model (§5.3.3): LB + routing + L2/L3/ACL composed into nine pipelets; on
// this NIC "LPM and ternary matches have the same cost, which is 3x slower
// than exact matches; conditional branches have 1/10 the cost of an exact
// table". The traffic pattern shifts which NF is hot (NF1 -> NF2 -> NF3);
// Pipeleon re-selects the top-30% costly pipelets each round and
// re-optimizes, cutting the average emulated latency (paper: -49%).
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"

using namespace pipeleon;

int main() {
    bench::section("Figure 11c: NF composition on the emulated NIC model "
                   "(top-30% pipelets)");

    ir::Program program = apps::nf_composition_program();
    sim::NicModel nic = sim::emulated_nic_model();

    sim::Emulator dyn_emu(nic, program, {});
    sim::Emulator sta_emu(nic, program, {});
    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 0.30;  // "top-30% costly pipelets"
    cfg.detector.threshold = 0.05;
    cost::CostModel model(nic.costs, {});
    runtime::Controller controller(dyn_emu, program, model, cfg);
    runtime::ApiMapper sta_api(program);

    // Routes and a ternary classifier so the L3 block costs something.
    for (auto* api : {&controller.api(), &sta_api}) {
        sim::Emulator& emu = api == &controller.api() ? dyn_emu : sta_emu;
        for (std::uint64_t net = 0; net < 4; ++net) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::lpm(net << 24, 8 + 4 * (net % 3))};
            e.action_index = 0;
            e.action_data = {net};
            api->insert(emu, "l3_routing", e);
        }
        for (int m = 0; m < 3; ++m) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + m))};
            e.action_index = m % 2;
            e.priority = m;
            api->insert(emu, "l3_flowcls", e);
        }
        for (std::uint64_t vip = 0; vip < 64; ++vip) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(vip)};
            e.action_index = 0;
            e.action_data = {vip % 8};
            api->insert(emu, "lb_vip", e);
        }
    }

    // Three traffic phases steering the branches toward different NFs.
    struct PhaseSpec {
        const char* name;
        std::uint64_t is_vip, needs_ct, is_l2;
    };
    const PhaseSpec phases[] = {
        {"NF1 (LB-heavy)", 1, 0, 0},
        {"NF2 (conntrack/ACL-heavy)", 0, 1, 0},
        {"NF3 (L2-heavy)", 0, 0, 1},
    };

    util::Rng rng(77);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"lbf0", 0, 63}, {"lbf1", 0, 63}, {"lbf2", 0, 63}, {"vip", 0, 63},
         {"direction", 0, 1}, {"eni_mac", 0, 63}, {"flow_id", 0, 9999},
         {"src_ip", 0, 9999}, {"dst_ip", 0, 9999}, {"ipv4_dst", 0, 0x03FFFFFF},
         {"eth_src", 0, 255}, {"eth_dst", 0, 255}, {"tuple_hash", 0, 255},
         {"egress_key", 0, 255}},
        2000, rng);

    std::printf("\n%10s  %-26s  %12s  %12s\n", "packet seq", "phase",
                "Pipeleon lat", "baseline lat");
    std::uint64_t seq = 0;
    double dyn_mean = 0.0, sta_mean = 0.0;
    for (const PhaseSpec& phase : phases) {
        for (int window = 0; window < 3; ++window) {
            trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1,
                                    seq + 5);
            util::RunningStats dyn_lat, sta_lat;
            // Batched pump; the per-phase steering fields are stamped onto
            // every packet of the batch before it hits the data plane.
            auto pump = [&phase](sim::Emulator& emu, trafficgen::Workload& w,
                                 util::RunningStats& lat, int packets) {
                sim::FieldId vip_f = emu.fields().intern("is_vip_traffic");
                sim::FieldId ct_f = emu.fields().intern("needs_conntrack");
                sim::FieldId l2_f = emu.fields().intern("is_l2");
                bench::RingPump rings(emu, 500);
                for (int done = 0; done < packets; done += 500) {
                    sim::PacketBatch batch = w.next_batch(emu.fields(), 500);
                    for (sim::Packet& p : batch) {
                        p.set(vip_f, phase.is_vip);
                        p.set(ct_f, phase.needs_ct);
                        p.set(l2_f, phase.is_l2);
                    }
                    const sim::BatchResult& r = rings.pump(batch);
                    for (const sim::ProcessResult& pr : r.results)
                        lat.add(pr.cycles);
                    emu.advance_time(5.0 * 500 / packets);
                }
            };
            pump(dyn_emu, wl, dyn_lat, 8000);
            // Replay the same flow sequence into the baseline deployment.
            trafficgen::Workload wl2(flows, trafficgen::Locality::Zipf, 1.1,
                                     seq + 5);
            pump(sta_emu, wl2, sta_lat, 8000);
            seq += 8000;
            std::printf("%10llu  %-26s  %12.1f  %12.1f\n",
                        static_cast<unsigned long long>(seq), phase.name,
                        dyn_lat.mean(), sta_lat.mean());
            dyn_mean = dyn_lat.mean();
            sta_mean = sta_lat.mean();
            controller.tick();
        }
    }

    std::printf("\nhot pipelets tracked per phase; paper: Pipeleon reduces\n"
                "average emulated latency by ~49%% across the phase changes.\n");

    bench::Reporter rep("fig11c_nfcomposition", nic);
    rep.metric("pipeleon_mean_cycles", dyn_mean);
    rep.metric("baseline_mean_cycles", sta_mean);
    rep.metric("throughput_gbps", dyn_emu.throughput_gbps(dyn_mean));
    rep.from_emulator(dyn_emu);
    rep.write();
    return 0;
}
