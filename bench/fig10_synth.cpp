// Figure 10 — optimization benefits on broader synthesized P4 programs
// (§5.2.2): three workload categories (heavy packet drop, small static
// tables, high traffic locality) x pipelet lengths {1-2, 2-3, 3-4}, 100
// single-pipelet programs each; "Figure 10 summarizes the average
// optimization performance computed by the cost model", separately per
// technique (reordering / merging / caching).
#include <algorithm>

#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

namespace {

struct Category {
    const char* name;
    synth::ProfileSynthConfig profile_cfg;
    double drop_table_fraction;
    double cache_hit_rate;
};

struct Technique {
    const char* name;
    bool reorder, cache, merge;
};

double avg_reduction(const Category& category, int min_len, int max_len,
                     const Technique& technique, int programs) {
    double total = 0.0;
    int counted = 0;
    for (int i = 0; i < programs; ++i) {
        synth::SynthConfig scfg;
        scfg.pipelets = 1;  // "we restricted each program to having only one
                            // pipelet"
        scfg.min_pipelet_len = min_len;
        scfg.max_pipelet_len = max_len;
        scfg.lpm_fraction = 0.2;
        scfg.ternary_fraction = 0.25;
        scfg.drop_table_fraction = category.drop_table_fraction;
        scfg.dependency_fraction = 0.1;
        synth::ProgramSynthesizer gen(scfg, static_cast<std::uint64_t>(i) * 31 + 7);
        ir::Program prog = gen.generate("synth");

        synth::ProfileSynthesizer profgen(category.profile_cfg,
                                          static_cast<std::uint64_t>(i) * 17 + 3);
        profile::RuntimeProfile prof = profgen.generate(prog);

        cost::CostParams params = sim::bluefield2_model().costs;
        params.default_cache_hit_rate = category.cache_hit_rate;
        profile::InstrumentationConfig instr;
        cost::CostModel model(params, instr);

        search::OptimizerConfig cfg;
        cfg.top_k_fraction = 1.0;
        cfg.pipelet.max_length = 4;
        cfg.search.allow_reorder = technique.reorder;
        cfg.search.allow_cache = technique.cache;
        cfg.search.allow_merge = technique.merge;
        cfg.search.max_merge_len = 2;  // "we restrict Pipeleon to merge at
                                       // most two tables"
        search::Optimizer optimizer(model, cfg);
        search::OptimizationOutcome out = optimizer.optimize(prog, prof);
        if (out.baseline_latency <= 0.0) continue;
        total += out.predicted_gain / out.baseline_latency;
        ++counted;
    }
    return counted > 0 ? 100.0 * total / counted : 0.0;
}

}  // namespace

int main() {
    bench::section("Figure 10: synthesized programs, latency reduction by "
                   "technique (cost model)");

    const std::vector<Category> categories = {
        {"Heavy packet drop", synth::heavy_drop_config(), 0.8, 0.75},
        {"Small static tables", synth::small_static_config(), 0.05, 0.75},
        {"High traffic locality", synth::high_locality_config(), 0.1, 0.95},
    };
    const std::vector<Technique> techniques = {
        {"Reordering", true, false, false},
        {"Merging", false, false, true},
        {"Caching", false, true, false},
    };
    const std::vector<std::pair<int, int>> lengths = {{1, 2}, {2, 3}, {3, 4}};
    const int programs = 100;

    std::vector<double> all_combined;
    for (const Category& category : categories) {
        std::printf("\n%s:\n", category.name);
        util::TextTable table(
            {"pipelet length", "Reordering", "Merging", "Caching", "All"});
        for (auto [lo, hi] : lengths) {
            std::vector<std::string> row{util::format("%d~%d", lo, hi)};
            for (const Technique& technique : techniques) {
                row.push_back(util::format(
                    "%.1f%%", avg_reduction(category, lo, hi, technique, programs)));
            }
            double combined = avg_reduction(
                category, lo, hi, Technique{"All", true, true, true}, programs);
            all_combined.push_back(combined);
            row.push_back(util::format("%.1f%%", combined));
            table.add_row(std::move(row));
        }
        std::printf("%s", table.to_string().c_str());
    }

    std::printf("\noverall combined latency reduction: %.1f%% .. %.1f%%  "
                "(paper: 27%%-52%%)\n",
                *std::min_element(all_combined.begin(), all_combined.end()),
                *std::max_element(all_combined.begin(), all_combined.end()));
    std::printf("paper shape: longer pipelets gain more; each category favors\n"
                "its matching technique (drops->reordering, static->merging,\n"
                "locality->caching); merging gains least (2-table cap).\n");

    bench::Reporter rep("fig10_synth", "model");
    rep.metric("latency_reduction_min_pct",
               *std::min_element(all_combined.begin(), all_combined.end()));
    rep.metric("latency_reduction_max_pct",
               *std::max_element(all_combined.begin(), all_combined.end()));
    rep.write();
    return 0;
}
