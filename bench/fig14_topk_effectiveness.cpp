// Figure 14 — top-k effectiveness (§5.4.3): how much of the exhaustive
// search's gain the top-k search retains, at three traffic-aggregation
// levels. For each program we synthesize many runtime profiles, rank them by
// pipelet-traffic entropy, take the 10th/50th/90th-percentile-entropy
// profiles, and report the CDF of (top-k gain / ESearch gain) over programs
// for k in {20, 30, 40, 50}%.
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

namespace {

double gain_for_k(const ir::Program& prog, const profile::RuntimeProfile& prof,
                  const cost::CostModel& model, double k) {
    search::OptimizerConfig cfg;
    cfg.top_k_fraction = k;
    search::Optimizer optimizer(model, cfg);
    return optimizer.optimize(prog, prof).predicted_gain;
}

}  // namespace

int main() {
    bench::section("Figure 14: top-k gain / ESearch gain at three entropy "
                   "levels");

    const int programs = 30;        // paper: the first Fig-13 group (100)
    const int profiles_per_prog = 200;  // paper: 2000
    const std::vector<double> ks = {0.2, 0.3, 0.4, 0.5};

    cost::CostModel model(sim::bluefield2_model().costs, {});

    // ratios[entropy percentile][k] -> per-program ratios.
    std::map<int, std::map<int, std::vector<double>>> ratios;

    for (int i = 0; i < programs; ++i) {
        synth::SynthConfig scfg;
        scfg.pipelets = 12;
        scfg.min_pipelet_len = 2;
        scfg.max_pipelet_len = 2;
        scfg.diamond_fraction = 0.4;
        synth::ProgramSynthesizer gen(scfg, static_cast<std::uint64_t>(i) * 211 + 5);
        ir::Program prog = gen.generate("topk");
        auto pipelets = analysis::form_pipelets(prog);

        // Synthesize profiles, rank by entropy.
        std::vector<std::pair<double, profile::RuntimeProfile>> profs;
        for (int p = 0; p < profiles_per_prog; ++p) {
            synth::ProfileSynthesizer profgen(
                synth::heavy_drop_config(),
                static_cast<std::uint64_t>(i * 1000 + p));
            profile::RuntimeProfile prof = profgen.generate(prog);
            double h = synth::pipelet_traffic_entropy(prog, pipelets, prof);
            profs.emplace_back(h, std::move(prof));
        }
        std::sort(profs.begin(), profs.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });

        for (int pct : {10, 50, 90}) {
            std::size_t idx = static_cast<std::size_t>(
                pct / 100.0 * (profs.size() - 1));
            const profile::RuntimeProfile& prof = profs[idx].second;
            double esearch = gain_for_k(prog, prof, model, 1.0);
            if (esearch <= 0.0) continue;
            for (double k : ks) {
                double g = gain_for_k(prog, prof, model, k);
                ratios[pct][static_cast<int>(k * 100)].push_back(g / esearch);
            }
        }
    }

    for (int pct : {10, 50, 90}) {
        std::printf("\n-- %dth entropy profile --\n", pct);
        util::TextTable table({"k", "p10", "median", "p90", ">=0.7 of ESearch"});
        for (double k : ks) {
            auto& rs = ratios[pct][static_cast<int>(k * 100)];
            if (rs.empty()) continue;
            int ge = 0;
            for (double r : rs) ge += r >= 0.7 ? 1 : 0;
            table.add_row(
                {util::format("%.0f%%", k * 100),
                 util::format("%.3f", util::percentile(rs, 10)),
                 util::format("%.3f", util::median(rs)),
                 util::format("%.3f", util::percentile(rs, 90)),
                 util::format("%.0f%%",
                              100.0 * ge / static_cast<double>(rs.size()))});
        }
        std::printf("%s", table.to_string().c_str());
    }

    std::printf("\npaper shape: top-20%% retains >70%% of the ESearch gain for\n"
                "(nearly) all programs at low entropy; larger k approaches 1;\n"
                "the trend changes little across entropy levels.\n");

    bench::Reporter rep("fig14_topk_effectiveness", sim::bluefield2_model());
    rep.param("programs", util::Json(std::uint64_t(programs)));
    auto& k20_low = ratios[10][20];
    if (!k20_low.empty()) {
        rep.metric("k20_median_ratio_low_entropy", util::median(k20_low));
    }
    auto& k50_low = ratios[10][50];
    if (!k50_low.empty()) {
        rep.metric("k50_median_ratio_low_entropy", util::median(k50_low));
    }
    rep.write();
    return 0;
}
