// bench/micro_match.cpp — the batched match path's probe economics
// (ISSUE 10): scalar lookup() vs the group-of-8 hash->prefetch->probe
// pipeline (lookup_group) on a warm flat-LRU CacheStore sized well past L2,
// at 1/8/64-key group sizes and across a hit-rate sweep, plus the raw hash
// kernel throughput per SIMD tier and an end-to-end emulator comparison
// with the pipeline on vs off. Headline metrics:
//   probe_ns_per_key        — batched group-8 probe, 100% hit (lower better)
//   probe_ns_per_key_scalar — the sequential lookup() baseline
//   probe_speedup           — scalar / batched (acceptance floor: 1.3x)
//   allocs_per_batch        — heap allocations per steady-state probe group
//                             (counted by this binary's operator new hook;
//                             anything but 0 fails the run with exit 1)
// Emits BENCH_micro_match.json (pipeleon.bench_report/1).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "sim/match_batch.h"
#include "sim/nic_model.h"
#include "sim/table_state.h"
#include "util/rng.h"

using namespace pipeleon;

// ------------------------------------------------------- allocation hook
// Counts every heap allocation while armed; workers included (atomic).
namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void note_alloc() {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    }
}

void* hook_alloc(std::size_t size) {
    note_alloc();
    void* p = std::malloc(size ? size : 1);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* hook_aligned(std::size_t size, std::size_t align) {
    note_alloc();
    void* p = nullptr;
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size ? size : align) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return hook_alloc(size); }
void* operator new[](std::size_t size) { return hook_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    return hook_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
    return hook_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kKeyFields = 2;
constexpr int kChainLen = 6;
constexpr int kFlows = 512;

sim::KeyVec make_key(std::uint64_t k) {
    return sim::KeyVec{k, k * 0x9e3779b97f4a7c15ULL};
}

/// The probe workload: a warm store at 75% of capacity plus a pool of
/// absent keys, and a pseudo-random index stream over both. The stream is
/// long enough (and the store big enough) that consecutive probes never
/// share a cache line — exactly the access pattern the prefetch pipeline
/// targets.
struct ProbeSet {
    sim::CacheStore store;
    std::vector<sim::KeyVec> keys;        ///< [0, live) present, rest absent
    std::vector<std::uint64_t> hashes;    ///< KeyVecHash of keys[i]
    std::size_t live = 0;

    explicit ProbeSet(std::size_t capacity, std::size_t live_keys,
                      std::size_t miss_keys)
        : store([&] {
              ir::CacheConfig cfg;
              cfg.capacity = capacity;
              cfg.max_insert_per_sec = 1e12;
              return cfg;
          }()),
          live(live_keys) {
        keys.reserve(live_keys + miss_keys);
        hashes.reserve(live_keys + miss_keys);
        for (std::uint64_t k = 0; k < live_keys + miss_keys; ++k) {
            sim::KeyVec key = make_key(k);
            if (k < live_keys) {
                sim::CacheStore::CacheEntry e;
                sim::ReplayStep step;
                step.origin_node = static_cast<ir::NodeId>(k % 5);
                step.action_index = 0;
                e.steps.push_back(step);
                store.insert(key, e, 0.0);
            }
            hashes.push_back(sim::CacheStore::key_hash(key));
            keys.push_back(std::move(key));
        }
    }

    /// Index stream with `hit_pct`% of probes landing on live keys.
    std::vector<std::uint32_t> stream(std::size_t n, int hit_pct,
                                      std::uint64_t seed) const {
        util::Rng rng(seed);
        std::vector<std::uint32_t> idx(n);
        const std::size_t misses = keys.size() - live;
        for (std::uint32_t& i : idx) {
            const bool hit =
                static_cast<int>(rng.next_u64() % 100) < hit_pct;
            i = hit ? static_cast<std::uint32_t>(rng.next_u64() % live)
                    : static_cast<std::uint32_t>(live +
                                                 rng.next_u64() % misses);
        }
        return idx;
    }
};

/// Sequential baseline: one lookup() per key, hash and probe interleaved.
double measure_scalar(ProbeSet& ps, const std::vector<std::uint32_t>& idx,
                      int rounds) {
    std::uint64_t hits = 0;
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (std::uint32_t i : idx) {
            hits += ps.store.lookup(ps.keys[i]) != nullptr;
        }
    }
    Clock::time_point t1 = Clock::now();
    if (hits == 0xdeadbeef) std::printf("unreachable\n");  // keep live
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(idx.size()));
}

/// Batched pipeline at group size `group` (multiple of 8, or 1): hash a
/// group with key_hash8, prefetch every target index cell, then resolve
/// with lookup_group while the loads are in flight. group == 1 isolates
/// the hash-split overhead (lookup_hashed with no grouping).
double measure_batched(ProbeSet& ps, const std::vector<std::uint32_t>& idx,
                       int rounds, std::size_t group, sim::SimdTier tier) {
    constexpr std::size_t kMaxGroup = 64;
    std::uint64_t hits = 0;
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (std::size_t base = 0; base + group <= idx.size();
             base += group) {
            if (group == 1) {
                const sim::KeyVec& key = ps.keys[idx[base]];
                const std::uint64_t h = sim::CacheStore::key_hash(key);
                hits += ps.store.lookup_hashed(key, h) != nullptr;
                continue;
            }
            const sim::KeyVec* keys[kMaxGroup];
            std::uint64_t hashes[kMaxGroup];
            for (std::size_t g = 0; g < group; g += sim::kHashGroup) {
                // Field-major gather + one SIMD pass per 8 lanes.
                std::uint64_t words[kKeyFields * sim::kHashGroup];
                for (std::size_t lane = 0; lane < sim::kHashGroup; ++lane) {
                    const sim::KeyVec& key = ps.keys[idx[base + g + lane]];
                    keys[g + lane] = &key;
                    for (std::size_t f = 0; f < kKeyFields; ++f) {
                        words[f * sim::kHashGroup + lane] = key[f];
                    }
                }
                sim::key_hash8(words, kKeyFields, hashes + g, tier);
            }
            for (std::size_t i = 0; i < group; ++i) {
                ps.store.prefetch(hashes[i]);
            }
            const sim::CacheStore::CacheEntry* out[kMaxGroup];
            ps.store.lookup_group(keys, hashes, group, out);
            for (std::size_t i = 0; i < group; ++i) {
                hits += out[i] != nullptr;
            }
        }
    }
    Clock::time_point t1 = Clock::now();
    if (hits == 0xdeadbeef) std::printf("unreachable\n");
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(idx.size()));
}

/// Raw hash kernel throughput (no probe): ns/key for key_hash8 at `tier`.
double measure_hash_ns(ProbeSet& ps, int rounds, sim::SimdTier tier) {
    std::uint64_t sink = 0;
    const std::size_t n = ps.keys.size() & ~(sim::kHashGroup - 1);
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (std::size_t base = 0; base < n; base += sim::kHashGroup) {
            std::uint64_t words[kKeyFields * sim::kHashGroup];
            for (std::size_t lane = 0; lane < sim::kHashGroup; ++lane) {
                const sim::KeyVec& key = ps.keys[base + lane];
                for (std::size_t f = 0; f < kKeyFields; ++f) {
                    words[f * sim::kHashGroup + lane] = key[f];
                }
            }
            std::uint64_t h[sim::kHashGroup];
            sim::key_hash8(words, kKeyFields, h, tier);
            sink += h[0] ^ h[7];
        }
    }
    Clock::time_point t1 = Clock::now();
    if (sink == 0xdeadbeef) std::printf("unreachable\n");
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(n));
}

/// The chain program with a flow cache over its first half — the cache node
/// becomes the program root, so the emulator's batched pipeline engages.
ir::Program cached_chain() {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    analysis::PipeletOptions popt;
    popt.max_length = kChainLen + 2;
    auto pipelets = analysis::form_pipelets(prog, popt);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    for (std::size_t i = 0; i < pipelets[0].nodes.size(); ++i) {
        plan.layout.order.push_back(i);
    }
    plan.layout.caches = {opt::Segment{0, 2}};
    plan.layout.cache_config.capacity = 4096;
    plan.layout.cache_config.max_insert_per_sec = 1e9;
    return opt::apply_plans(prog, pipelets, {plan});
}

/// End-to-end Mpps through process_batch with the match pipeline on or off.
double measure_emulator_mpps(const ir::Program& prog,
                             const trafficgen::FlowSet& flows, bool pipeline,
                             int batches) {
    constexpr std::size_t kBatch = 256;
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(4);
    emu.set_match_pipeline(pipeline);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 31);

    const sim::PacketBatch pristine = wl.next_batch(emu.fields(), kBatch);
    sim::PacketBatch work = pristine;
    sim::BatchResult out;
    for (int i = 0; i < 8; ++i) {  // warm: buffers to high-water, cache hot
        work = pristine;
        emu.process_batch(work, out);
    }
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < batches; ++i) {
        work = pristine;
        emu.process_batch(work, out);
    }
    Clock::time_point t1 = Clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(batches) * static_cast<double>(kBatch) /
           secs / 1e6;
}

}  // namespace

int main() {
    const bool quick = bench::BenchEnv::quick();
    const std::size_t kCapacity = quick ? (1u << 16) : (1u << 19);
    const std::size_t kLive = kCapacity / 4 * 3;  // 75% full
    const std::size_t kMissPool = kCapacity / 4;
    const std::size_t kStream = quick ? (1u << 13) : (1u << 16);
    const int kRounds = quick ? 8 : 40;
    const int kBatches = quick ? 40 : 400;

    const sim::SimdTier tier = sim::simd_tier();
    bench::section("simd dispatch");
    std::printf("cpu tier: %s, resolved tier: %s\n",
                sim::simd_tier_name(sim::cpu_simd_tier()),
                sim::simd_tier_name(tier));

    ProbeSet ps(kCapacity, kLive, kMissPool);

    bench::Reporter rep("micro_match", sim::bluefield2_model());
    rep.param("cache_capacity", static_cast<double>(kCapacity));
    rep.param("live_keys", static_cast<double>(kLive));
    rep.param("key_fields", static_cast<double>(kKeyFields));
    rep.param("stream_len", static_cast<double>(kStream));
    rep.param("simd_tier", sim::simd_tier_name(tier));

    bench::section("hash kernel throughput (ns/key)");
    const double hash_scalar =
        measure_hash_ns(ps, kRounds, sim::SimdTier::Scalar);
    const double hash_simd = measure_hash_ns(ps, kRounds, tier);
    std::printf("scalar: %6.2f   %s: %6.2f   (%.2fx)\n", hash_scalar,
                sim::simd_tier_name(tier), hash_simd,
                hash_scalar / hash_simd);
    rep.metric("hash_ns_per_key_scalar", hash_scalar);
    rep.metric("hash_ns_per_key_simd", hash_simd);

    bench::section("probe group-size sweep, 100% hit (ns/key)");
    const std::vector<std::uint32_t> warm = ps.stream(kStream, 100, 17);
    g_alloc_count.store(0);
    g_counting.store(true);
    const double scalar_ns = measure_scalar(ps, warm, kRounds);
    const double g1_ns = measure_batched(ps, warm, kRounds, 1, tier);
    const double g8_ns = measure_batched(ps, warm, kRounds, 8, tier);
    const double g64_ns = measure_batched(ps, warm, kRounds, 64, tier);
    g_counting.store(false);
    const std::uint64_t steady_allocs = g_alloc_count.load();
    std::printf("%10s %10s %10s %10s\n", "scalar", "group-1", "group-8",
                "group-64");
    std::printf("%10.2f %10.2f %10.2f %10.2f\n", scalar_ns, g1_ns, g8_ns,
                g64_ns);
    const double speedup = scalar_ns / g8_ns;
    std::printf("group-8 speedup over scalar: %.2fx\n", speedup);
    rep.metric("probe_ns_per_key", g8_ns);
    rep.metric("probe_ns_per_key_scalar", scalar_ns);
    rep.metric("probe_ns_per_key_g1", g1_ns);
    rep.metric("probe_ns_per_key_g64", g64_ns);
    rep.metric("probe_speedup", speedup);

    bench::section("hit-rate sweep, group-8 (ns/key)");
    std::printf("%8s %10s %10s %10s\n", "hit%", "scalar", "group-8",
                "speedup");
    for (int hit_pct : {100, 50, 0}) {
        const std::vector<std::uint32_t> idx =
            ps.stream(kStream, hit_pct, 23 + hit_pct);
        const double s = measure_scalar(ps, idx, kRounds);
        const double b = measure_batched(ps, idx, kRounds, 8, tier);
        std::printf("%8d %10.2f %10.2f %9.2fx\n", hit_pct, s, b, s / b);
        char name[48];
        std::snprintf(name, sizeof(name), "probe_ns_scalar_hit%d", hit_pct);
        rep.metric(name, s);
        std::snprintf(name, sizeof(name), "probe_ns_batched_hit%d", hit_pct);
        rep.metric(name, b);
    }

    bench::section("emulator end-to-end (match pipeline on vs off)");
    ir::Program prog = cached_chain();
    util::Rng rng(29);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        // snprintf, not string operator+: GCC 12 -O3 emits a bogus
        // -Wrestrict through char_traits when the concat inlines against
        // this binary's custom operator new, and CI builds with -Werror.
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(tuple, kFlows, rng);
    const double mpps_off = measure_emulator_mpps(prog, flows, false,
                                                  kBatches);
    const double mpps_on = measure_emulator_mpps(prog, flows, true,
                                                 kBatches);
    std::printf("pipeline off: %.3f Mpps   on: %.3f Mpps   (%.2fx)\n",
                mpps_off, mpps_on, mpps_on / mpps_off);
    rep.metric("emu_mpps_pipeline_on", mpps_on);
    rep.metric("emu_mpps_pipeline_off", mpps_off);

    const double allocs_per_batch =
        static_cast<double>(steady_allocs) /
        (static_cast<double>(kRounds) * 4.0);  // 4 measured probe loops
    rep.metric("allocs_per_batch", allocs_per_batch);
    rep.write();

    if (steady_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu heap allocations in the steady-state probe "
                     "loops (must be 0)\n",
                     static_cast<unsigned long long>(steady_allocs));
        return 1;
    }
    return 0;
}
