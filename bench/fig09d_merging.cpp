// Figure 9d — table merging options on a four-exact-table pipelet: no merge,
// [1,2], [1,2,3], [1,2,3,4]. Merging uses the exact merged-cache flavor
// (§3.2.3: the naive merge would go ternary and regress); merging more
// tables means fewer lookups but a Cartesian blowup of entries — the paper
// notes [t1..t4] beats [t1..t3] by 26% on Agilio while holding 19x more
// entries. We report throughput and merged entry counts.
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "runtime/api_mapper.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

/// Replicated 4-exact-table pipelets (the paper's scale factor); merges are
/// applied inside every replica.
ir::Program replicated_pipelets(int replicas) {
    ir::ProgramBuilder b("fig9d");
    for (int r = 0; r < replicas; ++r) {
        for (int t = 1; t <= 4; ++t) {
            std::string name = "r" + std::to_string(r) + "_t" + std::to_string(t);
            b.append(ir::TableSpec(name)
                         .key("f" + std::to_string(t - 1))
                         .noop_action(name + "_a0", 3)
                         .noop_action(name + "_a1", 3)
                         .default_to(name + "_a0")
                         .build());
        }
    }
    return b.build();
}

constexpr int kReplicas = 4;

/// Returns the best measured throughput across merge options (report metric).
double run_target(const sim::NicModel& nic) {
    std::printf("\n-- %s --\n", nic.name.c_str());

    ir::Program base = replicated_pipelets(kReplicas);
    analysis::PipeletOptions popts;
    popts.max_length = 4;  // one pipelet per replica
    auto pipelets = analysis::form_pipelets(base, popts);

    struct Option {
        const char* label;
        int merged_tables;  // 0 = no merge
    };
    const std::vector<Option> options = {
        {"no merge", 0}, {"[1,2]", 2}, {"[1,2,3]", 3}, {"[1,2,3,4]", 4}};

    util::TextTable table(
        {"option", "throughput (Gbps)", "merged entries", "entry blowup"});
    double base_entries = 0.0;
    double best = 0.0;
    for (const Option& option : options) {
        ir::Program prog = base;
        if (option.merged_tables >= 2) {
            std::vector<opt::PipeletPlan> plans;
            for (int r = 0; r < kReplicas; ++r) {
                opt::PipeletPlan plan;
                plan.pipelet_id = r;
                plan.layout.order = {0, 1, 2, 3};
                plan.layout.merges = {opt::MergeSpec{
                    opt::Segment{0,
                                 static_cast<std::size_t>(option.merged_tables - 1)},
                    /*as_cache=*/true}};
                plans.push_back(std::move(plan));
            }
            prog = opt::apply_plans(base, pipelets, plans);
        }

        sim::Emulator emu(nic, prog, {});
        runtime::ApiMapper api(base);
        // Each source table: 12 entries covering the whole 12-value space,
        // so traffic always hits and the merged cache covers it.
        for (int r = 0; r < kReplicas; ++r) {
            for (int t = 1; t <= 4; ++t) {
                std::string name =
                    "r" + std::to_string(r) + "_t" + std::to_string(t);
                for (std::uint64_t v = 0; v < 12; ++v) {
                    ir::TableEntry e;
                    e.key = {ir::FieldMatch::exact(v)};
                    e.action_index = static_cast<int>(v % 2);
                    api.insert(emu, name, e);
                }
            }
        }

        util::Rng rng(41);
        trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
            {{"f0", 0, 11}, {"f1", 0, 11}, {"f2", 0, 11}, {"f3", 0, 11}},
            20000, rng);
        trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 5);

        bench::WindowResult w = bench::run_window(emu, wl, 30000, 1.0);

        std::size_t merged_entries = 0;
        for (const ir::Node& n : emu.program().nodes()) {
            if (n.is_table() && (n.table.role == ir::TableRole::MergedCache ||
                                 n.table.role == ir::TableRole::Merged)) {
                merged_entries += emu.entry_count(n.table.name);
            }
        }
        if (option.merged_tables == 2) {
            base_entries = static_cast<double>(merged_entries);
        }
        std::string blowup =
            option.merged_tables >= 3 && base_entries > 0
                ? util::format("%.0fx vs [1,2]",
                               static_cast<double>(merged_entries) / base_entries)
                : "-";
        table.add_row({option.label, util::format("%.1f", w.throughput_gbps),
                       std::to_string(merged_entries), blowup});
        best = std::max(best, w.throughput_gbps);
    }
    std::printf("%s", table.to_string().c_str());
    return best;
}

}  // namespace

int main() {
    bench::section("Figure 9d: table merging options (4-exact-table pipelet)");
    double bf2 = run_target(sim::bluefield2_model());
    double agilio = run_target(sim::agilio_cx_model());
    std::printf(
        "\npaper shape: 1.3x-2.1x (BlueField2) / 1.2x-1.8x (Agilio)\n"
        "improvement as more tables merge, at a Cartesian entry blowup.\n");

    bench::Reporter rep("fig09d_merging", sim::bluefield2_model());
    rep.metric("throughput_gbps", bf2);
    rep.metric("agilio_gbps", agilio);
    rep.write();
    return 0;
}
