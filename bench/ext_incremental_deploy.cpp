// ext_incremental_deploy — the §6 "adaptability" extension: "compute new
// optimizations as well as compile and deploy updates incrementally as
// proposed by recent works [48, 63, 64]". On a reflash target (Agilio) a
// full deployment costs the whole reload window and cools every cache;
// incremental deployment pays downtime proportional to the changed-table
// fraction and keeps unchanged flow caches warm. We deploy the same small
// layout change both ways and compare downtime and post-deploy hit rates.
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

/// Program: a cached ternary block plus a tail of ACLs that will be
/// reordered (the "small change").
ir::Program cached_program(bool acl_swapped) {
    ir::ProgramBuilder b("inc");
    for (int i = 0; i < 3; ++i) {
        std::string name = "tern" + std::to_string(i);
        b.append(ir::TableSpec(name)
                     .key("tf" + std::to_string(i), ir::MatchKind::Ternary)
                     .noop_action(name + "_a", 1)
                     .build());
    }
    for (int i : acl_swapped ? std::vector<int>{1, 0} : std::vector<int>{0, 1}) {
        std::string name = "acl" + std::to_string(i);
        b.append(ir::TableSpec(name)
                     .key("af" + std::to_string(i))
                     .noop_action(name + "_allow", 1)
                     .drop_action(name + "_deny")
                     .default_to(name + "_allow")
                     .build());
    }
    ir::Program p = b.build();

    // Cache the ternary block (identical in both variants).
    auto pipelets = analysis::form_pipelets(p);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1, 2, 3, 4};
    plan.layout.caches = {opt::Segment{0, 2}};
    return opt::apply_plans(p, pipelets, {plan});
}

}  // namespace

int main() {
    bench::section("Extension: incremental deployment (warm caches, partial "
                   "downtime)");

    sim::NicModel nic = sim::agilio_cx_model();  // reflash target, 12 s reload

    util::Rng rng(8);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"tf0", 0, 7}, {"tf1", 0, 7}, {"tf2", 0, 7}, {"af0", 0, 999},
         {"af1", 0, 999}},
        2000, rng);

    auto warm_up = [&](sim::Emulator& emu) {
        for (int i = 0; i < 3; ++i) {
            std::string name = "tern" + std::to_string(i);
            for (int m = 0; m < 5; ++m) {
                ir::TableEntry e;
                e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + m))};
                e.action_index = 0;
                e.priority = m;
                emu.insert_entry(name, e);
            }
        }
        trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 5);
        return bench::run_window(emu, wl, 10000, 2.0);
    };
    auto measure = [&](sim::Emulator& emu) {
        trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 5);
        bench::WindowResult w = bench::run_window(emu, wl, 10000, 2.0);
        profile::RawCounters raw = emu.read_counters();
        std::uint64_t hits = 0, misses = 0;
        for (const ir::Node& n : emu.program().nodes()) {
            if (n.is_table() && n.table.role == ir::TableRole::Cache) {
                hits += raw.cache_hits[static_cast<std::size_t>(n.id)];
                misses += raw.cache_misses[static_cast<std::size_t>(n.id)];
            }
        }
        double hr = hits + misses > 0
                        ? static_cast<double>(hits) / (hits + misses)
                        : 0.0;
        return std::pair<double, double>{w.mean_cycles, hr};
    };

    util::TextTable table({"deployment", "downtime (s)", "caches warm",
                           "first-window hit rate", "cycles/pkt"});
    double full_downtime = 0.0, inc_downtime = 0.0, inc_hit_rate = 0.0;

    // Full deployment.
    {
        sim::Emulator emu(nic, cached_program(false), {});
        warm_up(emu);
        double downtime = emu.reconfigure(cached_program(true));
        // Re-install entries (the runtime's ApiMapper would do this).
        emu.begin_window();
        auto [cycles, hr] = [&] {
            for (int i = 0; i < 3; ++i) {
                std::string name = "tern" + std::to_string(i);
                for (int m = 0; m < 5; ++m) {
                    ir::TableEntry e;
                    e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + m))};
                    e.action_index = 0;
                    e.priority = m;
                    emu.insert_entry(name, e);
                }
            }
            return measure(emu);
        }();
        table.add_row({"full reflash", util::format("%.1f", downtime), "0",
                       util::format("%.2f", hr), util::format("%.1f", cycles)});
        full_downtime = downtime;
    }

    // Incremental deployment.
    {
        sim::Emulator emu(nic, cached_program(false), {});
        warm_up(emu);
        sim::Emulator::ReconfigureStats stats =
            emu.reconfigure_incremental(cached_program(true));
        emu.begin_window();
        for (int i = 0; i < 3; ++i) {
            std::string name = "tern" + std::to_string(i);
            for (int m = 0; m < 5; ++m) {
                ir::TableEntry e;
                e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + m))};
                e.action_index = 0;
                e.priority = m;
                emu.insert_entry(name, e);
            }
        }
        auto [cycles, hr] = measure(emu);
        table.add_row({"incremental",
                       util::format("%.1f", stats.downtime_s),
                       std::to_string(stats.caches_kept_warm),
                       util::format("%.2f", hr), util::format("%.1f", cycles)});
        inc_downtime = stats.downtime_s;
        inc_hit_rate = hr;
        std::printf("\nincremental diff: %zu of %zu tables changed\n",
                    stats.tables_changed, stats.tables_total);
    }

    std::printf("%s", table.to_string().c_str());
    std::printf("\nexpected: incremental deployment pays a fraction of the\n"
                "12 s reflash and starts with a warm cache (high first-window\n"
                "hit rate) instead of re-learning every flow.\n");

    bench::Reporter rep("ext_incremental_deploy", nic);
    rep.metric("full_downtime_s", full_downtime);
    rep.metric("incremental_downtime_s", inc_downtime);
    rep.metric("incremental_first_window_hit_rate", inc_hit_rate);
    rep.write();
    return 0;
}
