// Figure 15 — pipelet-group (cross-pipelet) optimization (§5.4.4): on
// programs dominated by short (one-table) pipelets, jointly optimizing
// neighboring pipelets around a common branch recovers opportunities that
// per-pipelet optimization cannot see. We report the average latency
// reduction with and without grouping at k in {40, 50, 60}% (15a) and the
// per-program distribution at k=50% (15b).
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

int main() {
    bench::section("Figure 15: pipelet-group optimization on short-pipelet "
                   "programs");

    const int programs = 60;
    cost::CostModel model(sim::bluefield2_model().costs, {});

    std::map<int, std::pair<std::vector<double>, std::vector<double>>> results;
    for (int kpct : {40, 50, 60}) {
        for (int i = 0; i < programs; ++i) {
            synth::SynthConfig scfg;
            scfg.pipelets = 10;
            scfg.min_pipelet_len = 1;  // "dominated by short pipelets"
            scfg.max_pipelet_len = 1;
            scfg.diamond_fraction = 0.8;  // many groupable diamonds
            scfg.ternary_fraction = 0.4;
            scfg.lpm_fraction = 0.2;
            scfg.dependency_fraction = 0.0;
            synth::ProgramSynthesizer gen(
                scfg, static_cast<std::uint64_t>(i) * 389 + 17);
            ir::Program prog = gen.generate("grp");
            synth::ProfileSynthesizer profgen(
                synth::high_locality_config(),
                static_cast<std::uint64_t>(i) * 23 + 9);
            profile::RuntimeProfile prof = profgen.generate(prog);

            search::OptimizerConfig cfg;
            cfg.top_k_fraction = kpct / 100.0;
            cfg.enable_groups = false;
            search::Optimizer without(model, cfg);
            search::OptimizationOutcome base = without.optimize(prog, prof);
            if (base.baseline_latency <= 0.0) continue;

            cfg.enable_groups = true;
            search::Optimizer with(model, cfg);
            search::OptimizationOutcome grouped = with.optimize(prog, prof);

            double r_without = 100.0 * base.predicted_gain / base.baseline_latency;
            double r_with = 100.0 *
                            (grouped.predicted_gain + grouped.group_extra_gain) /
                            grouped.baseline_latency;
            results[kpct].first.push_back(r_without);
            results[kpct].second.push_back(r_with);
        }
    }

    std::printf("\n(a) average latency reduction\n");
    util::TextTable table({"top-k", "w/o group", "w/ group", "extra"});
    for (int kpct : {40, 50, 60}) {
        double wo = util::mean(results[kpct].first);
        double w = util::mean(results[kpct].second);
        table.add_row({util::format("%d%%", kpct), util::format("%.1f%%", wo),
                       util::format("%.1f%%", w),
                       util::format("%+.1f pp", w - wo)});
    }
    std::printf("%s", table.to_string().c_str());

    std::printf("\n(b) per-program latency reduction at k=50%%\n");
    bench::print_cdf("w/o group", results[50].first);
    bench::print_cdf("w/ group", results[50].second);

    std::printf("\npaper shape: grouping adds several points of latency\n"
                "reduction on top of per-pipelet optimization (paper: +6.7pp\n"
                "on average, up to 37.9%% total at k=60%%).\n");

    bench::Reporter rep("fig15_group_opt", sim::bluefield2_model());
    rep.param("programs", util::Json(std::uint64_t(programs)));
    rep.metric("reduction_without_group_pct", util::mean(results[50].first));
    rep.metric("reduction_with_group_pct", util::mean(results[50].second));
    rep.write();
    return 0;
}
