// Figure 19 / Appendix A.3 — ESearch gains across traffic distributions:
// the CDF of (optimized throughput / original throughput) under the
// 10th/50th/90th-entropy profiles. The paper reports average improvements of
// 1.32x / 1.37x / 1.43x — i.e. ESearch performs similarly regardless of how
// aggregated the traffic is.
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

int main() {
    bench::section("Figure 19: ESearch throughput gain at three entropy "
                   "levels");

    const int programs = 40;
    const int profiles_per_prog = 200;  // paper: 2000
    cost::CostModel model(sim::bluefield2_model().costs, {});

    std::map<int, std::vector<double>> gains;  // entropy pct -> ratios
    for (int i = 0; i < programs; ++i) {
        synth::SynthConfig scfg;
        scfg.pipelets = 12;
        scfg.min_pipelet_len = 2;
        scfg.max_pipelet_len = 2;
        scfg.diamond_fraction = 0.4;
        scfg.ternary_fraction = 0.3;
        synth::ProgramSynthesizer gen(scfg, static_cast<std::uint64_t>(i) * 97 + 13);
        ir::Program prog = gen.generate("esearch");
        auto pipelets = analysis::form_pipelets(prog);

        std::vector<std::pair<double, profile::RuntimeProfile>> profs;
        for (int p = 0; p < profiles_per_prog; ++p) {
            synth::ProfileSynthesizer profgen(
                synth::heavy_drop_config(),
                static_cast<std::uint64_t>(i * 4096 + p));
            profile::RuntimeProfile prof = profgen.generate(prog);
            profs.emplace_back(
                synth::pipelet_traffic_entropy(prog, pipelets, prof),
                std::move(prof));
        }
        std::sort(profs.begin(), profs.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });

        for (int pct : {10, 50, 90}) {
            std::size_t idx =
                static_cast<std::size_t>(pct / 100.0 * (profs.size() - 1));
            const profile::RuntimeProfile& prof = profs[idx].second;
            search::OptimizerConfig cfg;
            cfg.top_k_fraction = 1.0;  // ESearch
            search::Optimizer optimizer(model, cfg);
            search::OptimizationOutcome out = optimizer.optimize(prog, prof);
            if (out.predicted_latency > 0.0) {
                // Throughput ratio = latency ratio (reciprocal rates).
                gains[pct].push_back(out.baseline_latency / out.predicted_latency);
            }
        }
    }

    for (int pct : {10, 50, 90}) {
        bench::print_cdf(
            util::format("%dth entropy: ESearch throughput / original", pct),
            gains[pct]);
        std::printf("  mean improvement: %.2fx\n\n", util::mean(gains[pct]));
    }
    std::printf("paper shape: similar CDFs across entropy levels; mean\n"
                "improvements around 1.3x-1.4x.\n");

    bench::Reporter rep("fig19_esearch_gain", sim::bluefield2_model());
    rep.param("programs", util::Json(std::uint64_t(programs)));
    rep.metric("mean_gain_low_entropy", util::mean(gains[10]));
    rep.metric("mean_gain_mid_entropy", util::mean(gains[50]));
    rep.metric("mean_gain_high_entropy", util::mean(gains[90]));
    rep.write();
    return 0;
}
