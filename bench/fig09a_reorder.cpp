// Figure 9a/9b — the table-reordering microbenchmark: "the performance
// improvement when the ACL table is reordered to earlier positions …
// promoting the table to earlier positions leads to higher and higher
// performance until it achieves the line rate. Moreover, higher percentages
// of dropped traffic lead to higher performance gain." Run on both the
// BlueField2 model (9a) and the Agilio CX model (9b).
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

/// A chain of 21 processing tables with one ACL placed at `acl_position`
/// (0 = front). The paper sweeps the ACL from position 21 down to 0.
ir::Program program_with_acl_at(int acl_position, int chain_len = 21) {
    ir::ProgramBuilder b("reorder_bench");
    int placed = 0;
    for (int slot = 0; slot <= chain_len; ++slot) {
        if (slot == acl_position) {
            b.append(ir::TableSpec("acl")
                         .key("acl_key")
                         .noop_action("acl_allow", 1)
                         .drop_action("acl_deny")
                         .default_to("acl_allow")
                         .build());
        } else {
            std::string name = "t" + std::to_string(placed++);
            b.append(ir::TableSpec(name)
                         .key("f" + std::to_string(placed))
                         .noop_action(name + "_a0", 1)
                         .noop_action(name + "_a1", 1)
                         .default_to(name + "_a0")
                         .build());
        }
    }
    return b.build();
}

/// Returns the front-position / 75%-drop throughput (the figure's best
/// point) for the bench report.
double run_target(const sim::NicModel& nic) {
    std::printf("\n-- %s (line rate %.0f Gbps) --\n", nic.name.c_str(),
                nic.line_rate_gbps);
    util::TextTable table({"ACL position", "drop 25% (Gbps)", "drop 50% (Gbps)",
                           "drop 75% (Gbps)"});
    double best = 0.0;
    for (int pos : {21, 18, 15, 12, 9, 6, 3, 0}) {
        std::vector<std::string> row{std::to_string(pos)};
        for (double drop : {0.25, 0.50, 0.75}) {
            sim::Emulator emu(nic, program_with_acl_at(pos), {});
            util::Rng rng(static_cast<std::uint64_t>(pos * 100) +
                          static_cast<std::uint64_t>(drop * 10));
            trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
                {{"acl_key", 0, 9999}}, 2000, rng);
            trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 7);
            apps::install_acl_denies(emu, "acl", flows, wl.pick_flows(drop),
                                     "acl_key");
            bench::WindowResult w = bench::run_window(emu, wl, 15000, 1.0);
            if (pos == 0 && drop == 0.75) best = w.throughput_gbps;
            row.push_back(util::format("%.1f", w.throughput_gbps));
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.to_string().c_str());
    return best;
}

}  // namespace

int main() {
    bench::section(
        "Figure 9a/9b: table reordering - ACL promoted to earlier positions");
    double bf2 = run_target(sim::bluefield2_model());
    double agilio = run_target(sim::agilio_cx_model());
    std::printf(
        "\npaper shape: throughput rises monotonically as the ACL moves to\n"
        "earlier positions; higher drop rates gain more; BlueField2 reaches\n"
        "line rate, Agilio saturates its 40 Gbps port.\n");

    bench::Reporter rep("fig09a_reorder", sim::bluefield2_model());
    rep.param("chain_len", 21);
    rep.metric("throughput_gbps", bf2);
    rep.metric("agilio_gbps", agilio);
    rep.write();
    return 0;
}
