// bench/micro_batch.cpp — the batched data plane's hot-path economics
// (ISSUE 5): a worker sweep with and without CPU pinning, plus the two
// per-packet costs the topology-aware refactor targets, reported as
// first-class metrics:
//   steer_plan_ns_per_packet — building the counting-sort steering plan
//   cache_probe_ns           — one flat-LRU probe on a warm flow cache
//   allocs_per_batch         — heap allocations per steady-state batch
//                              (counted by this binary's operator new hook;
//                              the acceptance target is exactly 0)
// Flags: --pin / --no-pin restrict the sweep to one pinning mode (default
// sweeps both); the PIPELEON_PIN_WORKERS=0 env escape hatch still wins.
// Emits BENCH_micro_batch.json (pipeleon.bench_report/1).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"
#include "sim/table_state.h"
#include "util/topology.h"

using namespace pipeleon;

// ------------------------------------------------------- allocation hook
// Counts every heap allocation while armed; workers included (atomic).
namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void note_alloc() {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    }
}

void* hook_alloc(std::size_t size) {
    note_alloc();
    void* p = std::malloc(size ? size : 1);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* hook_aligned(std::size_t size, std::size_t align) {
    note_alloc();
    void* p = nullptr;
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size ? size : align) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return hook_alloc(size); }
void* operator new[](std::size_t size) { return hook_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    return hook_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
    return hook_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kChainLen = 8;
constexpr int kFlows = 512;
constexpr std::size_t kBatch = 256;

std::vector<trafficgen::FieldRange> field_tuple() {
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        // snprintf, not string operator+: GCC 12 -O3 emits a bogus
        // -Wrestrict through char_traits when the concat inlines against
        // this binary's custom operator new, and CI builds with -Werror.
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    return tuple;
}

struct SweepPoint {
    int workers = 1;
    bool pin = false;
    double mpps = 0.0;
    double gbps = 0.0;
    double allocs_per_batch = 0.0;
    int pinned = 0;
    double latency_p50 = 0.0;
    double latency_p99 = 0.0;
};

/// Measures steady-state batch throughput for one (workers, pin) config.
/// The same pristine batch replays every iteration — copy-assignment
/// restores packets without allocating — so the loop isolates the
/// steer/dispatch/process path from workload generation.
SweepPoint run_config(const ir::Program& prog,
                      const trafficgen::FlowSet& flows, int workers,
                      bool pin, int batches) {
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_pin_workers(pin);
    emu.set_worker_count(workers);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 31);

    const sim::PacketBatch pristine = wl.next_batch(emu.fields(), kBatch);
    sim::PacketBatch work = pristine;
    sim::BatchResult out;
    for (int i = 0; i < 8; ++i) {  // warm: buffers to high-water, caches hot
        work = pristine;
        emu.process_batch(work, out);
    }

    g_alloc_count.store(0);
    g_counting.store(true);
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < batches; ++i) {
        work = pristine;
        emu.process_batch(work, out);
    }
    Clock::time_point t1 = Clock::now();
    g_counting.store(false);

    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const auto packets = static_cast<double>(batches) *
                         static_cast<double>(kBatch);
    SweepPoint p;
    p.workers = workers;
    p.pin = pin;
    p.mpps = packets / secs / 1e6;
    double cycles = 0.0;
    for (const sim::ProcessResult& r : out.results) cycles += r.cycles;
    p.gbps = emu.throughput_gbps(cycles /
                                 static_cast<double>(out.results.size()));
    p.allocs_per_batch = static_cast<double>(g_alloc_count.load()) /
                         static_cast<double>(batches);
    p.pinned = emu.pinned_workers();
    const telemetry::LatencyHistogram hist = emu.latency_histogram();
    if (hist.count() > 0) {
        p.latency_p50 = hist.p50();
        p.latency_p99 = hist.p99();
    }
    return p;
}

/// ns/packet to build the steering decision — steer_worker() is exactly the
/// per-packet work of build_steer_plan's first pass (hash + map to lane).
double measure_steer_ns(const ir::Program& prog,
                        const trafficgen::FlowSet& flows, int rounds) {
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(4);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 7);
    sim::PacketBatch batch = wl.next_batch(emu.fields(), kBatch);

    std::uint64_t sink = 0;
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            sink += static_cast<std::uint64_t>(emu.steer_worker(batch[i]));
        }
    }
    Clock::time_point t1 = Clock::now();
    if (sink == 0xdeadbeef) std::printf("unreachable\n");  // keep `sink` live
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(batch.size()));
}

/// ns/probe against a warm flat-LRU CacheStore at ~75% of capacity.
double measure_probe_ns(int rounds) {
    ir::CacheConfig cfg;
    cfg.capacity = 4096;
    cfg.max_insert_per_sec = 1e12;
    sim::CacheStore store(cfg);
    std::vector<sim::KeyVec> keys;
    for (std::uint64_t k = 0; k < 3072; ++k) {
        sim::KeyVec key{k, k * 0x9e3779b97f4a7c15ULL};
        sim::CacheStore::CacheEntry e;
        sim::ReplayStep step;
        step.origin_node = static_cast<ir::NodeId>(k % 7);
        step.action_index = 0;
        e.steps.push_back(step);
        store.insert(key, e, 0.0);
        keys.push_back(std::move(key));
    }
    std::uint64_t hits = 0;
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (const sim::KeyVec& k : keys) {
            hits += store.lookup(k) != nullptr;
        }
    }
    Clock::time_point t1 = Clock::now();
    if (hits == 0) std::printf("unreachable\n");
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(keys.size()));
}

}  // namespace

int main(int argc, char** argv) {
    bool sweep_pin = true, sweep_nopin = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--pin") == 0) sweep_nopin = false;
        if (std::strcmp(argv[i], "--no-pin") == 0) sweep_pin = false;
    }
    const bool quick = bench::BenchEnv::quick();
    const int kBatches = quick ? 40 : 400;
    const int kRounds = quick ? 50 : 500;

    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    util::Rng rng(29);
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(field_tuple(), kFlows, rng);

    const util::Topology topo = util::Topology::detect();
    bench::section("host topology");
    std::printf("%s\n", topo.summary().c_str());

    bench::Reporter rep("micro_batch", sim::bluefield2_model());
    rep.param("batch_size", static_cast<double>(kBatch));
    rep.param("flows", static_cast<double>(kFlows));
    rep.param("chain_len", static_cast<double>(kChainLen));
    rep.param("topology", topo.summary());
    rep.param("host_cpus", static_cast<double>(topo.cpu_count()));

    bench::section("worker sweep (throughput, allocs/batch)");
    std::printf("%8s %6s %10s %10s %14s %8s\n", "workers", "pin", "Mpps",
                "Gbps", "allocs/batch", "pinned");
    std::vector<SweepPoint> points;
    for (int workers : {1, 2, 4, 8}) {
        for (int pin = 1; pin >= 0; --pin) {
            if (pin == 1 && !sweep_pin) continue;
            if (pin == 0 && !sweep_nopin) continue;
            SweepPoint p =
                run_config(prog, flows, workers, pin == 1, kBatches);
            std::printf("%8d %6s %10.3f %10.3f %14.2f %8d\n", p.workers,
                        p.pin ? "yes" : "no", p.mpps, p.gbps,
                        p.allocs_per_batch, p.pinned);
            points.push_back(p);
        }
    }

    // Headline metrics: the best multi-worker config (what the data plane
    // would run with), plus the pin-vs-no-pin delta at the widest sweep.
    SweepPoint best;
    for (const SweepPoint& p : points) {
        if (p.mpps > best.mpps) best = p;
    }
    rep.metric("throughput_mpps", best.mpps);
    rep.metric("throughput_gbps", best.gbps);
    rep.metric("best_workers", static_cast<double>(best.workers));
    rep.metric("allocs_per_batch", best.allocs_per_batch);
    if (best.latency_p99 > 0.0) {
        rep.metric("latency_p50", best.latency_p50);
        rep.metric("latency_p99", best.latency_p99);
    }
    for (const SweepPoint& p : points) {
        const std::string suffix = "_w" + std::to_string(p.workers) +
                                   (p.pin ? "_pin" : "_nopin");
        rep.metric("mpps" + suffix, p.mpps);
        rep.metric("allocs_per_batch" + suffix, p.allocs_per_batch);
        rep.metric("pinned" + suffix, static_cast<double>(p.pinned));
    }

    bench::section("per-packet costs");
    const double steer_ns = measure_steer_ns(prog, flows, kRounds);
    const double probe_ns = measure_probe_ns(kRounds);
    std::printf("steering-plan build : %8.2f ns/packet\n", steer_ns);
    std::printf("flat-LRU cache probe: %8.2f ns/probe\n", probe_ns);
    rep.metric("steer_plan_ns_per_packet", steer_ns);
    rep.metric("cache_probe_ns", probe_ns);

    rep.write();
    return 0;
}
