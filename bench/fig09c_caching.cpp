// Figure 9c — table caching options on a four-ternary-table pipelet:
// no-cache, [1][2][3][4], [1,2][3][4], [1,2,3][4], [1,2,3,4]. "Caching more
// tables with fewer caches leads to greater performance"; per-table caches
// stay tiny (the paper: 90% hit rate with 54 entries total) while the
// whole-pipelet cache pays the cross-product in entries (36k) — we report
// both throughput and cache entries.
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

struct CacheOption {
    const char* label;
    std::vector<opt::Segment> segments;
};

/// The paper replicates the 4-table pipelet with a scale factor; caching
/// options are applied inside every replica. Replicas share match fields
/// (it is the same pipelet, repeated).
ir::Program replicated_pipelets(int replicas) {
    ir::ProgramBuilder b("fig9c");
    for (int r = 0; r < replicas; ++r) {
        for (int t = 1; t <= 4; ++t) {
            std::string name = "r" + std::to_string(r) + "_t" + std::to_string(t);
            b.append(ir::TableSpec(name)
                         .key("f" + std::to_string(t - 1), ir::MatchKind::Ternary)
                         .noop_action(name + "_a0", 2)
                         .noop_action(name + "_a1", 2)
                         .default_to(name + "_a0")
                         .build());
        }
    }
    return b.build();
}

constexpr int kReplicas = 5;

/// Returns the best measured throughput across cache options (report metric).
double run_target(const sim::NicModel& nic) {
    std::printf("\n-- %s --\n", nic.name.c_str());

    ir::Program base = replicated_pipelets(kReplicas);
    analysis::PipeletOptions popts;
    popts.max_length = 4;  // one pipelet per replica
    auto pipelets = analysis::form_pipelets(base, popts);

    const std::vector<CacheOption> options = {
        {"no cache", {}},
        {"[1][2][3][4]", {{0, 0}, {1, 1}, {2, 2}, {3, 3}}},
        {"[1,2][3][4]", {{0, 1}, {2, 2}, {3, 3}}},
        {"[1,2,3][4]", {{0, 2}, {3, 3}}},
        {"[1,2,3,4]", {{0, 3}}},
    };

    util::TextTable table(
        {"option", "throughput (Gbps)", "hit rate", "cache entries"});
    double best = 0.0;
    for (const CacheOption& option : options) {
        std::vector<opt::PipeletPlan> plans;
        for (int r = 0; r < kReplicas; ++r) {
            opt::PipeletPlan plan;
            plan.pipelet_id = r;
            plan.layout.order = {0, 1, 2, 3};
            plan.layout.caches = option.segments;
            plan.layout.cache_config.capacity = 65536;
            plan.layout.cache_config.max_insert_per_sec = 1e9;
            plans.push_back(std::move(plan));
        }
        ir::Program prog = option.segments.empty()
                               ? base
                               : opt::apply_plans(base, pipelets, plans);

        sim::Emulator emu(nic, prog, {});
        // Each table holds ternary rules with five masks so lookups cost
        // multiple probes (the §3.1 measurement shape).
        for (int r = 0; r < kReplicas; ++r) {
            for (int t = 1; t <= 4; ++t) {
                std::string name =
                    "r" + std::to_string(r) + "_t" + std::to_string(t);
                for (int m = 0; m < 5; ++m) {
                    ir::TableEntry e;
                    e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + m))};
                    e.action_index = m % 2;
                    e.priority = m;
                    emu.insert_entry(name, e);
                }
            }
        }
        // "we used a different match key for T1 to T4 and sent 40000
        // different flows": per-field value spaces stay small (16) so
        // single-table caches are tiny while the joint key cross-products.
        util::Rng rng(99);
        trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
            {{"f0", 0, 11}, {"f1", 0, 11}, {"f2", 0, 11}, {"f3", 0, 11}},
            40000, rng);
        trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.05, 3);

        bench::run_window(emu, wl, 80000, 4.0);  // warm caches
        bench::WindowResult w = bench::run_window(emu, wl, 30000, 1.0);

        std::size_t entries = 0;  // summed across all replica caches
        std::uint64_t hits = 0, misses = 0;
        profile::RawCounters raw = emu.read_counters();
        for (const ir::Node& n : emu.program().nodes()) {
            if (n.is_table() && n.table.role == ir::TableRole::Cache) {
                entries += emu.cache_size(n.table.name);
                hits += raw.cache_hits[static_cast<std::size_t>(n.id)];
                misses += raw.cache_misses[static_cast<std::size_t>(n.id)];
            }
        }
        double hit_rate = hits + misses > 0
                              ? static_cast<double>(hits) /
                                    static_cast<double>(hits + misses)
                              : 0.0;
        table.add_row({option.label, util::format("%.1f", w.throughput_gbps),
                       option.segments.empty() ? "-"
                                               : util::format("%.2f", hit_rate),
                       std::to_string(entries)});
        best = std::max(best, w.throughput_gbps);
    }
    std::printf("%s", table.to_string().c_str());
    return best;
}

}  // namespace

int main() {
    bench::section("Figure 9c: table caching options (4-ternary-table pipelet)");
    double bf2 = run_target(sim::bluefield2_model());
    double agilio = run_target(sim::agilio_cx_model());
    std::printf(
        "\npaper shape: throughput grows from no-cache to [1,2,3,4] (fewer,\n"
        "wider caches = fewer probes); per-table caches need only a handful\n"
        "of entries while the joint cache pays the key cross-product.\n");

    bench::Reporter rep("fig09c_caching", sim::bluefield2_model());
    rep.metric("throughput_gbps", bf2);
    rep.metric("agilio_gbps", agilio);
    rep.write();
    return 0;
}
