// Figure 5 — cost-model validation: "Performance measured on BlueField2 vs.
// performance predicted by the cost model", across (a) exact-table count,
// (b) action primitives, (c) LPM table count, (d) ternary table count.
//
// We follow the paper's methodology literally: benchmark sweeps of synthetic
// programs on the target (our emulated BlueField2), fit L_mat and L_act by
// linear regression on the exact-match sweeps, estimate m for LPM/ternary by
// normalizing against the exact baseline, and then compare the *fitted*
// model's predictions against fresh measurements. All numbers are normalized
// to the measurement (measurement column = 1.00), like the figure.
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "cost/calibrate.h"
#include "cost/model.h"
#include "ir/builder.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

/// Program of `n` tables of the given kind, each with `actions` actions of
/// `prims` primitives; LPM/ternary tables get the paper's measurement entry
/// shape (3 distinct prefixes / 5 distinct masks).
ir::Program sweep_program(int n, ir::MatchKind kind, int actions, int prims) {
    ir::ProgramBuilder b("sweep");
    for (int i = 0; i < n; ++i) {
        ir::TableSpec spec("t" + std::to_string(i));
        spec.key("f" + std::to_string(i), kind);
        for (int a = 0; a < actions; ++a) {
            spec.noop_action("t" + std::to_string(i) + "_a" + std::to_string(a),
                             prims);
        }
        spec.default_to("t" + std::to_string(i) + "_a0");
        b.append(spec.build());
    }
    return b.build();
}

void install_sweep_entries(sim::Emulator& emu, int n, ir::MatchKind kind) {
    for (int i = 0; i < n; ++i) {
        std::string table = "t" + std::to_string(i);
        switch (kind) {
            case ir::MatchKind::Exact:
                for (std::uint64_t v = 0; v < 16; ++v) {
                    ir::TableEntry e;
                    e.key = {ir::FieldMatch::exact(v)};
                    e.action_index = static_cast<int>(v % 2);
                    emu.insert_entry(table, e);
                }
                break;
            case ir::MatchKind::Lpm:
                // "We use three different prefixes for LPM tables."
                for (int p : {8, 16, 24}) {
                    ir::TableEntry e;
                    e.key = {ir::FieldMatch::lpm(0, p)};
                    e.action_index = 0;
                    emu.insert_entry(table, e);
                }
                break;
            default:
                // "and five different masks for ternary tables."
                for (int m = 0; m < 5; ++m) {
                    ir::TableEntry e;
                    e.key = {ir::FieldMatch::ternary(0, 0x1FULL << m)};
                    e.action_index = 0;
                    e.priority = m;
                    emu.insert_entry(table, e);
                }
                break;
        }
    }
}

/// Measures average per-packet cycles for a sweep point.
double measure(int n, ir::MatchKind kind, int actions, int prims,
               std::uint64_t seed) {
    sim::Emulator emu(sim::bluefield2_model(), sweep_program(n, kind, actions, prims),
                      {});
    install_sweep_entries(emu, n, kind);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < n; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 31});  // ~50% table hits
    }
    util::Rng rng(seed);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 512, rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, seed + 1);
    return bench::run_window(emu, wl, 4000, 1.0).mean_cycles;
}

}  // namespace

int main() {
    bench::section("Figure 5: cost model vs measurement (BlueField2 model)");

    // ---- Calibration phase (the paper's "benchmarking suite").
    std::vector<cost::CalibrationPoint> exact_sweep, prim_sweep, lpm_sweep,
        tern_sweep;
    for (int n = 10; n <= 40; n += 5) {
        exact_sweep.push_back(
            {static_cast<double>(n),
             measure(n, ir::MatchKind::Exact, 2, 1, 100 + n)});
    }
    for (int prims = 1; prims <= 8; ++prims) {
        prim_sweep.push_back(
            {20.0 * prims,
             measure(20, ir::MatchKind::Exact, 2, prims, 200 + prims)});
    }
    for (int n = 10; n <= 16; n += 2) {
        lpm_sweep.push_back({static_cast<double>(n),
                             measure(n, ir::MatchKind::Lpm, 2, 1, 300 + n)});
        tern_sweep.push_back({static_cast<double>(n),
                              measure(n, ir::MatchKind::Ternary, 2, 1, 400 + n)});
    }
    cost::CalibrationResult calib =
        cost::calibrate(exact_sweep, prim_sweep, lpm_sweep, tern_sweep);
    std::printf("\nfitted: per-exact-table slope=%.2f (r2=%.4f)  "
                "L_act=%.2f (r2=%.4f)  m_lpm=%.2f  m_ternary=%.2f\n",
                calib.l_mat, calib.l_mat_r2, calib.l_act, calib.l_act_r2,
                calib.lpm_m, calib.ternary_m);

    // The fitted exact-table slope includes the fixed per-table action cost
    // (2 actions x 1 primitive); separate L_mat out like the paper's Y1/Y2.
    cost::CostParams fitted = sim::bluefield2_model().costs;
    fitted.l_act = calib.l_act;
    fitted.l_mat = calib.l_mat - 1.0 * calib.l_act;  // n_a = 1 per action mix
    fitted.default_lpm_m = std::max(1, static_cast<int>(std::lround(calib.lpm_m)));
    fitted.default_ternary_m =
        std::max(1, static_cast<int>(std::lround(calib.ternary_m)));
    profile::InstrumentationConfig instr;  // deployed programs are profiled
    cost::CostModel model(fitted, instr);

    // ---- Validation phase: 16 fresh scenarios, 4 per panel.
    struct Panel {
        const char* title;
        ir::MatchKind kind;
        std::vector<int> xs;
        int actions, prims;
        bool sweep_prims;
    };
    std::vector<Panel> panels = {
        {"(a) # exact tables", ir::MatchKind::Exact, {10, 20, 30, 40}, 2, 1, false},
        {"(b) # action primitives", ir::MatchKind::Exact, {2, 4, 6, 8}, 2, 0, true},
        {"(c) # LPM tables", ir::MatchKind::Lpm, {10, 12, 14, 16}, 2, 1, false},
        {"(d) # ternary tables", ir::MatchKind::Ternary, {10, 12, 14, 16}, 2, 1,
         false},
    };

    std::vector<double> deviations;
    for (const Panel& panel : panels) {
        std::printf("\n%s\n", panel.title);
        util::TextTable table({"x", "measured(norm)", "model(norm)", "deviation"});
        for (int x : panel.xs) {
            int n = panel.sweep_prims ? 20 : x;
            int prims = panel.sweep_prims ? x : panel.prims;
            double measured =
                measure(n, panel.kind, panel.actions, prims, 500 + x);

            // Model prediction for the same program shape, using the same
            // profile assumptions (uniform actions, ~50% hit rate).
            ir::Program prog = sweep_program(n, panel.kind, panel.actions, prims);
            profile::RuntimeProfile prof;
            prof.reset_for(prog, 1.0);
            for (ir::NodeId id : prog.reachable()) {
                auto& st = prof.table(id);
                for (auto& h : st.action_hits) h = 500;
                st.misses = 0;
                st.entry_count = 16;
                if (panel.kind == ir::MatchKind::Lpm) st.lpm_prefix_count = 3;
                if (panel.kind == ir::MatchKind::Ternary) st.ternary_mask_count = 5;
            }
            double predicted = model.expected_latency(prog, prof);

            // Normalized throughput (reciprocal latency) like the figure.
            double ratio = measured / predicted;  // model-normalized thpt
            deviations.push_back(std::fabs(ratio - 1.0));
            table.add_row({std::to_string(x), "1.00",
                           util::format("%.3f", ratio),
                           util::format("%+.1f%%", 100.0 * (ratio - 1.0))});
        }
        std::printf("%s", table.to_string().c_str());
    }

    std::printf("\nmean |deviation| across the 16 scenarios: %.2f%%  "
                "(paper: ~5%% on real hardware)\n",
                100.0 * util::mean(deviations));

    bench::Reporter rep("fig05_costmodel", sim::bluefield2_model());
    rep.param("scenarios", static_cast<std::uint64_t>(deviations.size()));
    rep.metric("model_mean_abs_deviation", util::mean(deviations));
    rep.write();
    return 0;
}
