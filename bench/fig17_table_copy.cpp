// Figure 17 / Appendix A.2 — table copying to reduce ASIC<->CPU migrations.
// The program interleaves ASIC-supported tables (hw1..hw4) with CPU-only
// tables (sw1..sw4); a branch sends a fraction of traffic down the software
// path. The naive partition bounces such packets between cores; copying k of
// the hw tables onto the CPU removes bounces. Copying ONE table does not
// reduce migrations at all (it only moves a table to the slower core) —
// exactly the paper's observation.
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

/// Builds the two-path program: hw-only fast path vs the interleaved
/// hw/sw path; the first `copies` hw tables of the slow path run on CPU.
ir::Program copied_program(int copies) {
    ir::ProgramBuilder b("fig17");
    ir::NodeId br = b.add_branch({"to_sw", ir::CmpOp::Eq, 1});

    // Fast path: the four hw tables only.
    ir::NodeId fast_head = ir::kNoNode, fast_tail = ir::kNoNode;
    for (int i = 1; i <= 4; ++i) {
        ir::NodeId id = b.add(ir::TableSpec("fast_hw" + std::to_string(i))
                                  .key("h" + std::to_string(i))
                                  .noop_action("a", 1)
                                  .build());
        if (fast_head == ir::kNoNode) fast_head = id;
        if (fast_tail != ir::kNoNode) b.connect(fast_tail, id);
        fast_tail = id;
    }

    // Slow path: hw1 sw1 hw2 sw2 hw3 sw3 hw4 sw4; hw copies run on CPU.
    ir::NodeId slow_head = ir::kNoNode, slow_tail = ir::kNoNode;
    std::vector<ir::NodeId> slow_nodes;
    for (int i = 1; i <= 4; ++i) {
        ir::NodeId hw = b.add(ir::TableSpec("slow_hw" + std::to_string(i))
                                  .key("h" + std::to_string(i))
                                  .noop_action("a", 1)
                                  .build());
        ir::NodeId sw = b.add(ir::TableSpec("slow_sw" + std::to_string(i))
                                  .key("s" + std::to_string(i))
                                  .noop_action("a", 1)
                                  .cpu_only()
                                  .build());
        for (ir::NodeId id : {hw, sw}) {
            if (slow_head == ir::kNoNode) slow_head = id;
            if (slow_tail != ir::kNoNode) b.connect(slow_tail, id);
            slow_tail = id;
            slow_nodes.push_back(id);
        }
    }
    b.connect_branch(br, slow_head, fast_head);
    b.set_root(br);
    ir::Program p = b.build();

    // Core assignment: sw tables and the first `copies` hw tables -> CPU.
    for (ir::NodeId id : p.reachable()) {
        ir::Node& n = p.node(id);
        if (!n.is_table()) continue;
        if (!n.table.asic_supported) n.core = ir::CoreKind::Cpu;
    }
    for (int i = 1; i <= copies; ++i) {
        ir::NodeId id = p.find_table("slow_hw" + std::to_string(i));
        p.node(id).core = ir::CoreKind::Cpu;
    }
    return p;
}

}  // namespace

int main() {
    bench::section("Figure 17: table copying vs migration overhead "
                   "(emulated NIC)");

    util::Rng rng(3);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"h1", 0, 63}, {"h2", 0, 63}, {"h3", 0, 63}, {"h4", 0, 63},
         {"s1", 0, 63}, {"s2", 0, 63}, {"s3", 0, 63}, {"s4", 0, 63}},
        512, rng);

    auto measure = [&](int copies, double migration_cost, double sw_fraction) {
        sim::NicModel nic = sim::emulated_nic_model();
        nic.costs.l_migration = migration_cost;
        sim::Emulator emu(nic, copied_program(copies), {});
        util::Rng traffic_rng(11);
        trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 7);
        util::RunningStats cycles;
        sim::FieldId to_sw = emu.fields().intern("to_sw");
        bench::RingPump pump(emu, 500);
        for (int done = 0; done < 6000; done += 500) {
            sim::PacketBatch batch = wl.next_batch(emu.fields(), 500);
            for (sim::Packet& p : batch) {
                p.set(to_sw, traffic_rng.chance(sw_fraction) ? 1 : 0);
            }
            const sim::BatchResult& r = pump.pump(batch);
            for (const sim::ProcessResult& pr : r.results) cycles.add(pr.cycles);
        }
        return cycles.mean();
    };

    std::printf("\n(a) emulated packet latency vs copies, 50%% software "
                "traffic, three migration latencies\n");
    double lat_none = 0.0, lat_all = 0.0;
    util::TextTable ta({"# copied", "mig=20", "mig=60", "mig=120"});
    for (int copies = 0; copies <= 4; ++copies) {
        double mid = measure(copies, 60.0, 0.5);
        if (copies == 0) lat_none = mid;
        if (copies == 4) lat_all = mid;
        ta.add_row({std::to_string(copies),
                    util::format("%.1f", measure(copies, 20.0, 0.5)),
                    util::format("%.1f", mid),
                    util::format("%.1f", measure(copies, 120.0, 0.5))});
    }
    std::printf("%s", ta.to_string().c_str());

    std::printf("\n(b) emulated packet latency vs copies, migration=60, "
                "three software-traffic shares\n");
    util::TextTable tb({"# copied", "30% sw", "50% sw", "70% sw"});
    for (int copies = 0; copies <= 4; ++copies) {
        tb.add_row({std::to_string(copies),
                    util::format("%.1f", measure(copies, 60.0, 0.3)),
                    util::format("%.1f", measure(copies, 60.0, 0.5)),
                    util::format("%.1f", measure(copies, 60.0, 0.7))});
    }
    std::printf("%s", tb.to_string().c_str());

    std::printf("\npaper shape: latency drops as more tables are copied; the\n"
                "benefit grows with migration latency and software share;\n"
                "copying only ONE table does not reduce migrations (the\n"
                "branch->hw1 crossing replaces the hw1->sw1 crossing) and\n"
                "can even cost a little (CPU slowdown).\n");

    bench::Reporter rep("fig17_table_copy", sim::emulated_nic_model());
    rep.metric("latency_no_copies_cycles", lat_none);
    rep.metric("latency_all_copies_cycles", lat_all);
    rep.write();
    return 0;
}
