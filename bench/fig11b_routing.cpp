// Figure 11b — DASH-style packet routing on Agilio CX (§5.3.2). Two profile
// phases:
//   phase 1: small static config tables + biased ACL dropping rates
//            -> Pipeleon merges the metadata block and reorders the ACLs
//               (paper: +43.5%);
//   phase 2: even ACL dropping rates + long-lived flows
//            -> Pipeleon caches the ACLs instead (paper: +35.2%).
// Netronome has no live reconfiguration: every deployment reflashes the
// micro-engines and costs visible downtime ("Reloading" in the figure).
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

void install_config_state(sim::Emulator& emu, runtime::ApiMapper& api) {
    for (std::uint64_t d = 0; d < 2; ++d) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::exact(d)};
        e.action_index = 0;
        e.action_data = {d};
        api.insert(emu, "direction_lookup", e);
    }
    for (const char* table : {"appliance", "eni", "vni"}) {
        for (std::uint64_t k = 0; k < 4; ++k) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(k)};
            e.action_index = 0;
            e.action_data = {k + 100};
            api.insert(emu, table, e);
        }
    }
    // Eight distinct prefix lengths: routing costs m = 8 probes (§3.1).
    for (std::uint64_t net = 0; net < 8; ++net) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::lpm(net << 24, 4 + 4 * static_cast<int>(net % 8))};
        e.action_index = 0;
        e.action_data = {net};
        api.insert(emu, "routing", e);
    }
}

}  // namespace

int main() {
    bench::section("Figure 11b: DASH-style routing on Agilio CX");

    ir::Program program = apps::dash_routing_program();
    sim::NicModel nic = sim::agilio_cx_model();

    // Pipeleon deployment + a never-optimized baseline.
    sim::Emulator dyn_emu(nic, program, {});
    sim::Emulator sta_emu(nic, program, {});
    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.max_merge_len = 4;  // fuse the metadata block
    cfg.optimizer.pipelet.max_length = 9;
    // Eq. 5 resource limits: without them the knapsack would happily pick a
    // merge whose Cartesian entries exceed the NIC's memory.
    cfg.optimizer.limits.memory_bytes = 32.0 * 1024 * 1024;
    cfg.optimizer.limits.updates_per_sec = 1e4;
    cfg.detector.threshold = 0.05;
    cost::CostModel model(nic.costs, {});
    runtime::Controller controller(dyn_emu, program, model, cfg);
    runtime::ApiMapper sta_api(program);
    install_config_state(dyn_emu, controller.api());
    install_config_state(sta_emu, sta_api);

    util::Rng rng(12);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"direction", 0, 1}, {"appliance_key", 0, 3}, {"eni_mac", 0, 3},
         {"vni_key", 0, 3}, {"flow_id", 0, 99999}, {"src_ip", 0, 99999},
         {"dst_ip", 0, 99999}, {"dst_port", 0, 1023},
         {"ipv4_dst", 0, 0x02FFFFFF}},
        3000, rng);
    trafficgen::Workload picker(flows, trafficgen::Locality::Uniform, 0.0, 21);

    // Phase 1: biased dropping — acl_stage2 denies 50%, others almost none.
    for (std::size_t f : picker.pick_flows(0.5)) {
        ir::TableEntry e = flows.exact_entry(f, {"dst_ip"}, 1);
        controller.api().insert(dyn_emu, "acl_stage2", e);
        sta_api.insert(sta_emu, "acl_stage2", e);
    }

    trafficgen::Workload dyn_wl(flows, trafficgen::Locality::Uniform, 0.0, 22);
    trafficgen::Workload sta_wl(flows, trafficgen::Locality::Uniform, 0.0, 22);

    std::printf("\n%6s  %10s  %10s  %s\n", "t(s)", "Pipeleon", "Baseline",
                "note");
    double reload_until = -1.0;
    double t = 0.0;
    auto switch_to_phase2 = [&]() {
        // Even dropping rates: spread modest denies across all three ACLs.
        for (std::size_t f : picker.pick_flows(0.5)) {
            ir::FieldMatch key = ir::FieldMatch::exact(flows.value(f, "dst_ip"));
            controller.api().erase(dyn_emu, "acl_stage2", {key});
            sta_api.erase(sta_emu, "acl_stage2", {key});
        }
        int i = 0;
        const char* acls[] = {"acl_stage1", "acl_stage2", "acl_stage3"};
        const char* keys[] = {"src_ip", "dst_ip", "dst_port"};
        for (std::size_t f : picker.pick_flows(0.15)) {
            ir::TableEntry e = flows.exact_entry(f, {keys[i % 3]}, 1);
            controller.api().insert(dyn_emu, acls[i % 3], e);
            sta_api.insert(sta_emu, acls[i % 3], e);
            ++i;
        }
        // Long-lived flows: skew the samplers hard.
        dyn_wl = trafficgen::Workload(flows, trafficgen::Locality::Zipf, 1.3, 33);
        sta_wl = trafficgen::Workload(flows, trafficgen::Locality::Zipf, 1.3, 33);
    };

    double dyn_final = 0.0, sta_final = 0.0;
    for (int tick = 0; tick < 24; ++tick) {
        const char* note = "";
        if (tick == 12) {
            switch_to_phase2();
            note = "<- phase 2: even drops + long-lived flows";
        }
        bench::WindowResult dyn = bench::run_window(dyn_emu, dyn_wl, 12000, 10.0);
        bench::WindowResult sta = bench::run_window(sta_emu, sta_wl, 12000, 10.0);
        double dyn_gbps = dyn.throughput_gbps;
        if (t < reload_until) {
            // Part of this window was lost to the micro-engine reflash.
            double lost = std::min(10.0, reload_until - t);
            dyn_gbps *= 1.0 - lost / 10.0;
            if (note[0] == '\0') note = "(reloading)";
        }
        std::printf("%6.0f  %10.2f  %10.2f  %s\n", t, dyn_gbps,
                    sta.throughput_gbps, note);
        dyn_final = dyn_gbps;
        sta_final = sta.throughput_gbps;

        runtime::TickResult r = controller.tick();
        if (r.deployed) reload_until = t + 10.0 + r.downtime_s;
        t += 10.0;
    }

    std::printf("\nfinal Pipeleon layout:\n");
    for (ir::NodeId id : dyn_emu.program().topo_order()) {
        const ir::Node& n = dyn_emu.program().node(id);
        if (n.is_table()) {
            std::printf("  %-44s %s\n", n.table.name.c_str(),
                        ir::to_string(n.table.role));
        }
    }
    std::printf("\npaper shape: ~+43%% in phase 1 (merge small static tables,\n"
                "reorder ACLs), ~+35%% in phase 2 (cache ACLs for long-lived\n"
                "flows); every deployment costs a visible reload gap.\n");

    bench::Reporter rep("fig11b_routing", nic);
    rep.metric("throughput_gbps", dyn_final);
    rep.metric("baseline_gbps", sta_final);
    rep.from_emulator(dyn_emu);
    rep.write();
    return 0;
}
