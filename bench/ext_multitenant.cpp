// bench/ext_multitenant.cpp — the noisy-neighbor bench (ISSUE 8 acceptance).
// Tenant A serves a steady offered load at 70% of its cycle-share capacity.
// Tenant B, on the same registry, runs the worst control-plane behavior we
// model: an ingress flood past its own slice, a reconfigure storm (full
// redeploys alternating its chain with a deny-all program), and table churn
// (inserts + set_entries every tick). The claim the multi-tenant carve
// makes — and this bench gates — is that B's noise moves A's goodput by
// < 5% versus A running the identical schedule solo, because A's cycle
// share is a hard partition and every other resource (rings, tables,
// caches, epochs, control queue) is private per tenant.
//
// Both runs give A the same explicit cycles_share (0.5), so A's per-tick
// budget slice is identical whether or not B exists; the measured delta is
// therefore pure interference, not a budget artifact. Emits
// BENCH_ext_multitenant.json with the solo/shared goodput + p99 pair and a
// per-tick CSV of A's completions in the shared run.
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"
#include "sim/tenant.h"
#include "trafficgen/workload.h"
#include "util/strings.h"

using namespace pipeleon;

namespace {

constexpr int kChainLen = 4;
constexpr int kFlows = 128;
constexpr std::size_t kRingCapacity = 512;
constexpr double kShareA = 0.5;   // A's hard cycle partition, both runs
constexpr double kLoadFactorA = 0.7;  // fraction of A's slice capacity

/// Same deliberately small NIC as the overload bench: two run-to-completion
/// cores at 10 MHz, so the runs finish in well under a second of wall time.
sim::NicModel tenant_nic() {
    sim::NicModel nic = sim::bluefield2_model();
    nic.name = "multitenant_2core_10mhz";
    nic.cycles_per_second = 1.0e7;
    nic.cores = 2;
    return nic;
}

std::vector<trafficgen::FieldRange> field_tuple() {
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        tuple.push_back({util::format("f%d", i), 0, 255});
    }
    return tuple;
}

/// The deny-all program tenant B keeps redeploying mid-storm.
ir::Program deny_all() {
    ir::ProgramBuilder b("deny_all");
    b.append(ir::TableSpec("wall")
                 .key("f0")
                 .drop_action("deny")
                 .default_to("deny")
                 .build());
    return b.build();
}

/// Mean service cycles per packet for the chain, measured closed-loop on a
/// solo emulator (ample rings, no budget) — same calibration the overload
/// bench uses.
double calibrate_service_cycles(const ir::Program& prog,
                                const trafficgen::FlowSet& flows) {
    sim::Emulator emu(tenant_nic(), prog, {});
    emu.set_worker_count(emu.model().cores);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 31);
    bench::RingPump pump(emu, 256);
    double cycles = 0.0;
    std::uint64_t packets = 0;
    for (int round = 0; round < 8; ++round) {
        sim::PacketBatch batch = wl.next_batch(emu.fields(), 256);
        const sim::BatchResult& r = pump.pump(batch);
        if (round == 0) continue;  // warm caches before counting
        cycles += r.total_cycles;
        packets += r.results.size();
    }
    return packets > 0 ? cycles / static_cast<double>(packets) : 1.0;
}

struct RunResult {
    double goodput_pps = 0.0;
    double p99_cycles = 0.0;
    sim::TenantStats stats_a;
    std::vector<std::uint64_t> completions_per_ms;  // shared run only
};

/// Drives tenant A's fixed schedule for `duration_s` of virtual time; when
/// `noisy` the identical loop also hosts tenant B's flood + storm + churn.
RunResult run_tenant_a(const ir::Program& prog_a,
                       const trafficgen::FlowSet& flows, double rate_a_pps,
                       double duration_s, bool noisy) {
    sim::RingConfig ring_cfg;
    ring_cfg.rx_capacity = kRingCapacity;
    sim::TenantRegistry reg(tenant_nic(), ring_cfg);

    sim::TenantQuota quota_a;
    quota_a.cycles_share = kShareA;
    sim::TenantId a = reg.add_tenant("a", prog_a, quota_a);
    apps::install_flow_entries(reg.emulator(a), flows);

    sim::TenantId b = sim::kNoTenant;
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Uniform, 0.0, 33);
    trafficgen::OfferedLoad src_b(wl_b, 0.0);
    if (noisy) {
        sim::TenantQuota quota_b;
        quota_b.cycles_share = 1.0 - kShareA;
        b = reg.add_tenant("b", ir::chain_of_exact_tables("p_b", kChainLen,
                                                          2, 1),
                           quota_b);
        apps::install_flow_entries(reg.emulator(b), flows);
        // Flood: 3x B's own slice capacity, so B's rings overflow all run.
        src_b.set_rate(3.0 * rate_a_pps);
    }

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 32);
    trafficgen::OfferedLoad src_a(wl_a, rate_a_pps);

    const sim::NicModel nic = tenant_nic();
    const double dt = 1e-4;
    const double tick_budget =
        nic.cycles_per_second * dt * static_cast<double>(nic.cores);
    const int ticks = static_cast<int>(duration_s / dt);
    const int ticks_per_ms = static_cast<int>(1e-3 / dt);

    RunResult run;
    std::vector<double> latencies;
    std::uint64_t completed = 0, window = 0;
    int storms = 0;
    for (int t = 0; t < ticks; ++t) {
        std::size_t due = src_a.accrue(dt);
        if (due > 0) src_a.offer(reg, a, due);
        if (noisy) {
            std::size_t due_b = src_b.accrue(dt);
            if (due_b > 0) src_b.offer(reg, b, due_b);
            // Table churn every tick: an insert plus a bulk replace.
            sim::Emulator& emu_b = reg.emulator(b);
            emu_b.insert_entry(
                "t1", flows.exact_entry(static_cast<std::size_t>(t) % kFlows,
                                        {"f1"}, 0));
            if (t % 5 == 0) emu_b.set_entries("t2", {});
            // Reconfigure storm: a full redeploy every 20 ticks (2 ms),
            // alternating deny-all with B's own chain.
            if (t % 20 == 10) {
                ++storms;
                reg.reconfigure(b, (storms % 2 != 0)
                                       ? deny_all()
                                       : ir::chain_of_exact_tables(
                                             "p_b", kChainLen, 2, 1));
                apps::install_flow_entries(reg.emulator(b), flows);
            }
        }
        reg.advance_time(dt);
        // Poll per tenant (not poll_all) so A's latencies are harvestable;
        // the budgets are exactly what poll_all's share split would hand out.
        const sim::BatchResult& out_a = reg.poll(a, tick_budget * kShareA);
        completed += out_a.results.size();
        window += out_a.results.size();
        for (const sim::ProcessResult& r : out_a.results) {
            latencies.push_back(r.cycles + r.queue_cycles);
        }
        if (noisy) reg.poll(b, tick_budget * (1.0 - kShareA));
        if ((t + 1) % ticks_per_ms == 0) {
            run.completions_per_ms.push_back(window);
            window = 0;
        }
    }

    run.goodput_pps = static_cast<double>(completed) / duration_s;
    run.p99_cycles = util::percentile(std::move(latencies), 99.0);
    run.stats_a = reg.stats(a);
    if (noisy) {
        const sim::TenantStats& sb = reg.stats(b);
        std::printf("  tenant b noise: offered %llu, ring_dropped %llu, "
                    "epoch %llu (storm redeploys)\n",
                    static_cast<unsigned long long>(sb.offered),
                    static_cast<unsigned long long>(sb.ring_dropped),
                    static_cast<unsigned long long>(reg.epoch(b)));
    }
    return run;
}

}  // namespace

int main() {
    bench::section("multi-tenant noisy neighbor: tenant A goodput/p99 while "
                   "tenant B storms");
    const bool quick = bench::BenchEnv::quick();
    const double duration_s = quick ? 0.05 : 0.25;

    ir::Program prog_a = ir::chain_of_exact_tables("p_a", kChainLen, 2, 1);
    util::Rng rng(29);
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(field_tuple(), kFlows, rng);

    const double service_cycles = calibrate_service_cycles(prog_a, flows);
    const sim::NicModel nic = tenant_nic();
    const double slice_capacity_pps = nic.cycles_per_second *
                                      static_cast<double>(nic.cores) *
                                      kShareA / service_cycles;
    const double rate_a_pps = kLoadFactorA * slice_capacity_pps;
    std::printf("calibrated %.1f cycles/packet -> A slice capacity %.0f pps "
                "(share %.2f); A offered at %.0f pps\n",
                service_cycles, slice_capacity_pps, kShareA, rate_a_pps);

    std::printf("solo run (tenant A alone, same share):\n");
    RunResult solo = run_tenant_a(prog_a, flows, rate_a_pps, duration_s,
                                  /*noisy=*/false);
    std::printf("shared run (tenant B flooding + reconfigure storm + table "
                "churn):\n");
    RunResult shared = run_tenant_a(prog_a, flows, rate_a_pps, duration_s,
                                    /*noisy=*/true);

    const double goodput_ratio =
        solo.goodput_pps > 0.0 ? shared.goodput_pps / solo.goodput_pps : 0.0;
    const double p99_delta = shared.p99_cycles - solo.p99_cycles;

    util::TextTable table({"run", "goodput pps", "p99 cycles", "completed",
                           "ring drops"});
    table.add_row({"A solo", util::format("%.0f", solo.goodput_pps),
                   util::format("%.0f", solo.p99_cycles),
                   util::format("%llu", static_cast<unsigned long long>(
                                            solo.stats_a.completed)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            solo.stats_a.ring_dropped))});
    table.add_row({"A shared", util::format("%.0f", shared.goodput_pps),
                   util::format("%.0f", shared.p99_cycles),
                   util::format("%llu", static_cast<unsigned long long>(
                                            shared.stats_a.completed)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            shared.stats_a.ring_dropped))});
    std::printf("%s", table.to_string().c_str());
    std::printf("\nA goodput under noise: %.1f%% of solo (gate: >= 95%%); "
                "p99 delta %+.0f cycles\n",
                100.0 * goodput_ratio, p99_delta);

    telemetry::CsvSeries series({"ms", "a_completed_shared"});
    for (std::size_t i = 0; i < shared.completions_per_ms.size(); ++i) {
        series.add_row({static_cast<double>(i),
                        static_cast<double>(shared.completions_per_ms[i])});
    }

    bench::Reporter rep("ext_multitenant", nic);
    rep.param("ring_capacity", static_cast<double>(kRingCapacity));
    rep.param("duration_s", duration_s);
    rep.param("share_a", kShareA);
    rep.param("load_factor_a", kLoadFactorA);
    rep.metric("service_cycles", service_cycles);
    rep.metric("slice_capacity_pps", slice_capacity_pps);
    rep.metric("goodput_solo_pps", solo.goodput_pps);
    rep.metric("goodput_shared_pps", shared.goodput_pps);
    rep.metric("goodput_ratio", goodput_ratio);
    rep.metric("p99_solo_cycles", solo.p99_cycles);
    rep.metric("p99_shared_cycles", shared.p99_cycles);
    rep.metric("p99_delta_cycles", p99_delta);
    // The gated pair: A's goodput under noise on 512 B packets, A's p99.
    rep.metric("throughput_gbps", shared.goodput_pps * 512.0 * 8.0 / 1e9);
    rep.metric("latency_p99", shared.p99_cycles);
    rep.write();
    series.write(rep.raw().csv_path());
    std::printf("[bench-report] wrote %s\n", rep.raw().csv_path().c_str());

    if (goodput_ratio < 0.95) {
        std::printf("FAIL: tenant A goodput degraded more than 5%% under a "
                    "noisy neighbor\n");
        return 1;
    }
    return 0;
}
