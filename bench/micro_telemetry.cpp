// micro_telemetry — quantifies the telemetry subsystem's hot-path cost
// (ISSUE 4) and provides the cross-build check that PIPELEON_TELEMETRY=OFF
// is genuinely free. Two kinds of numbers:
//
//   - component costs: histogram record, sharded counter bump, shard merge,
//     and a ScopedSpan in both tracer states. These exist only in the ON
//     build (the OFF build reports them as 0).
//   - end-to-end throughput: packets/s through the batched emulator. This
//     is the number to compare across ON and OFF builds — the OFF build
//     compiles every recording site away, so the two builds should match
//     within noise; the ON build's gap over OFF is the real per-packet tax.
//
// The emitted BENCH_micro_telemetry.json carries `telemetry_enabled` so a
// harness can diff the two builds mechanically.
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

using namespace pipeleon;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1, int ops) {
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(ops);
}

// Keeps loop bodies alive without google-benchmark's DoNotOptimize.
volatile std::uint64_t g_sink = 0;

}  // namespace

int main() {
    bench::section("micro_telemetry: hot-path cost of the telemetry "
                   "subsystem");
    const int kOps = bench::BenchEnv::quick() ? 200000 : 2000000;

    double hist_ns = 0.0, shard_ns = 0.0, merge_ns = 0.0;
    double span_off_ns = 0.0, span_on_ns = 0.0;

#if PIPELEON_TELEMETRY
    {
        telemetry::LatencyHistogram h;
        Clock::time_point t0 = Clock::now();
        for (int i = 0; i < kOps; ++i) h.record_value(static_cast<std::uint64_t>(i) % 4096);
        Clock::time_point t1 = Clock::now();
        hist_ns = ns_per_op(t0, t1, kOps);
        g_sink += h.count();
    }
    {
        telemetry::MetricsRegistry reg;
        telemetry::MetricId c = reg.counter("bench.counter");
        reg.set_shard_count(1);
        Clock::time_point t0 = Clock::now();
        for (int i = 0; i < kOps; ++i) reg.shard_add(0, c);
        Clock::time_point t1 = Clock::now();
        shard_ns = ns_per_op(t0, t1, kOps);

        // Merge cost for a realistic registry: 8 lanes, a few counters and
        // one histogram per lane, folded once per batch boundary.
        telemetry::MetricId hid = reg.histogram("bench.hist");
        reg.set_shard_count(8);
        const int kMerges = bench::BenchEnv::quick() ? 200 : 2000;
        t0 = Clock::now();
        for (int m = 0; m < kMerges; ++m) {
            for (std::size_t s = 0; s < 8; ++s) {
                reg.shard_add(s, c, 2);
                reg.shard_record(s, hid, 100.0 + static_cast<double>(m % 50));
            }
            reg.merge_shards();
        }
        t1 = Clock::now();
        merge_ns = ns_per_op(t0, t1, kMerges);
        g_sink += reg.snapshot().counter("bench.counter");
    }
    {
        telemetry::Tracer::global().set_enabled(false);
        Clock::time_point t0 = Clock::now();
        for (int i = 0; i < kOps; ++i) {
            TELEMETRY_SPAN("bench.span");
        }
        Clock::time_point t1 = Clock::now();
        span_off_ns = ns_per_op(t0, t1, kOps);

        telemetry::Tracer::global().set_enabled(true);
        const int kSpans = bench::BenchEnv::quick() ? 20000 : 50000;
        t0 = Clock::now();
        for (int i = 0; i < kSpans; ++i) {
            TELEMETRY_SPAN("bench.span");
        }
        t1 = Clock::now();
        span_on_ns = ns_per_op(t0, t1, kSpans);
        telemetry::Tracer::global().set_enabled(false);
        telemetry::Tracer::global().clear();
    }
#endif

    // End-to-end: the batched data plane, every telemetry site live (or
    // compiled away). This throughput is the ON-vs-OFF comparison point.
    constexpr int kChainLen = 8;
    ir::Program prog = ir::chain_of_exact_tables("tele", kChainLen, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(4);
    util::Rng rng(29);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 256, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 31);

    const int kPackets = bench::BenchEnv::quick() ? 40000 : 400000;
    constexpr std::size_t kBatch = 1024;
    // Warm up caches and worker threads before timing.
    for (int i = 0; i < 4; ++i) {
        sim::PacketBatch batch = wl.next_batch(emu.fields(), kBatch);
        emu.process_batch(batch);
    }
    Clock::time_point t0 = Clock::now();
    int done = 0;
    while (done < kPackets) {
        sim::PacketBatch batch = wl.next_batch(emu.fields(), kBatch);
        emu.process_batch(batch);
        done += static_cast<int>(kBatch);
    }
    Clock::time_point t1 = Clock::now();
    const double batch_pps =
        done / std::chrono::duration<double>(t1 - t0).count();
    const double pkt_ns = 1e9 / batch_pps;

    std::printf("\n%-34s %12s\n", "operation", "ns/op");
    std::printf("%-34s %12.2f\n", "histogram record", hist_ns);
    std::printf("%-34s %12.2f\n", "sharded counter bump", shard_ns);
    std::printf("%-34s %12.1f\n", "merge_shards (8 lanes)", merge_ns);
    std::printf("%-34s %12.2f\n", "span (tracer disabled)", span_off_ns);
    std::printf("%-34s %12.1f\n", "span (tracer enabled)", span_on_ns);
    std::printf("%-34s %12.1f\n", "emulated packet (end-to-end)", pkt_ns);
    std::printf("\ntelemetry compiled %s; end-to-end %.2f Mpps\n",
                telemetry::kEnabled ? "IN" : "OUT", batch_pps / 1e6);
    if (telemetry::kEnabled) {
        std::printf("compare against a -DPIPELEON_TELEMETRY=OFF build: the\n"
                    "end-to-end rate is the only number that should move.\n");
    }

    bench::Reporter rep("micro_telemetry", sim::bluefield2_model());
    rep.param("telemetry_enabled", util::Json(std::uint64_t(telemetry::kEnabled ? 1 : 0)));
    rep.param("packets", util::Json(std::uint64_t(kPackets)));
    rep.metric("histogram_record_ns", hist_ns);
    rep.metric("shard_add_ns", shard_ns);
    rep.metric("merge_shards_ns", merge_ns);
    rep.metric("span_disabled_ns", span_off_ns);
    rep.metric("span_enabled_ns", span_on_ns);
    rep.metric("end_to_end_packet_ns", pkt_ns);
    rep.metric("end_to_end_mpps", batch_pps / 1e6);
    rep.from_emulator(emu);
    rep.write();
    (void)g_sink;
    return 0;
}
