// Figure 13 — optimization speed (§5.4.2): turnaround time of the top-k
// search vs the exhaustive search (ESearch = top-100%) over 300 synthesized
// programs split into three (PN, PL) groups. The paper (Python prototype)
// reports medians of 3/8/19 s for top-20% vs 13/87/179 s for ESearch — an
// 8.2x speedup; our C++ implementation is orders of magnitude faster in
// absolute terms, but the k-scaling shape is the result under test.
#include "bench/common.h"
#include "bench/report.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

using namespace pipeleon;

namespace {

struct Group {
    const char* name;
    int pipelets;
    int min_len, max_len;
};

}  // namespace

int main() {
    bench::section("Figure 13: optimization time CDFs by top-k value");

    const std::vector<Group> groups = {
        {"PN=12.5 PL=2.0", 12, 2, 2},
        {"PN=12.6 PL=3.0", 12, 3, 3},
        {"PN=15.0 PL=3.0", 15, 3, 3},
    };
    const std::vector<double> ks = {0.2, 0.3, 0.4, 1.0};
    const int programs_per_group = 100;

    cost::CostParams params = sim::bluefield2_model().costs;
    profile::InstrumentationConfig instr;
    cost::CostModel model(params, instr);

    std::vector<double> medians_k20, medians_esearch;
    for (const Group& group : groups) {
        std::printf("\n-- group %s (%d programs) --\n", group.name,
                    programs_per_group);
        util::TextTable table({"k", "p10 (ms)", "median (ms)", "p90 (ms)"});
        double group_k20 = 0.0, group_es = 0.0;
        for (double k : ks) {
            std::vector<double> times_ms;
            for (int i = 0; i < programs_per_group; ++i) {
                synth::SynthConfig scfg;
                scfg.pipelets = group.pipelets;
                scfg.min_pipelet_len = group.min_len;
                scfg.max_pipelet_len = group.max_len;
                scfg.diamond_fraction = 0.3;
                synth::ProgramSynthesizer gen(
                    scfg, static_cast<std::uint64_t>(i) * 131 + 11);
                ir::Program prog = gen.generate("speed");
                synth::ProfileSynthesizer profgen(
                    synth::heavy_drop_config(),
                    static_cast<std::uint64_t>(i) * 7 + 1);
                profile::RuntimeProfile prof = profgen.generate(prog);

                search::OptimizerConfig cfg;
                cfg.top_k_fraction = k;
                cfg.search.max_orders = 720;       // ESearch explores deeply
                cfg.search.max_candidates = 20000;
                search::Optimizer optimizer(model, cfg);
                search::OptimizationOutcome out = optimizer.optimize(prog, prof);
                times_ms.push_back(out.search_seconds * 1000.0);
            }
            double med = util::median(times_ms);
            if (k == 0.2) group_k20 = med;
            if (k == 1.0) group_es = med;
            table.add_row({util::format("%.0f%%", k * 100.0),
                           util::format("%.2f", util::percentile(times_ms, 10)),
                           util::format("%.2f", med),
                           util::format("%.2f", util::percentile(times_ms, 90))});
        }
        std::printf("%s", table.to_string().c_str());
        medians_k20.push_back(group_k20);
        medians_esearch.push_back(group_es);
    }

    double speedup = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        speedup += medians_esearch[g] / std::max(1e-9, medians_k20[g]);
    }
    speedup /= static_cast<double>(groups.size());
    std::printf("\nmean median speedup of top-20%% over ESearch: %.1fx  "
                "(paper: 8.2x)\n", speedup);
    std::printf("paper shape: time grows with PN, PL, and k; top-k search is\n"
                "several times faster than ESearch in every group.\n");

    bench::Reporter rep("fig13_opt_speed", sim::bluefield2_model());
    rep.param("programs_per_group", util::Json(std::uint64_t(programs_per_group)));
    rep.metric("topk20_vs_esearch_speedup", speedup);
    rep.metric("median_k20_ms", util::mean(medians_k20));
    rep.metric("median_esearch_ms", util::mean(medians_esearch));
    rep.write();
    return 0;
}
