// Figure 11a — service load balancing on BlueField2 (§5.3.1). The program:
// eight regular processing tables, two load-balancing tables, two ACLs.
// Baseline: "caches the whole program without runtime adaptation" (frozen).
// Timeline:
//   t < 16 s   both deployments cached, line rate;
//   t >= 16 s  the LB tables see a high entry insertion rate -> frequent
//              whole-cache invalidation tanks the baseline; Pipeleon
//              re-caches only the untouched region;
//   t >= 32 s  the ACL dropping pattern changes; Pipeleon reorders the ACLs.
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

/// Like apps::load_balancer_program() but with ternary processing tables so
/// that the uncached path costs well over the line-rate budget — the cache
/// is what keeps the pipeline at 100 Gbps, as in the paper's setup.
ir::Program heavy_load_balancer() {
    ir::ProgramBuilder b("load_balancer_heavy");
    for (int i = 0; i < 8; ++i) {
        std::string name = "proc" + std::to_string(i);
        b.append(ir::TableSpec(name)
                     .key("pf" + std::to_string(i), ir::MatchKind::Ternary)
                     .noop_action(name + "_a0", 1)
                     .noop_action(name + "_a1", 1)
                     .default_to(name + "_a0")
                     .build());
    }
    ir::Action pick;
    pick.name = "pick_backend";
    pick.primitives.push_back(ir::Primitive::set_from_arg("backend", 0));
    b.append(ir::TableSpec("lb_vip").key("vip").action(pick).size(4096).build());
    ir::Action fwd;
    fwd.name = "to_backend";
    fwd.primitives.push_back(ir::Primitive::forward_from_arg(0));
    b.append(ir::TableSpec("lb_backend").key("backend").action(fwd).size(4096).build());
    b.append(ir::TableSpec("lb_acl0")
                 .key("src_ip")
                 .noop_action("lb_acl0_allow", 1)
                 .drop_action("lb_acl0_deny")
                 .default_to("lb_acl0_allow")
                 .build());
    b.append(ir::TableSpec("lb_acl1")
                 .key("dst_ip")
                 .noop_action("lb_acl1_allow", 1)
                 .drop_action("lb_acl1_deny")
                 .default_to("lb_acl1_allow")
                 .build());
    return b.build();
}

void install_common_state(sim::Emulator& emu, runtime::ApiMapper& api,
                          const trafficgen::FlowSet& flows) {
    // Ternary rules in the processing tables (5 masks -> expensive lookups).
    for (int i = 0; i < 8; ++i) {
        std::string name = "proc" + std::to_string(i);
        for (int m = 0; m < 5; ++m) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::ternary(0, 0xFULL << m)};
            e.action_index = m % 2;
            e.priority = m;
            api.insert(emu, name, e);
        }
    }
    // VIP -> backend mappings for every flow's vip; backend -> port.
    for (std::size_t f = 0; f < flows.size(); ++f) {
        api.insert(emu, "lb_vip",
                   flows.exact_entry(f, {"vip"}, 0, {flows.value(f, "vip") % 16}));
    }
    for (std::uint64_t backend = 0; backend < 16; ++backend) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::exact(backend)};
        e.action_index = 0;
        e.action_data = {backend};
        api.insert(emu, "lb_backend", e);
    }
}

}  // namespace

int main() {
    bench::section("Figure 11a: load balancer on BlueField2 - runtime "
                   "adaptation vs frozen whole-program cache");

    ir::Program program = heavy_load_balancer();
    sim::NicModel nic = sim::bluefield2_model();

    util::Rng rng(6);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"pf0", 0, 7}, {"pf1", 0, 7}, {"pf2", 0, 7}, {"pf3", 0, 7},
         {"pf4", 0, 7}, {"pf5", 0, 7}, {"pf6", 0, 7}, {"pf7", 0, 7},
         {"vip", 0, 63}, {"src_ip", 0, 1023}, {"dst_ip", 0, 1023}},
        3000, rng);

    // --- Pipeleon deployment: controller adapts every 5 s window.
    sim::Emulator dyn_emu(nic, program, {});
    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.pipelet.max_length = 12;
    cfg.optimizer.search.allow_merge = false;  // this case study is about caching
    cfg.optimizer.search.max_orders = 16;
    cfg.detector.threshold = 0.05;
    cost::CostModel model(nic.costs, {});
    runtime::Controller controller(dyn_emu, program, model, cfg);
    install_common_state(dyn_emu, controller.api(), flows);

    // --- Baseline: whole-program cache, frozen ("without runtime
    //     adaptation"). Legality splits it into two caches at the lb_vip ->
    //     lb_backend match dependency.
    analysis::PipeletOptions whole;
    whole.max_length = 16;
    auto pipelets = analysis::form_pipelets(program, whole);
    opt::PipeletPlan baseline_plan;
    baseline_plan.pipelet_id = 0;
    baseline_plan.layout.order = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
    baseline_plan.layout.caches = {opt::Segment{0, 8}, opt::Segment{9, 11}};
    baseline_plan.layout.cache_config.capacity = 65536;
    baseline_plan.layout.cache_config.max_insert_per_sec = 1e9;
    ir::Program baseline_prog = opt::apply_plans(program, pipelets, {baseline_plan});
    sim::Emulator sta_emu(nic, baseline_prog, {});
    runtime::ApiMapper sta_api(program);
    install_common_state(sta_emu, sta_api, flows);

    trafficgen::Workload dyn_wl(flows, trafficgen::Locality::Zipf, 1.1, 8);
    trafficgen::Workload sta_wl(flows, trafficgen::Locality::Zipf, 1.1, 8);

    // A measurement window with LB entry churn interleaved into the packet
    // stream (`churn` inserts spread across the window). Churn entries use
    // never-matched VIPs, so only the invalidation matters. The stream is
    // pumped through the batched data plane with a control-plane insert
    // fenced between batches — the churn cadence sets the batch size.
    std::uint64_t churn_vip = 100000;
    auto churny_window = [&](sim::Emulator& emu, trafficgen::Workload& wl,
                             runtime::ApiMapper& api, int packets, int churn) {
        util::RunningStats cycles;
        int gap = churn > 0 ? std::max(1, packets / churn) : packets;
        bench::RingPump pump(emu, static_cast<std::size_t>(gap));
        for (int i = 0; i < packets; i += gap) {
            if (churn > 0) {
                ir::TableEntry e;
                e.key = {ir::FieldMatch::exact(churn_vip)};
                e.action_index = 0;
                e.action_data = {churn_vip % 16};
                api.insert(emu, "lb_vip", e);
                ++churn_vip;
                if (emu.entry_count("lb_vip") > 3500) {
                    // Keep the table within capacity: churn also deletes.
                    api.erase(emu, "lb_vip",
                              {ir::FieldMatch::exact(churn_vip - 3000)});
                }
            }
            std::size_t n = static_cast<std::size_t>(std::min(gap, packets - i));
            sim::PacketBatch batch = wl.next_batch(emu.fields(), n);
            const sim::BatchResult& r = pump.pump(batch);
            for (const sim::ProcessResult& pr : r.results) cycles.add(pr.cycles);
            emu.advance_time(5.0 * static_cast<double>(n) / packets);
        }
        return emu.throughput_gbps(cycles.mean());
    };

    // Warm-up: one profiled window, then the first deployment, so both
    // systems start the timeline cached at line rate (as in the figure).
    churny_window(dyn_emu, dyn_wl, controller.api(), 20000, 0);
    controller.tick();
    churny_window(sta_emu, sta_wl, sta_api, 20000, 0);

    std::printf("\n%6s  %10s  %10s  %s\n", "t(s)", "Pipeleon", "Baseline",
                "note");
    double dyn_final = 0.0, sta_final = 0.0;
    for (int tick = 0; tick < 10; ++tick) {
        double t = tick * 5.0;
        const char* note = "";
        if (tick == 3) note = "<- high LB insertion rate begins";
        if (tick == 7) note = "<- ACL dropping rate change";

        // Phase 3 (t >= 35): lb_acl1 starts denying 60% of flows.
        if (tick == 7) {
            trafficgen::Workload picker(flows, trafficgen::Locality::Uniform, 0.0,
                                        99);
            for (std::size_t f : picker.pick_flows(0.6)) {
                ir::TableEntry e = flows.exact_entry(f, {"dst_ip"}, 1);
                controller.api().insert(dyn_emu, "lb_acl1", e);
                sta_api.insert(sta_emu, "lb_acl1", e);
            }
        }

        // Phase 2 (t >= 15): ~400 LB inserts per 5 s window, interleaved.
        int churn = tick >= 3 ? 400 : 0;
        double dyn_gbps =
            churny_window(dyn_emu, dyn_wl, controller.api(), 20000, churn);
        double sta_gbps = churny_window(sta_emu, sta_wl, sta_api, 20000, churn);
        controller.tick();  // "performed runtime profiling every five seconds"

        dyn_final = dyn_gbps;
        sta_final = sta_gbps;
        std::printf("%6.0f  %10.1f  %10.1f  %s\n", t, dyn_gbps, sta_gbps, note);
    }

    std::printf("\nfinal Pipeleon layout:\n");
    for (ir::NodeId id : dyn_emu.program().topo_order()) {
        const ir::Node& n = dyn_emu.program().node(id);
        if (n.is_table()) {
            std::printf("  %-40s %s\n", n.table.name.c_str(),
                        ir::to_string(n.table.role));
        }
    }
    std::printf("\npaper shape: both start at line rate; the frozen cache\n"
                "collapses under LB insertions while Pipeleon re-caches the\n"
                "stable region; after the ACL change Pipeleon reorders and\n"
                "recovers line rate again.\n");

    bench::Reporter rep("fig11a_loadbalancer", nic);
    rep.metric("throughput_gbps", dyn_final);
    rep.metric("baseline_gbps", sta_final);
    rep.from_emulator(dyn_emu);
    rep.write();
    return 0;
}
