// ext_hierarchical_memory — the §6 "Hierarchical memory support" extension:
// on targets that expose table placement, Pipeleon hosts the hottest tables
// in on-chip SRAM (l_mat_fast per access instead of l_mat). This bench
// sweeps the SRAM budget on the DASH routing pipeline and reports the
// placement and the measured latency/throughput — the future-work experiment
// the paper sketches for Netronome-style EMEM/SRAM hierarchies.
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "opt/memory_tiers.h"
#include "profile/counter_map.h"
#include "runtime/api_mapper.h"
#include "sim/nic_model.h"

using namespace pipeleon;

int main() {
    bench::section("Extension: hierarchical memory placement (Agilio-style "
                   "EMEM vs SRAM)");

    ir::Program program = apps::dash_routing_program();
    sim::NicModel nic = sim::agilio_cx_model();
    nic.costs.l_mat_fast = 6.0;  // SRAM ~4x faster than EMEM (26 cycles)

    // Gather a profile on the unplaced program.
    auto make_emulator = [&](const ir::Program& prog) {
        auto emu = std::make_unique<sim::Emulator>(nic, prog, profile::InstrumentationConfig{});
        runtime::ApiMapper api(program);
        for (const char* table : {"direction_lookup", "appliance", "eni", "vni"}) {
            for (std::uint64_t k = 0; k < 4; ++k) {
                ir::TableEntry e;
                e.key = {ir::FieldMatch::exact(k)};
                e.action_index = 0;
                e.action_data = {k};
                emu->insert_entry(table, e);
            }
        }
        for (std::uint64_t net = 0; net < 6; ++net) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::lpm(net << 24, 4 + 4 * static_cast<int>(net))};
            e.action_index = 0;
            e.action_data = {net};
            emu->insert_entry("routing", e);
        }
        for (std::uint64_t f = 0; f < 2000; ++f) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(f)};
            e.action_index = 0;
            emu->insert_entry("flowish", e);  // absent table: ignored
        }
        return emu;
    };

    util::Rng rng(3);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"direction", 0, 1}, {"appliance_key", 0, 3}, {"eni_mac", 0, 3},
         {"vni_key", 0, 3}, {"flow_id", 0, 9999}, {"src_ip", 0, 9999},
         {"dst_ip", 0, 9999}, {"dst_port", 0, 1023},
         {"ipv4_dst", 0, 0x05FFFFFF}},
        2000, rng);

    auto base_emu = make_emulator(program);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 7);
    bench::WindowResult base = bench::run_window(*base_emu, wl, 15000, 5.0);
    profile::CounterMap map = profile::CounterMap::build(program, program);
    profile::RuntimeProfile prof = map.translate(program, base_emu->read_counters());

    std::printf("\nbaseline (all tables in EMEM): %.1f cycles/pkt  %.2f Gbps\n\n",
                base.mean_cycles, base.throughput_gbps);

    util::TextTable table({"SRAM budget", "tables in SRAM", "bytes used",
                           "cycles/pkt", "Gbps", "speedup"});
    double best_gbps = base.throughput_gbps;
    for (double kb : {0.0, 1.0, 4.0, 16.0, 64.0, 1024.0}) {
        cost::CostParams params = nic.costs;
        params.fast_memory_bytes = kb * 1024.0;
        cost::CostModel model(params, {});
        opt::TierAssignment placed = opt::assign_memory_tiers(program, prof, model);

        sim::NicModel placed_nic = nic;
        auto emu = make_emulator(placed.program);
        trafficgen::Workload wl2(flows, trafficgen::Locality::Uniform, 0.0, 7);
        bench::WindowResult w = bench::run_window(*emu, wl2, 15000, 5.0);
        best_gbps = std::max(best_gbps, w.throughput_gbps);
        table.add_row({util::format("%.0f KB", kb),
                       std::to_string(placed.tables_in_fast),
                       util::format("%.0f", placed.fast_bytes_used),
                       util::format("%.1f", w.mean_cycles),
                       util::format("%.2f", w.throughput_gbps),
                       util::format("%.2fx", base.mean_cycles / w.mean_cycles)});
        (void)placed_nic;
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("\nexpected: latency falls monotonically with the SRAM budget;\n"
                "the density greedy fills small hot tables first (metadata\n"
                "lookups), then the multi-probe LPM routing table.\n");

    bench::Reporter rep("ext_hierarchical_memory", nic);
    rep.metric("throughput_gbps", best_gbps);
    rep.metric("baseline_gbps", base.throughput_gbps);
    rep.write();
    return 0;
}
