// ext_hierarchical_memory — hierarchical flow-state memory at scale
// (DESIGN.md §14). Three parts:
//
//   1. The flagship sweep: a sim::TieredStore holding 10M+ distinct flows
//      across SRAM -> NIC-DRAM -> host-DMA tiers, swept over Zipf skew
//      s ∈ {0.6, 0.9, 0.99} × three tier-budget carves. Reports per-tier
//      hit ratios, effective lookup latency, and goodput; *asserts* hit
//      conservation (lookups == Σ tier hits + misses) and a monotone
//      effective-latency curve vs skew — exit 1 on violation.
//   2. The §6 table-placement sweep (SRAM vs EMEM density greedy) on the
//      DASH routing pipeline, kept from the original extension bench.
//   3. A small emulator-integration run: a cached chain with lower tiers
//      enabled, driven through the descriptor rings, printing the tier.*
//      telemetry the controller sees.
#include <cinttypes>
#include <cmath>
#include <memory>

#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "opt/memory_tiers.h"
#include "opt/transform.h"
#include "profile/counter_map.h"
#include "sim/nic_model.h"
#include "sim/tiered_store.h"
#include "telemetry/telemetry.h"

using namespace pipeleon;

namespace {

// --------------------------------------------------------------- part 1

/// splitmix64 finalizer: maps Zipf rank -> flow key so hot ranks are
/// scattered uniformly through the hash space (insertion order and hotness
/// decorrelated, as in real flow tables).
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// O(1) Zipf(s) sampler over ranks [1, n] via the continuous inverse CDF
/// (density ∝ x^-s, s < 1). util::ZipfSampler's exact CDF would cost an
/// O(n) table per (config, skew) point — ~100 MB and a cache-missing
/// binary search per draw at n = 12M; the continuous approximation is
/// rank-exact enough for a locality sweep and costs one pow() per draw.
class ApproxZipf {
public:
    ApproxZipf(std::uint64_t n, double s)
        : n_(n),
          inv_(1.0 / (1.0 - s)),
          span_(std::pow(static_cast<double>(n) + 1.0, 1.0 - s) - 1.0) {}

    std::uint64_t rank(util::Rng& rng) const {
        const double x = std::pow(1.0 + rng.uniform() * span_, inv_);
        const std::uint64_t r = static_cast<std::uint64_t>(x);
        return r > n_ ? n_ : (r == 0 ? 1 : r);
    }

private:
    std::uint64_t n_;
    double inv_;
    double span_;
};

struct TierBudget {
    const char* name;
    std::size_t sram;
    std::size_t dram;
    std::size_t host;
};

struct SweepPoint {
    double skew = 0.0;
    double eff_cycles = 0.0;   // l_mat + mean tier premium per lookup
    double goodput_mpps = 0.0;
    double sram_ratio = 0.0;
    double dram_ratio = 0.0;
    double host_ratio = 0.0;
    double miss_ratio = 0.0;
    std::uint64_t promotions = 0;
    double dma_fill = 0.0;  // mean descriptors per doorbell
};

/// Measures one (budget, skew) point on an already-populated store.
/// Returns false on a conservation violation.
bool measure_point(sim::TieredStore& store, std::uint64_t flows, double skew,
                   std::uint64_t warm_lookups, std::uint64_t lookups,
                   double l_mat, double cycles_per_second, SweepPoint& out) {
    const ApproxZipf zipf(flows, skew);
    util::Rng rng(static_cast<std::uint64_t>(skew * 1000.0) + flows);
    sim::KeyVec key;

    auto drive = [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
            key.clear();
            key.push_back(mix(zipf.rank(rng)));
            if (store.lookup(key).entry == nullptr) {
                // Dropped off the last tier earlier: refill (counted as the
                // miss it is).
                sim::CacheStore::CacheEntry e;
                store.insert(key, std::move(e), 0.0);
            }
            if (i % 64 == 63) store.flush_batch();
        }
        store.flush_batch();
    };

    drive(warm_lookups);  // let promotion sort the hot set into place
    const sim::TierStats before = store.stats();
    drive(lookups);
    const sim::TierStats after = store.stats();

    const std::uint64_t dl = after.lookups - before.lookups;
    const std::uint64_t ds = after.sram_hits - before.sram_hits;
    const std::uint64_t dd = after.dram_hits - before.dram_hits;
    const std::uint64_t dh = after.host_hits - before.host_hits;
    const std::uint64_t dm = after.misses - before.misses;
    if (dl != ds + dd + dh + dm) {
        std::fprintf(stderr,
                     "CONSERVATION VIOLATION at s=%.2f: lookups %" PRIu64
                     " != %" PRIu64 " + %" PRIu64 " + %" PRIu64 " + %" PRIu64
                     "\n",
                     skew, dl, ds, dd, dh, dm);
        return false;
    }

    const double n = static_cast<double>(dl);
    out.skew = skew;
    out.eff_cycles = l_mat + (after.tier_cycles - before.tier_cycles) / n;
    out.goodput_mpps = cycles_per_second / out.eff_cycles / 1e6;
    out.sram_ratio = static_cast<double>(ds) / n;
    out.dram_ratio = static_cast<double>(dd) / n;
    out.host_ratio = static_cast<double>(dh) / n;
    out.miss_ratio = static_cast<double>(dm) / n;
    out.promotions = after.promotions - before.promotions;
    const std::uint64_t batches = after.dma_batches - before.dma_batches;
    out.dma_fill =
        batches > 0 ? static_cast<double>(after.dma_fetches -
                                          before.dma_fetches) /
                          static_cast<double>(batches)
                    : 0.0;
    return true;
}

}  // namespace

int main() {
    const bool quick = bench::BenchEnv::quick();
    bench::Reporter rep("ext_hierarchical_memory", "bluefield2");
    bool ok = true;

    // ------------------------------------------------------------- part 1
    bench::section("Tiered flow-state store at scale (SRAM -> DRAM -> host)");

    const std::uint64_t kFlows = quick ? 200'000 : 12'000'000;
    const std::uint64_t kWarm = quick ? 40'000 : 400'000;
    const std::uint64_t kLookups = quick ? 120'000 : 1'200'000;
    const double kSkews[] = {0.6, 0.9, 0.99};

    const std::vector<TierBudget> budgets =
        quick ? std::vector<TierBudget>{
                    {"sram2k+host", 2048, 0, 262144},
                    {"sram2k+dram16k+host", 2048, 16384, 262144},
                    {"sram8k+dram64k+host", 8192, 65536, 262144}}
              : std::vector<TierBudget>{
                    {"sram64k+host", 65536, 0, 16'777'216},
                    {"sram64k+dram1M+host", 65536, 1'048'576, 16'777'216},
                    {"sram256k+dram4M+host", 262144, 4'194'304, 16'777'216}};

    const cost::CostParams bf2 = cost::bluefield2_params();
    const double cycles_per_second = sim::bluefield2_model().cycles_per_second;

    std::printf("\n%" PRIu64 " distinct flows per store; %" PRIu64
                " Zipf lookups per point (+%" PRIu64 " warm-up)\n",
                kFlows, kLookups, kWarm);

    util::TextTable table({"budget", "s", "sram%", "dram%", "host%", "miss%",
                           "eff cyc", "Mpps", "promos", "dma fill"});
    SweepPoint canonical{};  // three-tier budget at s = 0.9
    for (const TierBudget& b : budgets) {
        ir::CacheConfig cfg;
        cfg.capacity = b.sram;
        cfg.max_insert_per_sec = 1e18;  // population is not rate-limited
        cfg.tiers.dram_entries = b.dram;
        cfg.tiers.host_entries = b.host;
        sim::TierCosts costs;
        costs.l_tier_dram = bf2.l_tier_dram;
        costs.l_tier_host = bf2.l_tier_host;
        costs.dma_setup = bf2.dma_setup;
        costs.dma_per_entry = bf2.dma_per_entry;
        sim::TieredStore store(cfg, costs);

        // Populate: every flow inserted once; the demotion cascade spreads
        // them across the tiers (capacity >= flows, so all stay resident).
        sim::KeyVec key;
        for (std::uint64_t r = 1; r <= kFlows; ++r) {
            key.clear();
            key.push_back(mix(r));
            store.insert(key, sim::CacheStore::CacheEntry{}, 0.0);
        }
        if (store.size() < kFlows) {
            std::fprintf(stderr,
                         "population lost flows: %zu resident of %" PRIu64
                         "\n",
                         store.size(), kFlows);
            ok = false;
        }

        double prev_eff = 0.0;
        for (std::size_t i = 0; i < 3; ++i) {
            SweepPoint pt;
            if (!measure_point(store, kFlows, kSkews[i], kWarm, kLookups,
                               bf2.l_mat, cycles_per_second, pt)) {
                ok = false;
                continue;
            }
            table.add_row({b.name, util::format("%.2f", pt.skew),
                           util::format("%.1f", 100.0 * pt.sram_ratio),
                           util::format("%.1f", 100.0 * pt.dram_ratio),
                           util::format("%.1f", 100.0 * pt.host_ratio),
                           util::format("%.2f", 100.0 * pt.miss_ratio),
                           util::format("%.1f", pt.eff_cycles),
                           util::format("%.2f", pt.goodput_mpps),
                           std::to_string(pt.promotions),
                           util::format("%.1f", pt.dma_fill)});
            // Monotone curve: more locality can only help a tiered store.
            if (i > 0 && pt.eff_cycles > prev_eff * 1.001) {
                std::fprintf(stderr,
                             "MONOTONICITY VIOLATION (%s): eff %.2f at "
                             "s=%.2f > %.2f at s=%.2f\n",
                             b.name, pt.eff_cycles, pt.skew, prev_eff,
                             kSkews[i - 1]);
                ok = false;
            }
            prev_eff = pt.eff_cycles;
            if (&b == &budgets[1] && i == 1) canonical = pt;
        }
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("\nexpected: effective latency falls with skew (hot flows\n"
                "concentrate into SRAM/DRAM) and with larger upper tiers;\n"
                "dma fill approaches the 32-descriptor batch as host traffic\n"
                "grows.\n");

    // ------------------------------------------------------------- part 2
    bench::section("Table placement sweep (Agilio-style EMEM vs SRAM)");

    ir::Program program = apps::dash_routing_program();
    sim::NicModel nic = sim::agilio_cx_model();
    nic.costs.l_mat_fast = 6.0;  // SRAM ~4x faster than EMEM (26 cycles)

    auto make_emulator = [&](const ir::Program& prog) {
        auto emu = std::make_unique<sim::Emulator>(
            nic, prog, profile::InstrumentationConfig{});
        for (const char* table :
             {"direction_lookup", "appliance", "eni", "vni"}) {
            for (std::uint64_t k = 0; k < 4; ++k) {
                ir::TableEntry e;
                e.key = {ir::FieldMatch::exact(k)};
                e.action_index = 0;
                e.action_data = {k};
                if (!emu->insert_entry(table, e)) {
                    std::fprintf(stderr, "fixture insert failed: %s[%" PRIu64
                                         "]\n",
                                 table, k);
                    std::exit(1);
                }
            }
        }
        for (std::uint64_t net = 0; net < 6; ++net) {
            ir::TableEntry e;
            e.key = {
                ir::FieldMatch::lpm(net << 24, 4 + 4 * static_cast<int>(net))};
            e.action_index = 0;
            e.action_data = {net};
            if (!emu->insert_entry("routing", e)) {
                std::fprintf(stderr, "fixture insert failed: routing[%" PRIu64
                                     "]\n",
                             net);
                std::exit(1);
            }
        }
        // Per-flow conntrack state, covering the workload's flow_id range —
        // the churny table the placement pass has to weigh against the
        // small metadata tables.
        for (std::uint64_t f = 0; f < 2000; ++f) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(f)};
            e.action_index = 0;
            if (!emu->insert_entry("conntrack", e)) {
                std::fprintf(stderr,
                             "fixture insert failed: conntrack[%" PRIu64 "]\n",
                             f);
                std::exit(1);
            }
        }
        return emu;
    };

    util::Rng rng(3);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"direction", 0, 1}, {"appliance_key", 0, 3}, {"eni_mac", 0, 3},
         {"vni_key", 0, 3}, {"flow_id", 0, 1999}, {"src_ip", 0, 9999},
         {"dst_ip", 0, 9999}, {"dst_port", 0, 1023},
         {"ipv4_dst", 0, 0x05FFFFFF}},
        2000, rng);
    const int window_packets = quick ? 4000 : 15000;

    auto base_emu = make_emulator(program);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 7);
    bench::WindowResult base = bench::run_window(*base_emu, wl,
                                                 window_packets, 5.0);
    profile::CounterMap map = profile::CounterMap::build(program, program);
    profile::RuntimeProfile prof =
        map.translate(program, base_emu->read_counters());

    std::printf("\nbaseline (all tables in EMEM): %.1f cycles/pkt  %.2f Gbps\n\n",
                base.mean_cycles, base.throughput_gbps);

    util::TextTable placement({"SRAM budget", "tables in SRAM", "bytes used",
                               "cycles/pkt", "Gbps", "speedup"});
    double best_gbps = base.throughput_gbps;
    for (double kb : {0.0, 1.0, 4.0, 16.0, 64.0, 1024.0}) {
        cost::CostParams params = nic.costs;
        params.fast_memory_bytes = kb * 1024.0;
        cost::CostModel model(params, {});
        opt::TierAssignment placed =
            opt::assign_memory_tiers(program, prof, model);

        auto emu = make_emulator(placed.program);
        trafficgen::Workload wl2(flows, trafficgen::Locality::Uniform, 0.0, 7);
        bench::WindowResult w =
            bench::run_window(*emu, wl2, window_packets, 5.0);
        best_gbps = std::max(best_gbps, w.throughput_gbps);
        placement.add_row(
            {util::format("%.0f KB", kb),
             std::to_string(placed.tables_in_fast),
             util::format("%.0f", placed.fast_bytes_used),
             util::format("%.1f", w.mean_cycles),
             util::format("%.2f", w.throughput_gbps),
             util::format("%.2fx", base.mean_cycles / w.mean_cycles)});
    }
    std::printf("%s", placement.to_string().c_str());
    std::printf("\nexpected: latency falls monotonically with the SRAM budget;\n"
                "the density greedy fills small hot tables first (metadata\n"
                "lookups), then the multi-probe LPM routing table.\n");

    // ------------------------------------------------------------- part 3
    bench::section("Emulator integration: tiered cache + tier.* telemetry");

    ir::Program chain = ir::chain_of_exact_tables("hm", 4, 2, 1);
    analysis::PipeletOptions popt;
    popt.max_length = 6;
    auto pipelets = analysis::form_pipelets(chain, popt);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    for (std::size_t i = 0; i < pipelets[0].nodes.size(); ++i) {
        plan.layout.order.push_back(i);
    }
    plan.layout.caches = {opt::Segment{0, 2}};
    plan.layout.cache_config.capacity = quick ? 512 : 2048;
    plan.layout.cache_config.max_insert_per_sec = 1e9;
    plan.layout.cache_config.tiers.dram_entries = quick ? 4096 : 16384;
    plan.layout.cache_config.tiers.host_entries = quick ? 16384 : 65536;
    ir::Program cached = opt::apply_plans(chain, pipelets, {plan});

    sim::Emulator emu(sim::bluefield2_model(), cached,
                      profile::InstrumentationConfig{});
    util::Rng rng3(17);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 4; ++i) {
        tuple.push_back({util::format("f%d", i), 0, 1023});
    }
    trafficgen::FlowSet chain_flows = trafficgen::FlowSet::generate(
        tuple, quick ? 8000 : 50'000, rng3);
    apps::install_flow_entries(emu, chain_flows);
    trafficgen::Workload wl3(chain_flows, trafficgen::Locality::Zipf, 1.1, 9);
    bench::WindowResult w3 =
        bench::run_window(emu, wl3, quick ? 5000 : 30'000, 2.0);

    telemetry::MetricsSnapshot snap = emu.telemetry_snapshot();
    const std::uint64_t t_lookups = snap.counter("tier.lookups");
    const std::uint64_t t_hits = snap.counter("tier.sram_hits") +
                                 snap.counter("tier.dram_hits") +
                                 snap.counter("tier.host_hits");
    std::printf("\n%.1f cycles/pkt  %.2f Gbps with a %zu/%zu/%zu-entry "
                "tiered cache\n",
                w3.mean_cycles, w3.throughput_gbps,
                plan.layout.cache_config.capacity,
                plan.layout.cache_config.tiers.dram_entries,
                plan.layout.cache_config.tiers.host_entries);
    std::printf("tier.lookups=%" PRIu64 " sram=%" PRIu64 " dram=%" PRIu64
                " host=%" PRIu64 " misses=%" PRIu64 " promotions=%" PRIu64
                " demotions=%" PRIu64 " dma_batches=%" PRIu64 "\n",
                t_lookups, snap.counter("tier.sram_hits"),
                snap.counter("tier.dram_hits"),
                snap.counter("tier.host_hits"), snap.counter("tier.misses"),
                snap.counter("tier.promotions"),
                snap.counter("tier.demotions"),
                snap.counter("tier.dma_batches"));
    if (telemetry::kEnabled) {
        if (t_lookups != t_hits + snap.counter("tier.misses")) {
            std::fprintf(stderr,
                         "CONSERVATION VIOLATION in tier.* telemetry\n");
            ok = false;
        }
        if (snap.counter("tier.dram_hits") + snap.counter("tier.host_hits") ==
            0) {
            std::fprintf(stderr,
                         "tiered cache never reached its lower tiers\n");
            ok = false;
        }
    }

    // ------------------------------------------------------------- report
    rep.param("flows", static_cast<double>(kFlows));
    rep.param("lookups_per_point", static_cast<double>(kLookups));
    rep.metric("throughput_gbps", best_gbps);
    rep.metric("baseline_gbps", base.throughput_gbps);
    rep.metric("tiered_flows", static_cast<double>(kFlows));
    rep.metric("tiered_eff_cycles", canonical.eff_cycles);
    rep.metric("tiered_goodput_mpps", canonical.goodput_mpps);
    rep.metric("tier_sram_hit_ratio", canonical.sram_ratio);
    rep.metric("tier_host_hit_ratio", canonical.host_ratio);
    rep.metric("tier_dma_fill", canonical.dma_fill);
    rep.write();

    if (!ok) {
        std::fprintf(stderr, "\nFAILED: tiered-store invariants violated\n");
        return 1;
    }
    return 0;
}
