// ablation_sampling — how counter sampling affects profile *accuracy* (the
// flip side of Fig 12's overhead story): "sampling a small fraction of
// traffic with the same sampling rate to update the counter will not alter
// the result" (§5.4.1) — true in expectation, but small windows at high
// sampling periods get noisy. We measure the error of the estimated drop
// rate and of the hot-pipelet ranking across sampling rates.
#include "bench/common.h"
#include "bench/report.h"
#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "cost/model.h"
#include "profile/counter_map.h"
#include "sim/nic_model.h"

using namespace pipeleon;

int main() {
    bench::section("Ablation: counter sampling vs profile accuracy");

    ir::Program program = apps::acl_routing_program(4, 4);
    sim::NicModel nic = sim::bluefield2_model();

    util::Rng rng(55);
    std::vector<trafficgen::FieldRange> tuple;
    for (auto& [name, key] : apps::acl_specs(4)) tuple.push_back({key, 0, 99999});
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 1000, rng);

    const double true_drop = 0.4;  // installed on acl_subnet

    util::TextTable table({"sampling", "packets", "est. drop rate",
                           "abs error", "top pipelet stable"});
    double worst_error_large_window = 0.0;
    for (double rate : {1.0, 1.0 / 16, 1.0 / 256, 1.0 / 1024}) {
        for (int packets : {4096, 65536}) {
            profile::InstrumentationConfig instr;
            instr.enabled = true;
            instr.sampling_rate = rate;
            sim::Emulator emu(nic, program, instr);
            trafficgen::Workload picker(flows, trafficgen::Locality::Uniform,
                                        0.0, 1);
            apps::install_acl_denies(emu, "acl_subnet", flows,
                                     picker.pick_flows(true_drop), "subnet_id");
            trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 2);
            bench::run_window(emu, wl, packets, 1.0);

            profile::CounterMap map = profile::CounterMap::build(program, program);
            profile::RuntimeProfile prof =
                map.translate(program, emu.read_counters());
            ir::NodeId acl = program.find_table("acl_subnet");
            double est = prof.drop_probability(program.node(acl));

            // Does the hottest pipelet match the unsampled ranking?
            auto pipelets = analysis::form_pipelets(program);
            cost::CostModel model(nic.costs, instr);
            auto top = analysis::top_k_pipelets(
                program, pipelets, prof, 0.01, [&](const analysis::Pipelet& p) {
                    return model.pipelet_latency(program, p, prof);
                });
            bool stable = !top.empty() && top[0].pipelet_id == 0;
            if (packets == 65536) {
                worst_error_large_window = std::max(worst_error_large_window,
                                                    std::fabs(est - true_drop));
            }

            table.add_row(
                {rate >= 1.0 ? "1/1" : util::format("1/%.0f", 1.0 / rate),
                 std::to_string(packets), util::format("%.3f", est),
                 util::format("%.3f", std::fabs(est - true_drop)),
                 stable ? "yes" : "NO"});
        }
    }
    std::printf("\n%s", table.to_string().c_str());
    std::printf("\nexpected: estimates stay within a few percent of the true\n"
                "drop rate even at 1/1024 sampling once the window holds\n"
                "enough packets; tiny windows at aggressive sampling get\n"
                "noisy — choose window x sampling jointly.\n");

    bench::Reporter rep("ablation_sampling", nic);
    rep.param("true_drop_rate", util::Json(true_drop));
    rep.metric("worst_abs_error_64k_window", worst_error_large_window);
    rep.write();
    return 0;
}
