// bench/micro_ring.cpp — the descriptor-ring I/O path's own economics
// (ISSUE 6), reported as first-class metrics so CI can gate them:
//   ring_push_pop_ns   — one raw SPSC push+pop through a DescriptorRing
//   dispatch_ns        — RSS hash + descriptor write per dispatched packet
//   ring_mpps          — wall-clock throughput of the dispatch -> poll loop
//   batch_mpps         — the same workload through bare process_batch
//   ring_overhead_pct  — (batch - ring) / batch wall-clock cost of the ring
//   allocs_per_poll    — heap allocations per steady-state offer/poll round
//                        (counted by this binary's operator new hook; the
//                        acceptance target is exactly 0)
//   throughput_gbps / latency_p99 — the gated pair, from emulated cycles
// Emits BENCH_micro_ring.json (pipeleon.bench_report/1).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/descriptor_ring.h"
#include "sim/nic_model.h"
#include "sim/rss.h"

using namespace pipeleon;

// ------------------------------------------------------- allocation hook
namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void note_alloc() {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    }
}

void* hook_alloc(std::size_t size) {
    note_alloc();
    void* p = std::malloc(size ? size : 1);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* hook_aligned(std::size_t size, std::size_t align) {
    note_alloc();
    void* p = nullptr;
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size ? size : align) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return hook_alloc(size); }
void* operator new[](std::size_t size) { return hook_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    return hook_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
    return hook_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kChainLen = 8;
constexpr int kFlows = 512;
constexpr std::size_t kBurst = 256;

std::vector<trafficgen::FieldRange> field_tuple() {
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        // snprintf, not string operator+: GCC 12 -O3 emits a bogus
        // -Wrestrict through char_traits when the concat inlines against
        // this binary's custom operator new, and CI builds with -Werror.
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    return tuple;
}

/// ns for one raw SPSC push + pop, single-threaded (the ring's fixed cost,
/// no hashing, no packet copy: a uint64 payload).
double measure_push_pop_ns(int rounds) {
    sim::DescriptorRing<std::uint64_t> ring(1024);
    std::uint64_t sink = 0;
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < kBurst; ++i) ring.try_push(i);
        ring.consume([&](std::uint64_t& v) {
            sink += v;
            return true;
        });
    }
    Clock::time_point t1 = Clock::now();
    if (sink == 0xdeadbeef) std::printf("unreachable\n");  // keep live
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(kBurst));
}

/// ns per dispatched packet: RSS hash over the steering tuple + the
/// descriptor (full Packet) copy into the RX slot. Rings are drained
/// without processing between bursts so dispatch never overflows.
double measure_dispatch_ns(sim::Emulator& emu, const sim::PacketBatch& batch,
                           int rounds) {
    sim::RssDispatcher io = emu.make_rings();
    Clock::time_point t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        io.dispatch_batch(batch);
        for (std::size_t q = 0; q < io.queue_count(); ++q) {
            io.queue(q).rx().consume([](sim::RxDesc&) { return true; });
        }
    }
    Clock::time_point t1 = Clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (static_cast<double>(rounds) * static_cast<double>(batch.size()));
}

struct LoopResult {
    double mpps = 0.0;
    double gbps = 0.0;
    double p99 = 0.0;
    double allocs_per_round = 0.0;
};

/// Wall-clock throughput of the full ring loop (dispatch -> poll) or the
/// bare batch engine on the identical pristine burst.
LoopResult run_loop(sim::Emulator& emu, const sim::PacketBatch& pristine,
                    bool use_rings, int rounds) {
    sim::RingConfig cfg;
    cfg.rx_capacity = 2 * kBurst;
    sim::RssDispatcher io = emu.make_rings(cfg);
    sim::PacketBatch work = pristine;
    sim::BatchResult out;
    // Warm-up must cycle every RX slot of every queue at least once so each
    // slot's inline Packet reaches the workload's field capacity — a burst
    // spreads ~kBurst/queues packets per queue, so covering the 2*kBurst
    // slots per queue needs ~2*queues rounds; 40 is ample for 8 queues.
    for (int i = 0; i < 40; ++i) {
        if (use_rings) {
            io.dispatch_batch(pristine, emu.now_seconds());
            emu.poll(io, out);
        } else {
            work = pristine;
            emu.process_batch(work, out);
        }
    }

    g_alloc_count.store(0);
    g_counting.store(true);
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < rounds; ++i) {
        if (use_rings) {
            io.dispatch_batch(pristine, emu.now_seconds());
            emu.poll(io, out);
        } else {
            work = pristine;
            emu.process_batch(work, out);
        }
    }
    Clock::time_point t1 = Clock::now();
    g_counting.store(false);

    const double secs = std::chrono::duration<double>(t1 - t0).count();
    LoopResult res;
    res.mpps = static_cast<double>(rounds) *
               static_cast<double>(pristine.size()) / secs / 1e6;
    double cycles = 0.0;
    for (const sim::ProcessResult& r : out.results) cycles += r.cycles;
    res.gbps = emu.throughput_gbps(cycles /
                                   static_cast<double>(out.results.size()));
    res.allocs_per_round = static_cast<double>(g_alloc_count.load()) /
                           static_cast<double>(rounds);
    const telemetry::LatencyHistogram hist = emu.latency_histogram();
    if (hist.count() > 0) res.p99 = hist.p99();
    return res;
}

}  // namespace

int main() {
    const bool quick = bench::BenchEnv::quick();
    const int kRounds = quick ? 40 : 400;

    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    util::Rng rng(41);
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(field_tuple(), kFlows, rng);

    bench::Reporter rep("micro_ring", sim::bluefield2_model());
    rep.param("burst_size", static_cast<double>(kBurst));
    rep.param("flows", static_cast<double>(kFlows));
    rep.param("chain_len", static_cast<double>(kChainLen));

    bench::section("raw ring + dispatch costs");
    const double push_pop_ns = measure_push_pop_ns(kRounds * 4);
    std::printf("SPSC push+pop       : %8.2f ns/item\n", push_pop_ns);
    rep.metric("ring_push_pop_ns", push_pop_ns);

    sim::Emulator cost_emu(sim::bluefield2_model(), prog, {});
    cost_emu.set_worker_count(4);
    apps::install_flow_entries(cost_emu, flows);
    trafficgen::Workload cost_wl(flows, trafficgen::Locality::Zipf, 1.1, 31);
    const sim::PacketBatch cost_batch =
        cost_wl.next_batch(cost_emu.fields(), kBurst);
    const double dispatch_ns =
        measure_dispatch_ns(cost_emu, cost_batch, kRounds);
    std::printf("RSS dispatch        : %8.2f ns/packet\n", dispatch_ns);
    rep.metric("dispatch_ns", dispatch_ns);

    bench::section("ring loop vs bare batch engine (4 workers)");
    sim::Emulator ring_emu(sim::bluefield2_model(), prog, {});
    ring_emu.set_worker_count(4);
    apps::install_flow_entries(ring_emu, flows);
    trafficgen::Workload ring_wl(flows, trafficgen::Locality::Zipf, 1.1, 31);
    const sim::PacketBatch pristine =
        ring_wl.next_batch(ring_emu.fields(), kBurst);

    const LoopResult ring = run_loop(ring_emu, pristine, true, kRounds);
    sim::Emulator batch_emu(sim::bluefield2_model(), prog, {});
    batch_emu.set_worker_count(4);
    apps::install_flow_entries(batch_emu, flows);
    const LoopResult batch = run_loop(batch_emu, pristine, false, kRounds);

    const double overhead_pct =
        batch.mpps > 0.0 ? (batch.mpps - ring.mpps) / batch.mpps * 100.0 : 0.0;
    std::printf("%12s %10s %10s %14s\n", "path", "Mpps", "Gbps",
                "allocs/round");
    std::printf("%12s %10.3f %10.3f %14.2f\n", "ring", ring.mpps, ring.gbps,
                ring.allocs_per_round);
    std::printf("%12s %10.3f %10.3f %14.2f\n", "batch", batch.mpps,
                batch.gbps, batch.allocs_per_round);
    std::printf("ring overhead: %.1f%% of batch wall-clock throughput\n",
                overhead_pct);

    rep.metric("ring_mpps", ring.mpps);
    rep.metric("batch_mpps", batch.mpps);
    rep.metric("ring_overhead_pct", overhead_pct);
    rep.metric("allocs_per_poll", ring.allocs_per_round);
    rep.metric("throughput_mpps", ring.mpps);
    rep.metric("throughput_gbps", ring.gbps);
    if (ring.p99 > 0.0) rep.metric("latency_p99", ring.p99);

    rep.write();
    return 0;
}
