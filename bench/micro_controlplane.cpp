// Control-plane pipeline microbenchmark (ISSUE 3): measures what the epoch
// queue buys the control plane — the wall-clock cost of one mutator call
// when the data plane is idle (synchronous drain) versus while a batch is
// in flight (enqueue-and-return), plus the latency of a full epoch swap
// (program + remapped entries). Prints a small table; the interesting
// number is the in-flight enqueue cost, which is a queue push instead of a
// wait for the batch to finish.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench/common.h"
#include "bench/report.h"
#include "ir/builder.h"
#include "sim/nic_model.h"

using namespace pipeleon;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_call(Clock::time_point t0, Clock::time_point t1, int calls) {
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(calls);
}

ir::TableEntry entry_for(std::uint64_t key) {
    ir::TableEntry e;
    e.key = {ir::FieldMatch::exact(key)};
    e.action_index = 0;
    return e;
}

}  // namespace

int main() {
    constexpr int kChainLen = 6;
    const int kOps = bench::BenchEnv::quick() ? 2000 : 20000;

    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(17);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(tuple, 256, rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 23);

    // --- idle: every mutator drains its own op synchronously.
    std::uint64_t key = 1u << 20;
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < kOps; ++i) emu.insert_entry("t0", entry_for(key++));
    Clock::time_point t1 = Clock::now();
    const double idle_ns = ns_per_call(t0, t1, kOps);

    // --- in flight: a background thread keeps batches running; the control
    // thread's inserts enqueue and return without waiting for the batch.
    std::atomic<bool> stop{false};
    std::thread data([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            sim::PacketBatch batch = wl.next_batch(emu.fields(), 4096);
            emu.process_batch(batch);
        }
    });
    // Let the data plane spin up before measuring.
    while (!emu.batch_in_flight()) {
        std::this_thread::yield();
        if (stop.load()) break;
    }
    t0 = Clock::now();
    for (int i = 0; i < kOps; ++i) emu.insert_entry("t0", entry_for(key++));
    t1 = Clock::now();
    const double inflight_ns = ns_per_call(t0, t1, kOps);
    stop.store(true);
    data.join();
    emu.drain_control();

    // --- epoch swap: program + full entry reload in one transition.
    std::vector<ir::EntryLoad> loads;
    for (int i = 0; i < kChainLen; ++i) {
        ir::EntryLoad load;
        load.table = "t" + std::to_string(i);
        for (std::uint64_t k = 0; k < 256; ++k) load.entries.push_back(entry_for(k));
        loads.push_back(std::move(load));
    }
    const int kSwaps = bench::BenchEnv::quick() ? 20 : 200;
    t0 = Clock::now();
    for (int i = 0; i < kSwaps; ++i) {
        sim::EpochSwap swap;
        swap.program = prog;
        swap.entries = loads;
        swap.incremental = true;
        emu.apply_epoch(std::move(swap));
    }
    t1 = Clock::now();
    const double swap_ns = ns_per_call(t0, t1, kSwaps);
    const sim::Emulator::ControlPlaneStats stats = emu.control_stats();

    std::printf("# micro_controlplane: control-plane op latency (ns/op)\n");
    std::printf("%-28s %14s\n", "path", "ns/op");
    std::printf("%-28s %14.1f\n", "insert (idle, sync drain)", idle_ns);
    std::printf("%-28s %14.1f\n", "insert (batch in flight)", inflight_ns);
    std::printf("%-28s %14.1f\n", "epoch swap (prog+entries)", swap_ns);
    std::printf("\n# queue stats: submitted=%llu sync=%llu deferred=%llu "
                "drained=%llu max_depth=%zu epoch=%llu\n",
                static_cast<unsigned long long>(stats.ops_submitted),
                static_cast<unsigned long long>(stats.ops_applied_sync),
                static_cast<unsigned long long>(stats.ops_deferred),
                static_cast<unsigned long long>(stats.ops_drained),
                stats.max_queue_depth,
                static_cast<unsigned long long>(stats.epoch));

    bench::Reporter rep("micro_controlplane", sim::bluefield2_model());
    rep.param("ops", util::Json(std::uint64_t(kOps)));
    rep.param("swaps", util::Json(std::uint64_t(kSwaps)));
    rep.metric("insert_idle_ns", idle_ns);
    rep.metric("insert_inflight_ns", inflight_ns);
    rep.metric("epoch_swap_ns", swap_ns);
    rep.metric("epochs", static_cast<double>(stats.epoch));
    rep.write();
    return 0;
}
