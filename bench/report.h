// bench/report.h — the one-per-binary bench report (ISSUE 4). Each bench
// main owns a Reporter, feeds it params and metrics alongside its human
// tables, and calls write() last: that emits BENCH_<name>.json in the
// "pipeleon.bench_report/1" schema (see telemetry/bench_report.h) so CI can
// track a perf trajectory across PRs instead of diffing free-form text.
#pragma once

#include <cstdio>
#include <string>

#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "telemetry/bench_report.h"

namespace pipeleon::bench {

class Reporter {
public:
    Reporter(std::string bench, const sim::NicModel& model)
        : report_(std::move(bench), model.name) {}
    explicit Reporter(std::string bench, std::string nic_model = "host")
        : report_(std::move(bench), std::move(nic_model)) {}

    void param(const std::string& name, util::Json value) {
        report_.set_param(name, std::move(value));
    }
    void metric(const std::string& name, double value) {
        report_.set_metric(name, value);
    }
    double metric(const std::string& name) const { return report_.metric(name); }

    /// Fills the required emulator-derived metrics: latency_p50/p99 from the
    /// current window's latency histogram (skipped when the window is empty
    /// or telemetry is compiled out), drops and epochs from lifetime stats.
    void from_emulator(const sim::Emulator& emulator) {
        telemetry::LatencyHistogram hist = emulator.latency_histogram();
        if (hist.count() > 0) {
            report_.set_metric("latency_p50", hist.p50());
            report_.set_metric("latency_p99", hist.p99());
        }
        report_.set_metric("drops",
                           static_cast<double>(emulator.packets_dropped()));
        report_.set_metric("epochs", static_cast<double>(emulator.epoch()));
    }

    /// Writes BENCH_<bench>.json (under $PIPELEON_BENCH_DIR or the working
    /// directory) and echoes the path. Call once, at the end of main.
    void write() const {
        const std::string path = report_.write();
        std::printf("\n[bench-report] wrote %s\n", path.c_str());
    }

    telemetry::BenchReport& raw() { return report_; }

private:
    telemetry::BenchReport report_;
};

}  // namespace pipeleon::bench
