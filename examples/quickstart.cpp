// quickstart — the smallest end-to-end Pipeleon session:
//   1. build a P4 program (three ternary classifier tables + a router),
//   2. run traffic on the emulated SmartNIC to collect a runtime profile,
//   3. let the controller pick and deploy a plan (here: a flow cache over
//      the ternary tables),
//   4. measure the speedup.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "ir/builder.h"
#include "ir/dot.h"
#include "runtime/controller.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "trafficgen/workload.h"

using namespace pipeleon;

int main() {
    // --- 1. A small program: 3 ternary classifier tables, then routing.
    ir::ProgramBuilder builder("quickstart");
    for (int i = 0; i < 3; ++i) {
        std::string name = "classify" + std::to_string(i);
        builder.append(ir::TableSpec(name)
                           .key("field" + std::to_string(i), ir::MatchKind::Ternary)
                           .noop_action(name + "_permit", 2)
                           .noop_action(name + "_mark", 2)
                           .default_to(name + "_permit")
                           .build());
    }
    ir::Action fwd;
    fwd.name = "fwd";
    fwd.primitives.push_back(ir::Primitive::forward_from_arg(0));
    builder.append(ir::TableSpec("route").key("dst").action(fwd).build());
    ir::Program program = builder.build();

    // --- 2. Deploy on an emulated BlueField2 with a Pipeleon controller.
    sim::Emulator emulator(sim::bluefield2_model(), program, {});
    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cost::CostModel model(sim::bluefield2_model().costs, {});
    runtime::Controller controller(emulator, program, model, cfg);

    // Control-plane state goes through the controller's API mapper, exactly
    // as an operator would manage the original program.
    for (int i = 0; i < 3; ++i) {
        std::string table = "classify" + std::to_string(i);
        for (std::uint64_t m = 0; m < 4; ++m) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::ternary(m, 0xF0 >> m)};
            e.action_index = static_cast<int>(m % 2);
            e.priority = static_cast<int>(m);
            controller.api().insert(emulator, table, e);
        }
    }
    for (std::uint64_t d = 0; d < 1024; ++d) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::exact(d)};
        e.action_index = 0;
        e.action_data = {d % 16};
        controller.api().insert(emulator, "route", e);
    }

    util::Rng rng(7);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"field0", 0, 255}, {"field1", 0, 255}, {"field2", 0, 255},
         {"dst", 0, 1023}},
        2000, rng);
    trafficgen::Workload workload(flows, trafficgen::Locality::Zipf, 1.1, 11);

    auto run_packets = [&](int n) {
        util::RunningStats cycles;
        for (int i = 0; i < n; ++i) {
            sim::Packet pkt = workload.next_packet(emulator.fields());
            cycles.add(emulator.process(pkt).cycles);
            emulator.advance_time(1e-6);
        }
        return cycles;
    };

    std::printf("== quickstart: profile-guided SmartNIC optimization ==\n\n");
    util::RunningStats before = run_packets(20000);
    std::printf("baseline     : %7.1f cycles/packet  (%5.1f Gbps)\n",
                before.mean(), emulator.throughput_gbps(before.mean()));

    // --- 3. One controller tick: profile -> top-k -> search -> deploy.
    emulator.advance_time(5.0);
    runtime::TickResult tick = controller.tick();
    if (tick.outcome.has_value()) {
        std::printf("\noptimizer    : %zu pipelets, %zu candidates, "
                    "predicted %.1f -> %.1f cycles\n",
                    tick.outcome->pipelet_count,
                    tick.outcome->candidates_evaluated,
                    tick.outcome->baseline_latency,
                    tick.outcome->predicted_latency);
        for (const opt::PipeletPlan& plan : tick.outcome->plans) {
            std::printf("  plan for pipelet %d: %s\n", plan.pipelet_id,
                        plan.layout.to_string().c_str());
        }
    }
    std::printf("deployed     : %s\n\n", tick.deployed ? "yes" : "no");

    // --- 4. Measure again on the optimized layout (warm the caches first).
    run_packets(5000);
    util::RunningStats after = run_packets(20000);
    std::printf("optimized    : %7.1f cycles/packet  (%5.1f Gbps)\n",
                after.mean(), emulator.throughput_gbps(after.mean()));
    std::printf("speedup      : %.2fx\n", before.mean() / after.mean());

    // Bonus: the optimized layout as Graphviz, for the curious.
    std::printf("\n--- optimized pipeline (DOT) ---\n%s",
                ir::to_dot(emulator.program()).c_str());
    return 0;
}
