// acl_firewall — the paper's motivating scenario (Fig 2) as an application:
// a firewall pipeline whose ACL ordering is continuously adapted to traffic.
//
// The program starts with four ACL tables (cloud / tenant / subnet / vm),
// continues with regular processing, and ends with a routing table. Traffic
// phases shift which ACL does the dropping; the Pipeleon controller observes
// the per-table drop rates and promotes the heavy dropper to the front,
// while a static deployment keeps paying for packets that die late.
//
// Build & run:  ./build/examples/acl_firewall
#include <cstdio>

#include "apps/scenarios.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"
#include "util/strings.h"

using namespace pipeleon;

namespace {

struct Phase {
    const char* name;
    const char* hot_acl;       // table that should deny this phase's traffic
    const char* hot_key_field; // the field its entries match
    double deny_fraction;
};

}  // namespace

int main() {
    ir::Program program = apps::acl_routing_program(/*regular_tables=*/4);
    sim::NicModel nic = sim::bluefield2_model();
    sim::Emulator emulator(nic, program, {});

    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.allow_cache = false;  // isolate the reordering story
    cfg.optimizer.search.allow_merge = false;
    cfg.detector.threshold = 0.05;
    cost::CostModel model(nic.costs, {});
    runtime::Controller controller(emulator, program, model, cfg);

    // Flow universe: each ACL matches a different header field.
    util::Rng rng(2023);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"cloud_id", 0, 499}, {"tenant_id", 0, 499}, {"subnet_id", 0, 499},
         {"vm_id", 0, 499}, {"ipv4_dst", 0, 0xFFFF}},
        500, rng);
    trafficgen::Workload workload(flows, trafficgen::Locality::Uniform, 0.0, 3);

    // A default route so routed packets actually forward.
    ir::TableEntry route;
    route.key = {ir::FieldMatch::lpm(0, 0)};
    route.action_index = 0;
    route.action_data = {1};
    controller.api().insert(emulator, "routing", route);

    const std::vector<Phase> phases = {
        {"tenant attack", "acl_tenant", "tenant_id", 0.6},
        {"VM scanning", "acl_vm", "vm_id", 0.7},
        {"subnet sweep", "acl_subnet", "subnet_id", 0.5},
    };

    std::printf("== acl_firewall: adapting ACL order to traffic (Fig 2) ==\n\n");
    std::printf("%-16s %-12s %10s %12s %s\n", "phase", "hot ACL", "drop rate",
                "cycles/pkt", "pipeline front");
    std::printf("%s\n", std::string(78, '-').c_str());

    const Phase* previous = nullptr;
    for (const Phase& phase : phases) {
        // Re-point the deny rules: clear the previous phase's hot ACL and
        // install denies covering `deny_fraction` of flows on this one.
        if (previous != nullptr) {
            for (std::size_t f = 0; f < flows.size(); ++f) {
                controller.api().erase(
                    emulator, previous->hot_acl,
                    {ir::FieldMatch::exact(
                        flows.value(f, previous->hot_key_field))});
            }
        }
        std::vector<std::size_t> deny = workload.pick_flows(phase.deny_fraction);
        for (std::size_t f : deny) {
            ir::TableEntry e = flows.exact_entry(f, {phase.hot_key_field}, 1);
            controller.api().insert(emulator, phase.hot_acl, e);
        }
        previous = &phase;

        // Drive a profiling window of traffic, then let Pipeleon react.
        for (int round = 0; round < 2; ++round) {
            util::RunningStats cycles;
            std::uint64_t dropped = 0;
            for (int i = 0; i < 20000; ++i) {
                sim::Packet pkt = workload.next_packet(emulator.fields());
                sim::ProcessResult r = emulator.process(pkt);
                cycles.add(r.cycles);
                dropped += r.dropped ? 1 : 0;
            }
            emulator.advance_time(5.0);
            controller.tick();

            if (round == 1) {
                const ir::Node& front =
                    emulator.program().node(emulator.program().root());
                std::printf("%-16s %-12s %9.1f%% %12.1f %s\n", phase.name,
                            phase.hot_acl,
                            100.0 * static_cast<double>(dropped) / 20000.0,
                            cycles.mean(), front.table.name.c_str());
            }
        }
    }

    std::printf(
        "\nThe pipeline front follows the hot ACL: dropped packets now die\n"
        "after one table lookup instead of traversing the whole pipeline.\n");
    return 0;
}
