// dash_gateway — the §5.3.2 packet-routing scenario: a DASH-style gateway
// pipeline (direction lookup, metadata setup, connection tracking, three
// ACL levels, LPM routing) on an Agilio-CX-like target, where Pipeleon
// merges the small static metadata tables and reorders/caches the ACLs
// depending on the workload.
//
// Build & run:  ./build/examples/dash_gateway
#include <cstdio>

#include "apps/scenarios.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"

using namespace pipeleon;

int main() {
    ir::Program program = apps::dash_routing_program();
    sim::NicModel nic = sim::agilio_cx_model();
    sim::Emulator emulator(nic, program, {});

    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.max_merge_len = 4;  // let it fuse the metadata block
    cfg.detector.threshold = 0.05;
    cost::CostModel model(nic.costs, {});
    runtime::Controller controller(emulator, program, model, cfg);

    // Small static config tables (the merge-friendly region).
    for (std::uint64_t d = 0; d < 2; ++d) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::exact(d)};
        e.action_index = 0;
        e.action_data = {d};
        controller.api().insert(emulator, "direction_lookup", e);
    }
    for (const char* table : {"appliance", "eni", "vni"}) {
        for (std::uint64_t k = 0; k < 4; ++k) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(k)};
            e.action_index = 0;
            e.action_data = {k + 100};
            controller.api().insert(emulator, table, e);
        }
    }
    // Routes: a couple of prefixes plus a default.
    int prefix = 8;
    for (std::uint64_t net = 0; net < 3; ++net) {
        ir::TableEntry e;
        e.key = {ir::FieldMatch::lpm(net << 24, prefix)};
        e.action_index = 0;
        e.action_data = {net};
        controller.api().insert(emulator, "routing", e);
    }

    // Workload: long-lived flows with biased ACL drops at stage 2.
    util::Rng rng(5);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"direction", 0, 1}, {"appliance_key", 0, 3}, {"eni_mac", 0, 3},
         {"vni_key", 0, 3}, {"flow_id", 0, 9999}, {"src_ip", 0, 0xFFFF},
         {"dst_ip", 0, 0xFFFF}, {"dst_port", 0, 1023},
         {"ipv4_dst", 0, 0x02FFFFFF}},
        4000, rng);
    trafficgen::Workload workload(flows, trafficgen::Locality::Zipf, 1.2, 17);
    for (std::size_t f : workload.pick_flows(0.4)) {
        controller.api().insert(emulator, "acl_stage2",
                                flows.exact_entry(f, {"dst_ip"}, 1));
    }

    auto window = [&](int packets) {
        util::RunningStats cycles;
        for (int i = 0; i < packets; ++i) {
            sim::Packet pkt = workload.next_packet(emulator.fields());
            cycles.add(emulator.process(pkt).cycles);
            emulator.advance_time(2e-6);
        }
        emulator.advance_time(10.0);
        return cycles;
    };

    std::printf("== dash_gateway: DASH pipeline on an Agilio-CX model ==\n\n");
    util::RunningStats baseline = window(30000);
    std::printf("original layout : %8.1f cycles/pkt  (%5.2f Gbps)\n",
                baseline.mean(), emulator.throughput_gbps(baseline.mean()));

    runtime::TickResult tick = controller.tick();
    if (tick.downtime_s > 0.0) {
        std::printf("reconfiguration : %.1f s service interruption "
                    "(micro-engine reflash)\n",
                    tick.downtime_s);
    }
    if (tick.outcome.has_value()) {
        for (const opt::PipeletPlan& plan : tick.outcome->plans) {
            std::printf("  plan: pipelet %d -> %s\n", plan.pipelet_id,
                        plan.layout.to_string().c_str());
        }
    }

    window(5000);  // warm any caches
    util::RunningStats optimized = window(30000);
    std::printf("optimized layout: %8.1f cycles/pkt  (%5.2f Gbps)\n",
                optimized.mean(), emulator.throughput_gbps(optimized.mean()));
    std::printf("improvement     : %+.1f%%\n",
                100.0 * (baseline.mean() / optimized.mean() - 1.0));

    std::printf("\nDeployed tables:\n");
    for (ir::NodeId id : emulator.program().topo_order()) {
        const ir::Node& n = emulator.program().node(id);
        if (n.is_table()) {
            std::printf("  %-28s role=%-12s entries=%zu\n", n.table.name.c_str(),
                        ir::to_string(n.table.role),
                        emulator.entry_count(n.table.name) +
                            emulator.cache_size(n.table.name));
        }
    }
    return 0;
}
