// Tests for the batched match path (sim/match_batch.h, DESIGN.md §15):
// randomized scalar-vs-SIMD hash equivalence across every dispatch tier,
// CacheStore::lookup_group vs sequential lookup (results AND LRU state),
// pipeline-on/off and deterministic-mode bit-identity through the emulator,
// NUMA-aware RETA steering (balance + dispatcher/batch agreement), and the
// hash-once contract (RxDesc::flow_hash stamped by the dispatcher).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "sim/emulator.h"
#include "sim/match_batch.h"
#include "sim/nic_model.h"
#include "sim/rss.h"
#include "sim/table_state.h"
#include "trafficgen/workload.h"
#include "util/rng.h"

namespace pipeleon::sim {
namespace {

constexpr int kChainLen = 6;
constexpr int kFlows = 128;

std::vector<SimdTier> available_tiers() {
    std::vector<SimdTier> tiers = {SimdTier::Scalar};
    if (static_cast<int>(cpu_simd_tier()) >= static_cast<int>(SimdTier::Sse2)) {
        tiers.push_back(SimdTier::Sse2);
    }
    if (static_cast<int>(cpu_simd_tier()) >= static_cast<int>(SimdTier::Avx2)) {
        tiers.push_back(SimdTier::Avx2);
    }
    return tiers;
}

// ------------------------------------------------------- hash equivalence

/// Every SIMD tier must produce bit-identical hashes to the scalar word
/// references — and the references themselves must match the production
/// kernels they stand in for (rss_hash over a Packet, KeyVecHash over a
/// KeyVec) — across randomized field counts and values.
TEST(MatchBatch, HashEquivalenceAcrossTiersRandomized) {
    util::Rng rng(0x5eed);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n_fields = 1 + rng.next_u64() % 12;
        // Field-major gather buffer, all kHashGroup lanes populated.
        std::vector<std::uint64_t> words(n_fields * kHashGroup);
        for (auto& w : words) w = rng.next_u64();

        std::uint64_t ref_rss[kHashGroup];
        std::uint64_t ref_key[kHashGroup];
        for (std::size_t lane = 0; lane < kHashGroup; ++lane) {
            std::vector<std::uint64_t> key(n_fields);
            for (std::size_t f = 0; f < n_fields; ++f) {
                key[f] = words[f * kHashGroup + lane];
            }
            ref_rss[lane] = rss_hash_words(key.data(), n_fields);
            ref_key[lane] = key_hash_words(key.data(), n_fields);

            // Anchor the references against the production kernels.
            Packet pkt;
            std::vector<FieldId> fields(n_fields);
            for (std::size_t f = 0; f < n_fields; ++f) {
                fields[f] = static_cast<FieldId>(f);
                pkt.set(fields[f], key[f]);
            }
            ASSERT_EQ(ref_rss[lane], rss_hash(pkt, fields.data(), n_fields));
            ASSERT_EQ(ref_key[lane],
                      static_cast<std::uint64_t>(KeyVecHash{}(key)));
            ASSERT_EQ(ref_key[lane], CacheStore::key_hash(key));
        }

        for (SimdTier tier : available_tiers()) {
            std::uint64_t out[kHashGroup];
            rss_hash8(words.data(), n_fields, out, tier);
            for (std::size_t lane = 0; lane < kHashGroup; ++lane) {
                ASSERT_EQ(out[lane], ref_rss[lane])
                    << "rss tier=" << simd_tier_name(tier) << " lane=" << lane
                    << " n_fields=" << n_fields;
            }
            key_hash8(words.data(), n_fields, out, tier);
            for (std::size_t lane = 0; lane < kHashGroup; ++lane) {
                ASSERT_EQ(out[lane], ref_key[lane])
                    << "key tier=" << simd_tier_name(tier) << " lane=" << lane
                    << " n_fields=" << n_fields;
            }
        }
    }
}

/// Zero-field keys (an empty steering tuple) hash to the same constant on
/// every tier.
TEST(MatchBatch, ZeroFieldKeysAgreeAcrossTiers) {
    std::uint64_t ref[kHashGroup];
    rss_hash8(nullptr, 0, ref, SimdTier::Scalar);
    for (SimdTier tier : available_tiers()) {
        std::uint64_t out[kHashGroup];
        rss_hash8(nullptr, 0, out, tier);
        for (std::size_t lane = 0; lane < kHashGroup; ++lane) {
            EXPECT_EQ(out[lane], ref[lane]);
        }
    }
}

/// PIPELEON_SIMD-style cap strings parse to the documented tiers.
TEST(MatchBatch, SimdTierCapParsing) {
    EXPECT_EQ(simd_tier_cap("0"), SimdTier::Scalar);
    EXPECT_EQ(simd_tier_cap("scalar"), SimdTier::Scalar);
    EXPECT_EQ(simd_tier_cap("1"), SimdTier::Sse2);
    EXPECT_EQ(simd_tier_cap("sse2"), SimdTier::Sse2);
    EXPECT_EQ(simd_tier_cap("2"), SimdTier::Avx2);
    EXPECT_EQ(simd_tier_cap("avx2"), SimdTier::Avx2);
    EXPECT_EQ(simd_tier_cap(nullptr), SimdTier::Avx2);  // no cap
    EXPECT_EQ(simd_tier_cap(""), SimdTier::Avx2);
}

/// The test override forces simd_tier() down to any supported tier and
/// clears back to the process-wide resolution.
TEST(MatchBatch, TierOverrideForcesAndClears) {
    const SimdTier resolved = simd_tier();
    set_simd_tier_for_test(SimdTier::Scalar);
    EXPECT_EQ(simd_tier(), SimdTier::Scalar);
    MatchBatcher forced;  // picks up the overridden tier
    EXPECT_EQ(forced.tier(), SimdTier::Scalar);
    clear_simd_tier_for_test();
    EXPECT_EQ(simd_tier(), resolved);
}

/// MatchBatcher group gather: hashing packets through rss_group/key_group
/// equals hashing each packet's gathered key alone, for every group size
/// 1..kHashGroup (partial tail groups must not read or write past n).
TEST(MatchBatch, BatcherGroupMatchesSingleKeyForAllGroupSizes) {
    util::Rng rng(42);
    const std::size_t n_fields = 5;
    std::vector<FieldId> fields;
    for (std::size_t f = 0; f < n_fields; ++f) {
        fields.push_back(static_cast<FieldId>(f));
    }
    std::vector<Packet> pkts(kHashGroup);
    for (Packet& p : pkts) {
        for (FieldId f : fields) p.set(f, rng.next_u64());
    }
    for (SimdTier tier : available_tiers()) {
        MatchBatcher b(tier);
        for (std::size_t n = 1; n <= kHashGroup; ++n) {
            std::uint64_t out[kHashGroup];
            std::fill(out, out + kHashGroup, 0xDEADBEEFULL);
            b.rss_group([&](std::size_t lane) -> const Packet& {
                return pkts[lane];
            }, n, fields.data(), n_fields, out);
            for (std::size_t lane = 0; lane < n; ++lane) {
                EXPECT_EQ(out[lane],
                          rss_hash(pkts[lane], fields.data(), n_fields));
            }
            for (std::size_t lane = n; lane < kHashGroup; ++lane) {
                EXPECT_EQ(out[lane], 0xDEADBEEFULL) << "wrote past n";
            }
            b.key_group([&](std::size_t lane) -> const Packet& {
                return pkts[lane];
            }, n, fields.data(), n_fields, out);
            for (std::size_t lane = 0; lane < n; ++lane) {
                KeyVec key;
                for (FieldId f : fields) key.push_back(pkts[lane].get(f));
                EXPECT_EQ(out[lane], static_cast<std::uint64_t>(KeyVecHash{}(key)));
            }
        }
    }
}

// -------------------------------------------------- lookup_group identity

KeyVec make_key(std::uint64_t k) { return KeyVec{k, k * 0x9e3779b97f4a7c15ULL}; }

CacheStore::CacheEntry make_entry(std::uint64_t k) {
    CacheStore::CacheEntry e;
    ReplayStep step;
    step.origin_node = static_cast<ir::NodeId>(k % 7);
    step.action_index = static_cast<int>(k % 3);
    e.steps.push_back(step);
    return e;
}

/// lookup_group must equal sequential lookup calls — same hits/misses AND
/// the same LRU state afterwards (exercised by driving both stores past
/// capacity and comparing subsequent eviction behavior).
TEST(MatchBatch, LookupGroupMatchesSequentialLookupAndLru) {
    ir::CacheConfig cfg;
    cfg.capacity = 256;
    cfg.max_insert_per_sec = 1e12;
    CacheStore seq(cfg);
    CacheStore grp(cfg);

    util::Rng rng(99);
    const std::uint64_t key_space = 512;  // 2x capacity: constant pressure
    double now = 0.0;
    for (int round = 0; round < 64; ++round) {
        // Probe a random group (mixed hits and misses) both ways.
        const std::size_t n = 1 + rng.next_u64() % 24;
        std::vector<KeyVec> keys(n);
        std::vector<const KeyVec*> key_ptrs(n);
        std::vector<std::uint64_t> hashes(n);
        for (std::size_t i = 0; i < n; ++i) {
            keys[i] = make_key(rng.next_u64() % key_space);
            key_ptrs[i] = &keys[i];
            hashes[i] = CacheStore::key_hash(keys[i]);
        }
        std::vector<const CacheStore::CacheEntry*> out(n, nullptr);
        grp.lookup_group(key_ptrs.data(), hashes.data(), n, out.data());
        for (std::size_t i = 0; i < n; ++i) {
            const CacheStore::CacheEntry* ref = seq.lookup(keys[i]);
            ASSERT_EQ(ref != nullptr, out[i] != nullptr)
                << "round " << round << " lane " << i;
            if (ref != nullptr) {
                ASSERT_EQ(ref->steps.size(), out[i]->steps.size());
                ASSERT_EQ(ref->steps[0].origin_node, out[i]->steps[0].origin_node);
            }
        }
        // Insert a few keys into both stores (same order): evictions pick
        // the LRU tail, so identical subsequent behavior proves the group
        // path's touches left identical LRU state.
        for (int j = 0; j < 8; ++j) {
            now += 1e-6;
            const KeyVec k = make_key(rng.next_u64() % key_space);
            const std::uint64_t v = k[0];
            ASSERT_EQ(seq.insert(k, make_entry(v), now),
                      grp.insert(k, make_entry(v), now));
        }
        ASSERT_EQ(seq.size(), grp.size());
    }
}

/// prefetch() is side-effect-free at any fill level, including empty.
TEST(MatchBatch, PrefetchIsSideEffectFree) {
    ir::CacheConfig cfg;
    cfg.capacity = 16;
    cfg.max_insert_per_sec = 1e12;
    CacheStore store(cfg);
    store.prefetch(0);  // empty index: must not fault
    store.prefetch(~0ULL);
    store.insert(make_key(1), make_entry(1), 0.0);
    const std::size_t before = store.size();
    for (std::uint64_t h = 0; h < 64; ++h) store.prefetch(h * 0x9e3779b9ULL);
    EXPECT_EQ(store.size(), before);
    EXPECT_NE(store.lookup(make_key(1)), nullptr);
}

// ------------------------------------------------- emulator bit-identity

trafficgen::FlowSet chain_flows(util::Rng& rng) {
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    return trafficgen::FlowSet::generate(tuple, kFlows, rng);
}

/// The chain program with a flow cache over its first half — the cache node
/// is the program root, so the batched probe pipeline engages.
ir::Program cached_chain() {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    analysis::PipeletOptions popt;
    popt.max_length = kChainLen + 2;
    auto pipelets = analysis::form_pipelets(prog, popt);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    for (std::size_t i = 0; i < pipelets[0].nodes.size(); ++i) {
        plan.layout.order.push_back(i);
    }
    plan.layout.caches = {opt::Segment{0, 2}};
    plan.layout.cache_config.capacity = 4096;
    plan.layout.cache_config.max_insert_per_sec = 1e9;
    return opt::apply_plans(prog, pipelets, {plan});
}

void pump_batches(Emulator& emu, trafficgen::Workload& wl, int packets,
                  std::size_t batch_size = 64) {
    int done = 0;
    while (done < packets) {
        std::size_t n = std::min<std::size_t>(
            batch_size, static_cast<std::size_t>(packets - done));
        PacketBatch batch = wl.next_batch(emu.fields(), n);
        BatchResult r = emu.process_batch(batch);
        ASSERT_EQ(r.results.size(), n);
        done += static_cast<int>(n);
    }
}

void expect_counters_identical(const profile::RawCounters& a,
                               const profile::RawCounters& b) {
    EXPECT_EQ(a.action_hits, b.action_hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.branch_true, b.branch_true);
    EXPECT_EQ(a.branch_false, b.branch_false);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.inserts_dropped, b.inserts_dropped);
    EXPECT_EQ(a.replays, b.replays);
    EXPECT_EQ(a.entries, b.entries);
}

void expect_latency_identical(const util::RunningStats& a,
                              const util::RunningStats& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());  // bit-identical, not just approximately
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

/// The batched probe pipeline never changes results: pipeline on vs off at
/// the same worker count — counters AND float latency accumulation are
/// bit-identical (hash reuse + prefetch only).
TEST(MatchBatch, PipelineOnOffBitIdentical) {
    ir::Program prog = cached_chain();
    profile::InstrumentationConfig instr;
    instr.sampling_rate = 1.0 / 4.0;
    instr.enabled = true;
    Emulator on(bluefield2_model(), prog, instr);
    Emulator off(bluefield2_model(), prog, instr);
    on.set_worker_count(4);
    off.set_worker_count(4);
    off.set_match_pipeline(false);
    EXPECT_TRUE(on.match_pipeline());
    EXPECT_FALSE(off.match_pipeline());

    util::Rng rng(7);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(on, flows);
    apps::install_flow_entries(off, flows);

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 3);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Zipf, 1.1, 3);
    pump_batches(on, wl_a, 4000);
    pump_batches(off, wl_b, 4000);

    EXPECT_EQ(on.packets_processed(), off.packets_processed());
    expect_counters_identical(on.read_counters(), off.read_counters());
    expect_latency_identical(on.latency_stats(), off.latency_stats());
}

/// Deterministic mode stays bit-identical to the scalar process() loop with
/// the pipeline knob on (deterministic batches take the sequential path
/// regardless), over the cached program where the pipeline would engage.
TEST(MatchBatch, DeterministicMatchesScalarWithPipelineOn) {
    ir::Program prog = cached_chain();
    Emulator scalar(bluefield2_model(), prog, {});
    Emulator batched(bluefield2_model(), prog, {});
    batched.set_worker_count(4);
    batched.set_deterministic(true);
    batched.set_match_pipeline(true);

    util::Rng rng(11);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(scalar, flows);
    apps::install_flow_entries(batched, flows);

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 3);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Zipf, 1.1, 3);
    for (int i = 0; i < 3000; ++i) {
        Packet pkt = wl_a.next_packet(scalar.fields());
        scalar.process(pkt);
    }
    pump_batches(batched, wl_b, 3000);

    EXPECT_EQ(scalar.packets_processed(), batched.packets_processed());
    expect_counters_identical(scalar.read_counters(), batched.read_counters());
    expect_latency_identical(scalar.latency_stats(), batched.latency_stats());
}

/// Forcing the scalar hash tier must not change emulator results either
/// (the SIMD kernels are bit-identical, so steering and probes agree).
TEST(MatchBatch, ScalarTierMatchesSimdTierThroughEmulator) {
    ir::Program prog = cached_chain();
    util::Rng rng(13);
    trafficgen::FlowSet flows = chain_flows(rng);

    auto run = [&](SimdTier tier) {
        set_simd_tier_for_test(tier);
        Emulator emu(bluefield2_model(), prog, {});
        emu.set_worker_count(4);
        apps::install_flow_entries(emu, flows);
        trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 3);
        // Note: worker scratch MatchBatchers snapshot the tier at
        // construction, which happens after set_worker_count above.
        int done = 0;
        while (done < 2000) {
            PacketBatch batch = wl.next_batch(emu.fields(), 64);
            emu.process_batch(batch);
            done += 64;
        }
        auto counters = emu.read_counters();
        auto latency = emu.latency_stats();
        clear_simd_tier_for_test();
        return std::make_pair(counters, latency);
    };

    auto [c_scalar, l_scalar] = run(SimdTier::Scalar);
    auto [c_simd, l_simd] = run(cpu_simd_tier());
    expect_counters_identical(c_scalar, c_simd);
    expect_latency_identical(l_scalar, l_simd);
}

// ------------------------------------------------------ steering / RETA

/// With several workers the RETA must (a) cover the bucket space in
/// contiguous equal blocks (balance), and (b) agree with batch steering for
/// every packet the dispatcher routes.
TEST(MatchBatch, RetaBalancedAndDispatcherAgreesWithBatchSteering) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    Emulator emu(bluefield2_model(), prog, {});
    emu.set_worker_count(4);
    ASSERT_EQ(emu.worker_count(), 4);

    RssDispatcher io = emu.make_rings();
    ASSERT_EQ(io.queue_count(), 4u);
    const std::vector<std::uint32_t>& reta = io.steer_map();
    ASSERT_FALSE(reta.empty());
    ASSERT_EQ(reta.size() & (reta.size() - 1), 0u) << "power of two";
    std::vector<int> bucket_count(4, 0);
    for (std::uint32_t w : reta) {
        ASSERT_LT(w, 4u);
        ++bucket_count[w];
    }
    for (int w = 0; w < 4; ++w) {
        EXPECT_EQ(bucket_count[w], static_cast<int>(reta.size()) / 4)
            << "equal blocks";
    }

    util::Rng rng(3);
    trafficgen::FlowSet flows = chain_flows(rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 1.0, 5);
    for (int i = 0; i < 512; ++i) {
        Packet pkt = wl.next_packet(emu.fields());
        const int q = io.dispatch(pkt);
        ASSERT_GE(q, 0);
        EXPECT_EQ(q, emu.steer_worker(pkt));
    }
}

/// The dispatcher stamps each descriptor with the steering hash it
/// computed, so downstream consumers never re-hash (the hash-once fix),
/// and the two-phase peek/advance consumer API exposes exactly the pending
/// descriptors.
TEST(MatchBatch, DispatcherStampsFlowHashAndPeekAdvanceDrains) {
    FieldTable fields;
    const FieldId f0 = fields.intern("a");
    const FieldId f1 = fields.intern("b");
    const std::vector<FieldId> steer = {f0, f1};
    RssDispatcher io(2, steer);

    util::Rng rng(5);
    std::vector<Packet> sent;
    for (int i = 0; i < 64; ++i) {
        Packet p;
        p.set(f0, rng.next_u64() % 1024);
        p.set(f1, rng.next_u64() % 1024);
        sent.push_back(p);
        ASSERT_GE(io.dispatch(p), 0);
    }

    std::size_t seen = 0;
    for (std::size_t q = 0; q < io.queue_count(); ++q) {
        auto& rx = io.queue(q).rx();
        RxDesc* group[kHashGroup];
        std::size_t g;
        while ((g = rx.peek(group, kHashGroup)) > 0) {
            for (std::size_t i = 0; i < g; ++i) {
                const RxDesc& d = *group[i];
                const Packet& orig = sent[static_cast<std::size_t>(d.seq)];
                EXPECT_EQ(d.flow_hash,
                          rss_hash(orig, steer.data(), steer.size()))
                    << "seq " << d.seq;
                ++seen;
            }
            rx.advance(g);
        }
        EXPECT_TRUE(rx.empty());
    }
    EXPECT_EQ(seen, sent.size());
}

/// Batch dispatch (SIMD group hashing) routes identically to per-packet
/// dispatch and accepts the same packets.
TEST(MatchBatch, DispatchBatchMatchesPerPacketDispatch) {
    FieldTable fields;
    const FieldId f0 = fields.intern("a");
    const FieldId f1 = fields.intern("b");
    const std::vector<FieldId> steer = {f0, f1};
    RssDispatcher a(4, steer);
    RssDispatcher b(4, steer);

    util::Rng rng(17);
    PacketBatch batch(67);  // not a multiple of kHashGroup: tail path too
    for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].set(f0, rng.next_u64());
        batch[i].set(f1, rng.next_u64());
    }
    std::size_t accepted_a = 0;
    for (const Packet& p : batch) {
        if (a.dispatch(p) >= 0) ++accepted_a;
    }
    const std::size_t accepted_b = b.dispatch_batch(batch);
    EXPECT_EQ(accepted_a, accepted_b);
    for (std::size_t q = 0; q < 4; ++q) {
        EXPECT_EQ(a.queue(q).rx().size(), b.queue(q).rx().size());
    }
}

}  // namespace
}  // namespace pipeleon::sim
