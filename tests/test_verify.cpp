// Verifier mutation tests (ISSUE 2): every optimization pass has a test
// that corrupts a plan (illegal reorder / merge / cache placement / core
// split) and asserts the verifier rejects it with the right rule id — plus
// pass-through tests that the seed examples and real optimizer outputs
// verify clean.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "apps/scenarios.h"
#include "ir/builder.h"
#include "ir/entry.h"
#include "opt/partition.h"
#include "opt/transform.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"

namespace pipeleon {
namespace {

using analysis::DiagnosticList;
using analysis::Pipelet;
using analysis::Verifier;
using analysis::VerifyError;
using ir::kNoNode;
using ir::NodeId;

// t0 writes header field `x`; t1 matches on `x` (a Match dependency);
// t2 and t3 are independent of everything. One straight-line pipelet.
ir::Program dependent_chain() {
    ir::ProgramBuilder b("dep_chain");
    b.append(ir::TableSpec("t0")
                 .key("f0")
                 .set_field_action("t0_set", "x")
                 .noop_action("t0_noop")
                 .default_to("t0_noop"));
    b.append(ir::TableSpec("t1").key("x").noop_action("t1_a").default_to("t1_a"));
    b.append(ir::TableSpec("t2").key("f2").noop_action("t2_a").default_to("t2_a"));
    b.append(ir::TableSpec("t3").key("f3").noop_action("t3_a").default_to("t3_a"));
    return b.build();
}

opt::PipeletPlan plan_for(int pipelet_id, std::vector<std::size_t> order) {
    opt::PipeletPlan plan;
    plan.pipelet_id = pipelet_id;
    plan.layout.order = std::move(order);
    return plan;
}

TEST(VerifyStructure, SeedScenariosAreClean) {
    for (const ir::Program& p :
         {apps::acl_routing_program(), apps::load_balancer_program(),
          apps::dash_routing_program(), apps::nf_composition_program(),
          apps::microbench_program(3)}) {
        DiagnosticList d = analysis::verify_structure(p);
        EXPECT_TRUE(d.ok()) << p.name() << ":\n" << d.to_string();
    }
}

TEST(VerifyStructure, DanglingEdgeIsReported) {
    ir::Program p = dependent_chain();
    p.node(1).miss_next = static_cast<NodeId>(p.node_count() + 7);
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("structure.edge-target")) << d.to_string();
}

TEST(VerifyStructure, CycleIsReported) {
    ir::Program p = dependent_chain();
    // t3's exits loop back to the root: root -> ... -> t3 -> root.
    for (NodeId& e : p.node(3).next_by_action) e = p.root();
    p.node(3).miss_next = p.root();
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("structure.cycle")) << d.to_string();
}

TEST(VerifyStructure, SelfLoopIsReported) {
    ir::Program p = dependent_chain();
    p.node(2).miss_next = 2;
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_TRUE(d.has_rule("structure.self-loop")) << d.to_string();
}

TEST(VerifyStructure, BadDefaultActionIsReported) {
    ir::Program p = dependent_chain();
    p.node(0).table.default_action = 9;
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_TRUE(d.has_rule("structure.table.default-action")) << d.to_string();
}

TEST(VerifyStructure, ActionEdgeArityMismatchIsReported) {
    ir::Program p = dependent_chain();
    p.node(1).next_by_action.push_back(kNoNode);
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_TRUE(d.has_rule("structure.table.arity")) << d.to_string();
}

TEST(VerifyStructure, DuplicateTableNameIsReported) {
    ir::Program p = dependent_chain();
    p.node(3).table.name = p.node(2).table.name;
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_TRUE(d.has_rule("structure.table.name")) << d.to_string();
}

TEST(VerifyStructure, UnreachableNodeIsAWarningNotAnError) {
    ir::Program p = dependent_chain();
    p.add_table(ir::TableSpec("orphan").key("f9").noop_action("a").build());
    DiagnosticList d = analysis::verify_structure(p);
    EXPECT_TRUE(d.ok()) << d.to_string();
    EXPECT_TRUE(d.has_rule("structure.unreachable")) << d.to_string();
}

TEST(VerifyStructure, CorruptedCacheCoverageIsReported) {
    // Build a genuine cached layout through the transformation pipeline,
    // then corrupt the cache's provenance so the covered run no longer
    // matches.
    ir::Program p = dependent_chain();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    ASSERT_EQ(pipelets.size(), 1u);
    opt::PipeletPlan plan = plan_for(0, {0, 1, 2, 3});
    plan.layout.caches.push_back(opt::Segment{2, 3});
    ir::Program cached = opt::apply_plans(p, pipelets, {plan},
                                          analysis::VerifyMode::Full);
    ASSERT_TRUE(analysis::verify_structure(cached).ok());

    ir::Program broken = cached;
    for (std::size_t i = 0; i < broken.node_count(); ++i) {
        ir::Table& t = broken.node(static_cast<NodeId>(i)).table;
        if (broken.node(static_cast<NodeId>(i)).is_table() &&
            t.role == ir::TableRole::Cache) {
            t.origin_tables = {"t3", "t2"};  // reversed: miss chain mismatch
        }
    }
    DiagnosticList d = analysis::verify_structure(broken);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("structure.cache.cover")) << d.to_string();
}

TEST(VerifyStructure, IllegalCoreSplitIsReported) {
    // A partitioned + instrumented program verifies clean; flipping one
    // table onto the other core creates a bare crossing (§3.2.4).
    ir::ProgramBuilder b("split");
    b.append(ir::TableSpec("a0").key("f0").noop_action("a").default_to("a"));
    b.append(ir::TableSpec("c0").key("f1").noop_action("a").default_to("a").cpu_only());
    b.append(ir::TableSpec("a1").key("f2").noop_action("a").default_to("a"));
    ir::Program instrumented =
        opt::insert_migration_tables(opt::partition_by_support(b.build()));
    ASSERT_TRUE(analysis::verify_structure(instrumented).ok())
        << analysis::verify_structure(instrumented).to_string();

    ir::Program broken = instrumented;
    for (std::size_t i = 0; i < broken.node_count(); ++i) {
        ir::Node& n = broken.node(static_cast<NodeId>(i));
        if (n.is_table() && n.table.name == "a1") {
            n.core = ir::CoreKind::Cpu;
        }
    }
    DiagnosticList d = analysis::verify_structure(broken);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("structure.core-crossing")) << d.to_string();
}

TEST(VerifyEntries, ArityKindActionIdAndDataAreChecked) {
    ir::Table t = ir::TableSpec("t")
                      .key("f0")
                      .noop_action("hit")
                      .set_field_action("set_x", "x")
                      .build();
    Verifier v;

    ir::TableEntry ok;
    ok.key = {ir::FieldMatch::exact(5)};
    ok.action_index = 1;
    ok.action_data = {42};
    EXPECT_TRUE(v.check_entries(t, {ok}).ok());

    ir::TableEntry arity = ok;
    arity.key.push_back(ir::FieldMatch::exact(1));
    EXPECT_TRUE(v.check_entries(t, {arity}).has_rule("entry.key-arity"));

    ir::TableEntry kind = ok;
    kind.key = {ir::FieldMatch::lpm(5, 24)};
    EXPECT_TRUE(v.check_entries(t, {kind}).has_rule("entry.key-kind"));

    ir::TableEntry action = ok;
    action.action_index = 5;
    EXPECT_TRUE(v.check_entries(t, {action}).has_rule("entry.action-id"));

    ir::TableEntry data = ok;
    data.action_data.clear();  // set_x consumes arg 0
    EXPECT_TRUE(v.check_entries(t, {data}).has_rule("entry.action-data"));
}

TEST(VerifyTranslation, IllegalReorderIsRejected) {
    ir::Program p = dependent_chain();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    // Swap the dependent pair: t1 (reads x) now runs before t0 (writes x).
    opt::PipeletPlan plan = plan_for(0, {1, 0, 2, 3});
    try {
        opt::apply_plans(p, pipelets, {plan}, analysis::VerifyMode::Full);
        FAIL() << "illegal reorder was not rejected";
    } catch (const VerifyError& e) {
        EXPECT_TRUE(e.diagnostics().has_rule("plan.reorder.dependency"))
            << e.diagnostics().to_string();
    }
    // The structural result is well-formed — only translation validation
    // catches the semantic break.
    EXPECT_NO_THROW(
        opt::apply_plans(p, pipelets, {plan}, analysis::VerifyMode::Structure));
}

TEST(VerifyTranslation, IllegalCachePlacementIsRejected) {
    ir::Program p = dependent_chain();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    // Cache over {t0, t1}: t0 writes t1's match key, so the compound cache
    // key is not readable at lookup time.
    opt::PipeletPlan plan = plan_for(0, {0, 1, 2, 3});
    plan.layout.caches.push_back(opt::Segment{0, 1});
    DiagnosticList d =
        analysis::verify_translation(p, pipelets, {plan}, p);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("plan.cache.dependency")) << d.to_string();
    // The transformation pipeline refuses to even build it.
    EXPECT_THROW(
        opt::apply_plans(p, pipelets, {plan}, analysis::VerifyMode::Off),
        VerifyError);
}

TEST(VerifyTranslation, IllegalMergeIsRejected) {
    ir::Program p = dependent_chain();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    opt::PipeletPlan plan = plan_for(0, {0, 1, 2, 3});
    plan.layout.merges.push_back(opt::MergeSpec{opt::Segment{0, 1}, false});
    DiagnosticList d =
        analysis::verify_translation(p, pipelets, {plan}, p);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("plan.merge.dependency")) << d.to_string();
}

TEST(VerifyTranslation, MergeAsCacheRequiresExactKeys) {
    ir::ProgramBuilder b("lpm_pair");
    b.append(ir::TableSpec("u0")
                 .key("dst", ir::MatchKind::Lpm)
                 .noop_action("a")
                 .default_to("a"));
    b.append(ir::TableSpec("u1").key("port").noop_action("a").default_to("a"));
    ir::Program p = b.build();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    opt::PipeletPlan plan = plan_for(0, {0, 1});
    plan.layout.merges.push_back(opt::MergeSpec{opt::Segment{0, 1}, true});
    DiagnosticList d =
        analysis::verify_translation(p, pipelets, {plan}, p);
    EXPECT_TRUE(d.has_rule("plan.merge.exact")) << d.to_string();
}

TEST(VerifyTranslation, OverlappingSegmentsAreRejected) {
    ir::Program p = dependent_chain();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    opt::PipeletPlan plan = plan_for(0, {0, 1, 2, 3});
    plan.layout.caches.push_back(opt::Segment{1, 2});
    plan.layout.merges.push_back(opt::MergeSpec{opt::Segment{2, 3}, false});
    DiagnosticList d =
        analysis::verify_translation(p, pipelets, {plan}, p);
    EXPECT_TRUE(d.has_rule("plan.segments")) << d.to_string();
}

TEST(VerifyTranslation, LegalPlanVerifiesClean) {
    ir::Program p = dependent_chain();
    std::vector<Pipelet> pipelets = analysis::form_pipelets(p);
    opt::PipeletPlan plan = plan_for(0, {0, 1, 2, 3});
    plan.layout.caches.push_back(opt::Segment{2, 3});
    ir::Program optimized;
    ASSERT_NO_THROW(optimized = opt::apply_plans(p, pipelets, {plan},
                                                 analysis::VerifyMode::Full));
    DiagnosticList d =
        analysis::verify_translation(p, pipelets, {plan}, optimized);
    EXPECT_TRUE(d.ok()) << d.to_string();
}

TEST(VerifyTranslation, DroppedTableIsCaughtByPathPreservation) {
    // "Optimized" program silently loses table b: the canonical
    // root-to-sink table sets differ even though both programs are
    // structurally sound.
    ir::Program original = ir::chain_of_exact_tables("chain", 3);
    ir::ProgramBuilder b("chain_lossy");
    b.append(ir::TableSpec("t0").key("f0").noop_action("a").default_to("a"));
    b.append(ir::TableSpec("t2").key("f2").noop_action("a").default_to("a"));
    ir::Program lossy = b.build();
    DiagnosticList d = analysis::verify_translation(
        original, analysis::form_pipelets(original), {}, lossy);
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(d.has_rule("trans.paths")) << d.to_string();
}

TEST(VerifyTranslation, OptimizerOutputsVerifyClean) {
    for (ir::Program original :
         {apps::acl_routing_program(), apps::load_balancer_program(),
          apps::microbench_program(3)}) {
        synth::ProfileSynthesizer profgen(synth::high_locality_config(), 17);
        profile::RuntimeProfile prof = profgen.generate(original);
        search::OptimizerConfig cfg;
        search::Optimizer optimizer(
            cost::CostModel(sim::bluefield2_model().costs, {}), cfg);
        search::OptimizationOutcome out = optimizer.optimize(original, prof);
        EXPECT_EQ(out.plans_rejected, 0u) << original.name();
        std::vector<Pipelet> pipelets =
            analysis::form_pipelets(original, cfg.pipelet);
        DiagnosticList d = analysis::verify_translation(
            original, pipelets, out.plans, out.optimized);
        EXPECT_TRUE(d.ok()) << original.name() << ":\n" << d.to_string();
    }
}

// ---------------------------------------------------------- entry.remap.*
// The entry-remap family (ISSUE 3) checks the control plane's remapped
// entry set against the deployed layout before an epoch swap ships it.

/// Two-table original with one live entry per table in the original store.
struct RemapFixture {
    ir::Program original;
    std::unordered_map<std::string, std::vector<ir::TableEntry>> store;

    static RemapFixture make() {
        RemapFixture f;
        ir::ProgramBuilder b("remap");
        b.append(ir::TableSpec("A").key("src").noop_action("a1").noop_action("a2").build());
        b.append(ir::TableSpec("B").key("dst").noop_action("b1").noop_action("b2").build());
        f.original = b.build();
        ir::TableEntry ea;
        ea.key = {ir::FieldMatch::exact(1)};
        ea.action_index = 0;
        ir::TableEntry eb;
        eb.key = {ir::FieldMatch::exact(2)};
        eb.action_index = 1;
        f.store["A"] = {ea};
        f.store["B"] = {eb};
        return f;
    }

    std::vector<ir::EntryLoad> full_loads() const {
        return {ir::EntryLoad{"A", store.at("A")},
                ir::EntryLoad{"B", store.at("B")}};
    }
};

TEST(VerifyEntryRemap, FaithfulRemapIsClean) {
    RemapFixture f = RemapFixture::make();
    Verifier v;
    DiagnosticList d =
        v.check_entry_remap(f.original, f.store, f.original, f.full_loads());
    EXPECT_TRUE(d.ok()) << d.to_string();
}

TEST(VerifyEntryRemap, UnknownTableIsReported) {
    RemapFixture f = RemapFixture::make();
    auto loads = f.full_loads();
    loads.push_back(ir::EntryLoad{"Z", {}});
    Verifier v;
    DiagnosticList d = v.check_entry_remap(f.original, f.store, f.original, loads);
    EXPECT_TRUE(d.has_rule("entry.remap.unknown-table")) << d.to_string();
}

TEST(VerifyEntryRemap, LoadingAFlowCacheIsReported) {
    RemapFixture f = RemapFixture::make();
    auto pipelets = analysis::form_pipelets(f.original);
    opt::PipeletPlan plan = plan_for(0, {0, 1});
    plan.layout.caches = {opt::Segment{0, 1}};
    ir::Program cached = opt::apply_plans(f.original, pipelets, {plan});

    auto loads = f.full_loads();
    loads.push_back(ir::EntryLoad{"cache_A_B", {}});
    Verifier v;
    DiagnosticList d = v.check_entry_remap(f.original, f.store, cached, loads);
    EXPECT_TRUE(d.has_rule("entry.remap.role")) << d.to_string();
}

TEST(VerifyEntryRemap, DuplicateLoadIsReported) {
    RemapFixture f = RemapFixture::make();
    auto loads = f.full_loads();
    loads.push_back(ir::EntryLoad{"A", f.store.at("A")});
    Verifier v;
    DiagnosticList d = v.check_entry_remap(f.original, f.store, f.original, loads);
    EXPECT_TRUE(d.has_rule("entry.remap.duplicate-load")) << d.to_string();
}

TEST(VerifyEntryRemap, CountMismatchOnDirectTableIsReported) {
    RemapFixture f = RemapFixture::make();
    auto loads = f.full_loads();
    loads[0].entries.clear();  // A's load silently drops the stored entry
    Verifier v;
    DiagnosticList d = v.check_entry_remap(f.original, f.store, f.original, loads);
    EXPECT_TRUE(d.has_rule("entry.remap.count")) << d.to_string();
}

TEST(VerifyEntryRemap, MergedTableWithoutLoadIsReported) {
    RemapFixture f = RemapFixture::make();
    auto pipelets = analysis::form_pipelets(f.original);
    opt::PipeletPlan plan = plan_for(0, {0, 1});
    plan.layout.merges = {opt::MergeSpec{opt::Segment{0, 1}, false}};
    ir::Program merged = opt::apply_plans(f.original, pipelets, {plan});

    // No load at all for the merged cross-product table: it would deploy
    // empty and miss every packet.
    Verifier v;
    DiagnosticList d = v.check_entry_remap(f.original, f.store, merged, {});
    EXPECT_TRUE(d.has_rule("entry.remap.missing-load")) << d.to_string();
}

TEST(VerifyEntryRemap, DroppedOriginalEntriesAreReported) {
    RemapFixture f = RemapFixture::make();
    // Deployed layout lost table A entirely, and no merged table covers it.
    ir::ProgramBuilder b("without_a");
    b.append(ir::TableSpec("B").key("dst").noop_action("b1").noop_action("b2").build());
    ir::Program without_a = b.build();

    Verifier v;
    DiagnosticList d = v.check_entry_remap(
        f.original, f.store, without_a, {ir::EntryLoad{"B", f.store.at("B")}});
    EXPECT_TRUE(d.has_rule("entry.remap.dropped")) << d.to_string();
}

TEST(VerifyMode, DefaultsAndOverridesAreScoped) {
    analysis::VerifyMode saved = analysis::verify_mode();
    analysis::set_verify_mode(analysis::VerifyMode::Off);
    EXPECT_EQ(analysis::verify_mode(), analysis::VerifyMode::Off);
    analysis::set_verify_mode(saved);
    EXPECT_EQ(analysis::verify_mode(), saved);
}

}  // namespace
}  // namespace pipeleon
