// Tests for search/enumerate, search/group, and search/optimizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "search/optimizer.h"

namespace pipeleon::search {
namespace {

using ir::MatchKind;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

cost::CostModel model() {
    cost::CostParams p;
    p.l_mat = 10.0;
    p.l_act = 1.0;
    p.default_ternary_m = 5;
    p.default_cache_hit_rate = 0.9;
    profile::InstrumentationConfig instr;
    instr.enabled = false;
    return cost::CostModel(p, instr);
}

struct PipeletCase {
    Program program;
    profile::RuntimeProfile profile;
    std::vector<analysis::Pipelet> pipelets;
};

PipeletCase ternary_chain(std::size_t n) {
    ProgramBuilder b("tc");
    for (std::size_t i = 0; i < n; ++i) {
        b.append(TableSpec("t" + std::to_string(i))
                     .key("f" + std::to_string(i), MatchKind::Ternary)
                     .noop_action("t" + std::to_string(i) + "_a", 1)
                     .build());
    }
    PipeletCase s{b.build(), {}, {}};
    s.profile.reset_for(s.program, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        s.profile.table(static_cast<NodeId>(i)).action_hits = {1000};
        s.profile.table(static_cast<NodeId>(i)).entry_count = 64;
    }
    s.pipelets = analysis::form_pipelets(s.program);
    return s;
}

TEST(Enumerate, PaperExampleTwoTableCandidates) {
    // "a pipelet with two tables T_A and T_B will generate four table
    // caching candidates [TA], [TB], [TA][TB], and [TA,TB] … one merging
    // candidate [TA,TB], and two table reordering options."
    PipeletCase s = ternary_chain(2);
    cost::CostModel m = model();
    opt::PipeletEvaluator ev(s.program, s.pipelets[0], s.profile, m);
    SearchOptions opts;
    opts.min_latency_gain = -1e18;  // keep everything, we count shapes

    auto cands = enumerate_candidates(ev, 0, 1.0, opts);
    int identity_orders = 0, swapped_orders = 0;
    std::set<std::string> cache_shapes;
    int merges = 0;
    for (const opt::Candidate& c : cands) {
        if (c.layout.order == std::vector<std::size_t>{0, 1}) ++identity_orders;
        if (c.layout.order == std::vector<std::size_t>{1, 0}) ++swapped_orders;
        if (!c.layout.merges.empty()) ++merges;
        if (c.layout.merges.empty() && !c.layout.caches.empty() &&
            c.layout.order == std::vector<std::size_t>{0, 1}) {
            std::string shape;
            for (const opt::Segment& seg : c.layout.caches) {
                shape += "[" + std::to_string(seg.first) + "-" +
                         std::to_string(seg.last) + "]";
            }
            cache_shapes.insert(shape);
        }
    }
    EXPECT_GT(identity_orders, 0);
    EXPECT_GT(swapped_orders, 0);
    // The four caching shapes of the paper example.
    EXPECT_TRUE(cache_shapes.count("[0-0]"));
    EXPECT_TRUE(cache_shapes.count("[1-1]"));
    EXPECT_TRUE(cache_shapes.count("[0-0][1-1]"));
    EXPECT_TRUE(cache_shapes.count("[0-1]"));
    EXPECT_GT(merges, 0);
}

TEST(Enumerate, PositiveGainFilter) {
    PipeletCase s = ternary_chain(3);
    cost::CostModel m = model();
    opt::PipeletEvaluator ev(s.program, s.pipelets[0], s.profile, m);
    SearchOptions opts;  // default: only improving candidates
    auto cands = enumerate_candidates(ev, 0, 1.0, opts);
    EXPECT_FALSE(cands.empty());
    for (const opt::Candidate& c : cands) EXPECT_GT(c.gain, 0.0);
    // Sorted descending.
    for (std::size_t i = 1; i < cands.size(); ++i) {
        EXPECT_GE(cands[i - 1].gain, cands[i].gain);
    }
}

TEST(Enumerate, RespectsTechniqueToggles) {
    PipeletCase s = ternary_chain(3);
    cost::CostModel m = model();
    opt::PipeletEvaluator ev(s.program, s.pipelets[0], s.profile, m);
    SearchOptions opts;
    opts.allow_cache = false;
    opts.allow_merge = false;
    opts.allow_reorder = false;
    EXPECT_TRUE(enumerate_candidates(ev, 0, 1.0, opts).empty());

    opts.allow_cache = true;
    auto cands = enumerate_candidates(ev, 0, 1.0, opts);
    EXPECT_FALSE(cands.empty());
    for (const opt::Candidate& c : cands) {
        EXPECT_TRUE(c.layout.merges.empty());
        EXPECT_FALSE(c.layout.caches.empty());
    }
}

TEST(Enumerate, CandidateCapRespected) {
    PipeletCase s = ternary_chain(6);
    cost::CostModel m = model();
    opt::PipeletEvaluator ev(s.program, s.pipelets[0], s.profile, m);
    SearchOptions opts;
    opts.max_candidates = 10;
    opts.min_latency_gain = -1e18;
    EXPECT_LE(enumerate_candidates(ev, 0, 1.0, opts).size(), 10u);
}

TEST(Optimizer, CachesTernaryChain) {
    PipeletCase s = ternary_chain(4);
    OptimizerConfig cfg;
    cfg.top_k_fraction = 1.0;
    Optimizer opt(model(), cfg);
    OptimizationOutcome out = opt.optimize(s.program, s.profile);
    EXPECT_FALSE(out.plans.empty());
    EXPECT_GT(out.predicted_gain, 0.0);
    EXPECT_LT(out.predicted_latency, out.baseline_latency);
    // A cache table shows up in the optimized program.
    bool has_cache = false;
    for (NodeId id : out.optimized.reachable()) {
        if (out.optimized.node(id).table.role == ir::TableRole::Cache) {
            has_cache = true;
        }
    }
    EXPECT_TRUE(has_cache);
    EXPECT_GT(out.search_seconds, 0.0);
}

TEST(Optimizer, ReordersDropHeavyAcl) {
    // Exact chain where the LAST table drops 90%: the only useful move is
    // promoting it (caching exact tables barely helps; merge is capped).
    ProgramBuilder b("acl");
    for (int i = 0; i < 4; ++i) {
        TableSpec spec("t" + std::to_string(i));
        spec.key("f" + std::to_string(i));
        spec.noop_action("t" + std::to_string(i) + "_ok", 1);
        spec.drop_action("t" + std::to_string(i) + "_deny");
        spec.default_to("t" + std::to_string(i) + "_ok");
        b.append(spec.build());
    }
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (int i = 0; i < 4; ++i) {
        prof.table(i).action_hits = {1000, 0};
        prof.table(i).entry_count = 10;
    }
    prof.table(3).action_hits = {100, 900};  // hot dropper

    OptimizerConfig cfg;
    cfg.top_k_fraction = 1.0;
    cfg.search.allow_cache = false;
    cfg.search.allow_merge = false;
    Optimizer opt(model(), cfg);
    OptimizationOutcome out = opt.optimize(p, prof);
    ASSERT_EQ(out.plans.size(), 1u);
    // t3 moved to the front.
    EXPECT_EQ(out.plans[0].layout.order[0], 3u);
    EXPECT_EQ(out.optimized.node(out.optimized.root()).table.name, "t3");
}

TEST(Optimizer, ResourceLimitsShrinkThePlan) {
    PipeletCase s = ternary_chain(4);
    OptimizerConfig cfg;
    cfg.top_k_fraction = 1.0;
    Optimizer unlimited(model(), cfg);
    OptimizationOutcome free_run = unlimited.optimize(s.program, s.profile);

    cfg.limits.memory_bytes = 1.0;  // essentially no memory for caches
    cfg.limits.updates_per_sec = 0.1;
    Optimizer tight(model(), cfg);
    OptimizationOutcome tight_run = tight.optimize(s.program, s.profile);
    EXPECT_LE(tight_run.memory_used, 1.0);
    EXPECT_LE(tight_run.predicted_gain, free_run.predicted_gain);
}

TEST(Optimizer, TopKLimitsScope) {
    // Two pipelets; k=50% should only touch the hotter one.
    ProgramBuilder b("topk");
    NodeId t0 = b.add(TableSpec("t0").key("a", MatchKind::Ternary)
                          .noop_action("a0", 1)
                          .build());
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId t1 = b.add(TableSpec("t1").key("b", MatchKind::Ternary)
                          .noop_action("a1", 1)
                          .build());
    NodeId t2 = b.add(TableSpec("t2").key("c", MatchKind::Ternary)
                          .noop_action("a2", 1)
                          .build());
    b.connect(t0, br);
    b.connect_branch(br, t1, t2);
    b.set_root(t0);
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(t0).action_hits = {1000};
    prof.branch(br).taken_true = 990;
    prof.branch(br).taken_false = 10;
    prof.table(t1).action_hits = {990};
    prof.table(t2).action_hits = {10};

    OptimizerConfig cfg;
    cfg.top_k_fraction = 0.3;  // 1 of 3 pipelets
    Optimizer opt(model(), cfg);
    OptimizationOutcome out = opt.optimize(p, prof);
    EXPECT_EQ(out.hot_pipelets.size(), 1u);
    EXPECT_LE(out.plans.size(), 1u);
}

TEST(Group, JointOptimizationBeatsSeparate) {
    // pre (1 ternary table) -> branch -> {armt, armf} -> post (1 ternary
    // table). Separately, each 1-table pipelet can only self-cache; jointly,
    // pre+post can share one cache / merge.
    ProgramBuilder b("grp");
    NodeId pre = b.add(TableSpec("pre").key("p", MatchKind::Ternary)
                           .noop_action("pa", 1)
                           .build());
    NodeId br = b.add_branch({"flag", ir::CmpOp::Eq, 1});
    NodeId armt = b.add(TableSpec("armt").key("x").noop_action("xa", 1).build());
    NodeId armf = b.add(TableSpec("armf").key("y").noop_action("ya", 1).build());
    NodeId post = b.add(TableSpec("post").key("q", MatchKind::Ternary)
                            .noop_action("qa", 1)
                            .build());
    b.connect(pre, br);
    b.connect_branch(br, armt, armf);
    b.connect(armt, post);
    b.connect(armf, post);
    b.set_root(pre);
    Program p = b.build();

    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(pre).action_hits = {1000};
    prof.branch(br).taken_true = 500;
    prof.branch(br).taken_false = 500;
    prof.table(armt).action_hits = {500};
    prof.table(armf).action_hits = {500};
    prof.table(post).action_hits = {1000};

    auto pipelets = analysis::form_pipelets(p);
    auto groups = analysis::find_pipelet_groups(p, pipelets);
    ASSERT_EQ(groups.size(), 1u);

    std::vector<int> selected;
    for (const auto& pl : pipelets) selected.push_back(pl.id);
    SearchOptions opts;
    auto opps = evaluate_groups(p, pipelets, groups, selected, prof, model(), opts);
    ASSERT_EQ(opps.size(), 1u);
    EXPECT_GT(opps[0].extra_gain, 0.0);
}

TEST(Group, DependentTablesNotGrouped) {
    // post matches the field the branch tests AND that pre writes: no joint
    // optimization allowed.
    ProgramBuilder b("dep");
    ir::Action w;
    w.name = "w";
    w.primitives.push_back(ir::Primitive::set_const("flag", 1));
    NodeId pre = b.add(TableSpec("pre").key("p").action(w).build());
    NodeId br = b.add_branch({"flag", ir::CmpOp::Eq, 1});
    NodeId armt = b.add(TableSpec("armt").key("x").noop_action("xa").build());
    NodeId armf = b.add(TableSpec("armf").key("y").noop_action("ya").build());
    NodeId post = b.add(TableSpec("post").key("q").noop_action("qa").build());
    b.connect(pre, br);
    b.connect_branch(br, armt, armf);
    b.connect(armt, post);
    b.connect(armf, post);
    b.set_root(pre);
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);

    auto pipelets = analysis::form_pipelets(p);
    auto groups = analysis::find_pipelet_groups(p, pipelets);
    std::vector<int> selected;
    for (const auto& pl : pipelets) selected.push_back(pl.id);
    SearchOptions opts;
    EXPECT_TRUE(
        evaluate_groups(p, pipelets, groups, selected, prof, model(), opts)
            .empty());
}

}  // namespace
}  // namespace pipeleon::search
