// Tests for util/rng and util/stats.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace pipeleon::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = rng.uniform_int(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform) {
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Zipf, SkewsTowardLowRanks) {
    Rng rng(19);
    ZipfSampler zipf(100, 1.2);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[50] * 5);
    EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(Zipf, ExponentZeroIsUniformish) {
    Rng rng(23);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
    for (int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(Stats, MeanAndStddev) {
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 0.001);
}

TEST(Stats, Percentile) {
    std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
    EXPECT_DOUBLE_EQ(median(xs), 5.5);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, EntropyBounds) {
    EXPECT_DOUBLE_EQ(entropy({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(entropy({0.5, 0.5}), 1.0);
    EXPECT_NEAR(entropy({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
    // Unnormalized weights are normalized internally.
    EXPECT_NEAR(entropy({2.0, 2.0}), 1.0, 1e-12);
    // Zeros contribute nothing.
    EXPECT_NEAR(entropy({0.5, 0.5, 0.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(entropy({}), 0.0);
    // Skewed < uniform.
    EXPECT_LT(entropy({0.9, 0.05, 0.05}), entropy({1.0 / 3, 1.0 / 3, 1.0 / 3}));
}

TEST(Stats, LinearFitRecoversLine) {
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(3.5 * i + 7.0);
    }
    LinearFit fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 3.5, 1e-9);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LinearFitWithNoise) {
    Rng rng(29);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + 5.0 + rng.normal(0.0, 1.0));
    }
    LinearFit fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.05);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Stats, LinearFitDegenerateXs) {
    LinearFit fit = linear_fit({1.0, 1.0, 1.0}, {2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(Stats, EmpiricalCdf) {
    EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
    EXPECT_FALSE(cdf.to_table(5).empty());
}

TEST(Stats, RunningStats) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(6.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);

    RunningStats t;
    t.add(10.0);
    s.merge(t);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

class PercentileMonotone : public testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, NonDecreasingInQ) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<double> xs;
    for (int i = 0; i < 50; ++i) xs.push_back(rng.uniform(0.0, 100.0));
    double prev = -1.0;
    for (double q = 0.0; q <= 100.0; q += 5.0) {
        double v = percentile(xs, q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, testing::Range(1, 9));

}  // namespace
}  // namespace pipeleon::util
