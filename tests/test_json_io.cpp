// Tests for ir/json_io: program and entry JSON round trips.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/json_io.h"
#include "synth/program_synth.h"

namespace pipeleon::ir {
namespace {

TEST(JsonIo, LinearProgramRoundTrip) {
    Program p = chain_of_exact_tables("rt", 5, 3, 2);
    Program q = program_from_json(program_to_json(p));
    EXPECT_TRUE(p == q);
}

TEST(JsonIo, BranchAndSwitchCaseRoundTrip) {
    ProgramBuilder b("complex");
    NodeId br = b.add_branch({"ipv4.proto", CmpOp::Eq, 6});
    NodeId sw = b.add(TableSpec("sw")
                          .key("tcp.dport", MatchKind::Ternary, 16)
                          .noop_action("a0")
                          .drop_action("deny")
                          .build());
    NodeId t = b.add(TableSpec("route")
                         .key("ipv4.dst", MatchKind::Lpm)
                         .forward_action("fwd")
                         .build());
    b.connect_branch(br, sw, t);
    b.connect_action(sw, 0, t);
    b.connect_action(sw, 1, kNoNode);
    b.connect_miss(sw, t);
    b.set_root(br);
    Program p = b.build();
    Program q = program_from_json(program_to_json(p));
    EXPECT_TRUE(p == q);
    EXPECT_TRUE(q.node(sw).is_switch_case());
}

TEST(JsonIo, PreservesRolesAndProvenance) {
    // A structurally honest cache program: the cache fronts its covered run
    // (miss falls through a -> b; hits bypass it), as the Layer-1 verifier
    // on the load path now requires.
    Table cache = TableSpec("cache_x").key("f").noop_action("cache_hit").build();
    cache.role = TableRole::Cache;
    cache.origin_tables = {"a", "b"};
    cache.cache.capacity = 128;
    cache.cache.max_insert_per_sec = 55.5;
    cache.default_action = -1;
    ProgramBuilder b("roles");
    NodeId c = b.add(cache);
    NodeId ta = b.add(TableSpec("a").key("f").noop_action("na").build());
    NodeId tb = b.add(TableSpec("b").key("g").noop_action("nb").build());
    b.connect_action(c, 0, kNoNode);
    b.connect_miss(c, ta);
    b.connect(ta, tb);
    b.set_root(c);
    Program p = b.build();
    Program q = program_from_json(program_to_json(p));
    const Table& t = q.node(q.root()).table;
    EXPECT_EQ(t.role, TableRole::Cache);
    EXPECT_EQ(t.origin_tables, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(t.cache.capacity, 128u);
    EXPECT_DOUBLE_EQ(t.cache.max_insert_per_sec, 55.5);
}

TEST(JsonIo, PreservesCoreAssignment) {
    Program p = chain_of_exact_tables("cores", 2);
    p.node(1).core = CoreKind::Cpu;
    Program q = program_from_json(program_to_json(p));
    EXPECT_EQ(q.node(1).core, CoreKind::Cpu);
}

TEST(JsonIo, RejectsWrongFormat) {
    EXPECT_THROW(program_from_json(util::Json::parse(R"({"format":"other"})")),
                 std::runtime_error);
}

TEST(JsonIo, FileRoundTrip) {
    Program p = chain_of_exact_tables("file", 3);
    std::string path = testing::TempDir() + "/pipeleon_prog.json";
    save_program(path, p);
    EXPECT_TRUE(load_program(path) == p);
}

TEST(JsonIo, EntryRoundTripAllKinds) {
    TableEntry e;
    e.key = {FieldMatch::exact(0xDEADBEEFCAFEBABEULL),
             FieldMatch::lpm(0x0A000000, 8),
             FieldMatch::ternary(0x12, 0xFFULL << 56 | 0xFF),
             FieldMatch::range(5, 500)};
    e.action_index = 2;
    e.action_data = {1, 0xFFFFFFFFFFFFFFFFULL, 42};
    e.priority = 7;
    TableEntry back = entry_from_json(entry_to_json(e));
    EXPECT_TRUE(e == back);
}

TEST(JsonIo, FullWidthMasksSurvive) {
    TableEntry e;
    e.key = {FieldMatch::ternary(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL)};
    e.action_index = 0;
    TableEntry back = entry_from_json(entry_to_json(e));
    EXPECT_EQ(back.key[0].mask, 0xFFFFFFFFFFFFFFFFULL);
    EXPECT_EQ(back.key[0].value, 0xFFFFFFFFFFFFFFFFULL);
}

class SynthRoundTrip : public testing::TestWithParam<int> {};

TEST_P(SynthRoundTrip, RandomProgramsSurviveJson) {
    synth::SynthConfig cfg;
    cfg.pipelets = 8;
    synth::ProgramSynthesizer gen(cfg, static_cast<std::uint64_t>(GetParam()));
    Program p = gen.generate("synth");
    Program q = program_from_json(program_to_json(p));
    EXPECT_TRUE(p == q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthRoundTrip, testing::Range(1, 13));

}  // namespace
}  // namespace pipeleon::ir
