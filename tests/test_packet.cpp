// Tests for sim/packet: field table, packet accessors, byte codec.
#include <gtest/gtest.h>

#include "sim/packet.h"

namespace pipeleon::sim {
namespace {

TEST(FieldTable, InternIsStable) {
    FieldTable ft;
    FieldId a = ft.intern("ipv4.src");
    FieldId b = ft.intern("ipv4.dst");
    EXPECT_NE(a, b);
    EXPECT_EQ(ft.intern("ipv4.src"), a);
    EXPECT_EQ(ft.find("ipv4.dst"), b);
    EXPECT_EQ(ft.find("nope"), kNoField);
    EXPECT_EQ(ft.name(a), "ipv4.src");
    EXPECT_EQ(ft.size(), 2u);
    EXPECT_THROW(ft.name(99), std::out_of_range);
}

TEST(Packet, GetSetAndGrowth) {
    Packet p;
    EXPECT_EQ(p.get(3), 0u);  // unset fields read as 0
    p.set(3, 42);
    EXPECT_EQ(p.get(3), 42u);
    p.set(kNoField, 7);  // ignored
    EXPECT_EQ(p.get(kNoField), 0u);
}

TEST(Packet, DropAndEgress) {
    Packet p;
    EXPECT_FALSE(p.dropped());
    p.mark_dropped();
    EXPECT_TRUE(p.dropped());
    p.set_egress_port(9);
    EXPECT_EQ(p.egress_port(), 9u);
    EXPECT_EQ(p.wire_bytes(), 512u);  // the paper's workload packet size
    p.set_wire_bytes(64);
    EXPECT_EQ(p.wire_bytes(), 64u);
}

TEST(Codec, SerializeDeserializeRoundTrip) {
    HeaderLayout layout;
    layout.fields = {{"eth.type", 16}, {"ipv4.src", 32}, {"ipv4.dst", 32},
                     {"tcp.sport", 16}};
    EXPECT_EQ(layout.byte_size(), 12u);

    FieldTable ft;
    Packet p;
    p.set(ft.intern("eth.type"), 0x0800);
    p.set(ft.intern("ipv4.src"), 0x0A000001);
    p.set(ft.intern("ipv4.dst"), 0xC0A80101);
    p.set(ft.intern("tcp.sport"), 443);

    std::vector<std::uint8_t> bytes = serialize(p, layout, ft);
    ASSERT_EQ(bytes.size(), 12u);
    // Big-endian: eth.type first.
    EXPECT_EQ(bytes[0], 0x08);
    EXPECT_EQ(bytes[1], 0x00);
    EXPECT_EQ(bytes[2], 0x0A);

    auto back = deserialize(bytes, layout, ft);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->get(ft.find("ipv4.src")), 0x0A000001u);
    EXPECT_EQ(back->get(ft.find("ipv4.dst")), 0xC0A80101u);
    EXPECT_EQ(back->get(ft.find("tcp.sport")), 443u);
    EXPECT_EQ(back->wire_bytes(), 12u);
}

TEST(Codec, ShortBufferRejected) {
    HeaderLayout layout;
    layout.fields = {{"f", 32}};
    FieldTable ft;
    EXPECT_FALSE(deserialize({1, 2}, layout, ft).has_value());
}

TEST(Codec, UnknownFieldsSerializeAsZero) {
    HeaderLayout layout;
    layout.fields = {{"never_set", 16}};
    FieldTable ft;
    Packet p;
    auto bytes = serialize(p, layout, ft);
    EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0, 0}));
}

}  // namespace
}  // namespace pipeleon::sim
