// Tests for ir/entry: FieldMatch semantics across all match kinds.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/entry.h"

namespace pipeleon::ir {
namespace {

TEST(FieldMatch, Exact) {
    FieldMatch m = FieldMatch::exact(42);
    EXPECT_TRUE(m.matches(42, 32));
    EXPECT_FALSE(m.matches(43, 32));
    EXPECT_FALSE(m.is_wildcard());
}

TEST(FieldMatch, LpmPrefixes) {
    // 10.0.0.0/8 over a 32-bit field.
    FieldMatch m = FieldMatch::lpm(0x0A000000, 8);
    EXPECT_TRUE(m.matches(0x0A123456, 32));
    EXPECT_FALSE(m.matches(0x0B000000, 32));
    // /0 matches everything.
    FieldMatch any = FieldMatch::lpm(0, 0);
    EXPECT_TRUE(any.matches(0xFFFFFFFF, 32));
    EXPECT_TRUE(any.is_wildcard());
    // /32 behaves like exact.
    FieldMatch full = FieldMatch::lpm(7, 32);
    EXPECT_TRUE(full.matches(7, 32));
    EXPECT_FALSE(full.matches(8, 32));
}

TEST(FieldMatch, Ternary) {
    FieldMatch m = FieldMatch::ternary(0x00AB, 0x00FF);
    EXPECT_TRUE(m.matches(0x12AB, 32));
    EXPECT_FALSE(m.matches(0x12AC, 32));
    EXPECT_TRUE(FieldMatch::wildcard().matches(0xDEADBEEF, 32));
    EXPECT_TRUE(FieldMatch::wildcard().is_wildcard());
}

TEST(FieldMatch, Range) {
    FieldMatch m = FieldMatch::range(10, 20);
    EXPECT_TRUE(m.matches(10, 32));
    EXPECT_TRUE(m.matches(20, 32));
    EXPECT_TRUE(m.matches(15, 32));
    EXPECT_FALSE(m.matches(9, 32));
    EXPECT_FALSE(m.matches(21, 32));
}

TEST(FieldMatch, Covers) {
    // Wildcard covers anything.
    EXPECT_TRUE(FieldMatch::wildcard().covers(FieldMatch::exact(5), 32));
    // /8 covers /16 within the prefix.
    EXPECT_TRUE(FieldMatch::lpm(0x0A000000, 8)
                    .covers(FieldMatch::lpm(0x0A0B0000, 16), 32));
    EXPECT_FALSE(FieldMatch::lpm(0x0A000000, 16)
                     .covers(FieldMatch::lpm(0x0A000000, 8), 32));
    // Ternary with subset mask covers.
    EXPECT_TRUE(FieldMatch::ternary(0x0A00, 0xFF00)
                    .covers(FieldMatch::ternary(0x0A0B, 0xFFFF), 32));
    // Exact covers identical exact only.
    EXPECT_TRUE(FieldMatch::exact(5).covers(FieldMatch::exact(5), 32));
    EXPECT_FALSE(FieldMatch::exact(5).covers(FieldMatch::exact(6), 32));
    // Range covers contained range and points.
    EXPECT_TRUE(FieldMatch::range(0, 100).covers(FieldMatch::range(10, 20), 32));
    EXPECT_TRUE(FieldMatch::range(0, 100).covers(FieldMatch::exact(50), 32));
    EXPECT_FALSE(FieldMatch::range(0, 100).covers(FieldMatch::range(50, 150), 32));
}

TEST(TableEntry, CompatibleWithTable) {
    Table t = TableSpec("t")
                  .key("a", MatchKind::Exact)
                  .key("b", MatchKind::Ternary)
                  .noop_action("x")
                  .build();
    TableEntry ok;
    ok.key = {FieldMatch::exact(1), FieldMatch::ternary(2, 0xFF)};
    ok.action_index = 0;
    EXPECT_TRUE(ok.compatible_with(t));

    // Ternary slot accepts exact and wildcard.
    TableEntry ok2;
    ok2.key = {FieldMatch::exact(1), FieldMatch::exact(2)};
    ok2.action_index = 0;
    EXPECT_TRUE(ok2.compatible_with(t));
    TableEntry ok3;
    ok3.key = {FieldMatch::exact(1), FieldMatch::wildcard()};
    ok3.action_index = 0;
    EXPECT_TRUE(ok3.compatible_with(t));

    TableEntry bad_count;
    bad_count.key = {FieldMatch::exact(1)};
    EXPECT_FALSE(bad_count.compatible_with(t));

    TableEntry bad_action = ok;
    bad_action.action_index = 5;
    EXPECT_FALSE(bad_action.compatible_with(t));

    // Exact slot rejects ternary.
    TableEntry bad_kind;
    bad_kind.key = {FieldMatch::ternary(1, 0xF), FieldMatch::exact(2)};
    bad_kind.action_index = 0;
    EXPECT_FALSE(bad_kind.compatible_with(t));
}

TEST(TableEntry, MatchesMultiComponent) {
    Table t = TableSpec("t")
                  .key("a", MatchKind::Exact)
                  .key("b", MatchKind::Lpm)
                  .noop_action("x")
                  .build();
    TableEntry e;
    e.key = {FieldMatch::exact(7), FieldMatch::lpm(0x0A000000, 8)};
    e.action_index = 0;
    EXPECT_TRUE(e.matches({7, 0x0A0B0C0D}, t.keys));
    EXPECT_FALSE(e.matches({8, 0x0A0B0C0D}, t.keys));
    EXPECT_FALSE(e.matches({7, 0x0B000000}, t.keys));
    EXPECT_FALSE(e.matches({7}, t.keys));  // wrong arity
}

TEST(Entries, DistinctPrefixLengths) {
    std::vector<TableEntry> entries;
    for (int len : {8, 16, 8, 24}) {
        TableEntry e;
        e.key = {FieldMatch::lpm(0, len)};
        entries.push_back(e);
    }
    EXPECT_EQ(distinct_prefix_lengths(entries), 3);
    EXPECT_EQ(distinct_prefix_lengths({}), 0);
}

TEST(Entries, DistinctMasks) {
    std::vector<TableEntry> entries;
    for (std::uint64_t mask : {0xFFULL, 0xFF00ULL, 0xFFULL}) {
        TableEntry e;
        e.key = {FieldMatch::ternary(0, mask)};
        entries.push_back(e);
    }
    EXPECT_EQ(distinct_masks(entries), 2);
    // Exact-only entries contribute no mask combos.
    std::vector<TableEntry> exact_only(1);
    exact_only[0].key = {FieldMatch::exact(3)};
    EXPECT_EQ(distinct_masks(exact_only), 0);
}

struct WidthCase {
    int width;
    std::uint64_t inside;
    std::uint64_t outside;
};

class LpmWidths : public testing::TestWithParam<WidthCase> {};

TEST_P(LpmWidths, PrefixMaskRespectsWidth) {
    const WidthCase& c = GetParam();
    FieldMatch m = FieldMatch::lpm(c.inside, c.width / 2);
    EXPECT_TRUE(m.matches(c.inside, c.width));
    EXPECT_FALSE(m.matches(c.outside, c.width));
}

INSTANTIATE_TEST_SUITE_P(
    Widths, LpmWidths,
    testing::Values(WidthCase{16, 0xAB00, 0x1200},
                    WidthCase{32, 0xDEAD0000, 0x12340000},
                    WidthCase{48, 0xAABBCC000000ULL, 0x112233000000ULL},
                    WidthCase{64, 0xCAFEBABE00000000ULL, 0x1234567800000000ULL}));

}  // namespace
}  // namespace pipeleon::ir
