// Tests for frontend/p4mini: the text frontend.
#include <gtest/gtest.h>

#include "frontend/p4mini.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"

namespace pipeleon::frontend {
namespace {

using ir::CmpOp;
using ir::kNoNode;
using ir::MatchKind;
using ir::NodeId;
using ir::Program;

const char* kRouter = R"(
// A small router with an ACL and an if/else.
program router;

table acl {
  key { ipv4.src : exact; }
  actions {
    allow { }
    deny { drop; }
  }
  default allow;
  size 256;
}

table tcp_opts {
  key { tcp.dport : ternary/16; }
  actions { mark { meta.class = 1; } }
}

table udp_table {
  key { udp.dport : exact/16; }
  actions { mark_udp { meta.class = 2; } }
}

table ipv4_lpm {
  key { ipv4.dst : lpm/32; }
  actions {
    set_nhop(port) { forward(port); meta.nhop = port; }
    bump { meta.miss_count += 1; }
  }
  default bump;
  size 1024;
}

control {
  acl;
  if (meta.proto == 6) { tcp_opts; } else { udp_table; }
  ipv4_lpm;
}
)";

TEST(P4Mini, ParsesRouter) {
    Program p = parse_p4mini(kRouter);
    EXPECT_EQ(p.name(), "router");
    EXPECT_EQ(p.table_count(), 4u);
    EXPECT_NO_THROW(p.validate());

    // Control order: acl -> branch -> {tcp_opts | udp_table} -> ipv4_lpm.
    const ir::Node& root = p.node(p.root());
    ASSERT_TRUE(root.is_table());
    EXPECT_EQ(root.table.name, "acl");
    NodeId branch = root.next_by_action[0];
    const ir::Node& br = p.node(branch);
    ASSERT_TRUE(br.is_branch());
    EXPECT_EQ(br.cond.field, "meta.proto");
    EXPECT_EQ(br.cond.op, CmpOp::Eq);
    EXPECT_EQ(br.cond.value, 6u);
    EXPECT_EQ(p.node(br.true_next).table.name, "tcp_opts");
    EXPECT_EQ(p.node(br.false_next).table.name, "udp_table");
    NodeId lpm = p.find_table("ipv4_lpm");
    EXPECT_EQ(p.node(br.true_next).next_by_action[0], lpm);
    EXPECT_EQ(p.node(br.false_next).next_by_action[0], lpm);
}

TEST(P4Mini, TableDetails) {
    Program p = parse_p4mini(kRouter);
    const ir::Table& acl = p.node(p.find_table("acl")).table;
    EXPECT_EQ(acl.keys[0].kind, MatchKind::Exact);
    EXPECT_EQ(acl.size, 256u);
    EXPECT_EQ(acl.default_action, acl.action_index("allow"));
    EXPECT_TRUE(acl.actions[1].drops());

    const ir::Table& tcp = p.node(p.find_table("tcp_opts")).table;
    EXPECT_EQ(tcp.keys[0].kind, MatchKind::Ternary);
    EXPECT_EQ(tcp.keys[0].width_bits, 16);

    const ir::Table& lpm = p.node(p.find_table("ipv4_lpm")).table;
    const ir::Action& set_nhop = lpm.actions[0];
    ASSERT_EQ(set_nhop.primitives.size(), 2u);
    EXPECT_EQ(set_nhop.primitives[0].kind, ir::PrimitiveKind::Forward);
    EXPECT_EQ(set_nhop.primitives[0].arg_index, 0);
    EXPECT_EQ(set_nhop.primitives[1].kind, ir::PrimitiveKind::SetConst);
    EXPECT_EQ(set_nhop.primitives[1].arg_index, 0);
    const ir::Action& bump = lpm.actions[1];
    EXPECT_EQ(bump.primitives[0].kind, ir::PrimitiveKind::AddConst);
}

TEST(P4Mini, StatementForms) {
    Program p = parse_p4mini(R"(
program stmts;
table t {
  key { f : exact; }
  actions {
    a(x, y) {
      m.a = x;
      m.b = y;
      m.c = 0xFF;
      m.d = other.field;
      m.e += 3;
      m.f -= 1;
      forward(7);
      noop;
    }
  }
}
control { t; }
)");
    const ir::Action& a = p.node(p.find_table("t")).table.actions[0];
    ASSERT_EQ(a.primitives.size(), 8u);
    EXPECT_EQ(a.primitives[0].arg_index, 0);
    EXPECT_EQ(a.primitives[1].arg_index, 1);
    EXPECT_EQ(a.primitives[2].value, 0xFFu);
    EXPECT_EQ(a.primitives[3].kind, ir::PrimitiveKind::CopyField);
    EXPECT_EQ(a.primitives[3].src_field, "other.field");
    EXPECT_EQ(a.primitives[4].kind, ir::PrimitiveKind::AddConst);
    EXPECT_EQ(a.primitives[5].kind, ir::PrimitiveKind::SubConst);
    EXPECT_EQ(a.primitives[6].kind, ir::PrimitiveKind::Forward);
    EXPECT_EQ(a.primitives[6].value, 7u);
    EXPECT_EQ(a.primitives[7].kind, ir::PrimitiveKind::NoOp);
}

TEST(P4Mini, NestedIf) {
    Program p = parse_p4mini(R"(
program nested;
table a { key { k : exact; } actions { n { } } }
table b { key { l : exact; } actions { n { } } }
table c { key { m : exact; } actions { n { } } }
control {
  if (x == 1) {
    if (y > 2) { a; } else { b; }
  }
  c;
}
)");
    EXPECT_NO_THROW(p.validate());
    const ir::Node& outer = p.node(p.root());
    ASSERT_TRUE(outer.is_branch());
    NodeId c = p.find_table("c");
    // Outer false edge skips straight to c.
    EXPECT_EQ(outer.false_next, c);
    const ir::Node& inner = p.node(outer.true_next);
    ASSERT_TRUE(inner.is_branch());
    EXPECT_EQ(inner.cond.op, CmpOp::Gt);
    EXPECT_EQ(p.node(inner.true_next).table.name, "a");
    EXPECT_EQ(p.node(inner.false_next).table.name, "b");
}

TEST(P4Mini, CpuOnlyFlag) {
    Program p = parse_p4mini(R"(
program cpu;
table t { key { k : exact; } actions { n { } } cpu_only; }
control { t; }
)");
    EXPECT_FALSE(p.node(p.find_table("t")).table.asic_supported);
}

TEST(P4Mini, Errors) {
    EXPECT_THROW(parse_p4mini(""), ParseError);
    EXPECT_THROW(parse_p4mini("program x;"), ParseError);  // no control
    EXPECT_THROW(parse_p4mini("program x; control { }"), ParseError);  // empty
    EXPECT_THROW(parse_p4mini(R"(
program x;
table t { key { k : exact; } actions { a { } } }
control { unknown_table; }
)"), ParseError);
    EXPECT_THROW(parse_p4mini(R"(
program x;
table t { key { k : bogus; } actions { a { } } }
control { t; }
)"), ParseError);
    EXPECT_THROW(parse_p4mini(R"(
program x;
table t { key { k : exact; } actions { a { } } default zzz; }
control { t; }
)"), ParseError);
    // Using the same table twice is rejected (our IR nodes are unique).
    EXPECT_THROW(parse_p4mini(R"(
program x;
table t { key { k : exact; } actions { a { } } }
control { t; t; }
)"), ParseError);
}

TEST(P4Mini, ErrorsCarryLocation) {
    try {
        parse_p4mini("program x;\ntable t {\n  oops\n}");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(std::string(e.what()).find("p4mini:3:"), std::string::npos);
    }
}

TEST(P4Mini, CommentsAndHex) {
    Program p = parse_p4mini(R"(
program c; /* block
comment */
table t {
  key { k : exact; } // trailing
  actions { a { m.x = 0xdead; } }
}
control { t; }
)");
    EXPECT_EQ(p.node(p.find_table("t")).table.actions[0].primitives[0].value,
              0xDEADu);
}

TEST(P4Mini, ParsedProgramRunsOnEmulator) {
    Program p = parse_p4mini(kRouter);
    sim::Emulator emu(sim::bluefield2_model(), p, {});
    ir::TableEntry deny;
    deny.key = {ir::FieldMatch::exact(99)};
    deny.action_index = 1;
    ASSERT_TRUE(emu.insert_entry("acl", deny));

    sim::Packet bad;
    bad.set(emu.fields().intern("ipv4.src"), 99);
    EXPECT_TRUE(emu.process(bad).dropped);

    sim::Packet tcp;
    tcp.set(emu.fields().intern("ipv4.src"), 1);
    tcp.set(emu.fields().intern("meta.proto"), 6);
    sim::ProcessResult r = emu.process(tcp);
    EXPECT_FALSE(r.dropped);
    // acl + branch + tcp_opts + ipv4_lpm = 4 nodes.
    EXPECT_EQ(r.nodes_visited, 4);
    // ipv4_lpm missed -> default bump ran.
    EXPECT_EQ(tcp.get(emu.fields().find("meta.miss_count")), 1u);
}

}  // namespace
}  // namespace pipeleon::frontend
