// Randomized round-trip properties: JSON values, programs, and entries
// survive serialization; synthesized programs survive optimizer rounds.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "ir/json_io.h"
#include "profile/counter_map.h"
#include "search/optimizer.h"
#include "sim/nic_model.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"
#include "util/json.h"
#include "util/rng.h"

namespace pipeleon {
namespace {

using util::Json;
using util::JsonObject;

Json random_json(util::Rng& rng, int depth) {
    double r = rng.uniform();
    if (depth <= 0 || r < 0.15) return Json(nullptr);
    if (r < 0.30) return Json(rng.chance(0.5));
    if (r < 0.50) {
        // Integers and doubles, positive and negative.
        if (rng.chance(0.5)) {
            return Json(static_cast<std::int64_t>(rng.uniform_int(-1000000, 1000000)));
        }
        return Json(rng.uniform(-1e6, 1e6));
    }
    if (r < 0.70) {
        std::string s;
        std::size_t len = rng.next_below(24);
        for (std::size_t i = 0; i < len; ++i) {
            // Include escapes, control chars, and non-ASCII bytes.
            static const char alphabet[] =
                "abcXYZ 0129_\"\\\n\t/\x01\x1f\xc3\xa9";
            s += alphabet[rng.next_below(sizeof(alphabet) - 1)];
        }
        return Json(std::move(s));
    }
    if (r < 0.85) {
        Json arr = Json::array();
        std::size_t n = rng.next_below(5);
        for (std::size_t i = 0; i < n; ++i) {
            arr.push_back(random_json(rng, depth - 1));
        }
        return arr;
    }
    JsonObject obj;
    std::size_t n = rng.next_below(5);
    for (std::size_t i = 0; i < n; ++i) {
        obj.set("k" + std::to_string(i) + (rng.chance(0.3) ? ".x" : ""),
                random_json(rng, depth - 1));
    }
    return Json(std::move(obj));
}

class JsonFuzz : public testing::TestWithParam<int> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL);
    for (int i = 0; i < 50; ++i) {
        Json v = random_json(rng, 4);
        // Compact and pretty forms both parse back to the same value.
        Json compact = Json::parse(v.dump());
        Json pretty = Json::parse(v.dump(2));
        // Numbers may lose ULPs through %.17g only for NaN/Inf (not
        // generated); everything here must round-trip exactly.
        EXPECT_TRUE(compact == v);
        EXPECT_TRUE(pretty == v);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, testing::Range(1, 11));

TEST(JsonFuzz, GarbageInputsThrowNotCrash) {
    util::Rng rng(99);
    int threw = 0;
    for (int i = 0; i < 500; ++i) {
        std::string garbage;
        std::size_t len = rng.next_below(40);
        for (std::size_t j = 0; j < len; ++j) {
            garbage += static_cast<char>(rng.next_below(128));
        }
        try {
            Json::parse(garbage);
        } catch (const util::JsonError&) {
            ++threw;
        }
    }
    EXPECT_GT(threw, 400);  // almost everything random is malformed
}

class ProgramFuzz : public testing::TestWithParam<int> {};

TEST_P(ProgramFuzz, SynthesizedProgramsSurviveFullRound) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 7727ULL;
    synth::SynthConfig scfg;
    scfg.pipelets = 4 + GetParam() % 8;
    scfg.diamond_fraction = 0.4;
    scfg.drop_table_fraction = 0.5;
    synth::ProgramSynthesizer gen(scfg, seed);
    ir::Program program = gen.generate("fuzz");

    // IR JSON round trip.
    ir::Program back = ir::program_from_json(ir::program_to_json(program));
    ASSERT_TRUE(back == program);

    // Optimizer round on a random profile; the output must validate and
    // survive its own round trip.
    synth::ProfileSynthesizer profgen(synth::high_locality_config(), seed + 1);
    profile::RuntimeProfile prof = profgen.generate(program);
    search::OptimizerConfig cfg;
    cfg.top_k_fraction = 0.5;
    search::Optimizer optimizer(
        cost::CostModel(sim::bluefield2_model().costs, {}), cfg);
    search::OptimizationOutcome out = optimizer.optimize(program, prof);
    EXPECT_NO_THROW(out.optimized.validate());
    EXPECT_TRUE(ir::program_from_json(ir::program_to_json(out.optimized)) ==
                out.optimized);

    // Counter-map construction between original and optimized never throws.
    EXPECT_NO_THROW(profile::CounterMap::build(program, out.optimized));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz, testing::Range(1, 16));

// Verifier fuzz (ISSUE 2): random structural corruption of a synthesized
// program. Targeted corruptions must surface as Error diagnostics; fully
// random corruptions may be legal or not, but the verifier must never
// crash or throw.
class VerifierFuzz : public testing::TestWithParam<int> {};

TEST_P(VerifierFuzz, TargetedCorruptionIsDiagnosed) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 6151ULL;
    util::Rng rng(seed);
    synth::SynthConfig scfg;
    scfg.pipelets = 3 + GetParam() % 6;
    synth::ProgramSynthesizer gen(scfg, seed);
    ir::Program program = gen.generate("vfuzz");
    ASSERT_TRUE(analysis::verify_structure(program).ok());

    auto random_table_node = [&](ir::Program& p) -> ir::Node& {
        for (;;) {
            ir::NodeId id = static_cast<ir::NodeId>(rng.next_below(p.node_count()));
            if (p.node(id).is_table()) return p.node(id);
        }
    };

    for (int round = 0; round < 30; ++round) {
        ir::Program mutant = program;
        switch (rng.next_below(5)) {
            case 0: {  // dangling edge
                ir::Node& n = random_table_node(mutant);
                n.miss_next =
                    static_cast<ir::NodeId>(mutant.node_count() + rng.next_below(4));
                break;
            }
            case 1: {  // back edge to the root: guaranteed cycle or self-loop
                ir::Node& n = random_table_node(mutant);
                for (ir::NodeId& e : n.next_by_action) e = mutant.root();
                n.miss_next = mutant.root();
                // The mutated node may be unreachable; force the root's miss
                // into it so the cycle is live.
                if (mutant.node(mutant.root()).is_table() &&
                    n.id != mutant.root()) {
                    mutant.node(mutant.root()).miss_next = n.id;
                } else if (n.id == mutant.root()) {
                    // root -> root is a self-loop, also an error
                }
                break;
            }
            case 2: {  // default action out of range
                ir::Node& n = random_table_node(mutant);
                n.table.default_action =
                    static_cast<int>(n.table.actions.size() + 1 +
                                     rng.next_below(4));
                break;
            }
            case 3: {  // action-edge arity mismatch
                ir::Node& n = random_table_node(mutant);
                n.next_by_action.push_back(ir::kNoNode);
                break;
            }
            case 4: {  // duplicate table name
                ir::Node& a = random_table_node(mutant);
                ir::Node& b = random_table_node(mutant);
                if (a.id == b.id) {
                    a.table.name.clear();  // empty name, also an error
                } else {
                    b.table.name = a.table.name;
                }
                break;
            }
        }
        analysis::DiagnosticList d;
        EXPECT_NO_THROW(d = analysis::verify_structure(mutant));
        EXPECT_FALSE(d.ok()) << "corruption went undiagnosed:\n"
                             << d.to_string();
    }
}

TEST_P(VerifierFuzz, ArbitraryCorruptionNeverCrashes) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 27644437ULL;
    util::Rng rng(seed);
    synth::SynthConfig scfg;
    scfg.pipelets = 3 + GetParam() % 6;
    scfg.diamond_fraction = 0.3;
    synth::ProgramSynthesizer gen(scfg, seed);
    ir::Program program = gen.generate("vfuzz_wild");

    for (int round = 0; round < 60; ++round) {
        ir::Program mutant = program;
        int mutations = 1 + static_cast<int>(rng.next_below(4));
        for (int m = 0; m < mutations; ++m) {
            ir::NodeId id =
                static_cast<ir::NodeId>(rng.next_below(mutant.node_count()));
            ir::Node& n = mutant.node(id);
            ir::NodeId target = static_cast<ir::NodeId>(
                static_cast<int>(rng.next_below(mutant.node_count() + 4)) - 2);
            switch (rng.next_below(6)) {
                case 0:
                    if (n.is_table()) n.miss_next = target;
                    else n.false_next = target;
                    break;
                case 1:
                    if (n.is_table() && !n.next_by_action.empty()) {
                        n.next_by_action[rng.next_below(
                            n.next_by_action.size())] = target;
                    } else if (!n.is_table()) {
                        n.true_next = target;
                    }
                    break;
                case 2:
                    // Illegal core assignment: flip a node across cores.
                    n.core = (n.core == ir::CoreKind::Asic)
                                 ? ir::CoreKind::Cpu
                                 : ir::CoreKind::Asic;
                    break;
                case 3:
                    if (n.is_table()) {
                        n.table.role = static_cast<ir::TableRole>(
                            rng.next_below(6));
                    }
                    break;
                case 4:
                    if (n.is_table()) {
                        n.table.default_action = static_cast<int>(
                            rng.next_below(8)) - 2;
                    }
                    break;
                case 5:
                    if (n.is_table() && !n.table.actions.empty() &&
                        rng.chance(0.5)) {
                        n.table.actions.pop_back();
                    } else if (n.is_table()) {
                        n.table.origin_tables.push_back("ghost");
                    }
                    break;
            }
        }
        // Diagnostics (possibly none: some mutations are legal), never a
        // crash or an exception.
        EXPECT_NO_THROW(analysis::verify_structure(mutant));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierFuzz, testing::Range(1, 9));

}  // namespace
}  // namespace pipeleon
