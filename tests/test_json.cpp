// Tests for util/json: parsing, serialization, value semantics, errors.
#include <gtest/gtest.h>

#include "util/json.h"

namespace pipeleon::util {
namespace {

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_TRUE(Json::parse("true").as_bool());
    EXPECT_FALSE(Json::parse("false").as_bool());
    EXPECT_DOUBLE_EQ(Json::parse("3.25").as_double(), 3.25);
    EXPECT_EQ(Json::parse("-17").as_int(), -17);
    EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
    Json v = Json::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
    EXPECT_EQ(v.at("a").as_array().size(), 3u);
    EXPECT_EQ(v.at("a").at(0).as_int(), 1);
    EXPECT_TRUE(v.at("a").at(2).at("b").as_bool());
    EXPECT_TRUE(v.at("c").at("d").is_null());
}

TEST(Json, ParsesStringEscapes) {
    Json v = Json::parse(R"("line\nbreak\ttab\\\"")");
    EXPECT_EQ(v.as_string(), "line\nbreak\ttab\\\"");
}

TEST(Json, ParsesUnicodeEscapes) {
    EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
    // U+00E9 (é) -> 2-byte UTF-8.
    EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\":}"), JsonError);
    EXPECT_THROW(Json::parse("tru"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    EXPECT_THROW(Json::parse("01x"), JsonError);
    EXPECT_THROW(Json::parse("1."), JsonError);
    EXPECT_THROW(Json::parse("1e"), JsonError);
    EXPECT_THROW(Json::parse(R"("\q")"), JsonError);
    EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);  // unpaired surrogate
}

TEST(Json, ErrorsCarryLineAndColumn) {
    try {
        Json::parse("{\n  \"a\": [1,\n  bad]\n}");
        FAIL() << "expected JsonError";
    } catch (const JsonError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Json, TypeMismatchThrows) {
    Json v = Json::parse("[1]");
    EXPECT_THROW(v.as_object(), JsonError);
    EXPECT_THROW(v.as_string(), JsonError);
    EXPECT_THROW(v.at("x"), JsonError);
    EXPECT_THROW(v.at(5), JsonError);
}

TEST(Json, DumpRoundTrips) {
    const char* doc =
        R"({"name":"pipeleon","n":42,"pi":3.5,"ok":true,"xs":[1,2,3],"sub":{"k":null}})";
    Json v = Json::parse(doc);
    Json again = Json::parse(v.dump());
    EXPECT_TRUE(v == again);
    // Pretty-printed output parses identically too.
    EXPECT_TRUE(Json::parse(v.dump(2)) == v);
}

TEST(Json, DumpEscapesControlCharacters) {
    Json v(std::string("a\x01"
                       "b\nc"));
    std::string out = v.dump();
    EXPECT_NE(out.find("\\u0001"), std::string::npos);
    EXPECT_NE(out.find("\\n"), std::string::npos);
    EXPECT_TRUE(Json::parse(out) == v);
}

TEST(Json, IntegersSerializeWithoutExponent) {
    Json v(std::int64_t{1234567890123});
    EXPECT_EQ(v.dump(), "1234567890123");
}

TEST(Json, ObjectPreservesInsertionOrder) {
    Json v = Json::object();
    v.as_object().set("z", Json(1));
    v.as_object().set("a", Json(2));
    std::string out = v.dump();
    EXPECT_LT(out.find("\"z\""), out.find("\"a\""));
}

TEST(Json, ObjectEqualityIsOrderInsensitive) {
    Json a = Json::parse(R"({"x":1,"y":2})");
    Json b = Json::parse(R"({"y":2,"x":1})");
    EXPECT_TRUE(a == b);
}

TEST(Json, CopyIsDeep) {
    Json a = Json::parse(R"({"k":[1]})");
    Json b = a;
    b.as_object()["k"].as_array().push_back(Json(2));
    EXPECT_EQ(a.at("k").as_array().size(), 1u);
    EXPECT_EQ(b.at("k").as_array().size(), 2u);
}

TEST(Json, GettersWithDefaults) {
    Json v = Json::parse(R"({"n": 7, "s": "x", "b": true})");
    EXPECT_EQ(v.get_int("n", -1), 7);
    EXPECT_EQ(v.get_int("missing", -1), -1);
    EXPECT_EQ(v.get_string("s", ""), "x");
    EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
    EXPECT_TRUE(v.get_bool("b", false));
    EXPECT_TRUE(v.get_bool("missing", true));
    EXPECT_DOUBLE_EQ(v.get_double("n", 0.0), 7.0);
}

TEST(Json, ObjectEraseAndContains) {
    Json v = Json::parse(R"({"a":1,"b":2})");
    EXPECT_TRUE(v.as_object().contains("a"));
    EXPECT_TRUE(v.as_object().erase("a"));
    EXPECT_FALSE(v.as_object().contains("a"));
    EXPECT_FALSE(v.as_object().erase("a"));
    EXPECT_EQ(v.as_object().size(), 1u);
}

TEST(Json, FileRoundTrip) {
    Json v = Json::parse(R"({"hello": ["world", 1, true]})");
    std::string path = testing::TempDir() + "/pipeleon_json_test.json";
    save_json_file(path, v);
    EXPECT_TRUE(load_json_file(path) == v);
    EXPECT_THROW(load_json_file(path + ".does-not-exist"), JsonError);
}

class JsonNumberRoundTrip : public testing::TestWithParam<double> {};

TEST_P(JsonNumberRoundTrip, SurvivesDump) {
    Json v(GetParam());
    EXPECT_DOUBLE_EQ(Json::parse(v.dump()).as_double(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, JsonNumberRoundTrip,
                         testing::Values(0.0, 1.0, -1.0, 0.5, 1e-9, 1e15,
                                         -3.14159265358979, 255.0, 65535.0,
                                         4294967295.0, 1e20, 123456.789));

}  // namespace
}  // namespace pipeleon::util
