// Tests for analysis/dependency: the match/action/write dependency taxonomy
// and order enumeration.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dependency.h"
#include "ir/builder.h"

namespace pipeleon::analysis {
namespace {

using ir::Action;
using ir::Primitive;
using ir::Table;
using ir::TableSpec;

Table reader(const std::string& name, const std::string& key_field) {
    return TableSpec(name).key(key_field).noop_action(name + "_a").build();
}

Table writer(const std::string& name, const std::string& key_field,
             const std::string& written) {
    Action a;
    a.name = name + "_w";
    a.primitives.push_back(Primitive::set_const(written, 1));
    return TableSpec(name).key(key_field).action(a).build();
}

Table field_reader(const std::string& name, const std::string& key_field,
                   const std::string& read) {
    Action a;
    a.name = name + "_r";
    a.primitives.push_back(Primitive::copy_field("scratch_" + name, read));
    return TableSpec(name).key(key_field).action(a).build();
}

TEST(Dependency, FieldSets) {
    Table t = writer("w", "k", "out");
    FieldSets fs = field_sets(t);
    EXPECT_TRUE(fs.reads.count("k"));
    EXPECT_TRUE(fs.writes.count("out"));
    EXPECT_FALSE(fs.writes.count("k"));
}

TEST(Dependency, MatchDependency) {
    Table a = writer("a", "k1", "x");
    Table b = reader("b", "x");  // matches on what a writes
    EXPECT_EQ(classify_dependency(a, b), DependencyKind::Match);
    EXPECT_FALSE(independent(a, b));
}

TEST(Dependency, ActionDependency) {
    Table a = writer("a", "k1", "x");
    Table b = field_reader("b", "k2", "x");  // action reads what a writes
    EXPECT_EQ(classify_dependency(a, b), DependencyKind::Action);
    EXPECT_FALSE(independent(a, b));
}

TEST(Dependency, WriteDependency) {
    Table a = writer("a", "k1", "x");
    Table b = writer("b", "k2", "x");
    EXPECT_EQ(classify_dependency(a, b), DependencyKind::Write);
    EXPECT_FALSE(independent(a, b));
}

TEST(Dependency, IndependentTables) {
    Table a = reader("a", "k1");
    Table b = reader("b", "k2");
    EXPECT_EQ(classify_dependency(a, b), DependencyKind::None);
    EXPECT_TRUE(independent(a, b));
}

TEST(Dependency, MatchOutranksAction) {
    // a writes x; b matches on x AND reads x in its action -> Match wins.
    Table a = writer("a", "k1", "x");
    Action act;
    act.name = "b_r";
    act.primitives.push_back(Primitive::copy_field("y", "x"));
    Table b = TableSpec("b").key("x").action(act).build();
    EXPECT_EQ(classify_dependency(a, b), DependencyKind::Match);
}

TEST(Dependency, DropActionsDoNotCreateDependencies) {
    // ACL tables that only drop commute with each other.
    Table a = TableSpec("acl1").key("src").noop_action("ok").drop_action().build();
    Table b = TableSpec("acl2").key("dst").noop_action("ok").drop_action().build();
    EXPECT_TRUE(independent(a, b));
}

TEST(DependencyGraph, IndependentChainAllowsAllOrders) {
    std::vector<Table> ts{reader("a", "k1"), reader("b", "k2"), reader("c", "k3")};
    DependencyGraph g(ts);
    EXPECT_FALSE(g.dependent(0, 1));
    auto orders = g.valid_orders(100);
    EXPECT_EQ(orders.size(), 6u);  // 3! permutations
    for (const auto& o : orders) EXPECT_TRUE(g.order_is_valid(o));
}

TEST(DependencyGraph, DependencyConstrainsOrders) {
    // b depends on a (a writes b's key); c independent.
    std::vector<Table> ts{writer("a", "k1", "x"), reader("b", "x"),
                          reader("c", "k3")};
    DependencyGraph g(ts);
    EXPECT_TRUE(g.dependent(0, 1));
    auto orders = g.valid_orders(100);
    // 3 of the 6 permutations keep a before b.
    EXPECT_EQ(orders.size(), 3u);
    EXPECT_FALSE(g.order_is_valid({1, 0, 2}));
    EXPECT_TRUE(g.order_is_valid({0, 2, 1}));
}

TEST(DependencyGraph, FullChainHasOneOrder) {
    std::vector<Table> ts{writer("a", "k", "x"), writer("b", "x", "y"),
                          reader("c", "y")};
    DependencyGraph g(ts);
    auto orders = g.valid_orders(100);
    ASSERT_EQ(orders.size(), 1u);
    EXPECT_EQ(orders[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(DependencyGraph, OrderLimitRespected) {
    std::vector<Table> ts;
    for (int i = 0; i < 6; ++i) {
        ts.push_back(reader("t" + std::to_string(i), "k" + std::to_string(i)));
    }
    DependencyGraph g(ts);
    EXPECT_EQ(g.valid_orders(10).size(), 10u);
}

TEST(DependencyGraph, CanGroup) {
    // 0 writes x; 1 matches x and writes y; 2 reads y: 1 is forced between
    // 0 and 2, so {0, 2} cannot be contiguous.
    std::vector<Table> seq{writer("a", "q", "x"), writer("mid", "x", "y"),
                           reader("b", "y")};
    DependencyGraph g(seq);
    EXPECT_FALSE(g.can_group({0, 2}));
    EXPECT_TRUE(g.can_group({0, 1}));
    EXPECT_TRUE(g.can_group({1, 2}));

    std::vector<Table> free{reader("a", "k1"), reader("b", "k2"),
                            reader("c", "k3")};
    DependencyGraph g2(free);
    EXPECT_TRUE(g2.can_group({0, 2}));
}

TEST(DependencyGraph, ValidOrdersRespectDependenciesProperty) {
    std::vector<Table> ts{writer("a", "k0", "x"), reader("b", "x"),
                          writer("c", "k2", "y"), reader("d", "y"),
                          reader("e", "k4")};
    DependencyGraph g(ts);
    auto orders = g.valid_orders(1000);
    EXPECT_GT(orders.size(), 1u);
    for (const auto& o : orders) {
        EXPECT_TRUE(g.order_is_valid(o));
        auto pos = [&o](std::size_t p) {
            return std::find(o.begin(), o.end(), p) - o.begin();
        };
        EXPECT_LT(pos(0), pos(1));  // a before b
        EXPECT_LT(pos(2), pos(3));  // c before d
    }
}

}  // namespace
}  // namespace pipeleon::analysis
