// tests/test_tenant.cpp — the multi-tenant data plane (ISSUE 8). The load-
// bearing guarantees: (1) zero-bit isolation — with deterministic virtual
// time, a noisy neighbor's reconfigure storm, table churn, and deny-all
// deploys change a steady tenant's per-packet results and latency
// accumulator by exactly zero bits; (2) conservation — per tenant,
// offered == enqueued + rate_limited + ring_dropped under mixed-tenant
// overload; (3) compatibility — a single-tenant registry is bit-identical
// to driving the emulator's make_rings/dispatch/poll path directly;
// (4) control-plane isolation — a storming or verify-rejected tenant is
// quarantined without delaying its neighbors' deploys or ticks; (5) the
// Eq. 5 budget splits across tenants by measured load. The two-tenant
// storm stress at the bottom is the TSan target.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "ir/builder.h"
#include "runtime/tenant_controller.h"
#include "search/budget_split.h"
#include "sim/tenant.h"
#include "trafficgen/workload.h"
#include "util/strings.h"

namespace pipeleon {
namespace {

using ir::Program;
using ir::TableSpec;
using runtime::MultiController;
using runtime::MultiControllerConfig;
using sim::Emulator;
using sim::NicModel;
using sim::TenantId;
using sim::TenantQuota;
using sim::TenantRegistry;
using sim::TenantStats;
using sim::TokenBucket;

NicModel nic(int cores = 4) {
    NicModel m = sim::emulated_nic_model();
    m.cores = cores;
    m.cycles_per_second = 1e9;
    return m;
}

Program chain(const char* name = "tenant_p") {
    return ir::chain_of_exact_tables(name, 4, 2, 1);
}

trafficgen::FlowSet make_flows(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 4; ++i) {
        tuple.push_back({util::format("f%d", i), 0, 255});
    }
    return trafficgen::FlowSet::generate(tuple, static_cast<std::size_t>(n),
                                         rng);
}

/// A program whose only table drops every packet (the deny-all deploy the
/// noisy neighbor pushes).
Program deny_all() {
    ir::ProgramBuilder b("deny_all");
    b.append(TableSpec("wall").key("f0").drop_action("deny").default_to("deny")
                 .build());
    return b.build();
}

void assert_conserved(const TenantStats& s) {
    ASSERT_EQ(s.offered, s.enqueued + s.rate_limited + s.ring_dropped);
    ASSERT_EQ(s.enqueued, s.completed + s.backlog);
}

// ------------------------------------------------------------- token bucket

TEST(TokenBucket, DefaultIsUnlimited) {
    TokenBucket b;
    for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_consume(0.0));
}

TEST(TokenBucket, BurstThenRefillAtRate) {
    TokenBucket b(/*rate_pps=*/100.0, /*burst=*/10.0);
    // Cold start seeds the full burst.
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.try_consume(1.0)) << i;
    EXPECT_FALSE(b.try_consume(1.0));
    // 50 ms at 100 pps mints 5 tokens.
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_consume(1.05)) << i;
    EXPECT_FALSE(b.try_consume(1.05));
    // Time moving backwards mints nothing.
    EXPECT_FALSE(b.try_consume(0.5));
    // Refill caps at the burst.
    EXPECT_LE(b.available(100.0), 10.0 + 1e-9);
}

// ----------------------------------------------------------------- registry

TEST(TenantRegistry, NamesQuotasAndLookup) {
    TenantRegistry reg(nic());
    TenantQuota qa;
    qa.ingress_pps = 1000.0;
    TenantId a = reg.add_tenant("a", chain(), qa);
    TenantId b = reg.add_tenant("b", chain("p_b"));
    EXPECT_EQ(reg.tenant_count(), 2u);
    EXPECT_EQ(reg.find("a"), a);
    EXPECT_EQ(reg.find("b"), b);
    EXPECT_EQ(reg.find("nope"), sim::kNoTenant);
    EXPECT_EQ(reg.name(b), "b");
    EXPECT_EQ(reg.quota(a).ingress_pps, 1000.0);
    EXPECT_THROW(reg.add_tenant("a", chain()), std::invalid_argument);
    EXPECT_THROW(reg.add_tenant("", chain()), std::invalid_argument);
    EXPECT_THROW(reg.stats(99), std::out_of_range);
}

TEST(TenantRegistry, QuotaCarvesCachesTablesAndCores) {
    Program p = chain();
    // Hand-promote t3 to a flow cache so the cache carve has a target.
    ir::NodeId cache_id = p.find_table("t3");
    ASSERT_NE(cache_id, ir::kNoNode);
    p.node(cache_id).table.role = ir::TableRole::Cache;
    p.node(cache_id).table.cache.capacity = 4096;

    TenantQuota q;
    q.cache_entries = 100;
    q.table_entries = 30;  // across t0..t2 -> 10 each
    q.cores = 2;
    TenantRegistry reg(nic(/*cores=*/8));
    TenantId t = reg.add_tenant("carved", p, q);

    const Program& deployed = reg.emulator(t).program();
    EXPECT_EQ(deployed.node(cache_id).table.cache.capacity, 100u);
    for (const char* name : {"t0", "t1", "t2"}) {
        ir::NodeId id = deployed.find_table(name);
        ASSERT_NE(id, ir::kNoNode);
        EXPECT_EQ(deployed.node(id).table.size, 10u) << name;
    }
    EXPECT_EQ(reg.emulator(t).model().cores, 2);
    // The carve is a clamp, not a grant: set_worker_count saturates at the
    // carved core count.
    reg.emulator(t).set_worker_count(8);
    EXPECT_EQ(reg.emulator(t).worker_count(), 2);

    // Redeploying an over-quota program re-clamps.
    Program again = p;
    again.node(cache_id).table.cache.capacity = 100000;
    reg.reconfigure(t, again);
    EXPECT_EQ(reg.emulator(t).program().node(cache_id).table.cache.capacity,
              100u);
}

TEST(TenantRegistry, TierQuotaClampedOnEveryDeploy) {
    Program p = chain();
    // Two cache nodes so the equal-share split is visible.
    std::vector<ir::NodeId> cache_ids;
    for (const char* name : {"t2", "t3"}) {
        ir::NodeId id = p.find_table(name);
        ASSERT_NE(id, ir::kNoNode);
        p.node(id).table.role = ir::TableRole::Cache;
        p.node(id).table.cache.capacity = 4096;
        p.node(id).table.cache.tiers.dram_entries = 100000;
        p.node(id).table.cache.tiers.host_entries = 100000;
        cache_ids.push_back(id);
    }

    TenantQuota q;
    q.dram_cache_entries = 100;  // across 2 caches -> 50 each
    q.host_cache_entries = 50;   // -> 25 each
    TenantRegistry reg(nic());
    TenantId t = reg.add_tenant("tiered", p, q);

    auto check_conserved = [&](const Program& deployed) {
        std::size_t dram_total = 0, host_total = 0;
        for (ir::NodeId id : cache_ids) {
            const ir::TierConfig& tiers = deployed.node(id).table.cache.tiers;
            dram_total += tiers.dram_entries;
            host_total += tiers.host_entries;
        }
        // Conservation: a tenant's carved tier capacity never exceeds its
        // grant, no matter what the deployed program asked for.
        EXPECT_LE(dram_total, q.dram_cache_entries);
        EXPECT_LE(host_total, q.host_cache_entries);
    };

    const Program& deployed = reg.emulator(t).program();
    for (ir::NodeId id : cache_ids) {
        EXPECT_EQ(deployed.node(id).table.cache.tiers.dram_entries, 50u);
        EXPECT_EQ(deployed.node(id).table.cache.tiers.host_entries, 25u);
    }
    check_conserved(deployed);

    // Redeploying an over-quota program re-clamps (quota applies on every
    // deploy, not just admission).
    Program again = p;
    again.node(cache_ids[0]).table.cache.tiers.dram_entries = 500000;
    again.node(cache_ids[0]).table.cache.tiers.host_entries = 500000;
    reg.reconfigure(t, again);
    check_conserved(reg.emulator(t).program());

    // An unbudgeted quota leaves tier configs alone; a tenant whose program
    // stays under the grant is untouched too.
    TenantId open = reg.add_tenant("open", p);
    const Program& free_plan = reg.emulator(open).program();
    EXPECT_EQ(free_plan.node(cache_ids[0]).table.cache.tiers.dram_entries,
              100000u);
}

TEST(TenantRegistry, RateLimitAndConservationUnderMixedOverload) {
    sim::RingConfig rings;
    rings.rx_capacity = 32;  // small on purpose: force overflow drops
    TenantRegistry reg(nic(), rings);
    reg.set_deterministic(true);

    TenantQuota qa;
    qa.ingress_pps = 2000.0;
    qa.ingress_burst = 50.0;
    TenantId a = reg.add_tenant("a", chain(), qa);
    TenantId b = reg.add_tenant("b", chain("p_b"));  // unlimited ingress

    trafficgen::FlowSet fa = make_flows(64, 21);
    trafficgen::FlowSet fb = make_flows(64, 22);
    trafficgen::Workload wa(fa, trafficgen::Locality::Uniform, 0.0, 31);
    trafficgen::Workload wb(fb, trafficgen::Locality::Zipf, 1.1, 32);

    for (int round = 0; round < 40; ++round) {
        // Both tenants blast far beyond their ring and A's bucket.
        sim::PacketBatch ba = wa.next_batch(reg.emulator(a).fields(), 120);
        sim::PacketBatch bb = wb.next_batch(reg.emulator(b).fields(), 120);
        reg.offer(a, ba);
        reg.offer(b, bb);
        assert_conserved(reg.stats(a));
        assert_conserved(reg.stats(b));
        // Budgeted polls leave backlog some rounds; conservation must hold
        // mid-flight, not just at quiescence.
        reg.poll_all(round % 3 == 0 ? 2000.0 : 0.0);
        assert_conserved(reg.stats(a));
        assert_conserved(reg.stats(b));
        reg.advance_time(0.005);
    }
    // Drain and settle.
    reg.poll_all(0.0);
    const TenantStats& sa = reg.stats(a);
    const TenantStats& sb = reg.stats(b);
    assert_conserved(sa);
    assert_conserved(sb);
    EXPECT_EQ(sa.offered, 40u * 120u);
    EXPECT_GT(sa.rate_limited, 0u);  // the bucket bit
    EXPECT_GT(sb.ring_dropped, 0u);  // the ring bit
    EXPECT_EQ(sb.rate_limited, 0u);  // no bucket on b
    EXPECT_EQ(sa.backlog, 0u);
    EXPECT_EQ(sb.backlog, 0u);
}

TEST(TenantRegistry, SingleTenantBitIdenticalToDirectEmulator) {
    sim::RingConfig rings;
    rings.rx_capacity = 256;
    const double dt = 0.001;

    // Reference: today's single-tenant path, driven by hand.
    Emulator ref(nic(), chain(), {});
    ref.set_deterministic(true);
    sim::RssDispatcher ref_io = ref.make_rings(rings);
    trafficgen::FlowSet flows_ref = make_flows(64, 77);
    trafficgen::Workload wl_ref(flows_ref, trafficgen::Locality::Zipf, 1.1, 99);

    // Same NIC, same program, same seeds — through the registry.
    TenantRegistry reg(nic(), rings);
    reg.set_deterministic(true);
    TenantId t = reg.add_tenant("solo", chain());
    trafficgen::FlowSet flows_reg = make_flows(64, 77);
    trafficgen::Workload wl_reg(flows_reg, trafficgen::Locality::Zipf, 1.1, 99);

    double ref_latency = 0.0, reg_latency = 0.0;
    for (int round = 0; round < 20; ++round) {
        sim::PacketBatch batch = wl_ref.next_batch(ref.fields(), 64);
        ref_io.dispatch_batch(batch, ref.now_seconds());
        sim::BatchResult ref_out = ref.poll(ref_io);
        ref.advance_time(dt);

        sim::PacketBatch batch2 = wl_reg.next_batch(reg.emulator(t).fields(), 64);
        reg.offer(t, batch2);
        const sim::BatchResult& reg_out = reg.poll(t);
        reg.advance_time(dt);

        ASSERT_EQ(ref_out.results.size(), reg_out.results.size());
        for (std::size_t i = 0; i < ref_out.results.size(); ++i) {
            // Exact double equality is the point: same bits or bust.
            ASSERT_EQ(ref_out.results[i].cycles, reg_out.results[i].cycles);
            ASSERT_EQ(ref_out.results[i].queue_cycles,
                      reg_out.results[i].queue_cycles);
            ASSERT_EQ(ref_out.results[i].dropped, reg_out.results[i].dropped);
            ref_latency +=
                ref_out.results[i].cycles + ref_out.results[i].queue_cycles;
            reg_latency +=
                reg_out.results[i].cycles + reg_out.results[i].queue_cycles;
        }
    }
    EXPECT_EQ(ref.packets_processed(), reg.emulator(t).packets_processed());
    EXPECT_EQ(std::memcmp(&ref_latency, &reg_latency, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&reg_latency, &reg.stats(t).latency_cycles,
                          sizeof(double)),
              0);
}

// ---------------------------------------------------------------- isolation

/// Drives tenant A identically with and without a storming neighbor and
/// returns A's observable trace. Every double is compared bit-for-bit by
/// the caller.
struct TenantTrace {
    std::vector<double> cycles;
    std::vector<double> queue_cycles;
    std::vector<bool> dropped;
    double latency_sum = 0.0;
    TenantStats stats;
    std::uint64_t epoch = 0;
};

TenantTrace drive_tenant_a(bool with_noisy_b) {
    sim::RingConfig rings;
    rings.rx_capacity = 128;
    TenantRegistry reg(nic(), rings);
    reg.set_deterministic(true);

    TenantId a = reg.add_tenant("a", chain());
    TenantId b = sim::kNoTenant;
    if (with_noisy_b) b = reg.add_tenant("b", chain("p_b"));

    trafficgen::FlowSet fa = make_flows(64, 5);
    trafficgen::Workload wa(fa, trafficgen::Locality::Zipf, 1.1, 6);
    trafficgen::FlowSet fb = make_flows(64, 7);
    trafficgen::Workload wb(fb, trafficgen::Locality::Uniform, 0.0, 8);

    TenantTrace trace;
    for (int round = 0; round < 30; ++round) {
        if (with_noisy_b) {
            // The noisy neighbor: a reconfigure storm (full redeploys and
            // epoch swaps), table churn, a deny-all deploy, and its own
            // traffic — all before A's offers each round.
            sim::PacketBatch bb = wb.next_batch(reg.emulator(b).fields(), 96);
            reg.offer(b, bb);
            Emulator& be = reg.emulator(b);
            for (std::uint64_t i = 0; i < 8; ++i) {
                ir::TableEntry e;
                e.key = {ir::FieldMatch::exact((round * 8 + i) % 256)};
                e.action_index = 1;
                be.insert_entry("t1", e);
            }
            be.set_entries("t2", {});
            if (round % 3 == 0) reg.reconfigure(b, deny_all());
            if (round % 3 == 1) reg.reconfigure(b, chain("p_b"));
            if (round % 3 == 2) {
                sim::EpochSwap swap;
                swap.program = chain("p_b");
                be.apply_epoch(std::move(swap));
            }
            reg.poll(b);
        }

        sim::PacketBatch ba = wa.next_batch(reg.emulator(a).fields(), 64);
        reg.offer(a, ba);
        // Unbudgeted A polls: B's presence must not shift A's service.
        const sim::BatchResult& out = reg.poll(a);
        for (const sim::ProcessResult& r : out.results) {
            trace.cycles.push_back(r.cycles);
            trace.queue_cycles.push_back(r.queue_cycles);
            trace.dropped.push_back(r.dropped);
        }
        reg.advance_time(0.002);
    }
    trace.latency_sum = reg.stats(a).latency_cycles;
    trace.stats = reg.stats(a);
    trace.epoch = reg.epoch(a);
    if (with_noisy_b) {
        // Sanity: the storm actually stormed — B's epoch moved, A's didn't.
        EXPECT_GT(reg.epoch(b), 20u);
    }
    return trace;
}

TEST(TenantIsolation, NoisyNeighborChangesZeroBits) {
    TenantTrace solo = drive_tenant_a(/*with_noisy_b=*/false);
    TenantTrace shared = drive_tenant_a(/*with_noisy_b=*/true);

    ASSERT_EQ(solo.cycles.size(), shared.cycles.size());
    ASSERT_FALSE(solo.cycles.empty());
    ASSERT_EQ(std::memcmp(solo.cycles.data(), shared.cycles.data(),
                          solo.cycles.size() * sizeof(double)),
              0);
    ASSERT_EQ(std::memcmp(solo.queue_cycles.data(), shared.queue_cycles.data(),
                          solo.queue_cycles.size() * sizeof(double)),
              0);
    EXPECT_EQ(solo.dropped, shared.dropped);
    EXPECT_EQ(std::memcmp(&solo.latency_sum, &shared.latency_sum,
                          sizeof(double)),
              0);
    EXPECT_EQ(solo.stats.offered, shared.stats.offered);
    EXPECT_EQ(solo.stats.enqueued, shared.stats.enqueued);
    EXPECT_EQ(solo.stats.completed, shared.stats.completed);
    EXPECT_EQ(solo.stats.ring_dropped, shared.stats.ring_dropped);
    EXPECT_EQ(solo.stats.rate_limited, shared.stats.rate_limited);
    // Per-tenant epochs: B's storm left A's epoch untouched.
    EXPECT_EQ(solo.epoch, 0u);
    EXPECT_EQ(shared.epoch, 0u);
    assert_conserved(shared.stats);
}

TEST(TenantRegistry, TenantMetricLanesTrackStats) {
    if (!telemetry::kEnabled) GTEST_SKIP() << "telemetry compiled out";
    TenantRegistry reg(nic());
    reg.set_deterministic(true);
    TenantId a = reg.add_tenant("alpha", chain());
    TenantId b = reg.add_tenant("beta", chain("p_b"));

    trafficgen::FlowSet flows = make_flows(32, 9);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 10);
    sim::PacketBatch batch = wl.next_batch(reg.emulator(a).fields(), 50);
    reg.offer(a, batch);
    reg.poll_all();
    reg.reconfigure(b, chain("p_b"));
    reg.poll(b);

    telemetry::MetricsSnapshot snap = reg.telemetry_snapshot();
    EXPECT_EQ(snap.counter("tenant.alpha.offered"), reg.stats(a).offered);
    EXPECT_EQ(snap.counter("tenant.alpha.enqueued"), reg.stats(a).enqueued);
    EXPECT_EQ(snap.counter("tenant.alpha.completed"), reg.stats(a).completed);
    EXPECT_EQ(snap.counter("tenant.beta.offered"), 0u);
    EXPECT_EQ(snap.gauge("tenant.beta.epoch"), 1.0);
    EXPECT_EQ(snap.gauge("tenant.alpha.epoch"), 0.0);
}

// ------------------------------------------------------------ budget split

TEST(BudgetSplit, ProportionalToLoadWithFloor) {
    search::BudgetSplitOptions opts;
    opts.floor_fraction = 0.05;
    std::vector<double> shares = search::split_shares({300.0, 100.0}, opts);
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_NEAR(shares[0], 0.75, 1e-12);
    EXPECT_NEAR(shares[1], 0.25, 1e-12);

    // An idle tenant keeps the floor; the loaded one gets the rest.
    opts.floor_fraction = 0.1;
    shares = search::split_shares({1000.0, 0.0}, opts);
    EXPECT_NEAR(shares[0], 0.9, 1e-12);
    EXPECT_NEAR(shares[1], 0.1, 1e-12);

    // Zero-load window: equal split.
    shares = search::split_shares({0.0, 0.0, 0.0}, opts);
    for (double s : shares) EXPECT_NEAR(s, 1.0 / 3.0, 1e-12);

    // Shares always sum to 1, floors notwithstanding.
    shares = search::split_shares({5.0, 1.0, 1.0, 1.0, 0.0}, opts);
    double sum = 0.0;
    for (double s : shares) {
        EXPECT_GE(s, opts.floor_fraction - 1e-12);
        sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BudgetSplit, SplitsFiniteAxesKeepsInfinite) {
    search::ResourceLimits total;
    total.memory_bytes = 1000.0;  // updates_per_sec stays infinite
    auto limits = search::split_budget(total, {3.0, 1.0});
    ASSERT_EQ(limits.size(), 2u);
    EXPECT_NEAR(limits[0].memory_bytes, 750.0, 1e-9);
    EXPECT_NEAR(limits[1].memory_bytes, 250.0, 1e-9);
    EXPECT_TRUE(std::isinf(limits[0].updates_per_sec));
    EXPECT_TRUE(std::isinf(limits[1].updates_per_sec));
}

// ----------------------------------------------------------- multicontroller

cost::CostModel cost_model() {
    cost::CostParams p;
    p.l_mat = 10.0;
    p.l_act = 2.0;
    p.l_branch = 1.0;
    profile::InstrumentationConfig instr;
    return cost::CostModel(p, instr);
}

MultiControllerConfig multi_config() {
    MultiControllerConfig cfg;
    cfg.controller.optimizer.search.allow_cache = false;
    cfg.controller.optimizer.search.allow_merge = false;
    cfg.controller.reoptimize_on_change_only = false;
    cfg.quarantine.reject_threshold = 3;
    cfg.quarantine.storm_threshold = 4;
    cfg.quarantine.quarantine_rounds = 2;
    return cfg;
}

struct MultiFixture {
    TenantRegistry reg{nic()};
    TenantId a, b;
    MultiController mc;

    explicit MultiFixture(MultiControllerConfig cfg = multi_config())
        : a(reg.add_tenant("a", chain("p_a"))),
          b(reg.add_tenant("b", chain("p_b"))),
          mc(reg, cost_model(), std::move(cfg)) {
        reg.set_deterministic(true);
        mc.attach(a, chain("p_a"));
        mc.attach(b, chain("p_b"));
    }

    void pump(TenantId t, trafficgen::Workload& wl, int packets) {
        sim::PacketBatch batch =
            wl.next_batch(reg.emulator(t).fields(), packets);
        reg.offer(t, batch);
        reg.poll(t);
        reg.advance_time(0.001);
    }
};

TEST(MultiController, DeployStormQuarantinesOnlyTheOffender) {
    MultiFixture fx;
    // B floods (5 > storm_threshold 4); A submits one legitimate deploy.
    for (int i = 0; i < 5; ++i) fx.mc.enqueue_deploy(fx.b, chain("p_b"));
    fx.mc.enqueue_deploy(fx.a, chain("p_a"));

    MultiController::RoundResult r1 = fx.mc.tick_all();
    const auto* ra = r1.for_tenant(fx.a);
    const auto* rb = r1.for_tenant(fx.b);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    // A's deploy and tick went through untouched by the neighbor's storm.
    EXPECT_EQ(ra->deploys_applied, 1u);
    EXPECT_TRUE(ra->ticked);
    EXPECT_FALSE(ra->quarantined);
    // B's whole burst deferred, not dropped; its tick skipped.
    EXPECT_TRUE(rb->quarantined);
    EXPECT_EQ(rb->deploys_applied, 0u);
    EXPECT_EQ(rb->deploys_deferred, 5u);
    EXPECT_FALSE(rb->ticked);
    EXPECT_TRUE(fx.mc.quarantined(fx.b));
    EXPECT_EQ(fx.mc.queued_deploys(fx.b), 5u);

    // Round 2: still quarantined (2-round sentence).
    MultiController::RoundResult r2 = fx.mc.tick_all();
    EXPECT_TRUE(r2.for_tenant(fx.b)->quarantined);
    EXPECT_EQ(r2.for_tenant(fx.b)->deploys_deferred, 5u);

    // Round 3: quarantine expired; the backlog drains at the rate cap
    // (storm_threshold per round) without re-tripping.
    MultiController::RoundResult r3 = fx.mc.tick_all();
    EXPECT_FALSE(r3.for_tenant(fx.b)->quarantined);
    EXPECT_EQ(r3.for_tenant(fx.b)->deploys_applied, 4u);
    EXPECT_EQ(r3.for_tenant(fx.b)->deploys_deferred, 1u);
    MultiController::RoundResult r4 = fx.mc.tick_all();
    EXPECT_EQ(r4.for_tenant(fx.b)->deploys_applied, 1u);
    EXPECT_EQ(fx.mc.queued_deploys(), 0u);
}

TEST(MultiController, RepeatedRejectsQuarantineAndRecover) {
    MultiFixture fx;
    // Three rounds of one malformed deploy each (an empty program fails
    // validation; the throw is contained to B's lane and counted as a
    // reject).
    for (int round = 0; round < 3; ++round) {
        fx.mc.enqueue_deploy(fx.b, Program("empty"));
        fx.mc.enqueue_deploy(fx.a, chain("p_a"));
        MultiController::RoundResult r = fx.mc.tick_all();
        EXPECT_EQ(r.for_tenant(fx.b)->deploys_rejected, 1u);
        EXPECT_EQ(r.for_tenant(fx.a)->deploys_applied, 1u);
        EXPECT_TRUE(r.for_tenant(fx.a)->ticked);
    }
    // Third consecutive reject tripped the threshold.
    EXPECT_TRUE(fx.mc.quarantined(fx.b));

    // Sit out the sentence, then a valid deploy restores service.
    fx.mc.tick_all();
    fx.mc.tick_all();
    fx.mc.enqueue_deploy(fx.b, chain("p_b"));
    MultiController::RoundResult r = fx.mc.tick_all();
    EXPECT_FALSE(r.for_tenant(fx.b)->quarantined);
    EXPECT_EQ(r.for_tenant(fx.b)->deploys_applied, 1u);
    EXPECT_TRUE(r.for_tenant(fx.b)->ticked);
}

TEST(MultiController, BudgetResplitsProportionalToMeasuredLoad) {
    MultiControllerConfig cfg = multi_config();
    cfg.total_limits.memory_bytes = 10000.0;
    cfg.split.floor_fraction = 0.05;
    MultiFixture fx(cfg);

    trafficgen::FlowSet fa = make_flows(32, 41);
    trafficgen::FlowSet fb = make_flows(32, 42);
    trafficgen::Workload wa(fa, trafficgen::Locality::Uniform, 0.0, 43);
    trafficgen::Workload wb(fb, trafficgen::Locality::Uniform, 0.0, 44);

    // Window 1: A serves 3x B's load.
    for (int i = 0; i < 10; ++i) {
        fx.pump(fx.a, wa, 90);
        fx.pump(fx.b, wb, 30);
    }
    MultiController::RoundResult r = fx.mc.tick_all();
    double ga = r.for_tenant(fx.a)->granted.memory_bytes;
    double gb = r.for_tenant(fx.b)->granted.memory_bytes;
    EXPECT_NEAR(ga, 7500.0, 1.0);
    EXPECT_NEAR(gb, 2500.0, 1.0);
    EXPECT_NEAR(ga + gb, 10000.0, 1e-6);
    // The split lands in each controller's optimizer limits.
    EXPECT_NEAR(fx.mc.controller(fx.a).config().optimizer.limits.memory_bytes,
                ga, 1e-9);

    // Window 2: load flips; the next boundary re-splits the other way.
    for (int i = 0; i < 10; ++i) {
        fx.pump(fx.a, wa, 10);
        fx.pump(fx.b, wb, 90);
    }
    r = fx.mc.tick_all();
    EXPECT_LT(r.for_tenant(fx.a)->granted.memory_bytes,
              r.for_tenant(fx.b)->granted.memory_bytes);
}

// -------------------------------------------------------------- TSan stress

/// Two-tenant reconfigure-storm stress (the CI tsan target): a driver
/// thread owns the registry's offer/poll/advance loop for both tenants
/// while two storm threads hammer tenant B's control plane — entry churn
/// through the MPSC queue and full program swaps — concurrently. TSan
/// verifies the per-tenant control queues and ring handoffs are race-free;
/// the final asserts verify B's storm never corrupted A's accounting.
TEST(TenantStress, TwoTenantReconfigureStormUnderThreads) {
    sim::RingConfig rings;
    rings.rx_capacity = 256;
    TenantRegistry reg(nic(), rings);
    TenantId a = reg.add_tenant("a", chain("p_a"));
    TenantId b = reg.add_tenant("b", chain("p_b"));

    trafficgen::FlowSet fa = make_flows(64, 51);
    trafficgen::FlowSet fb = make_flows(64, 52);
    trafficgen::Workload wa(fa, trafficgen::Locality::Zipf, 1.1, 53);
    trafficgen::Workload wb(fb, trafficgen::Locality::Uniform, 0.0, 54);

    constexpr int kRounds = 150;
    std::thread churn([&] {
        Emulator& be = reg.emulator(b);
        for (int i = 0; i < kRounds * 4; ++i) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(static_cast<std::uint64_t>(i) % 256)};
            e.action_index = i % 2;
            be.insert_entry("t1", e);
            if (i % 4 == 3) be.set_entries("t1", {});
            if (i % 16 == 7) be.invalidate_caches_covering("t0");
        }
    });
    std::thread swaps([&] {
        for (int i = 0; i < kRounds / 2; ++i) {
            sim::EpochSwap swap;
            swap.program = chain("p_b");
            reg.emulator(b).queue_epoch(std::move(swap));
        }
    });

    // The driver loop: all offers and polls stay on this thread (the
    // registry's single-driver contract); the storm rides the emulators'
    // MPSC control queues.
    for (int round = 0; round < kRounds; ++round) {
        sim::PacketBatch ba = wa.next_batch(reg.emulator(a).fields(), 48);
        sim::PacketBatch bb = wb.next_batch(reg.emulator(b).fields(), 48);
        reg.offer(a, ba);
        reg.offer(b, bb);
        reg.poll_all(round % 4 == 0 ? 5000.0 : 0.0);
        reg.advance_time(0.001);
    }
    churn.join();
    swaps.join();
    reg.emulator(b).drain_control();
    reg.poll_all();

    assert_conserved(reg.stats(a));
    assert_conserved(reg.stats(b));
    EXPECT_EQ(reg.stats(a).offered, static_cast<std::uint64_t>(kRounds) * 48u);
    EXPECT_EQ(reg.stats(a).completed + reg.stats(a).ring_dropped,
              reg.stats(a).offered);
    EXPECT_EQ(reg.epoch(a), 0u);
    EXPECT_GT(reg.epoch(b), 0u);
}

}  // namespace
}  // namespace pipeleon
