// Tests for the telemetry subsystem (ISSUE 4): histogram accuracy against
// exact quantiles, shard-merge associativity, span nesting, the
// zero-cost-when-disabled contract, snapshot safety under concurrent lane
// writers, and the bench-report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "ir/builder.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "telemetry/bench_report.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "trafficgen/workload.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace pipeleon;
using telemetry::LatencyHistogram;

namespace {

// Quantization error bound: one sub-bucket out of 2^kSubBits per power of
// two, plus slack for interpolation at bucket edges.
constexpr double kRelTol = 1.0 / (1 << LatencyHistogram::kSubBits) + 0.002;

void expect_close(double got, double exact) {
    if (exact == 0.0) {
        EXPECT_LE(got, 1.0);
        return;
    }
    EXPECT_NEAR(got / exact, 1.0, kRelTol)
        << "got " << got << " exact " << exact;
}

}  // namespace

TEST(Histogram, PercentileAccuracyUniform) {
    LatencyHistogram h;
    std::vector<double> values;
    util::Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        double v = static_cast<double>(rng.next_u64() % 1000000);
        h.record(v);
        values.push_back(std::round(v));
    }
    ASSERT_EQ(h.count(), 200000u);
    for (double q : {50.0, 90.0, 99.0, 99.9}) {
        expect_close(h.percentile(q), util::percentile(values, q));
    }
    expect_close(h.mean(), util::mean(values));
}

TEST(Histogram, PercentileAccuracyLognormalAndExactExtrema) {
    LatencyHistogram h;
    std::vector<double> values;
    util::Rng rng(11);
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (int i = 0; i < 100000; ++i) {
        // Heavy-tailed: e^N(7, 1.5) spans several decades like real latency.
        std::uint64_t v =
            static_cast<std::uint64_t>(std::exp(rng.normal(7.0, 1.5)));
        h.record_value(v);
        values.push_back(static_cast<double>(v));
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    for (double q : {50.0, 90.0, 99.0}) {
        expect_close(h.percentile(q), util::percentile(values, q));
    }
    // Extrema are tracked exactly, not quantized.
    EXPECT_EQ(h.min(), lo);
    EXPECT_EQ(h.max(), hi);
    // Quantiles never escape the observed range.
    EXPECT_GE(h.percentile(0.0), static_cast<double>(lo));
    EXPECT_LE(h.percentile(100.0), static_cast<double>(hi));
}

TEST(Histogram, MergeAssociativeAndOrderIndependent) {
    util::Rng rng(3);
    std::vector<LatencyHistogram> parts(4);
    LatencyHistogram whole;
    for (int p = 0; p < 4; ++p) {
        for (int i = 0; i < 5000; ++i) {
            std::uint64_t v = rng.next_u64() % (1ULL << (10 + 4 * p));
            parts[p].record_value(v);
            whole.record_value(v);
        }
    }
    // (((a+b)+c)+d)  vs  (a+(b+(c+d)))  vs  recording everything directly.
    LatencyHistogram left;
    for (const auto& p : parts) left.merge(p);
    LatencyHistogram right;
    for (int p = 3; p >= 0; --p) right.merge(parts[p]);

    for (const LatencyHistogram* m : {&left, &right}) {
        EXPECT_EQ(m->count(), whole.count());
        EXPECT_EQ(m->min(), whole.min());
        EXPECT_EQ(m->max(), whole.max());
        EXPECT_DOUBLE_EQ(m->sum(), whole.sum());
        EXPECT_EQ(m->buckets(), whole.buckets());
    }
    EXPECT_DOUBLE_EQ(left.p99(), whole.p99());
    EXPECT_DOUBLE_EQ(right.p999(), whole.p999());
}

TEST(MetricsRegistry, ShardMergeMatchesColdPath) {
    telemetry::MetricsRegistry sharded, direct;
    telemetry::MetricId cs = sharded.counter("c");
    telemetry::MetricId hs = sharded.histogram("h");
    telemetry::MetricId cd = direct.counter("c");
    telemetry::MetricId hd = direct.histogram("h");
    sharded.set_shard_count(4);

    util::Rng rng(9);
    for (int round = 0; round < 10; ++round) {
        for (std::size_t s = 0; s < 4; ++s) {
            for (int i = 0; i < 100; ++i) {
                std::uint64_t v = rng.next_u64() % 10000;
                sharded.shard_add(s, cs, v % 7);
                sharded.shard_record(s, hs, static_cast<double>(v));
                direct.add(cd, v % 7);
                direct.record(hd, static_cast<double>(v));
            }
        }
        sharded.merge_shards();  // merging every round must not double-count
    }

    telemetry::MetricsSnapshot a = sharded.snapshot();
    telemetry::MetricsSnapshot b = direct.snapshot();
    EXPECT_EQ(a.counter("c"), b.counter("c"));
    ASSERT_NE(a.histogram("h"), nullptr);
    ASSERT_NE(b.histogram("h"), nullptr);
    EXPECT_EQ(a.histogram("h")->count, b.histogram("h")->count);
    EXPECT_DOUBLE_EQ(a.histogram("h")->p99, b.histogram("h")->p99);
    EXPECT_DOUBLE_EQ(a.histogram("h")->mean, b.histogram("h")->mean);
}

TEST(MetricsRegistry, SnapshotSeesOnlyMergedState) {
    telemetry::MetricsRegistry reg;
    telemetry::MetricId c = reg.counter("c");
    reg.set_shard_count(2);
    reg.shard_add(0, c, 5);
    reg.shard_add(1, c, 7);
    // Unmerged lane writes are invisible to snapshot (master-only read).
    EXPECT_EQ(reg.snapshot().counter("c"), 0u);
    reg.merge_shards();
    EXPECT_EQ(reg.snapshot().counter("c"), 12u);
    // Lanes were zeroed by the merge: merging again adds nothing.
    reg.merge_shards();
    EXPECT_EQ(reg.snapshot().counter("c"), 12u);
}

TEST(MetricsRegistry, RegisterIsIdempotentAndKindChecked) {
    telemetry::MetricsRegistry reg;
    telemetry::MetricId a = reg.counter("x");
    EXPECT_EQ(reg.counter("x"), a);
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
    EXPECT_THROW(reg.histogram("x"), std::logic_error);
    telemetry::MetricId g = reg.gauge("g");
    reg.set_gauge(g, 2.5);
    EXPECT_DOUBLE_EQ(reg.snapshot().gauge("g"), 2.5);
}

TEST(MetricsRegistry, SnapshotUnderConcurrentLaneWriters) {
    // snapshot() reads the master only, so it may run concurrently with lane
    // writers (each lane owned by one thread). TSan is the real assertion
    // here; the value checks document the merge-boundary semantics.
    telemetry::MetricsRegistry reg;
    telemetry::MetricId c = reg.counter("c");
    telemetry::MetricId h = reg.histogram("h");
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 20000;
    reg.set_shard_count(kThreads);

    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            while (!go.load()) std::this_thread::yield();
            for (int i = 0; i < kOpsPerThread; ++i) {
                reg.shard_add(static_cast<std::size_t>(t), c);
                reg.shard_record(static_cast<std::size_t>(t), h,
                                 static_cast<double>(i % 1024));
            }
        });
    }
    go.store(true);
    std::uint64_t last_seen = 0;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = reg.snapshot().counter("c");
        EXPECT_GE(v, last_seen);  // master is monotone
        last_seen = v;
    }
    for (auto& th : writers) th.join();
    reg.merge_shards();
    EXPECT_EQ(reg.snapshot().counter("c"),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_EQ(reg.snapshot().histogram("h")->count,
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(Tracer, SpanNestingAndOrdering) {
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    tracer.clear();
    tracer.set_enabled(true);
    // Use ScopedSpan directly (not TELEMETRY_SPAN) so the tracer mechanism
    // is exercised even in PIPELEON_TELEMETRY=OFF builds, where the macro
    // compiles away.
    {
        telemetry::ScopedSpan outer("outer");
        {
            telemetry::ScopedSpan inner("inner");
        }
    }
    tracer.set_enabled(false);

    std::vector<telemetry::TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    // Sorted by start time: outer starts first; inner nests inside it.
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
    EXPECT_GE(events[0].ts_ns + events[0].dur_ns,
              events[1].ts_ns + events[1].dur_ns);

    util::Json chrome = tracer.to_chrome_json();
    ASSERT_NE(chrome.find("traceEvents"), nullptr);
    EXPECT_EQ(chrome.at("traceEvents").as_array().size(), 2u);
    EXPECT_EQ(chrome.at("traceEvents").at(0).at("ph").as_string(), "X");
    tracer.clear();
}

TEST(Tracer, DisabledSpansRecordNothing) {
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    tracer.clear();
    tracer.set_enabled(false);
    for (int i = 0; i < 100; ++i) {
        TELEMETRY_SPAN("never");
    }
    EXPECT_TRUE(tracer.events().empty());
    // A span constructed while disabled stays inert even if tracing turns on
    // mid-scope (no half-measured events).
    {
        telemetry::ScopedSpan span("straddler");
        tracer.set_enabled(true);
    }
    tracer.set_enabled(false);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Telemetry, CompileTimeSwitchIsConsistent) {
    // This test file builds in both configurations; assert the constant
    // matches the macro the build defined.
#if PIPELEON_TELEMETRY
    EXPECT_TRUE(telemetry::kEnabled);
#else
    EXPECT_FALSE(telemetry::kEnabled);
#endif
}

TEST(BenchReport, SchemaRoundTripValidates) {
    telemetry::BenchReport report("unit_test", "BlueField2");
    report.set_param("packets", util::Json(std::uint64_t(1000)));
    report.set_metric("throughput_gbps", 98.5);
    report.set_metric("custom_metric", 1.25);

    util::Json j = report.to_json();
    EXPECT_TRUE(telemetry::BenchReport::validate(j).empty());
    // Round-trip through text keeps it conformant.
    util::Json parsed = util::Json::parse(j.dump(2));
    EXPECT_TRUE(telemetry::BenchReport::validate(parsed).empty());
    EXPECT_EQ(parsed.at("bench").as_string(), "unit_test");
    EXPECT_DOUBLE_EQ(parsed.at("metrics").at("throughput_gbps").as_double(),
                     98.5);
    // Required metrics are pre-seeded even when the bench never set them.
    for (const std::string& key : telemetry::BenchReport::required_metrics()) {
        EXPECT_NE(parsed.at("metrics").find(key), nullptr) << key;
    }
}

TEST(BenchReport, ValidateCatchesProblems) {
    // Each mutation away from a valid report must be reported.
    telemetry::BenchReport good("b", "m");
    util::Json base = good.to_json();
    EXPECT_TRUE(telemetry::BenchReport::validate(base).empty());

    util::Json wrong_schema = base;
    wrong_schema.as_object().set("schema", util::Json("nope/9"));
    EXPECT_FALSE(telemetry::BenchReport::validate(wrong_schema).empty());

    util::Json empty_bench = base;
    empty_bench.as_object().set("bench", util::Json(""));
    EXPECT_FALSE(telemetry::BenchReport::validate(empty_bench).empty());

    util::Json missing_metric = base;
    util::Json metrics = util::Json::object();
    metrics.as_object().set("throughput_gbps", util::Json(1.0));
    missing_metric.as_object().set("metrics", metrics);  // drops latency_p50…
    EXPECT_FALSE(telemetry::BenchReport::validate(missing_metric).empty());

    EXPECT_FALSE(telemetry::BenchReport::validate(util::Json(3.0)).empty());
}

TEST(BenchReport, CsvSeriesFormat) {
    telemetry::CsvSeries series({"t", "gbps"});
    series.add_row({0.0, 98.5});
    series.add_row({5.0, 100.0});
    EXPECT_EQ(series.rows(), 2u);
    std::string csv = series.to_csv();
    EXPECT_EQ(csv.substr(0, csv.find('\n')), "t,gbps");
    EXPECT_NE(csv.find("0,98.5"), std::string::npos);
    EXPECT_NE(csv.find("5,100"), std::string::npos);
}

#if PIPELEON_TELEMETRY
TEST(EmulatorTelemetry, LatencyHistogramMatchesBatchResults) {
    // The emulator's per-packet histogram must agree with the latencies the
    // batch API itself returns.
    ir::Program prog = ir::chain_of_exact_tables("t", 4, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(3);

    util::Rng rng(5);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 4; ++i) tuple.push_back({"f" + std::to_string(i), 0, 31});
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 64, rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 6);

    util::RunningStats expected;
    std::uint64_t n = 0;
    for (int b = 0; b < 5; ++b) {
        sim::PacketBatch batch = wl.next_batch(emu.fields(), 200);
        sim::BatchResult r = emu.process_batch(batch);
        for (const sim::ProcessResult& pr : r.results) {
            expected.add(pr.cycles);
            ++n;
        }
    }
    telemetry::LatencyHistogram hist = emu.latency_histogram();
    EXPECT_EQ(hist.count(), n);
    // record() rounds fractional cycle counts to integer units, moving each
    // sample by at most 0.5 — so the means differ by at most 0.5.
    EXPECT_NEAR(hist.mean(), expected.mean(), 0.5);

    telemetry::MetricsSnapshot snap = emu.telemetry_snapshot();
    EXPECT_EQ(snap.counter("sim.packets"), n);
    EXPECT_EQ(snap.counter("sim.worker_packets"), n);
    EXPECT_EQ(snap.counter("sim.batches"), 5u);
    ASSERT_NE(snap.histogram("sim.batch_wall_ns"), nullptr);
    EXPECT_EQ(snap.histogram("sim.batch_wall_ns")->count, 5u);
}

TEST(EmulatorTelemetry, EpochAndDropCountersTrack) {
    ir::Program prog = ir::chain_of_exact_tables("t", 2, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});

    sim::EpochSwap swap;
    swap.program = prog;
    emu.apply_epoch(std::move(swap));
    // No entries installed: every packet misses and (chain tables default to
    // noop) none drop; drive a batch to tick the counters.
    util::Rng rng(5);
    std::vector<trafficgen::FieldRange> tuple = {{"f0", 0, 3}, {"f1", 0, 3}};
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 8, rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 1);
    sim::PacketBatch batch = wl.next_batch(emu.fields(), 50);
    emu.process_batch(batch);

    telemetry::MetricsSnapshot snap = emu.telemetry_snapshot();
    EXPECT_EQ(snap.counter("sim.epochs"), 1u);
    EXPECT_EQ(snap.counter("sim.packets"), 50u);
    EXPECT_EQ(snap.counter("sim.drops"),
              static_cast<std::uint64_t>(emu.packets_dropped()));
}
#endif  // PIPELEON_TELEMETRY
