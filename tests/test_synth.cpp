// Tests for synth: program synthesizer validity properties and profile
// synthesizer flow consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/pipelet.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

namespace pipeleon::synth {
namespace {

using ir::NodeId;
using ir::Program;

TEST(ProgramSynth, DeterministicForSeed) {
    SynthConfig cfg;
    cfg.pipelets = 8;
    ProgramSynthesizer a(cfg, 42), b(cfg, 42);
    EXPECT_TRUE(a.generate("x") == b.generate("x"));
}

TEST(ProgramSynth, DifferentSeedsDiffer) {
    SynthConfig cfg;
    cfg.pipelets = 8;
    ProgramSynthesizer a(cfg, 1), b(cfg, 2);
    EXPECT_FALSE(a.generate("x") == b.generate("x"));
}

TEST(ProgramSynth, PipeletCountRoughlyMatchesConfig) {
    SynthConfig cfg;
    cfg.pipelets = 12;
    cfg.diamond_fraction = 0.0;  // plain separators only
    ProgramSynthesizer gen(cfg, 7);
    Program p = gen.generate("pn");
    auto pipelets = analysis::form_pipelets(p, {});
    EXPECT_EQ(pipelets.size(), 12u);
}

TEST(ProgramSynth, PipeletLengthsWithinBounds) {
    SynthConfig cfg;
    cfg.pipelets = 10;
    cfg.min_pipelet_len = 2;
    cfg.max_pipelet_len = 4;
    cfg.diamond_fraction = 0.0;
    analysis::PipeletOptions no_split;
    no_split.max_length = 0;
    ProgramSynthesizer gen(cfg, 11);
    Program p = gen.generate("pl");
    for (const auto& pl : analysis::form_pipelets(p, no_split)) {
        EXPECT_GE(pl.length(), 2u);
        EXPECT_LE(pl.length(), 4u);
    }
}

TEST(ProgramSynth, MatchKindMixRespected) {
    SynthConfig cfg;
    cfg.pipelets = 30;
    cfg.lpm_fraction = 0.0;
    cfg.ternary_fraction = 0.0;
    ProgramSynthesizer gen(cfg, 13);
    Program p = gen.generate("exact_only");
    for (NodeId id : p.reachable()) {
        if (p.node(id).is_table()) {
            EXPECT_EQ(p.node(id).table.effective_match_kind(),
                      ir::MatchKind::Exact);
        }
    }

    cfg.lpm_fraction = 1.0;
    ProgramSynthesizer gen2(cfg, 17);
    Program q = gen2.generate("lpm_only");
    for (NodeId id : q.reachable()) {
        if (q.node(id).is_table()) {
            EXPECT_EQ(q.node(id).table.effective_match_kind(), ir::MatchKind::Lpm);
        }
    }
}

TEST(ProgramSynth, DropFractionZeroMeansNoDroppers) {
    SynthConfig cfg;
    cfg.pipelets = 20;
    cfg.drop_table_fraction = 0.0;
    ProgramSynthesizer gen(cfg, 19);
    Program p = gen.generate("nodrop");
    for (NodeId id : p.reachable()) {
        if (p.node(id).is_table()) {
            EXPECT_FALSE(p.node(id).table.can_drop());
        }
    }
}

class SynthValidity : public testing::TestWithParam<int> {};

TEST_P(SynthValidity, GeneratedProgramsValidate) {
    SynthConfig cfg;
    cfg.pipelets = 3 + GetParam() % 13;
    cfg.diamond_fraction = (GetParam() % 3) * 0.3;
    cfg.dependency_fraction = (GetParam() % 4) * 0.15;
    ProgramSynthesizer gen(cfg, static_cast<std::uint64_t>(GetParam()) * 7919);
    Program p = gen.generate("v");
    EXPECT_NO_THROW(p.validate());
    EXPECT_GT(p.table_count(), 0u);
    // Pipelet partition covers every reachable table exactly once.
    auto pipelets = analysis::form_pipelets(p);
    std::size_t covered = 0;
    for (const auto& pl : pipelets) covered += pl.length();
    EXPECT_EQ(covered, p.table_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthValidity, testing::Range(1, 31));

TEST(ProfileSynth, FlowConservation) {
    SynthConfig cfg;
    cfg.pipelets = 8;
    cfg.diamond_fraction = 0.5;
    ProgramSynthesizer gen(cfg, 23);
    Program p = gen.generate("fc");

    ProfileSynthesizer prof_gen(heavy_drop_config(), 29);
    profile::RuntimeProfile prof = prof_gen.generate(p);

    // Reach probabilities are in [0, 1] and the root gets 1.
    auto reach = prof.reach_probabilities(p);
    EXPECT_DOUBLE_EQ(reach[static_cast<std::size_t>(p.root())], 1.0);
    for (double r : reach) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0 + 1e-9);
    }
    // Action probabilities per table sum to 1.
    for (NodeId id : p.reachable()) {
        const ir::Node& n = p.node(id);
        if (!n.is_table()) continue;
        double sum = 0.0;
        for (std::size_t a = 0; a < n.table.actions.size(); ++a) {
            sum += prof.action_probability(n, static_cast<int>(a));
        }
        EXPECT_NEAR(sum, 1.0, 1e-6);
    }
}

TEST(ProfileSynth, CategoriesDifferAsAdvertised) {
    EXPECT_GT(heavy_drop_config().drop_mean, small_static_config().drop_mean);
    EXPECT_LT(small_static_config().max_entries, high_locality_config().max_entries);
    EXPECT_LT(small_static_config().max_update_rate,
              heavy_drop_config().max_update_rate);
}

TEST(ProfileSynth, DropTargetsRealized) {
    SynthConfig cfg;
    cfg.pipelets = 4;
    cfg.drop_table_fraction = 1.0;  // every table can drop
    ProgramSynthesizer gen(cfg, 31);
    Program p = gen.generate("drops");

    ProfileSynthConfig pc = heavy_drop_config();
    ProfileSynthesizer prof_gen(pc, 37);
    profile::RuntimeProfile prof = prof_gen.generate(p);
    double total_drop = 0.0;
    int droppable = 0;
    for (NodeId id : p.reachable()) {
        const ir::Node& n = p.node(id);
        if (n.is_table() && n.table.can_drop()) {
            total_drop += prof.drop_probability(n);
            ++droppable;
        }
    }
    ASSERT_GT(droppable, 0);
    // Mean drop rate near the configured mean (loose bound).
    EXPECT_NEAR(total_drop / droppable, pc.drop_mean, 0.25);
}

TEST(ProfileSynth, EntropyOfShares) {
    SynthConfig cfg;
    cfg.pipelets = 10;
    cfg.diamond_fraction = 0.5;
    ProgramSynthesizer gen(cfg, 41);
    Program p = gen.generate("ent");
    auto pipelets = analysis::form_pipelets(p);

    ProfileSynthesizer prof_gen(high_locality_config(), 43);
    profile::RuntimeProfile prof = prof_gen.generate(p);

    auto shares = pipelet_traffic_shares(p, pipelets, prof);
    ASSERT_EQ(shares.size(), pipelets.size());
    double sum = 0.0;
    for (double s : shares) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    double h = pipelet_traffic_entropy(p, pipelets, prof);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, std::log2(static_cast<double>(pipelets.size())) + 1e-9);
}

TEST(ProfileSynth, DifferentSeedsGiveDifferentEntropies) {
    SynthConfig cfg;
    cfg.pipelets = 10;
    cfg.diamond_fraction = 0.6;
    ProgramSynthesizer gen(cfg, 47);
    Program p = gen.generate("e2");
    auto pipelets = analysis::form_pipelets(p);

    std::set<long long> distinct;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ProfileSynthesizer prof_gen(heavy_drop_config(), seed);
        double h = pipelet_traffic_entropy(p, pipelets, prof_gen.generate(p));
        distinct.insert(std::llround(h * 1e9));
    }
    EXPECT_GT(distinct.size(), 10u);
}

}  // namespace
}  // namespace pipeleon::synth
