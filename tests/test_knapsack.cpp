// Tests for search/knapsack: the group knapsack of Appendix A.1, checked
// against brute force on random instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "search/knapsack.h"
#include "util/rng.h"

namespace pipeleon::search {
namespace {

opt::Candidate cand(double gain, double mem, double upd) {
    opt::Candidate c;
    c.gain = gain;
    c.memory_cost = mem;
    c.update_cost = upd;
    return c;
}

TEST(Knapsack, UnconstrainedPicksBestPerGroup) {
    std::vector<std::vector<opt::Candidate>> groups{
        {cand(5, 100, 0), cand(9, 1e9, 1e9)},
        {cand(3, 0, 0)},
        {},
        {cand(-1, 0, 0)},  // negative gain: never picked
    };
    GlobalPlan plan = global_optimize(groups, ResourceLimits{});
    EXPECT_EQ(plan.chosen, (std::vector<int>{1, 0, -1, -1}));
    EXPECT_DOUBLE_EQ(plan.total_gain, 12.0);
}

TEST(Knapsack, MemoryLimitForcesTradeoff) {
    ResourceLimits limits;
    limits.memory_bytes = 100.0;
    std::vector<std::vector<opt::Candidate>> groups{
        {cand(10, 80, 0), cand(6, 30, 0)},
        {cand(8, 60, 0), cand(5, 20, 0)},
    };
    GlobalPlan plan = global_optimize(groups, limits);
    // Best feasible: 6 + 8 = 14 (30 + 60 <= 100); 10 + 8 needs 140.
    EXPECT_DOUBLE_EQ(plan.total_gain, 14.0);
    EXPECT_LE(plan.memory_used, 100.0);
}

TEST(Knapsack, UpdateLimitEnforced) {
    ResourceLimits limits;
    limits.updates_per_sec = 50.0;
    std::vector<std::vector<opt::Candidate>> groups{
        {cand(10, 0, 40)},
        {cand(9, 0, 40)},
        {cand(2, 0, 5)},
    };
    GlobalPlan plan = global_optimize(groups, limits);
    EXPECT_LE(plan.updates_used, 50.0);
    // Can afford one 40-cost candidate plus the 5-cost one: 10 + 2 = 12.
    EXPECT_DOUBLE_EQ(plan.total_gain, 12.0);
}

TEST(Knapsack, OversizedCandidateNeverFits) {
    ResourceLimits limits;
    limits.memory_bytes = 10.0;
    std::vector<std::vector<opt::Candidate>> groups{{cand(100, 1000, 0)}};
    GlobalPlan plan = global_optimize(groups, limits);
    EXPECT_EQ(plan.chosen[0], -1);
    EXPECT_DOUBLE_EQ(plan.total_gain, 0.0);
}

TEST(Knapsack, ZeroCostCandidatesAlwaysFit) {
    ResourceLimits limits;
    limits.memory_bytes = 1.0;
    limits.updates_per_sec = 1.0;
    std::vector<std::vector<opt::Candidate>> groups{{cand(4, 0, 0)},
                                                    {cand(3, 0, 0)}};
    GlobalPlan plan = global_optimize(groups, limits);
    EXPECT_DOUBLE_EQ(plan.total_gain, 7.0);
}

TEST(Knapsack, EmptyInput) {
    GlobalPlan plan = global_optimize({}, ResourceLimits{});
    EXPECT_TRUE(plan.chosen.empty());
    EXPECT_DOUBLE_EQ(plan.total_gain, 0.0);
}

// Brute force reference: try every combination of at-most-one-per-group.
double brute_force(const std::vector<std::vector<opt::Candidate>>& groups,
                   const ResourceLimits& limits) {
    double best = 0.0;
    std::vector<int> choice(groups.size(), -1);
    std::function<void(std::size_t, double, double, double)> rec =
        [&](std::size_t g, double gain, double mem, double upd) {
            if (mem > limits.memory_bytes || upd > limits.updates_per_sec) return;
            if (g == groups.size()) {
                best = std::max(best, gain);
                return;
            }
            rec(g + 1, gain, mem, upd);
            for (const opt::Candidate& c : groups[g]) {
                rec(g + 1, gain + c.gain, mem + c.memory_cost,
                    upd + c.update_cost);
            }
        };
    rec(0, 0.0, 0.0, 0.0);
    return best;
}

class KnapsackRandom : public testing::TestWithParam<int> {};

TEST_P(KnapsackRandom, NearBruteForceAndFeasible) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<std::vector<opt::Candidate>> groups;
    std::size_t n_groups = 2 + rng.next_below(4);
    for (std::size_t g = 0; g < n_groups; ++g) {
        std::vector<opt::Candidate> cands;
        std::size_t n = 1 + rng.next_below(4);
        for (std::size_t i = 0; i < n; ++i) {
            cands.push_back(cand(rng.uniform(0.0, 10.0), rng.uniform(0.0, 100.0),
                                 rng.uniform(0.0, 50.0)));
        }
        groups.push_back(std::move(cands));
    }
    ResourceLimits limits;
    limits.memory_bytes = rng.uniform(50.0, 250.0);
    limits.updates_per_sec = rng.uniform(25.0, 120.0);

    KnapsackOptions opts;
    opts.memory_grid = 128;
    opts.update_grid = 128;
    GlobalPlan plan = global_optimize(groups, limits, opts);

    // Always feasible (conservative rounding guarantees it).
    EXPECT_LE(plan.memory_used, limits.memory_bytes + 1e-9);
    EXPECT_LE(plan.updates_used, limits.updates_per_sec + 1e-9);

    // Within discretization slack of the true optimum, and never above it.
    double exact = brute_force(groups, limits);
    EXPECT_LE(plan.total_gain, exact + 1e-9);
    EXPECT_GE(plan.total_gain, 0.6 * exact - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandom, testing::Range(1, 25));

}  // namespace
}  // namespace pipeleon::search
