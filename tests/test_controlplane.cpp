// Tests for the epoch-based control plane (ISSUE 3): the sim-layer MPSC
// control queue (enqueue-and-return mutators, batch-boundary drains, epoch
// swaps that install a program plus its remapped entries atomically), the
// runtime-layer prepare->verify->commit deployment pipeline (a verifier-
// rejected candidate never reaches Emulator::reconfigure*), the measured-
// harmful revert path, and the dynamic batch sizing / time accounting of
// Controller::pump_window.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipelet.h"
#include "analysis/verify.h"
#include "apps/scenarios.h"
#include "ir/builder.h"
#include "ir/json_io.h"
#include "opt/plan_io.h"
#include "opt/transform.h"
#include "runtime/controller.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "trafficgen/workload.h"

namespace pipeleon {
namespace {

using ir::FieldMatch;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableEntry;
using ir::TableSpec;

sim::NicModel nic() {
    sim::NicModel m;
    m.costs.l_mat = 10.0;
    m.costs.l_act = 2.0;
    m.costs.l_branch = 1.0;
    m.costs.l_counter = 0.0;
    m.cores = 1;
    m.cycles_per_second = 1e9;
    return m;
}

Program two_tables() {
    ProgramBuilder b("orig");
    b.append(TableSpec("A").key("src").noop_action("a1").noop_action("a2").build());
    b.append(TableSpec("B").key("dst").noop_action("b1").noop_action("b2").build());
    return b.build();
}

TableEntry exact_entry(std::uint64_t key, int action) {
    TableEntry e;
    e.key = {FieldMatch::exact(key)};
    e.action_index = action;
    return e;
}

cost::CostModel model() {
    cost::CostParams p;
    p.l_mat = 10.0;
    p.l_act = 2.0;
    p.l_branch = 1.0;
    profile::InstrumentationConfig instr;  // enabled, full sampling
    return cost::CostModel(p, instr);
}

runtime::ControllerConfig controller_config() {
    runtime::ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.allow_cache = false;
    cfg.optimizer.search.allow_merge = false;
    cfg.detector.threshold = 0.05;
    cfg.min_relative_gain = 0.01;
    return cfg;
}

std::string fixture(const char* rel) {
    return std::string(PIPELEON_SOURCE_DIR) + "/" + rel;
}

// ---------------------------------------------------------------- sim layer

/// With the data plane idle, mutators drain their own op synchronously:
/// results are exact (not optimistic), and the stats record sync application.
TEST(ControlQueue, IdleMutatorsApplySynchronously) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});

    EXPECT_TRUE(emu.insert_entry("A", exact_entry(1, 0)));
    EXPECT_EQ(emu.entry_count("A"), 1u);
    EXPECT_FALSE(emu.insert_entry("nope", exact_entry(1, 0)));  // exact result
    EXPECT_TRUE(emu.modify_entry("A", exact_entry(1, 1)));
    EXPECT_TRUE(emu.delete_entry("A", {FieldMatch::exact(1)}));
    EXPECT_EQ(emu.entry_count("A"), 0u);

    sim::Emulator::ControlPlaneStats stats = emu.control_stats();
    EXPECT_EQ(stats.ops_submitted, 4u);
    EXPECT_EQ(stats.ops_applied_sync, 4u);
    EXPECT_EQ(stats.ops_deferred, 0u);
    EXPECT_EQ(stats.ops_drained, 4u);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(emu.control_pending(), 0u);
}

/// apply_epoch installs the program and its entry loads in one transition:
/// the new layout is never observable without its entries, and the epoch
/// counter bumps exactly once per swap.
TEST(ControlQueue, EpochSwapInstallsProgramAndEntriesTogether) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});
    EXPECT_EQ(emu.epoch(), 0u);

    ProgramBuilder b("next");
    b.append(TableSpec("A").key("src").noop_action("a1").noop_action("a2").build());
    b.append(TableSpec("C").key("dst").noop_action("c1").build());
    sim::EpochSwap swap;
    swap.program = b.build();
    swap.entries.push_back(
        ir::EntryLoad{"A", {exact_entry(1, 0), exact_entry(2, 1)}});
    swap.entries.push_back(ir::EntryLoad{"C", {exact_entry(9, 0)}});

    sim::Emulator::ReconfigureStats stats = emu.apply_epoch(std::move(swap));
    EXPECT_EQ(stats.downtime_s, 0.0);  // live-reconfigurable model
    EXPECT_EQ(emu.epoch(), 1u);
    EXPECT_EQ(emu.entry_count("A"), 2u);
    EXPECT_EQ(emu.entry_count("C"), 1u);
    // Loads are deployment state, not window churn: update counts stay 0.
    EXPECT_EQ(emu.read_counters().entries.at("A").entry_updates, 0u);
}

/// queue_epoch never drains: the op sits pending (reads still observe the
/// old epoch) until the next batch boundary, where process_batch reports the
/// drain and the swap becomes visible.
TEST(ControlQueue, QueuedEpochAppliesAtBatchBoundary) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});

    sim::EpochSwap swap;
    swap.program = two_tables();
    swap.entries.push_back(ir::EntryLoad{"A", {exact_entry(7, 0)}});
    emu.queue_epoch(std::move(swap));

    EXPECT_GE(emu.control_pending(), 1u);
    EXPECT_EQ(emu.epoch(), 0u);          // reads see the last drain point
    EXPECT_EQ(emu.entry_count("A"), 0u);

    sim::PacketBatch batch(1);
    batch[0].set(emu.fields().intern("src"), 7);
    sim::BatchResult r = emu.process_batch(batch);
    EXPECT_GE(r.control_ops_applied, 1u);  // drained at the batch boundary
    EXPECT_EQ(emu.epoch(), 1u);
    EXPECT_EQ(emu.entry_count("A"), 1u);
    EXPECT_EQ(emu.control_pending(), 0u);
}

/// drain_control() forces the epoch forward without pumping packets.
TEST(ControlQueue, DrainControlAppliesBacklogWithoutTraffic) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});

    sim::EpochSwap swap;
    swap.program = two_tables();
    swap.entries.push_back(ir::EntryLoad{"B", {exact_entry(3, 1)}});
    emu.queue_epoch(std::move(swap));
    EXPECT_EQ(emu.epoch(), 0u);

    EXPECT_GE(emu.drain_control(), 1u);
    EXPECT_EQ(emu.epoch(), 1u);
    EXPECT_EQ(emu.entry_count("B"), 1u);
    EXPECT_EQ(emu.control_pending(), 0u);
}

/// Queued ops apply strictly in submission order: a mutator submitted after
/// a queued swap sees the post-swap layout (here: its table no longer
/// exists, so the insert degrades to an exact `false`).
TEST(ControlQueue, OpsApplyInSubmissionOrderAcrossEpochs) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});

    ProgramBuilder b("without_a");
    b.append(TableSpec("B").key("dst").noop_action("b1").noop_action("b2").build());
    sim::EpochSwap swap;
    swap.program = b.build();
    emu.queue_epoch(std::move(swap));

    // The insert drains the backlog (idle), so the swap lands first and the
    // insert targets the new layout, where "A" is gone.
    EXPECT_FALSE(emu.insert_entry("A", exact_entry(1, 0)));
    EXPECT_EQ(emu.epoch(), 1u);
    EXPECT_TRUE(emu.insert_entry("B", exact_entry(1, 0)));
}

/// An invalid program is rejected on the caller's thread at enqueue time —
/// it must never explode inside a later batch's drain.
TEST(ControlQueue, InvalidProgramRejectedAtEnqueue) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});

    ProgramBuilder b("bad");
    b.append(TableSpec("A").key("src").noop_action("a1").build());
    Program bad = b.build();
    bad.node(0).next_by_action[0] = 42;  // dangling edge
    sim::EpochSwap swap;
    swap.program = bad;
    EXPECT_THROW(emu.queue_epoch(std::move(swap)), std::exception);
    EXPECT_EQ(emu.control_pending(), 0u);
    EXPECT_EQ(emu.epoch(), 0u);
}

/// Deterministic-mode batches interleaved with control ops stay bit-identical
/// (counters AND float latency accumulation) to a scalar process() loop
/// issuing the same ops at the same packet positions.
TEST(ControlQueue, DeterministicBatchesWithControlOpsMatchScalar) {
    ir::Program prog = ir::chain_of_exact_tables("p", 4, 2, 1);
    sim::Emulator scalar(sim::bluefield2_model(), prog, {});
    sim::Emulator batched(sim::bluefield2_model(), prog, {});
    batched.set_worker_count(4);
    batched.set_deterministic(true);

    util::Rng rng(7);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 4; ++i) tuple.push_back({"f" + std::to_string(i), 0, 31});
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 64, rng);
    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 11);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Zipf, 1.1, 11);

    constexpr int kPhases = 5;
    constexpr std::size_t kPerPhase = 200;
    for (int phase = 0; phase < kPhases; ++phase) {
        // Same control op, same point in the packet stream, both emulators.
        TableEntry e = exact_entry(static_cast<std::uint64_t>(phase), 0);
        ASSERT_TRUE(scalar.insert_entry("t0", e));
        ASSERT_TRUE(batched.insert_entry("t0", e));

        for (std::size_t i = 0; i < kPerPhase; ++i) {
            sim::Packet pkt = wl_a.next_packet(scalar.fields());
            scalar.process(pkt);
        }
        sim::PacketBatch batch = wl_b.next_batch(batched.fields(), kPerPhase);
        sim::BatchResult r = batched.process_batch(batch);
        ASSERT_EQ(r.results.size(), kPerPhase);
    }

    profile::RawCounters ca = scalar.read_counters();
    profile::RawCounters cb = batched.read_counters();
    EXPECT_EQ(ca.action_hits, cb.action_hits);
    EXPECT_EQ(ca.misses, cb.misses);
    EXPECT_EQ(ca.entries, cb.entries);
    util::RunningStats la = scalar.latency_stats();
    util::RunningStats lb = batched.latency_stats();
    EXPECT_EQ(la.count(), lb.count());
    EXPECT_EQ(la.sum(), lb.sum());  // bit-identical, not approximately
}

/// Stress (run under TSan in CI): control-plane enqueues complete while
/// batches are in flight — ops defer instead of blocking — and no op is
/// lost: after a final drain the backlog is empty and every submitted op
/// was applied.
TEST(ControlQueue, StressEnqueuesDoNotBlockOnInFlightBatch) {
    ir::Program prog = ir::chain_of_exact_tables("p", 6, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(3);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 6; ++i) tuple.push_back({"f" + std::to_string(i), 0, 255});
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 128, rng);
    apps::install_flow_entries(emu, flows);
    const std::size_t base_entries = emu.entry_count("t0");
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 5);

    std::atomic<bool> stop{false};
    std::thread data([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            sim::PacketBatch batch = wl.next_batch(emu.fields(), 2048);
            emu.process_batch(batch);
        }
    });

    // Enqueue from the control thread while batches run. Every call must
    // return (possibly with the optimistic deferred result) — a single
    // blocked enqueue would hang the loop and the test would time out.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::uint64_t inserted = 0;
    std::uint64_t key = 1u << 20;
    bool observed_in_flight = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (emu.batch_in_flight()) observed_in_flight = true;
        ASSERT_TRUE(emu.insert_entry("t0", exact_entry(key++, 0)));
        ++inserted;
        if (inserted % 256 == 0) {
            emu.invalidate_caches_covering("t1");  // returns -1 when deferred
        }
        if (inserted >= 512 && emu.control_stats().ops_deferred > 0) break;
    }
    stop.store(true);
    data.join();

    emu.drain_control();
    sim::Emulator::ControlPlaneStats stats = emu.control_stats();
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(emu.control_pending(), 0u);
    EXPECT_EQ(stats.ops_drained, stats.ops_submitted);  // nothing lost
    EXPECT_EQ(emu.entry_count("t0"), base_entries + inserted);

    if (!observed_in_flight || stats.ops_deferred == 0) {
        GTEST_SKIP() << "never raced a batch in flight on this host "
                        "(single-CPU scheduling); functional checks passed";
    }
    // At least one op returned before it applied: the enqueue path does not
    // wait on the data plane.
    EXPECT_GT(stats.ops_deferred, 0u);
    EXPECT_EQ(stats.ops_applied_sync + stats.ops_deferred, stats.ops_submitted);
}

/// The lock-free MPSC push (ISSUE 4): many producer threads enqueue
/// concurrently with each other AND with the data plane's consumer drains.
/// Under TSan this exercises the Vyukov push/drain pairing; functionally,
/// every op must survive (drained == submitted, all entries land).
TEST(ControlQueue, MultiProducerConcurrentEnqueues) {
    ir::Program prog = ir::chain_of_exact_tables("p", 6, 2, 1);
    sim::Emulator emu(sim::bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(3);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 6; ++i) tuple.push_back({"f" + std::to_string(i), 0, 255});
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 128, rng);
    apps::install_flow_entries(emu, flows);
    const std::size_t base_entries = emu.entry_count("t0");
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 5);

    std::atomic<bool> stop{false};
    std::thread data([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            sim::PacketBatch batch = wl.next_batch(emu.fields(), 1024);
            emu.process_batch(batch);  // drains the queue at the boundary
        }
    });

    // Each producer owns one table so the per-table capacity (1024) is never
    // exceeded — a failed insert would make entry counts unpredictable.
    constexpr int kProducers = 4;
    constexpr std::uint64_t kOpsPerProducer = 800;
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            const std::string table = "t" + std::to_string(t);
            std::uint64_t key = 1u << 20;
            for (std::uint64_t i = 0; i < kOpsPerProducer; ++i) {
                ASSERT_TRUE(emu.insert_entry(table, exact_entry(key++, 0)));
            }
        });
    }
    for (auto& th : producers) th.join();
    stop.store(true);
    data.join();
    emu.drain_control();

    sim::Emulator::ControlPlaneStats stats = emu.control_stats();
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.ops_drained, stats.ops_submitted);
    for (int t = 0; t < kProducers; ++t) {
        EXPECT_EQ(emu.entry_count("t" + std::to_string(t)),
                  base_entries + kOpsPerProducer);
    }
}

// ------------------------------------------------------------ runtime layer

/// The acceptance fixture: a committed known-bad plan (reorders across a
/// write->match dependency) forces an unsound optimized program through the
/// outcome hook. The verifier gate must reject it before it ever reaches
/// Emulator::reconfigure* — the old program keeps serving, the epoch does
/// not move, and TickResult carries the diagnostics.
TEST(ControllerVerifyGate, RejectedCandidateNeverReachesEmulator) {
    Program original =
        ir::load_program(fixture("examples/programs/dep_chain.json"));
    opt::PlanFile bad =
        opt::load_plan_file(fixture("examples/plans/bad_reorder_dependency.json"));

    analysis::PipeletOptions popt;
    popt.max_length = bad.max_pipelet_length;
    auto pipelets = analysis::form_pipelets(original, popt);
    // VerifyMode::Off applies the structurally-valid but semantically-unsound
    // reorder without throwing — exactly what a buggy or malicious optimizer
    // would hand the controller.
    Program unsound = opt::apply_plans(original, pipelets, bad.plans,
                                       analysis::VerifyMode::Off);

    sim::Emulator emu(nic(), original, {});
    runtime::ControllerConfig cfg = controller_config();
    cfg.optimizer.pipelet.max_length = bad.max_pipelet_length;
    cfg.outcome_hook = [&](search::OptimizationOutcome& o) {
        o.optimized = unsound;
        o.plans = bad.plans;
        o.baseline_latency = 100.0;
        o.predicted_latency = 10.0;
        o.predicted_gain = 90.0;  // looks like a huge win — gate must not care
    };
    runtime::Controller ctl(emu, original, model(), cfg);
    ASSERT_TRUE(ctl.api().insert(emu, "t_set", exact_entry(1, 0)));

    const std::uint64_t epoch_before = emu.epoch();
    runtime::TickResult r = ctl.tick();

    ASSERT_TRUE(r.searched);
    EXPECT_TRUE(r.verify_rejected);
    EXPECT_FALSE(r.deployed);
    EXPECT_TRUE(r.verify_diagnostics.has_rule("plan.reorder.dependency"));
    EXPECT_EQ(emu.epoch(), epoch_before);       // no swap ever enqueued
    EXPECT_TRUE(emu.program() == original);     // old program still serving
    EXPECT_EQ(emu.entry_count("t_set"), 1u);

    // With the gate disabled the same unsound candidate would deploy — the
    // fixture really does describe a deployable-looking program.
    cfg.verify_deploys = false;
    sim::Emulator emu2(nic(), original, {});
    runtime::Controller ctl2(emu2, original, model(), cfg);
    runtime::TickResult r2 = ctl2.tick();
    EXPECT_TRUE(r2.deployed);
    EXPECT_FALSE(r2.verify_rejected);
    EXPECT_TRUE(emu2.program() == unsound);
}

/// The revert path (deployed_is_harmful): a deployed cache layout that
/// measures worse than the plain original gets reverted through the same
/// prepare->verify->commit pipeline, re-syncing the entry set.
TEST(ControllerVerifyGate, RevertsMeasuredHarmfulDeployment) {
    Program original = two_tables();
    auto pipelets = analysis::form_pipelets(original);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1};
    plan.layout.caches = {opt::Segment{0, 1}};
    plan.layout.cache_config.capacity = 4;  // tiny: misses dominate
    plan.layout.cache_config.max_insert_per_sec = 1e9;
    Program cached = opt::apply_plans(original, pipelets, {plan});

    sim::Emulator emu(nic(), original, {});
    runtime::ControllerConfig cfg = controller_config();
    cfg.optimizer.search.allow_reorder = false;  // best candidate == original
    runtime::Controller ctl(emu, original, model(), cfg);
    ASSERT_TRUE(ctl.api().insert(emu, "A", exact_entry(1, 0)));

    // Deploy the cached layout out-of-band (as if a previous round chose it).
    emu.reconfigure(cached);
    ctl.api().deploy_entries(emu);
    ASSERT_FALSE(emu.program() == original);

    // All-unique flows: the cache never hits, every packet pays the probe.
    sim::FieldId src = emu.fields().intern("src");
    sim::FieldId dst = emu.fields().intern("dst");
    for (std::uint64_t i = 0; i < 2000; ++i) {
        sim::Packet pkt;
        pkt.set(src, i);
        pkt.set(dst, i);
        emu.process(pkt);
        emu.advance_time(5.0 / 2000);
    }

    runtime::TickResult r = ctl.tick();
    ASSERT_TRUE(r.searched);
    EXPECT_FALSE(r.verify_rejected);
    ASSERT_TRUE(r.deployed) << "controller did not revert the harmful layout";
    EXPECT_TRUE(emu.program() == original);
    EXPECT_EQ(emu.entry_count("A"), 1u);  // entries re-synced with the revert
}

/// Dynamic batch sizing: a tiny cycle budget drives the batch down to the
/// floor, a huge one drives it up to the cap, and the adapted size persists
/// across windows via the controller.
TEST(ControllerPump, DynamicBatchSizingAdaptsToCycleBudget) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});
    runtime::ControllerConfig cfg = controller_config();
    cfg.batch_floor = 8;
    cfg.batch_cap = 512;
    runtime::Controller ctl(emu, p, model(), cfg);

    util::Rng rng(1);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"src", 0, 255}, {"dst", 0, 255}}, 64, rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 1.0, 2);

    // Budget of ~1 cycle: every batch blows it, so the size halves from the
    // 256 seed down to the floor.
    ctl.config().target_batch_cycles = 1.0;
    runtime::Controller::PumpStats s1 = ctl.pump_window(wl, 2000, 1.0);
    EXPECT_EQ(s1.packets, 2000u);
    EXPECT_EQ(s1.min_batch, 8u);
    EXPECT_EQ(s1.last_batch, 8u);
    EXPECT_GT(s1.batches, 2000u / 256u);

    // Effectively infinite budget: the size doubles up to the cap, starting
    // from the floor the previous window converged to.
    ctl.config().target_batch_cycles = 1e15;
    runtime::Controller::PumpStats s2 = ctl.pump_window(wl, 8000, 1.0);
    EXPECT_EQ(s2.packets, 8000u);
    EXPECT_EQ(s2.max_batch, 512u);

    // The explicit-size overload stays non-adaptive.
    runtime::Controller::PumpStats s3 = ctl.pump_window(wl, 100, 1.0, 7);
    EXPECT_EQ(s3.packets, 100u);
    EXPECT_EQ(s3.max_batch, 7u);
}

/// Drop-rate feedback (ISSUE 4): a batch whose measured drop fraction
/// exceeds config.max_batch_drop_rate shrinks the next batch even when the
/// cycle budget would have grown it, and PumpStats reports which rule moved
/// the size.
/// ISSUE 6 satellite: the pump's drop feedback reads the ring overflow
/// counters — descriptors the RX rings actually refused — not per-packet
/// policy verdicts. A deny-all ACL (100% policy drops, zero overload) must
/// leave the batch size alone; an undersized ring (real overflow) must
/// shrink it.
TEST(ControllerPump, DropRateFeedbackShrinksBatch) {
    // Every packet misses the one table and hits the drop default.
    ProgramBuilder b("drops");
    b.append(TableSpec("D")
                 .key("src")
                 .noop_action("allow", 1)
                 .drop_action("deny")
                 .default_to("deny")
                 .build());
    Program p = b.build();

    util::Rng rng(6);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"src", 0, 255}}, 64, rng);

    {
        // Deny-all policy drops, amply sized rings: no overflow, so the
        // drop feedback must NOT fire — the infinite cycle budget grows the
        // batch to the cap instead (the old heuristic would have thrashed
        // down to the floor here).
        sim::Emulator emu(nic(), p, {});
        runtime::ControllerConfig cfg = controller_config();
        cfg.batch_floor = 8;
        cfg.batch_cap = 512;
        cfg.target_batch_cycles = 1e15;
        cfg.max_batch_drop_rate = 0.5;
        runtime::Controller ctl(emu, p, model(), cfg);
        trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 1.0, 2);

        runtime::Controller::PumpStats s = ctl.pump_window(wl, 2000, 1.0);
        EXPECT_EQ(s.packets, 2000u);
        EXPECT_EQ(s.offered, 2000u);
        EXPECT_DOUBLE_EQ(s.drop_rate, 1.0);  // policy drops, fully observed
        EXPECT_EQ(s.ring_drops, 0u);         // but the rings never refused
        EXPECT_DOUBLE_EQ(s.max_batch_drop, 0.0);
        EXPECT_EQ(s.batch_shrinks_drops, 0u);
        EXPECT_GT(s.batch_grows, 0u);
        EXPECT_EQ(s.max_batch, 512u);
    }
    {
        // Undersized rings (capacity 16 vs 256-packet bursts): genuine
        // overflow drops shrink the burst until it fits the ring, taking
        // priority over the growth the infinite budget would order.
        sim::Emulator emu(nic(), p, {});
        runtime::ControllerConfig cfg = controller_config();
        cfg.batch_floor = 8;
        cfg.batch_cap = 512;
        cfg.target_batch_cycles = 1e15;
        cfg.max_batch_drop_rate = 0.5;
        cfg.ring_capacity = 16;
        runtime::Controller ctl(emu, p, model(), cfg);
        trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 1.0, 2);

        runtime::Controller::PumpStats s = ctl.pump_window(wl, 2000, 1.0);
        EXPECT_EQ(s.packets, 2000u);
        EXPECT_GT(s.ring_drops, 0u);
        EXPECT_GT(s.max_batch_drop, 0.5);
        EXPECT_GT(s.batch_shrinks_drops, 0u);
        EXPECT_LE(s.last_batch, 16u);  // converged to what the ring holds
        // Conservation: with a deny-all policy every completed packet drops,
        // so policy drops + ring sheds must account for everything offered.
        EXPECT_EQ(s.dropped + s.ring_drops, s.offered);
    }
}

/// Time accounting: the window clock advances by exactly window_seconds when
/// packets are pumped, and an empty (or negative) request still advances the
/// clock so alternating empty/busy windows keep a monotonic timeline.
TEST(ControllerPump, PumpWindowTimeAccounting) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});
    runtime::Controller ctl(emu, p, model(), controller_config());

    util::Rng rng(4);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"src", 0, 15}, {"dst", 0, 15}}, 16, rng);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 1.0, 9);

    const double t0 = emu.now_seconds();
    runtime::Controller::PumpStats s = ctl.pump_window(wl, 0, 5.0, 64);
    EXPECT_EQ(s.packets, 0u);
    EXPECT_DOUBLE_EQ(emu.now_seconds(), t0 + 5.0);

    runtime::Controller::PumpStats s2 = ctl.pump_window(wl, -3, 2.0, 64);
    EXPECT_EQ(s2.packets, 0u);
    EXPECT_DOUBLE_EQ(emu.now_seconds(), t0 + 7.0);

    // 1000 packets in batches of 64 (tail batch of 40): the clock must land
    // on exactly t0 + 7 + 3, not a whole-batch multiple past it.
    runtime::Controller::PumpStats s3 = ctl.pump_window(wl, 1000, 3.0, 64);
    EXPECT_EQ(s3.packets, 1000u);
    EXPECT_NEAR(emu.now_seconds(), t0 + 10.0, 1e-9);
}

}  // namespace
}  // namespace pipeleon
