// Tests for opt/estimate: the PipeletEvaluator's candidate verdicts must
// mirror the paper's qualitative claims — reordering promotes droppers for
// free, caching helps complex matches and hurts with low hit rates, naive
// exact merges can regress while merge-as-cache cannot blow up the match
// cost.
#include <gtest/gtest.h>

#include "analysis/pipelet.h"
#include "cost/model.h"
#include "ir/builder.h"
#include "opt/estimate.h"

namespace pipeleon::opt {
namespace {

using ir::MatchKind;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

cost::CostParams params() {
    cost::CostParams p;
    p.l_mat = 10.0;
    p.l_act = 1.0;
    p.default_cache_hit_rate = 0.9;
    p.default_ternary_m = 5;
    p.default_lpm_m = 3;
    p.cache_invalidation_penalty = 0.02;
    return p;
}

profile::InstrumentationConfig no_instr() {
    profile::InstrumentationConfig c;
    c.enabled = false;
    return c;
}

struct PipeletCase {
    Program program;
    profile::RuntimeProfile profile;
    analysis::Pipelet pipelet;
};

/// Chain of n independent exact tables; positions given drop rates.
PipeletCase make_chain(const std::vector<double>& drop_rates) {
    ProgramBuilder b("chain");
    for (std::size_t i = 0; i < drop_rates.size(); ++i) {
        TableSpec spec("t" + std::to_string(i));
        spec.key("f" + std::to_string(i));
        spec.noop_action("t" + std::to_string(i) + "_ok", 1);
        spec.drop_action("t" + std::to_string(i) + "_deny");
        spec.default_to("t" + std::to_string(i) + "_ok");
        b.append(spec.build());
    }
    PipeletCase s{b.build(), {}, {}};
    s.profile.reset_for(s.program, 1.0);
    for (std::size_t i = 0; i < drop_rates.size(); ++i) {
        auto& st = s.profile.table(static_cast<NodeId>(i));
        st.action_hits[0] =
            static_cast<std::uint64_t>(1000 * (1.0 - drop_rates[i]));
        st.action_hits[1] = static_cast<std::uint64_t>(1000 * drop_rates[i]);
        st.entry_count = 100;
    }
    auto pipelets = analysis::form_pipelets(s.program);
    s.pipelet = pipelets.at(0);
    return s;
}

CandidateLayout identity(std::size_t n) {
    CandidateLayout l;
    for (std::size_t i = 0; i < n; ++i) l.order.push_back(i);
    return l;
}

TEST(Estimate, BaselineMatchesIdentityLayout) {
    PipeletCase s = make_chain({0.0, 0.0, 0.0});
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    EvalResult r = ev.evaluate(identity(3));
    ASSERT_TRUE(r.valid);
    EXPECT_NEAR(r.latency, ev.baseline_latency(), 1e-9);
    EXPECT_DOUBLE_EQ(r.extra_memory, 0.0);
    EXPECT_DOUBLE_EQ(r.extra_updates, 0.0);
}

TEST(Estimate, PromotingDropperReducesLatency) {
    // Last table drops 80%: moving it first should cut the pipelet cost.
    PipeletCase s = make_chain({0.0, 0.0, 0.8});
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);

    CandidateLayout reordered = identity(3);
    reordered.order = {2, 0, 1};
    EvalResult r = ev.evaluate(reordered);
    ASSERT_TRUE(r.valid);
    EXPECT_LT(r.latency, ev.baseline_latency() * 0.7);
    EXPECT_DOUBLE_EQ(r.extra_memory, 0.0);  // reordering is free (§3.2.1)
}

TEST(Estimate, HigherDropRateGivesBiggerReorderGain) {
    cost::CostModel model(params(), no_instr());
    double prev_gain = -1.0;
    for (double rate : {0.25, 0.5, 0.75}) {
        PipeletCase s = make_chain({0.0, 0.0, rate});
        PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
        CandidateLayout l = identity(3);
        l.order = {2, 0, 1};
        double gain = ev.baseline_latency() - ev.evaluate(l).latency;
        EXPECT_GT(gain, prev_gain);
        prev_gain = gain;
    }
}

TEST(Estimate, InvalidOrderRejected) {
    // Create a dependency: t0 writes the field t1 matches on.
    ProgramBuilder b("dep");
    ir::Action w;
    w.name = "w";
    w.primitives.push_back(ir::Primitive::set_const("k1", 1));
    b.append(TableSpec("t0").key("k0").action(w).build());
    b.append(TableSpec("t1").key("k1").noop_action("n").build());
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    auto pipelets = analysis::form_pipelets(p);
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(p, pipelets[0], prof, model);

    CandidateLayout swapped;
    swapped.order = {1, 0};
    EXPECT_FALSE(ev.evaluate(swapped).valid);
}

PipeletCase make_ternary_chain(std::size_t n) {
    ProgramBuilder b("tern");
    for (std::size_t i = 0; i < n; ++i) {
        b.append(TableSpec("t" + std::to_string(i))
                     .key("f" + std::to_string(i), MatchKind::Ternary)
                     .noop_action("t" + std::to_string(i) + "_a", 1)
                     .build());
    }
    PipeletCase s{b.build(), {}, {}};
    s.profile.reset_for(s.program, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        s.profile.table(static_cast<NodeId>(i)).action_hits = {1000};
        s.profile.table(static_cast<NodeId>(i)).entry_count = 50;
        s.profile.table(static_cast<NodeId>(i)).ternary_mask_count = 5;
    }
    s.pipelet = analysis::form_pipelets(s.program).at(0);
    return s;
}

TEST(Estimate, CachingComplexTablesHelps) {
    PipeletCase s = make_ternary_chain(3);
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);

    CandidateLayout cached = identity(3);
    cached.caches = {Segment{0, 2}};
    EvalResult r = ev.evaluate(cached);
    ASSERT_TRUE(r.valid);
    // Baseline: 3 * (5*10 + 1) = 153. Cache: 10 + 0.9*3 + 0.1*153 ≈ 28.
    EXPECT_LT(r.latency, 0.3 * ev.baseline_latency());
    EXPECT_GT(r.extra_memory, 0.0);  // reserved cache budget
}

TEST(Estimate, MeasuredLowHitRateKillsCacheGain) {
    PipeletCase s = make_ternary_chain(3);
    // Pretend a deployed cache over these tables is missing 90% of the time.
    for (NodeId id : {0, 1, 2}) {
        s.profile.table(id).cache_hits = 100;
        s.profile.table(id).cache_misses = 900;
    }
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    CandidateLayout cached = identity(3);
    cached.caches = {Segment{0, 2}};
    EvalResult r = ev.evaluate(cached);
    ASSERT_TRUE(r.valid);
    // With h = 0.1 the cache barely helps (pays lookup + 90% full path).
    EXPECT_GT(r.latency, 0.9 * ev.baseline_latency());
}

TEST(Estimate, UpdateRateDecaysPredictedHitRate) {
    PipeletCase quiet = make_ternary_chain(2);
    PipeletCase churny = make_ternary_chain(2);
    churny.profile.table(0).entry_updates = 1000;  // 1000 updates / 1 s window
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev_q(quiet.program, quiet.pipelet, quiet.profile, model);
    PipeletEvaluator ev_c(churny.program, churny.pipelet, churny.profile, model);
    CandidateLayout cached = identity(2);
    cached.caches = {Segment{0, 1}};
    EXPECT_LT(ev_q.evaluate(cached).latency, ev_c.evaluate(cached).latency);
}

TEST(Estimate, NaiveExactMergeCanRegress) {
    // Two exact tables with few actions: full merge turns them ternary
    // (m = 4 > 2 exact lookups), so latency gets WORSE — the Fig 6 pitfall.
    PipeletCase s = make_chain({0.0, 0.0});
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    CandidateLayout merged = identity(2);
    merged.merges = {MergeSpec{Segment{0, 1}, /*as_cache=*/false}};
    EvalResult r = ev.evaluate(merged);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.latency, ev.baseline_latency());
}

TEST(Estimate, MergeAsCacheHelpsExactTables) {
    PipeletCase s = make_chain({0.0, 0.0});
    // No misses recorded -> miss_prob 0 -> hit rate 1 for the merged cache.
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    CandidateLayout merged = identity(2);
    merged.merges = {MergeSpec{Segment{0, 1}, /*as_cache=*/true}};
    EvalResult r = ev.evaluate(merged);
    ASSERT_TRUE(r.valid);
    // One exact lookup + both actions instead of two lookups.
    EXPECT_LT(r.latency, ev.baseline_latency());
    EXPECT_GT(r.extra_memory, 0.0);
}

TEST(Estimate, MergeAmplifiesUpdates) {
    PipeletCase s = make_chain({0.0, 0.0});
    s.profile.table(0).entry_updates = 10;
    s.profile.table(0).entry_count = 100;
    s.profile.table(1).entry_count = 1000;
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    CandidateLayout merged = identity(2);
    merged.merges = {MergeSpec{Segment{0, 1}, true}};
    EvalResult r = ev.evaluate(merged);
    ASSERT_TRUE(r.valid);
    // I(T_AB) >= I_A * N_B = 10 * 1000.
    EXPECT_GE(r.extra_updates, 10000.0);
}

TEST(Estimate, OverlappingSegmentsRejected) {
    PipeletCase s = make_chain({0.0, 0.0, 0.0});
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    CandidateLayout bad = identity(3);
    bad.caches = {Segment{0, 1}};
    bad.merges = {MergeSpec{Segment{1, 2}, false}};
    EXPECT_FALSE(ev.evaluate(bad).valid);
}

TEST(Estimate, SingleTableMergeRejected) {
    PipeletCase s = make_chain({0.0, 0.0});
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    CandidateLayout bad = identity(2);
    bad.merges = {MergeSpec{Segment{0, 0}, false}};
    EXPECT_FALSE(ev.evaluate(bad).valid);
}

TEST(Estimate, TrafficRateFromWindow) {
    PipeletCase s = make_chain({0.0});
    s.profile.set_window_seconds(2.0);
    cost::CostModel model(params(), no_instr());
    PipeletEvaluator ev(s.program, s.pipelet, s.profile, model);
    EXPECT_DOUBLE_EQ(ev.traffic_rate(), 500.0);  // 1000 lookups / 2 s
}

}  // namespace
}  // namespace pipeleon::opt
