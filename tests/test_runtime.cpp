// Tests for runtime/api_mapper and runtime/controller: control-plane API
// mapping onto optimized layouts (§2.3) and the profile->optimize->deploy
// loop (Fig 3).
#include <gtest/gtest.h>

#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "runtime/controller.h"
#include "trafficgen/workload.h"

namespace pipeleon::runtime {
namespace {

using ir::FieldMatch;
using ir::kNoNode;
using ir::MatchKind;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableEntry;
using ir::TableSpec;

sim::NicModel nic() {
    sim::NicModel m;
    m.costs.l_mat = 10.0;
    m.costs.l_act = 2.0;
    m.costs.l_branch = 1.0;
    m.costs.l_counter = 0.0;
    m.cores = 1;
    m.cycles_per_second = 1e9;
    return m;
}

Program two_tables() {
    ProgramBuilder b("orig");
    b.append(TableSpec("A").key("src").noop_action("a1").noop_action("a2").build());
    b.append(TableSpec("B").key("dst").noop_action("b1").noop_action("b2").build());
    return b.build();
}

TableEntry exact_entry(std::uint64_t key, int action) {
    TableEntry e;
    e.key = {FieldMatch::exact(key)};
    e.action_index = action;
    return e;
}

TEST(ApiMapper, DirectTablePropagation) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});
    ApiMapper api(p);

    EXPECT_TRUE(api.insert(emu, "A", exact_entry(1, 0)));
    EXPECT_EQ(emu.entry_count("A"), 1u);
    EXPECT_TRUE(api.modify(emu, "A", exact_entry(1, 1)));
    EXPECT_EQ(emu.entries("A")->at(0).action_index, 1);
    EXPECT_TRUE(api.erase(emu, "A", {FieldMatch::exact(1)}));
    EXPECT_EQ(emu.entry_count("A"), 0u);

    EXPECT_FALSE(api.insert(emu, "nope", exact_entry(1, 0)));
    EXPECT_FALSE(api.erase(emu, "A", {FieldMatch::exact(9)}));
    EXPECT_FALSE(api.modify(emu, "A", exact_entry(9, 0)));
}

TEST(ApiMapper, SnapshotsTrackWindows) {
    Program p = two_tables();
    sim::Emulator emu(nic(), p, {});
    ApiMapper api(p);
    api.insert(emu, "A", exact_entry(1, 0));
    api.insert(emu, "A", exact_entry(2, 0));
    auto snaps = api.snapshots();
    EXPECT_EQ(snaps.at("A").entry_count, 2u);
    EXPECT_EQ(snaps.at("A").entry_updates, 2u);
    api.begin_window();
    EXPECT_EQ(api.snapshots().at("A").entry_updates, 0u);
    EXPECT_EQ(api.snapshots().at("A").entry_count, 2u);
}

TEST(ApiMapper, MergedTableRebuiltOnInsert) {
    Program original = two_tables();
    auto pipelets = analysis::form_pipelets(original);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1};
    plan.layout.merges = {opt::MergeSpec{opt::Segment{0, 1}, false}};
    Program optimized = opt::apply_plans(original, pipelets, {plan});

    sim::Emulator emu(nic(), optimized, {});
    ApiMapper api(original);
    // Insert through the ORIGINAL names even though only the merged table
    // is deployed.
    EXPECT_TRUE(api.insert(emu, "A", exact_entry(1, 0)));
    EXPECT_TRUE(api.insert(emu, "B", exact_entry(2, 0)));
    // Merged entries: (A hit, B hit), (A hit, miss), (miss, B hit) = 3.
    EXPECT_EQ(emu.entry_count("merge_A_B"), 3u);

    // A second A entry: (2 x 1) + 2 + 1 = 5 rows.
    EXPECT_TRUE(api.insert(emu, "A", exact_entry(7, 1)));
    EXPECT_EQ(emu.entry_count("merge_A_B"), 5u);
}

TEST(ApiMapper, CacheInvalidatedOnCoveredUpdate) {
    Program original = two_tables();
    auto pipelets = analysis::form_pipelets(original);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1};
    plan.layout.caches = {opt::Segment{0, 1}};
    Program optimized = opt::apply_plans(original, pipelets, {plan});

    sim::Emulator emu(nic(), optimized, {});
    ApiMapper api(original);
    api.insert(emu, "A", exact_entry(1, 0));

    // Warm the cache.
    sim::Packet pkt;
    pkt.set(emu.fields().intern("src"), 1);
    pkt.set(emu.fields().intern("dst"), 2);
    emu.process(pkt);
    EXPECT_EQ(emu.cache_size("cache_A_B"), 1u);

    // Any covered-table update invalidates the whole cache (§3.2.2).
    api.insert(emu, "A", exact_entry(5, 1));
    EXPECT_EQ(emu.cache_size("cache_A_B"), 0u);
}

TEST(ApiMapper, DeployEntriesAfterReconfigure) {
    Program original = two_tables();
    sim::Emulator emu(nic(), original, {});
    ApiMapper api(original);
    api.insert(emu, "A", exact_entry(1, 0));
    api.insert(emu, "B", exact_entry(2, 1));

    auto pipelets = analysis::form_pipelets(original);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {1, 0};  // reorder B before A
    Program optimized = opt::apply_plans(original, pipelets, {plan});
    emu.reconfigure(optimized);
    api.deploy_entries(emu);
    EXPECT_EQ(emu.entry_count("A"), 1u);
    EXPECT_EQ(emu.entry_count("B"), 1u);
}

// ---------------------------------------------------------------- controller

/// ACL scenario: 4 droppable exact tables; traffic drops mostly at the LAST
/// table. The controller should reorder it to the front.
struct AclScenario {
    Program program;

    static AclScenario make() {
        ProgramBuilder b("acl");
        for (int i = 0; i < 4; ++i) {
            TableSpec spec("acl" + std::to_string(i));
            spec.key("f" + std::to_string(i));
            spec.noop_action("acl" + std::to_string(i) + "_ok", 1);
            spec.drop_action("acl" + std::to_string(i) + "_deny");
            spec.default_to("acl" + std::to_string(i) + "_ok");
            b.append(spec.build());
        }
        return {b.build()};
    }
};

ControllerConfig controller_config() {
    ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.allow_cache = false;
    cfg.optimizer.search.allow_merge = false;
    cfg.detector.threshold = 0.05;
    cfg.min_relative_gain = 0.01;
    return cfg;
}

cost::CostModel model() {
    cost::CostParams p;
    p.l_mat = 10.0;
    p.l_act = 2.0;
    p.l_branch = 1.0;
    profile::InstrumentationConfig instr;  // enabled, full sampling
    return cost::CostModel(p, instr);
}

TEST(Controller, ReordersAfterObservingDrops) {
    AclScenario sc = AclScenario::make();
    sim::Emulator emu(nic(), sc.program, {});
    Controller ctl(emu, sc.program, model(), controller_config());

    // Deny 90% of flows at acl3 (the last table).
    sim::FieldId f3 = emu.fields().intern("f3");
    for (std::uint64_t flow = 0; flow < 90; ++flow) {
        TableEntry deny;
        deny.key = {FieldMatch::exact(flow)};
        deny.action_index = 1;  // the deny action
        ASSERT_TRUE(ctl.api().insert(emu, "acl3", deny));
    }
    // Traffic: f3 uniform over 100 flows -> 90% dropped at acl3.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        sim::Packet pkt;
        pkt.set(f3, i % 100);
        emu.process(pkt);
    }
    emu.advance_time(5.0);

    TickResult r = ctl.tick();
    EXPECT_TRUE(r.searched);
    ASSERT_TRUE(r.deployed);
    // acl3 is now first.
    EXPECT_EQ(emu.program().node(emu.program().root()).table.name, "acl3");

    // The dropped traffic now terminates at the first table.
    sim::Packet denied;
    denied.set(f3, 5);
    sim::ProcessResult pr = emu.process(denied);
    EXPECT_TRUE(pr.dropped);
    EXPECT_EQ(pr.nodes_visited, 1);
}

TEST(Controller, NoRedeployWithoutProfileChange) {
    AclScenario sc = AclScenario::make();
    sim::Emulator emu(nic(), sc.program, {});
    Controller ctl(emu, sc.program, model(), controller_config());

    sim::FieldId f0 = emu.fields().intern("f0");
    auto run_traffic = [&] {
        for (std::uint64_t i = 0; i < 500; ++i) {
            sim::Packet pkt;
            pkt.set(f0, i % 50);
            emu.process(pkt);
        }
        emu.advance_time(5.0);
    };

    run_traffic();
    ctl.tick();
    run_traffic();
    TickResult r2 = ctl.tick();
    // Identical traffic again: no change detected, no search.
    EXPECT_FALSE(r2.searched);
    EXPECT_FALSE(r2.deployed);
}

TEST(Controller, AdaptsWhenDropPatternMoves) {
    AclScenario sc = AclScenario::make();
    sim::Emulator emu(nic(), sc.program, {});
    ControllerConfig cfg = controller_config();
    Controller ctl(emu, sc.program, model(), cfg);

    sim::FieldId f2 = emu.fields().intern("f2");
    sim::FieldId f1 = emu.fields().intern("f1");
    for (std::uint64_t flow = 0; flow < 80; ++flow) {
        TableEntry deny;
        deny.key = {FieldMatch::exact(flow)};
        deny.action_index = 1;
        ASSERT_TRUE(ctl.api().insert(emu, "acl2", deny));
        TableEntry deny1 = deny;
        ASSERT_TRUE(ctl.api().insert(emu, "acl1", deny1));
    }

    // Phase 1: traffic matches acl2's deny rules.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        sim::Packet pkt;
        pkt.set(f2, i % 100);
        pkt.set(f1, 1000 + i % 100);  // misses acl1 rules
        emu.process(pkt);
    }
    emu.advance_time(5.0);
    TickResult r1 = ctl.tick();
    ASSERT_TRUE(r1.deployed);
    EXPECT_EQ(emu.program().node(emu.program().root()).table.name, "acl2");

    // Phase 2: the drop pattern moves to acl1.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        sim::Packet pkt;
        pkt.set(f1, i % 100);
        pkt.set(f2, 1000 + i % 100);
        emu.process(pkt);
    }
    emu.advance_time(5.0);
    TickResult r2 = ctl.tick();
    ASSERT_TRUE(r2.deployed);
    EXPECT_EQ(emu.program().node(emu.program().root()).table.name, "acl1");
}

TEST(Controller, EntriesSurviveDeployment) {
    AclScenario sc = AclScenario::make();
    sim::Emulator emu(nic(), sc.program, {});
    Controller ctl(emu, sc.program, model(), controller_config());

    TableEntry deny;
    deny.key = {FieldMatch::exact(7)};
    deny.action_index = 1;
    ctl.api().insert(emu, "acl3", deny);
    for (std::uint64_t i = 0; i < 500; ++i) {
        sim::Packet pkt;
        pkt.set(emu.fields().intern("f3"), 7);  // always denied
        emu.process(pkt);
    }
    emu.advance_time(5.0);
    TickResult r = ctl.tick();
    ASSERT_TRUE(r.deployed);
    EXPECT_EQ(emu.entry_count("acl3"), 1u);  // redeployed by the API mapper
}

TEST(Controller, IncrementalDeploymentReportsWarmCaches) {
    // With incremental_deployment on, a second deployment that keeps an
    // existing cache's definition reports it as kept warm.
    // Two pipelets separated by a branch: a cacheable ternary block and a
    // reorderable ACL tail. Changing the tail must not disturb the block's
    // cache.
    ProgramBuilder b("inc");
    NodeId tt0 = b.add(TableSpec("tt0").key("kf0", MatchKind::Ternary)
                           .noop_action("a0", 1).build());
    NodeId tt1 = b.add(TableSpec("tt1").key("kf1", MatchKind::Ternary)
                           .noop_action("a1", 1).build());
    NodeId tt2 = b.add(TableSpec("tt2").key("kf2", MatchKind::Ternary)
                           .noop_action("a2", 1).build());
    b.connect(tt0, tt1);
    b.connect(tt1, tt2);
    NodeId br = b.add_branch({"which", ir::CmpOp::Eq, 1});
    b.connect(tt2, br);
    NodeId tail0 = b.add(TableSpec("tail0")
                             .key("tf0")
                             .noop_action("tail0_ok", 1)
                             .drop_action("tail0_deny")
                             .default_to("tail0_ok")
                             .build());
    NodeId tail1 = b.add(TableSpec("tail1")
                             .key("tf1")
                             .noop_action("tail1_ok", 1)
                             .drop_action("tail1_deny")
                             .default_to("tail1_ok")
                             .build());
    b.connect_branch(br, tail0, tail0);
    b.connect(tail0, tail1);
    b.set_root(tt0);
    Program p = b.build();

    sim::NicModel m = nic();
    m.live_reconfig = false;
    m.reload_downtime_s = 8.0;
    sim::Emulator emu(m, p, {});
    ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.incremental_deployment = true;
    cfg.detector.threshold = 0.02;
    cost::CostParams params;
    params.l_mat = 10.0;
    params.l_act = 2.0;
    params.default_ternary_m = 5;
    Controller ctl(emu, p, cost::CostModel(params, {}), cfg);
    for (int i = 0; i < 3; ++i) {
        for (int mm = 0; mm < 5; ++mm) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + mm))};
            e.action_index = 0;
            e.priority = mm;
            ASSERT_TRUE(ctl.api().insert(emu, "tt" + std::to_string(i), e));
        }
    }

    auto traffic = [&]() {
        for (int i = 0; i < 2000; ++i) {
            sim::Packet pkt;
            pkt.set(emu.fields().intern("kf0"), 0);
            pkt.set(emu.fields().intern("tf1"), i % 100);
            emu.process(pkt);
            emu.advance_time(5.0 / 2000);
        }
    };

    traffic();
    TickResult first = ctl.tick();
    ASSERT_TRUE(first.deployed);  // caches the ternary block
    // The first deployment changes most tables: partial (or full) downtime.
    EXPECT_GT(first.downtime_s, 0.0);
    EXPECT_LE(first.downtime_s, 8.0 + 1e-9);

    // Trigger a second, small change: tail1 churns continuously (inserts
    // interleaved with traffic keep invalidating any cache covering it),
    // so the controller re-plans the tail pipelet while the cached ternary
    // block is untouched.
    std::uint64_t churn_key = 1000;
    auto churny_traffic = [&]() {
        for (int i = 0; i < 2000; ++i) {
            if (i % 5 == 0) {
                ir::TableEntry deny;
                deny.key = {ir::FieldMatch::exact(churn_key++)};
                deny.action_index = 1;
                ctl.api().insert(emu, "tail1", deny);
            }
            sim::Packet pkt;
            pkt.set(emu.fields().intern("kf0"), 0);
            pkt.set(emu.fields().intern("tf1"), i % 100);
            emu.process(pkt);
            emu.advance_time(5.0 / 2000);
        }
    };
    churny_traffic();
    TickResult second = ctl.tick();
    if (!second.deployed) {
        churny_traffic();
        second = ctl.tick();
    }
    ASSERT_TRUE(second.deployed);
    // The unchanged ternary-block cache survives the redeployment warm, and
    // the reflash only pays for the changed tail tables.
    EXPECT_GE(second.caches_kept_warm, 1u);
    EXPECT_LT(second.downtime_s, 8.0);
}

TEST(Controller, RemovesCacheUnderInsertionStorm) {
    // The Fig 11a mechanism: a deployed flow cache collapses when covered
    // tables churn; the controller must stop covering the churny table.
    ProgramBuilder b("storm");
    for (int i = 0; i < 3; ++i) {
        b.append(TableSpec("tern" + std::to_string(i))
                     .key("tf" + std::to_string(i), MatchKind::Ternary)
                     .noop_action("t" + std::to_string(i) + "_a", 1)
                     .build());
    }
    b.append(TableSpec("churny").key("vip").noop_action("pick", 1).size(100000).build());
    Program p = b.build();

    sim::Emulator emu(nic(), p, {});
    ControllerConfig cfg;
    cfg.optimizer.top_k_fraction = 1.0;
    cfg.optimizer.search.allow_merge = false;
    cfg.optimizer.search.allow_reorder = false;
    cost::CostParams params;
    params.l_mat = 10.0;
    params.l_act = 2.0;
    params.default_ternary_m = 5;
    params.cache_invalidation_penalty = 0.05;
    Controller ctl(emu, p, cost::CostModel(params, {}), cfg);

    // Ternary rules so caching looks attractive.
    for (int i = 0; i < 3; ++i) {
        for (int m = 0; m < 5; ++m) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::ternary(0, 0xFULL << (4 + m))};
            e.action_index = 0;
            e.priority = m;
            ASSERT_TRUE(ctl.api().insert(emu, "tern" + std::to_string(i), e));
        }
    }

    auto run_traffic = [&](int churn_inserts) {
        std::uint64_t vip = 50000;
        for (int i = 0; i < 2000; ++i) {
            if (churn_inserts > 0 && i % (2000 / churn_inserts) == 0) {
                ctl.api().insert(emu, "churny", exact_entry(vip++, 0));
            }
            sim::Packet pkt;
            pkt.set(emu.fields().intern("tf0"), 0);
            pkt.set(emu.fields().intern("vip"), i % 64);
            emu.process(pkt);
            emu.advance_time(5.0 / 2000);
        }
    };

    auto covers_churny = [&]() {
        for (const ir::Node& n : emu.program().nodes()) {
            if (n.is_table() && n.table.role == ir::TableRole::Cache) {
                for (const std::string& o : n.table.origin_tables) {
                    if (o == "churny") return true;
                }
            }
        }
        return false;
    };

    // Quiet phase: optimizer should cache broadly (possibly incl. churny).
    run_traffic(0);
    ctl.tick();
    bool cached_initially = false;
    for (const ir::Node& n : emu.program().nodes()) {
        if (n.is_table() && n.table.role == ir::TableRole::Cache) {
            cached_initially = true;
        }
    }
    EXPECT_TRUE(cached_initially);

    // Storm phase: several windows of heavy churn on "churny".
    for (int w = 0; w < 3; ++w) {
        run_traffic(400);
        ctl.tick();
    }
    // The churny table must no longer be covered by any cache...
    EXPECT_FALSE(covers_churny());
    // ...while the quiet ternary tables should still be cached.
    bool still_cached = false;
    for (const ir::Node& n : emu.program().nodes()) {
        if (n.is_table() && n.table.role == ir::TableRole::Cache) {
            still_cached = true;
        }
    }
    EXPECT_TRUE(still_cached);
}

}  // namespace
}  // namespace pipeleon::runtime
