// Tests for ir/bmv2_import: consuming p4c's BMv2 JSON intermediate format.
#include <gtest/gtest.h>

#include "ir/bmv2_import.h"

namespace pipeleon::ir {
namespace {

// A trimmed but schema-faithful BMv2 JSON document: two tables (LPM route,
// exact ACL) behind a conditional, with assign/mark_to_drop primitives.
const char* kSample = R"JSON({
  "program": "basic_router",
  "header_types": [
    {"name": "ipv4_t", "fields": [["dstAddr", 32, false], ["ttl", 8, false]]},
    {"name": "meta_t", "fields": [["proto", 8, false]]}
  ],
  "headers": [
    {"name": "ipv4", "header_type": "ipv4_t"},
    {"name": "meta", "header_type": "meta_t"}
  ],
  "actions": [
    {"name": "set_nhop", "id": 0,
     "runtime_data": [{"name": "port", "bitwidth": 9}],
     "primitives": [
       {"op": "assign", "parameters": [
         {"type": "field", "value": ["standard_metadata", "egress_spec"]},
         {"type": "runtime_data", "value": 0}]},
       {"op": "assign", "parameters": [
         {"type": "field", "value": ["ipv4", "ttl"]},
         {"type": "hexstr", "value": "0x40"}]}
     ]},
    {"name": "_drop", "id": 1,
     "primitives": [{"op": "mark_to_drop", "parameters": []}]},
    {"name": "NoAction", "id": 2, "primitives": []}
  ],
  "pipelines": [
    {"name": "ingress", "init_table": "node_2",
     "tables": [
       {"name": "ipv4_lpm", "max_size": 1024,
        "key": [{"match_type": "lpm", "target": ["ipv4", "dstAddr"]}],
        "actions": ["set_nhop", "_drop"],
        "action_ids": [0, 1],
        "next_tables": {"set_nhop": "acl", "_drop": null},
        "base_default_next": "acl",
        "default_entry": {"action_id": 1}},
       {"name": "acl", "max_size": 512,
        "key": [{"match_type": "exact", "target": ["meta", "proto"]}],
        "actions": ["NoAction", "_drop"],
        "action_ids": [2, 1],
        "next_tables": {"NoAction": null, "_drop": null},
        "base_default_next": null}
     ],
     "conditionals": [
       {"name": "node_2",
        "expression": {"type": "expression", "value": {
           "op": "==",
           "left": {"type": "field", "value": ["meta", "proto"]},
           "right": {"type": "hexstr", "value": "0x06"}}},
        "true_next": "ipv4_lpm",
        "false_next": "acl"}
     ]},
    {"name": "egress", "init_table": null, "tables": [], "conditionals": []}
  ]
})JSON";

TEST(Bmv2Import, ImportsStructure) {
    Program p = import_bmv2(util::Json::parse(kSample));
    EXPECT_EQ(p.table_count(), 2u);
    EXPECT_NO_THROW(p.validate());

    // Root is the conditional.
    const Node& root = p.node(p.root());
    ASSERT_TRUE(root.is_branch());
    EXPECT_EQ(root.cond.field, "meta.proto");
    EXPECT_EQ(root.cond.op, CmpOp::Eq);
    EXPECT_EQ(root.cond.value, 6u);

    NodeId lpm = p.find_table("ipv4_lpm");
    NodeId acl = p.find_table("acl");
    ASSERT_NE(lpm, kNoNode);
    ASSERT_NE(acl, kNoNode);
    EXPECT_EQ(root.true_next, lpm);
    EXPECT_EQ(root.false_next, acl);
}

TEST(Bmv2Import, TableShape) {
    Program p = import_bmv2(util::Json::parse(kSample));
    const Table& lpm = p.node(p.find_table("ipv4_lpm")).table;
    ASSERT_EQ(lpm.keys.size(), 1u);
    EXPECT_EQ(lpm.keys[0].field, "ipv4.dstAddr");
    EXPECT_EQ(lpm.keys[0].kind, MatchKind::Lpm);
    EXPECT_EQ(lpm.keys[0].width_bits, 32);  // resolved via header_types
    EXPECT_EQ(lpm.size, 1024u);
    ASSERT_EQ(lpm.actions.size(), 2u);
    EXPECT_EQ(lpm.actions[0].name, "set_nhop");
    // default_entry.action_id = 1 (_drop).
    EXPECT_EQ(lpm.default_action, lpm.action_index("_drop"));
}

TEST(Bmv2Import, ActionPrimitivesTranslate) {
    Program p = import_bmv2(util::Json::parse(kSample));
    const Table& lpm = p.node(p.find_table("ipv4_lpm")).table;
    const Action& set_nhop = lpm.actions[0];
    ASSERT_EQ(set_nhop.primitives.size(), 2u);
    EXPECT_EQ(set_nhop.primitives[0].kind, PrimitiveKind::SetConst);
    EXPECT_EQ(set_nhop.primitives[0].dst_field, "standard_metadata.egress_spec");
    EXPECT_EQ(set_nhop.primitives[0].arg_index, 0);  // runtime_data slot 0
    EXPECT_EQ(set_nhop.primitives[1].dst_field, "ipv4.ttl");
    EXPECT_EQ(set_nhop.primitives[1].value, 0x40u);
    EXPECT_EQ(set_nhop.primitives[1].arg_index, -1);

    const Action& drop = lpm.actions[1];
    EXPECT_TRUE(drop.drops());
}

TEST(Bmv2Import, EdgesFollowNextTables) {
    Program p = import_bmv2(util::Json::parse(kSample));
    const Node& lpm = p.node(p.find_table("ipv4_lpm"));
    NodeId acl = p.find_table("acl");
    EXPECT_EQ(lpm.next_by_action[0], acl);      // set_nhop -> acl
    EXPECT_EQ(lpm.next_by_action[1], kNoNode);  // _drop -> exit
    const Node& acl_node = p.node(acl);
    EXPECT_EQ(acl_node.next_by_action[0], kNoNode);
}

TEST(Bmv2Import, MissingPipelineThrows) {
    Bmv2ImportOptions opts;
    opts.pipeline = "nonexistent";
    EXPECT_THROW(import_bmv2(util::Json::parse(kSample), opts),
                 std::runtime_error);
    EXPECT_THROW(import_bmv2(util::Json::parse("{}")), std::runtime_error);
}

TEST(Bmv2Import, ComplexConditionFallsBack) {
    // An expression the importer cannot decode exactly: it should fall back
    // to `field != 0` on the first referenced field instead of failing.
    const char* doc = R"JSON({
      "pipelines": [{"name": "ingress", "init_table": "node_1",
        "tables": [],
        "conditionals": [{"name": "node_1",
          "expression": {"type": "expression", "value": {
            "op": "and",
            "left": {"type": "expression", "value": {
              "op": "d2b",
              "left": null,
              "right": {"type": "field", "value": ["ethernet", "$valid$"]}}},
            "right": {"type": "bool", "value": true}}},
          "true_next": null, "false_next": null}]}]
    })JSON";
    Program p = import_bmv2(util::Json::parse(doc));
    const Node& root = p.node(p.root());
    ASSERT_TRUE(root.is_branch());
    EXPECT_EQ(root.cond.field, "ethernet.$valid$");
    EXPECT_EQ(root.cond.op, CmpOp::Ne);
    EXPECT_EQ(root.cond.value, 0u);
}

TEST(Bmv2Import, KeylessTableGetsSyntheticKey) {
    const char* doc = R"JSON({
      "actions": [{"name": "nop", "id": 0, "primitives": []}],
      "pipelines": [{"name": "ingress", "init_table": "t",
        "tables": [{"name": "t", "actions": ["nop"], "action_ids": [0],
                    "next_tables": {"nop": null}}],
        "conditionals": []}]
    })JSON";
    Program p = import_bmv2(util::Json::parse(doc));
    const Table& t = p.node(p.find_table("t")).table;
    ASSERT_EQ(t.keys.size(), 1u);
    EXPECT_EQ(t.keys[0].field, "$keyless");
}

TEST(Bmv2Import, ImportedProgramIsOptimizable) {
    // End-to-end sanity: the imported program round-trips through our own
    // JSON and partitions into pipelets.
    Program p = import_bmv2(util::Json::parse(kSample));
    EXPECT_NO_THROW(p.validate());
    EXPECT_GE(p.reachable().size(), 3u);
}

}  // namespace
}  // namespace pipeleon::ir
