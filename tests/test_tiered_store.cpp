// Tests for the hierarchical flow-state store (sim/tiered_store,
// sim/host_dma — DESIGN.md §14): single-tier bit-equivalence with the flat
// CacheStore (randomized op mirroring), the demotion cascade, batch-boundary
// promotion, DMA cycle accounting, hit-count conservation, and the emulator
// integration (tier.* telemetry, lower-tier cycle charging).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/builder.h"
#include "sim/emulator.h"
#include "sim/host_dma.h"
#include "sim/table_state.h"
#include "sim/tiered_store.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace pipeleon::sim {
namespace {

using ir::MatchKind;
using ir::NodeId;
using ir::ProgramBuilder;
using ir::TableSpec;
using ir::kNoNode;

CacheStore::CacheEntry payload(int marker) {
    CacheStore::CacheEntry e;
    ReplayStep step;
    step.origin_node = marker;
    step.action_index = 0;
    e.steps.push_back(step);
    return e;
}

int marker_of(const CacheStore::CacheEntry& e) {
    return e.steps.empty() ? -1 : static_cast<int>(e.steps[0].origin_node);
}

ir::CacheConfig tiered_config(std::size_t sram, std::size_t dram,
                              std::size_t host) {
    ir::CacheConfig cfg;
    cfg.capacity = sram;
    cfg.max_insert_per_sec = 1e9;
    cfg.tiers.dram_entries = dram;
    cfg.tiers.host_entries = host;
    return cfg;
}

TierCosts test_costs() {
    TierCosts c;
    c.l_tier_dram = 30.0;
    c.l_tier_host = 90.0;
    c.dma_setup = 400.0;
    c.dma_per_entry = 16.0;
    return c;
}

// ------------------------------------------- single-tier bit-equivalence
//
// With tiers disabled, TieredStore must delegate straight to the embedded
// CacheStore: identical hit/miss per lookup, accept/drop per insert, size,
// limiter drop count, and eviction order — the acceptance criterion that
// the tentpole does not perturb the flat LRU.

void mirror_against_flat(std::uint64_t seed, ir::CacheConfig cfg, int ops,
                         std::uint64_t key_space) {
    ASSERT_FALSE(cfg.tiers.enabled());
    TieredStore tiered(cfg, test_costs());
    CacheStore flat(cfg);
    EXPECT_FALSE(tiered.tiered());
    util::Rng rng(seed);
    double now = 0.0;
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t k = rng.next_below(key_space);
        const KeyVec key{k, k ^ 0xABCDu};
        const int what = static_cast<int>(rng.next_below(10));
        if (what < 5) {
            const TieredStore::Result r = tiered.lookup(key);
            const CacheStore::CacheEntry* b = flat.lookup(key);
            ASSERT_EQ(r.entry != nullptr, b != nullptr)
                << "lookup divergence op " << op;
            ASSERT_EQ(r.extra_cycles, 0.0);
            ASSERT_EQ(r.tier, b != nullptr ? 0 : -1);
            if (r.entry != nullptr) {
                ASSERT_EQ(marker_of(*r.entry), marker_of(*b));
            }
        } else if (what < 9) {
            const bool a = tiered.insert(key, payload(op), now);
            const bool b = flat.insert(key, payload(op), now);
            ASSERT_EQ(a, b) << "insert divergence op " << op;
        } else if (what == 9 && rng.next_below(8) == 0) {
            tiered.clear();
            flat.clear();
        } else {
            now += 0.001 * static_cast<double>(rng.next_below(50));
        }
        // flush_batch must be a no-op in single-tier mode; interleave it at
        // the cadence the emulator would (every batch boundary).
        if (op % 32 == 31) tiered.flush_batch();
        ASSERT_EQ(tiered.size(), flat.size()) << "size divergence op " << op;
        ASSERT_EQ(tiered.inserts_dropped(), flat.inserts_dropped())
            << "drop-count divergence op " << op;
    }
    // Eviction-order probe: every key still in the flat store must hit the
    // tiered store too (sizes already match, so the key sets are equal).
    const TierStats s = tiered.stats();
    EXPECT_EQ(s.lookups, s.sram_hits + s.misses);
    EXPECT_EQ(s.dram_hits, 0u);
    EXPECT_EQ(s.host_hits, 0u);
    EXPECT_EQ(s.demotions, 0u);
    EXPECT_EQ(s.promotions, 0u);
    EXPECT_EQ(s.tier_cycles, 0.0);
}

TEST(TieredStoreEquivalence, SingleTierMirrorsFlatSmallCache) {
    ir::CacheConfig cfg;
    cfg.capacity = 8;  // constant eviction pressure
    cfg.max_insert_per_sec = 1e9;
    mirror_against_flat(11, cfg, 4000, 32);
}

TEST(TieredStoreEquivalence, SingleTierMirrorsFlatRateLimited) {
    ir::CacheConfig cfg;
    cfg.capacity = 64;
    cfg.max_insert_per_sec = 50.0;  // limiter actively dropping
    mirror_against_flat(12, cfg, 4000, 256);
}

TEST(TieredStoreEquivalence, SingleTierMirrorsFlatZeroCapacity) {
    ir::CacheConfig cfg;
    cfg.capacity = 0;
    cfg.max_insert_per_sec = 1e9;
    mirror_against_flat(13, cfg, 1000, 16);
}

// ------------------------------------------------------ demotion cascade

TEST(TieredStore, EvictionsCascadeDownTheTiers) {
    TieredStore store(tiered_config(2, 2, 2), test_costs());
    ASSERT_TRUE(store.tiered());
    // Seven inserts into a 2+2+2 hierarchy: the oldest falls off the end.
    for (std::uint64_t k = 0; k < 7; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(static_cast<int>(k)), 0.0));
    }
    EXPECT_EQ(store.tier_size(0), 2u);
    EXPECT_EQ(store.tier_size(1), 2u);
    EXPECT_EQ(store.tier_size(2), 2u);
    EXPECT_EQ(store.size(), 6u);

    const TierStats s = store.stats();
    EXPECT_EQ(s.drops, 1u);  // key 0 fell off the host tier
    // Each insert beyond tier-0 capacity demotes one victim from SRAM, and
    // each demotion beyond tier-1 capacity cascades one more from DRAM...
    EXPECT_EQ(s.demotions, 5u + 3u);

    // LRU order is preserved through the cascade: newest in SRAM, oldest
    // surviving keys at the bottom.
    EXPECT_EQ(store.lookup({6}).tier, 0);
    EXPECT_EQ(store.lookup({5}).tier, 0);
    EXPECT_EQ(store.lookup({4}).tier, 1);
    EXPECT_EQ(store.lookup({3}).tier, 1);
    EXPECT_EQ(store.lookup({2}).tier, 2);
    EXPECT_EQ(store.lookup({1}).tier, 2);
    EXPECT_EQ(store.lookup({0}).tier, -1);  // dropped
}

TEST(TieredStore, PayloadSurvivesTheCascade) {
    TieredStore store(tiered_config(1, 1, 4), test_costs());
    for (std::uint64_t k = 0; k < 4; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(100 + static_cast<int>(k)), 0.0));
    }
    // Keys 0 and 1 are now in the host tier; their replay steps rode along.
    const TieredStore::Result r = store.lookup({0});
    ASSERT_EQ(r.tier, 2);
    EXPECT_EQ(marker_of(*r.entry), 100);
}

TEST(TieredStore, DramOnlyHierarchySkipsHost) {
    TieredStore store(tiered_config(1, 2, 0), test_costs());
    for (std::uint64_t k = 0; k < 4; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(static_cast<int>(k)), 0.0));
    }
    EXPECT_EQ(store.tier_size(0), 1u);
    EXPECT_EQ(store.tier_size(1), 2u);
    EXPECT_EQ(store.tier_size(2), 0u);
    EXPECT_EQ(store.stats().drops, 1u);
    EXPECT_EQ(store.lookup({0}).tier, -1);
}

TEST(TieredStore, HostOnlyHierarchyDemotesStraightToHost) {
    TieredStore store(tiered_config(1, 0, 2), test_costs());
    for (std::uint64_t k = 0; k < 3; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(static_cast<int>(k)), 0.0));
    }
    EXPECT_EQ(store.tier_size(1), 0u);
    EXPECT_EQ(store.tier_size(2), 2u);
    EXPECT_EQ(store.lookup({0}).tier, 2);
    EXPECT_EQ(store.lookup({1}).tier, 2);
}

TEST(TieredStore, InsertErasesStaleLowerTierCopy) {
    TieredStore store(tiered_config(1, 4, 4), test_costs());
    ASSERT_TRUE(store.insert({1}, payload(1), 0.0));
    ASSERT_TRUE(store.insert({2}, payload(2), 0.0));  // demotes key 1 to DRAM
    ASSERT_EQ(store.lookup({1}).tier, 1);
    // Re-inserting key 1 (e.g. a fill after a racing invalidation) lands in
    // SRAM and must erase the DRAM copy — one tier per key.
    ASSERT_TRUE(store.insert({1}, payload(11), 0.0));
    EXPECT_EQ(store.tier_size(1), 1u);  // key 2 only (demoted by the insert)
    const TieredStore::Result r = store.lookup({1});
    EXPECT_EQ(r.tier, 0);
    EXPECT_EQ(marker_of(*r.entry), 11);
    EXPECT_EQ(store.size(), 2u);
}

// --------------------------------------------- promotion at batch boundary

TEST(TieredStore, PromotionMovesHotDramEntryUpAtFlush) {
    ir::CacheConfig cfg = tiered_config(1, 4, 0);
    cfg.tiers.promote_hits = 2;
    TieredStore store(cfg, test_costs());
    ASSERT_TRUE(store.insert({1}, payload(1), 0.0));
    ASSERT_TRUE(store.insert({2}, payload(2), 0.0));  // key 1 -> DRAM

    EXPECT_EQ(store.lookup({1}).tier, 1);  // hit count 1: below threshold
    store.flush_batch();
    EXPECT_EQ(store.tier_size(0), 1u);  // not promoted yet
    EXPECT_EQ(store.stats().promotions, 0u);

    EXPECT_EQ(store.lookup({1}).tier, 1);  // hit count 2: queued
    EXPECT_EQ(store.lookup({1}).tier, 1);  // still DRAM until the boundary
    store.flush_batch();

    EXPECT_EQ(store.stats().promotions, 1u);
    const TieredStore::Result r = store.lookup({1});
    EXPECT_EQ(r.tier, 0);
    EXPECT_EQ(marker_of(*r.entry), 1);
    // Promotion evicted key 2 from the 1-entry SRAM down into DRAM.
    EXPECT_EQ(store.lookup({2}).tier, 1);
    EXPECT_EQ(store.size(), 2u);
}

TEST(TieredStore, HostEntriesPromoteToDramFirst) {
    ir::CacheConfig cfg = tiered_config(1, 2, 4);
    cfg.tiers.promote_hits = 1;  // promote on the first lower-tier hit
    TieredStore store(cfg, test_costs());
    for (std::uint64_t k = 0; k < 4; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(static_cast<int>(k)), 0.0));
    }
    ASSERT_EQ(store.lookup({0}).tier, 2);
    store.flush_batch();
    // One step up per boundary: host -> DRAM, not straight to SRAM.
    EXPECT_EQ(store.lookup({0}).tier, 1);
    EXPECT_EQ(store.stats().promotions, 1u);
}

TEST(TieredStore, HostPromotesToSramWhenDramAbsent) {
    ir::CacheConfig cfg = tiered_config(1, 0, 4);
    cfg.tiers.promote_hits = 1;
    TieredStore store(cfg, test_costs());
    ASSERT_TRUE(store.insert({1}, payload(1), 0.0));
    ASSERT_TRUE(store.insert({2}, payload(2), 0.0));  // key 1 -> host
    ASSERT_EQ(store.lookup({1}).tier, 2);
    store.flush_batch();
    EXPECT_EQ(store.lookup({1}).tier, 0);
    EXPECT_EQ(store.stats().promotions, 1u);
}

TEST(TieredStore, DecayExpiresOldHeat) {
    ir::CacheConfig cfg = tiered_config(1, 4, 0);
    cfg.tiers.promote_hits = 2;
    cfg.tiers.decay_every = 1;  // halve counters at every batch boundary
    TieredStore store(cfg, test_costs());
    ASSERT_TRUE(store.insert({1}, payload(1), 0.0));
    ASSERT_TRUE(store.insert({2}, payload(2), 0.0));  // key 1 -> DRAM

    // One hit per batch never reaches the threshold: each boundary halves
    // the counter back to zero before the next hit.
    for (int round = 0; round < 6; ++round) {
        ASSERT_EQ(store.lookup({1}).tier, 1);
        store.flush_batch();
        ASSERT_EQ(store.stats().promotions, 0u) << "round " << round;
    }
    // Two hits inside one batch do cross it.
    ASSERT_EQ(store.lookup({1}).tier, 1);
    ASSERT_EQ(store.lookup({1}).tier, 1);
    store.flush_batch();
    EXPECT_EQ(store.stats().promotions, 1u);
    EXPECT_EQ(store.lookup({1}).tier, 0);
}

// ------------------------------------------------------- cycle accounting

TEST(HostDmaEngine, ChargesSetupOncePerFullBatch) {
    HostDmaEngine dma(4, DmaCosts{400.0, 16.0});
    double charged = 0.0;
    for (std::uint32_t i = 0; i < 12; ++i) charged += dma.fetch(i, i);
    const DmaStats& s = dma.stats();
    EXPECT_EQ(s.fetches, 12u);
    EXPECT_EQ(s.batches, 3u);  // 12 fetches / batch of 4
    EXPECT_EQ(s.flushes, 0u);
    EXPECT_DOUBLE_EQ(s.cycles, 400.0 * 3 + 16.0 * 12);
    // Every cycle the engine recorded was charged to some access.
    EXPECT_DOUBLE_EQ(charged + dma.carry(), s.cycles);
    EXPECT_EQ(dma.pending(), 0u);
    EXPECT_DOUBLE_EQ(dma.carry(), 0.0);
}

TEST(HostDmaEngine, FlushCarriesSetupIntoNextFetch) {
    HostDmaEngine dma(8, DmaCosts{400.0, 16.0});
    double charged = dma.fetch(1, 1) + dma.fetch(2, 2);
    EXPECT_EQ(dma.pending(), 2u);
    dma.flush();  // partial batch: doorbell now, cost carried
    EXPECT_EQ(dma.pending(), 0u);
    EXPECT_DOUBLE_EQ(dma.carry(), 400.0);
    EXPECT_EQ(dma.stats().flushes, 1u);
    EXPECT_DOUBLE_EQ(dma.stats().cycles, 400.0 + 16.0 * 2);

    // The next fetch picks up the carried doorbell cost exactly once.
    charged += dma.fetch(3, 3);
    EXPECT_DOUBLE_EQ(dma.carry(), 0.0);
    EXPECT_DOUBLE_EQ(charged + dma.carry(),
                     dma.stats().cycles - 0.0);  // nothing lost or doubled
    EXPECT_DOUBLE_EQ(dma.stats().cycles, 400.0 + 16.0 * 3);
}

TEST(HostDmaEngine, FlushOfEmptyRingIsFree) {
    HostDmaEngine dma(4, DmaCosts{400.0, 16.0});
    dma.flush();
    EXPECT_EQ(dma.stats().batches, 0u);
    EXPECT_DOUBLE_EQ(dma.stats().cycles, 0.0);
    EXPECT_DOUBLE_EQ(dma.carry(), 0.0);
}

TEST(HostDmaEngine, RandomizedAccountingInvariant) {
    HostDmaEngine dma(8, DmaCosts{100.0, 7.0});
    util::Rng rng(99);
    double charged = 0.0;
    for (int i = 0; i < 5000; ++i) {
        if (rng.next_below(16) == 0) {
            dma.flush();
        } else {
            charged += dma.fetch(static_cast<std::uint32_t>(i),
                                 rng.next_below(1u << 20));
        }
        const DmaStats& s = dma.stats();
        ASSERT_DOUBLE_EQ(s.cycles, 100.0 * static_cast<double>(s.batches) +
                                       7.0 * static_cast<double>(s.fetches));
        // Charged + carry covers everything recorded so far: per-entry cost
        // is recorded at fetch time, setup at doorbell time.
        ASSERT_DOUBLE_EQ(charged + dma.carry(), s.cycles);
    }
}

TEST(TieredStore, LowerTierHitsChargeExtraCycles) {
    ir::CacheConfig cfg = tiered_config(1, 1, 4);
    cfg.tiers.promote_hits = 1000;  // keep entries where they are
    cfg.tiers.dma_batch = 2;
    TieredStore store(cfg, test_costs());
    for (std::uint64_t k = 0; k < 4; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(static_cast<int>(k)), 0.0));
    }
    // Layout now: SRAM {3}, DRAM {2}, host {1, 0}.
    EXPECT_DOUBLE_EQ(store.lookup({3}).extra_cycles, 0.0);
    EXPECT_DOUBLE_EQ(store.lookup({2}).extra_cycles, 30.0);  // l_tier_dram

    // Two host hits fill the 2-descriptor DMA batch: the first pays only
    // per_entry, the second additionally rings the doorbell.
    EXPECT_DOUBLE_EQ(store.lookup({1}).extra_cycles, 90.0 + 16.0);
    EXPECT_DOUBLE_EQ(store.lookup({0}).extra_cycles, 90.0 + 16.0 + 400.0);

    const TierStats s = store.stats();
    EXPECT_EQ(s.dma_fetches, 2u);
    EXPECT_EQ(s.dma_batches, 1u);
    // tier_cycles folds the per-access charges: one DRAM premium plus the
    // host premiums plus the completed DMA batch.
    EXPECT_DOUBLE_EQ(s.tier_cycles, 30.0 + 2 * 90.0 + 2 * 16.0 + 400.0);
    EXPECT_DOUBLE_EQ(s.tier_cycles,
                     30.0 * static_cast<double>(s.dram_hits) +
                         90.0 * static_cast<double>(s.host_hits) +
                         400.0 * static_cast<double>(s.dma_batches) +
                         16.0 * static_cast<double>(s.dma_fetches));
    EXPECT_EQ(s.lookups, s.sram_hits + s.dram_hits + s.host_hits + s.misses);
}

// ---------------------------------------------------------- conservation

TEST(TieredStore, RandomizedConservationAcrossTiers) {
    ir::CacheConfig cfg = tiered_config(16, 64, 256);
    cfg.tiers.promote_hits = 2;
    cfg.tiers.decay_every = 8;
    cfg.tiers.dma_batch = 8;
    TieredStore store(cfg, test_costs());
    util::Rng rng(7);
    double now = 0.0;
    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t k = rng.next_below(600);
        const KeyVec key{k};
        if (rng.next_below(10) < 6) {
            const TieredStore::Result r = store.lookup(key);
            if (r.entry == nullptr) {
                store.insert(key, payload(static_cast<int>(k)), now);
            }
        } else {
            now += 0.0001;
        }
        if (op % 64 == 63) store.flush_batch();
        if (op % 997 == 0) {
            const TierStats s = store.stats();
            ASSERT_EQ(s.lookups,
                      s.sram_hits + s.dram_hits + s.host_hits + s.misses)
                << "conservation violated at op " << op;
        }
    }
    const TierStats s = store.stats();
    EXPECT_EQ(s.lookups, s.sram_hits + s.dram_hits + s.host_hits + s.misses);
    // A 600-key working set over 16+64+256 capacity must exercise every
    // tier and both movement directions.
    EXPECT_GT(s.dram_hits, 0u);
    EXPECT_GT(s.host_hits, 0u);
    EXPECT_GT(s.promotions, 0u);
    EXPECT_GT(s.demotions, 0u);
    EXPECT_GT(s.drops, 0u);
    // Disjointness: total live entries never exceed the combined budget.
    EXPECT_LE(store.size(), 16u + 64u + 256u);
    EXPECT_EQ(store.size(),
              store.tier_size(0) + store.tier_size(1) + store.tier_size(2));
}

TEST(TieredStore, ClearEmptiesAllTiers) {
    TieredStore store(tiered_config(2, 2, 2), test_costs());
    for (std::uint64_t k = 0; k < 6; ++k) {
        ASSERT_TRUE(store.insert({k}, payload(static_cast<int>(k)), 0.0));
    }
    ASSERT_EQ(store.size(), 6u);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.tier_size(0), 0u);
    EXPECT_EQ(store.tier_size(1), 0u);
    EXPECT_EQ(store.tier_size(2), 0u);
    for (std::uint64_t k = 0; k < 6; ++k) {
        EXPECT_EQ(store.lookup({k}).tier, -1);
    }
    // Refill into the recycled storage works.
    ASSERT_TRUE(store.insert({42}, payload(42), 1.0));
    EXPECT_EQ(store.lookup({42}).tier, 0);
}

// ------------------------------------------------- emulator integration

ir::Program tiered_cache_program(std::size_t sram, std::size_t dram) {
    ProgramBuilder b("tiered");
    ir::Action set_x;
    set_x.name = "set_x";
    set_x.primitives.push_back(ir::Primitive::set_from_arg("x", 0));
    ir::Table a = TableSpec("A").key("src").action(set_x).build();

    ir::Table cache;
    cache.name = "cache_A";
    cache.role = ir::TableRole::Cache;
    cache.keys = {{"src", MatchKind::Exact, 32}};
    ir::Action hit;
    hit.name = "cache_hit";
    cache.actions.push_back(hit);
    cache.default_action = -1;
    cache.origin_tables = {"A"};
    cache.cache.capacity = sram;
    cache.cache.max_insert_per_sec = 1e9;
    cache.cache.tiers.dram_entries = dram;
    cache.cache.tiers.promote_hits = 2;

    NodeId c = b.add(cache);
    NodeId na = b.add(a);
    b.connect_action(c, 0, kNoNode);
    b.connect_miss(c, na);
    b.set_root(c);
    return b.build();
}

NicModel tiered_model() {
    NicModel m;
    m.name = "test";
    m.costs.l_mat = 10.0;
    m.costs.l_act = 2.0;
    m.costs.l_branch = 1.0;
    m.costs.l_counter = 0.0;
    m.costs.l_migration = 100.0;
    m.costs.cpu_slowdown = 3.0;
    m.costs.l_tier_dram = 30.0;
    m.costs.l_tier_host = 90.0;
    m.costs.dma_setup = 400.0;
    m.costs.dma_per_entry = 16.0;
    m.line_rate_gbps = 100.0;
    m.cycles_per_second = 1e9;
    m.cores = 1;
    return m;
}

Packet flow_packet(Emulator& emu, std::uint64_t src) {
    Packet p;
    p.set(emu.fields().intern("src"), src);
    return p;
}

TEST(EmulatorTiered, DramHitReplaysAndChargesPremium) {
    // SRAM capacity 1, DRAM 8: the second flow demotes the first.
    Emulator emu(tiered_model(), tiered_cache_program(1, 8), {});
    ir::TableEntry e1;
    e1.key = {ir::FieldMatch::exact(1)};
    e1.action_index = 0;
    e1.action_data = {11};
    ir::TableEntry e2;
    e2.key = {ir::FieldMatch::exact(2)};
    e2.action_index = 0;
    e2.action_data = {22};
    ASSERT_TRUE(emu.insert_entry("A", e1));
    ASSERT_TRUE(emu.insert_entry("A", e2));

    // Flow 1 misses, traverses A, fills the cache.
    Packet p1 = flow_packet(emu, 1);
    ProcessResult r1 = emu.process(p1);
    EXPECT_DOUBLE_EQ(r1.cycles, 10.0 + 12.0);  // probe + A
    EXPECT_EQ(emu.cache_size("cache_A"), 1u);

    // Flow 2 fills too, demoting flow 1 to the DRAM tier.
    Packet p2 = flow_packet(emu, 2);
    emu.process(p2);
    EXPECT_EQ(emu.cache_size("cache_A"), 2u);  // across both tiers

    // Flow 1 again: DRAM hit — replay, plus the l_tier_dram premium.
    Packet p3 = flow_packet(emu, 1);
    ProcessResult r3 = emu.process(p3);
    EXPECT_EQ(p3.get(emu.fields().find("x")), 11u);
    EXPECT_DOUBLE_EQ(r3.cycles, 10.0 + 2.0 + 30.0);  // probe + replay + tier

    auto raw = emu.read_counters();
    NodeId cache_node = emu.program().find_table("cache_A");
    EXPECT_EQ(raw.cache_hits[static_cast<std::size_t>(cache_node)], 1u);
    EXPECT_EQ(raw.cache_misses[static_cast<std::size_t>(cache_node)], 2u);
}

TEST(EmulatorTiered, TierMetricsAndBatchBoundaryPromotion) {
    Emulator emu(tiered_model(), tiered_cache_program(1, 8), {});
    ir::TableEntry e1;
    e1.key = {ir::FieldMatch::exact(1)};
    e1.action_index = 0;
    e1.action_data = {11};
    ir::TableEntry e2;
    e2.key = {ir::FieldMatch::exact(2)};
    e2.action_index = 0;
    e2.action_data = {22};
    ASSERT_TRUE(emu.insert_entry("A", e1));
    ASSERT_TRUE(emu.insert_entry("A", e2));

    Packet p1 = flow_packet(emu, 1);
    emu.process(p1);  // fill flow 1
    Packet p2 = flow_packet(emu, 2);
    emu.process(p2);  // fill flow 2, demote flow 1

    // Two DRAM hits cross promote_hits=2; process() boundaries flush, so
    // the second hit's boundary promotes flow 1 back to SRAM.
    Packet p3 = flow_packet(emu, 1);
    emu.process(p3);
    Packet p4 = flow_packet(emu, 1);
    emu.process(p4);
    Packet p5 = flow_packet(emu, 1);
    ProcessResult r5 = emu.process(p5);
    EXPECT_DOUBLE_EQ(r5.cycles, 10.0 + 2.0);  // SRAM hit again, no premium

    if (!telemetry::kEnabled) GTEST_SKIP() << "telemetry compiled out";
    telemetry::MetricsSnapshot snap = emu.telemetry_snapshot();
    EXPECT_EQ(snap.counter("tier.lookups"), 5u);
    EXPECT_EQ(snap.counter("tier.misses"), 2u);
    EXPECT_EQ(snap.counter("tier.dram_hits"), 2u);
    EXPECT_EQ(snap.counter("tier.sram_hits"), 1u);
    EXPECT_EQ(snap.counter("tier.promotions"), 1u);
    EXPECT_GE(snap.counter("tier.demotions"), 2u);
    EXPECT_DOUBLE_EQ(snap.gauge("tier.cycles"), 2 * 30.0);
}

TEST(EmulatorTiered, UntieredProgramReportsNoTierTraffic) {
    // tiers disabled: the tier.* metrics stay silent even while the flat
    // cache takes traffic (has_tiered_ gates the fold entirely).
    Emulator emu(tiered_model(), tiered_cache_program(4, 0), {});
    ir::TableEntry e1;
    e1.key = {ir::FieldMatch::exact(1)};
    e1.action_index = 0;
    e1.action_data = {11};
    ASSERT_TRUE(emu.insert_entry("A", e1));
    Packet p1 = flow_packet(emu, 1);
    emu.process(p1);
    Packet p2 = flow_packet(emu, 1);
    emu.process(p2);
    telemetry::MetricsSnapshot snap = emu.telemetry_snapshot();
    EXPECT_EQ(snap.counter("tier.lookups"), 0u);
    EXPECT_EQ(snap.counter("tier.sram_hits"), 0u);
}

}  // namespace
}  // namespace pipeleon::sim
