// Tests for ir: types, tables, program graph invariants, and the builder.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/dot.h"
#include "ir/program.h"

namespace pipeleon::ir {
namespace {

TEST(Types, MatchKindStringsRoundTrip) {
    for (MatchKind k : {MatchKind::Exact, MatchKind::Lpm, MatchKind::Ternary,
                        MatchKind::Range}) {
        EXPECT_EQ(match_kind_from_string(to_string(k)), k);
    }
    EXPECT_THROW(match_kind_from_string("bogus"), std::invalid_argument);
}

TEST(Types, PrimitiveKindStringsRoundTrip) {
    for (PrimitiveKind k :
         {PrimitiveKind::SetConst, PrimitiveKind::CopyField,
          PrimitiveKind::AddConst, PrimitiveKind::SubConst, PrimitiveKind::Drop,
          PrimitiveKind::Forward, PrimitiveKind::NoOp}) {
        EXPECT_EQ(primitive_kind_from_string(to_string(k)), k);
    }
}

TEST(Types, CmpOpEvaluation) {
    EXPECT_TRUE((BranchCond{"f", CmpOp::Eq, 5}).evaluate(5));
    EXPECT_FALSE((BranchCond{"f", CmpOp::Eq, 5}).evaluate(6));
    EXPECT_TRUE((BranchCond{"f", CmpOp::Ne, 5}).evaluate(6));
    EXPECT_TRUE((BranchCond{"f", CmpOp::Lt, 5}).evaluate(4));
    EXPECT_TRUE((BranchCond{"f", CmpOp::Le, 5}).evaluate(5));
    EXPECT_TRUE((BranchCond{"f", CmpOp::Gt, 5}).evaluate(6));
    EXPECT_TRUE((BranchCond{"f", CmpOp::Ge, 5}).evaluate(5));
    EXPECT_FALSE((BranchCond{"f", CmpOp::Ge, 5}).evaluate(4));
}

TEST(Types, ActionDropAndFieldSets) {
    Action a;
    a.name = "act";
    a.primitives.push_back(Primitive::set_const("x", 1));
    a.primitives.push_back(Primitive::copy_field("y", "z"));
    a.primitives.push_back(Primitive::add_const("w", 2));
    EXPECT_FALSE(a.drops());
    auto writes = a.written_fields();
    EXPECT_EQ(writes, (std::vector<std::string>{"x", "y", "w"}));
    auto reads = a.read_fields();
    // CopyField reads z; AddConst reads w (read-modify-write).
    EXPECT_EQ(reads, (std::vector<std::string>{"z", "w"}));

    a.primitives.push_back(Primitive::drop());
    EXPECT_TRUE(a.drops());
}

TEST(Table, EffectiveMatchKind) {
    Table t;
    t.keys = {{"a", MatchKind::Exact, 32}};
    EXPECT_EQ(t.effective_match_kind(), MatchKind::Exact);
    t.keys.push_back({"b", MatchKind::Lpm, 32});
    EXPECT_EQ(t.effective_match_kind(), MatchKind::Lpm);
    t.keys.push_back({"c", MatchKind::Ternary, 32});
    EXPECT_EQ(t.effective_match_kind(), MatchKind::Ternary);
    EXPECT_TRUE(t.has_match_kind(MatchKind::Lpm));
    EXPECT_FALSE(t.has_match_kind(MatchKind::Range));
    EXPECT_EQ(t.key_width_bits(), 96);
}

TEST(Table, ActionHelpers) {
    Table t = TableSpec("t").key("f").noop_action("a").drop_action("deny").build();
    EXPECT_EQ(t.action_index("a"), 0);
    EXPECT_EQ(t.action_index("deny"), 1);
    EXPECT_EQ(t.action_index("nope"), -1);
    EXPECT_TRUE(t.can_drop());
}

TEST(Program, LinearChainStructure) {
    Program p = chain_of_exact_tables("chain", 4);
    EXPECT_EQ(p.node_count(), 4u);
    EXPECT_EQ(p.table_count(), 4u);
    EXPECT_NO_THROW(p.validate());
    auto topo = p.topo_order();
    EXPECT_EQ(topo.size(), 4u);
    EXPECT_EQ(topo.front(), p.root());
    // Every interior node has exactly one successor.
    for (std::size_t i = 0; i + 1 < topo.size(); ++i) {
        EXPECT_EQ(p.node(topo[i]).successors().size(), 1u);
    }
    EXPECT_TRUE(p.node(topo.back()).successors().empty());
}

TEST(Program, FindTable) {
    Program p = chain_of_exact_tables("chain", 3);
    EXPECT_NE(p.find_table("t1"), kNoNode);
    EXPECT_EQ(p.find_table("nope"), kNoNode);
}

TEST(Program, ValidateCatchesDuplicateNames) {
    ProgramBuilder b("dup");
    b.append(TableSpec("t").key("a").noop_action("x").build());
    b.append(TableSpec("t").key("b").noop_action("x").build());
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Program, ValidateCatchesCycles) {
    ProgramBuilder b("cycle");
    NodeId t0 = b.add(TableSpec("t0").key("a").noop_action("x").build());
    NodeId t1 = b.add(TableSpec("t1").key("b").noop_action("x").build());
    b.connect(t0, t1);
    b.connect(t1, t0);
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Program, ValidateCatchesMissingKeysOrActions) {
    {
        ProgramBuilder b("nokeys");
        b.add(TableSpec("t").noop_action("x").build());
        EXPECT_THROW(b.build(), std::runtime_error);
    }
    {
        Program p;
        Table t;
        t.name = "t";
        t.keys = {{"f", MatchKind::Exact, 32}};
        p.add_table(t);  // no actions
        EXPECT_THROW(p.validate(), std::runtime_error);
    }
}

TEST(Program, SwitchCaseDetection) {
    ProgramBuilder b("sw");
    NodeId s = b.add(
        TableSpec("s").key("f").noop_action("a0").noop_action("a1").build());
    NodeId t0 = b.add(TableSpec("t0").key("g").noop_action("x").build());
    NodeId t1 = b.add(TableSpec("t1").key("h").noop_action("x").build());
    b.connect_action(s, 0, t0);
    b.connect_action(s, 1, t1);
    b.connect_miss(s, t0);
    b.set_root(s);
    Program p = b.build();
    EXPECT_TRUE(p.node(s).is_switch_case());
    EXPECT_FALSE(p.node(t0).is_switch_case());
    EXPECT_EQ(p.node(s).successors().size(), 2u);
}

TEST(Program, DefaultActionMissRouting) {
    ProgramBuilder b("m");
    NodeId t0 = b.add(TableSpec("t0")
                          .key("f")
                          .noop_action("a0")
                          .noop_action("a1")
                          .default_to("a1")
                          .build());
    NodeId t1 = b.add(TableSpec("t1").key("g").noop_action("x").build());
    b.connect_action(t0, 0, t1);
    b.connect_action(t0, 1, kNoNode);
    b.set_root(t0);
    Program p = b.build();
    // Miss follows the default action's edge.
    EXPECT_EQ(p.node(t0).next_for_miss(), kNoNode);
    EXPECT_EQ(p.node(t0).next_for_action(0), t1);
}

TEST(Program, CompactRemovesUnreachable) {
    ProgramBuilder b("c");
    NodeId t0 = b.add(TableSpec("t0").key("a").noop_action("x").build());
    NodeId t1 = b.add(TableSpec("t1").key("b").noop_action("x").build());
    b.add(TableSpec("orphan").key("c").noop_action("x").build());
    b.connect(t0, t1);
    b.set_root(t0);
    Program p = b.build();  // orphan is unreachable but valid
    EXPECT_EQ(p.node_count(), 3u);
    auto remap = p.compact();
    EXPECT_EQ(p.node_count(), 2u);
    EXPECT_EQ(remap[2], kNoNode);
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.find_table("orphan"), kNoNode);
    EXPECT_NE(p.find_table("t1"), kNoNode);
}

TEST(Program, PredecessorsOfDiamond) {
    ProgramBuilder b("d");
    NodeId br = b.add_branch({"flag", CmpOp::Eq, 1});
    NodeId a = b.add(TableSpec("a").key("x").noop_action("n").build());
    NodeId c = b.add(TableSpec("c").key("y").noop_action("n").build());
    NodeId j = b.add(TableSpec("j").key("z").noop_action("n").build());
    b.connect_branch(br, a, c);
    b.connect(a, j);
    b.connect(c, j);
    b.set_root(br);
    Program p = b.build();
    auto preds = p.predecessors();
    EXPECT_EQ(preds[static_cast<std::size_t>(j)].size(), 2u);
    EXPECT_EQ(preds[static_cast<std::size_t>(br)].size(), 0u);
}

TEST(Builder, AppendChainsAutomatically) {
    ProgramBuilder b("auto");
    b.append(TableSpec("t0").key("a").noop_action("x").build());
    b.append(TableSpec("t1").key("b").noop_action("x").build());
    Program p = b.build();
    EXPECT_EQ(p.node(p.root()).successors(),
              std::vector<NodeId>{p.find_table("t1")});
}

TEST(Builder, DefaultToUnknownActionThrows) {
    EXPECT_THROW(TableSpec("t").key("f").noop_action("a").default_to("zzz"),
                 std::invalid_argument);
}

TEST(Dot, RendersGraph) {
    Program p = chain_of_exact_tables("dotprog", 3);
    std::string dot = to_dot(p);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("t0"), std::string::npos);
    EXPECT_NE(dot.find("sink"), std::string::npos);
}

TEST(Dot, RendersBranchAndProbabilities) {
    ProgramBuilder b("d2");
    NodeId br = b.add_branch({"flag", CmpOp::Eq, 1});
    NodeId a = b.add(TableSpec("a").key("x").noop_action("n").build());
    b.connect_branch(br, a, kNoNode);
    b.set_root(br);
    Program p = b.build();
    DotOptions opts;
    opts.edge_probability[{br, a}] = 0.75;
    std::string dot = to_dot(p, opts);
    EXPECT_NE(dot.find("p=0.75"), std::string::npos);
    EXPECT_NE(dot.find("diamond"), std::string::npos);
}

class ChainLengths : public testing::TestWithParam<int> {};

TEST_P(ChainLengths, BuilderProducesValidPrograms) {
    Program p = chain_of_exact_tables("c", GetParam(), 2, 3);
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.table_count(), static_cast<std::size_t>(GetParam()));
    for (NodeId id : p.reachable()) {
        const Node& n = p.node(id);
        EXPECT_EQ(n.table.actions.size(), 2u);
        for (const Action& a : n.table.actions) {
            EXPECT_EQ(a.primitives.size(), 3u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainLengths, testing::Values(1, 2, 5, 10, 40));

}  // namespace
}  // namespace pipeleon::ir
