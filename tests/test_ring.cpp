// tests/test_ring.cpp — the descriptor-ring I/O path (ISSUE 6): SPSC ring
// correctness (wraparound, drop-on-full accounting, two-thread stress for
// TSan), RSS dispatch agreement with batch steering, poll semantics
// (completion conservation, cycle budgets leaving backlog, epoch refresh,
// worker-count-mismatch fallback), offered-load pacing, and the
// deterministic-mode bit-identity guarantee against the pre-ring scalar
// path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "apps/scenarios.h"
#include "ir/builder.h"
#include "sim/descriptor_ring.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "sim/rss.h"
#include "trafficgen/workload.h"

namespace pipeleon::sim {
namespace {

using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

// ------------------------------------------------------------ ring basics

TEST(DescriptorRing, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(DescriptorRing<int>(1).capacity(), 2u);
    EXPECT_EQ(DescriptorRing<int>(2).capacity(), 2u);
    EXPECT_EQ(DescriptorRing<int>(3).capacity(), 4u);
    EXPECT_EQ(DescriptorRing<int>(1000).capacity(), 1024u);
    EXPECT_EQ(DescriptorRing<int>(1024).capacity(), 1024u);
}

TEST(DescriptorRing, FifoOrderAcrossWraparound) {
    DescriptorRing<std::uint64_t> ring(8);  // wraps many times below
    std::uint64_t next_push = 0, next_pop = 0;
    for (int round = 0; round < 300; ++round) {
        while (ring.try_push(next_push)) ++next_push;
        ring.consume([&](std::uint64_t& v) {
            EXPECT_EQ(v, next_pop);
            ++next_pop;
            return true;
        });
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_TRUE(ring.empty());
}

TEST(DescriptorRing, DropOnFullNeverBlocksAndCounts) {
    DescriptorRing<int> ring(4);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (ring.try_push(i)) ++accepted;
    }
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(ring.dropped(), 6u);
    EXPECT_EQ(ring.size(), 4u);
    // The invariant: offered == enqueued + dropped; enqueued == dequeued +
    // in-flight.
    EXPECT_EQ(ring.enqueued() + ring.dropped(), 10u);
    std::size_t got = ring.consume([](int&) { return true; });
    EXPECT_EQ(got, 4u);
    EXPECT_EQ(ring.enqueued(), ring.dequeued());
    // Space freed: pushes succeed again.
    EXPECT_TRUE(ring.try_push(42));
}

TEST(DescriptorRing, ConsumeHonorsMaxAndEarlyStop) {
    DescriptorRing<int> ring(16);
    for (int i = 0; i < 10; ++i) ring.try_push(i);
    EXPECT_EQ(ring.consume([](int&) { return true; }, 3), 3u);
    EXPECT_EQ(ring.size(), 7u);
    // fn returning false stops after the current (consumed) item.
    int seen = 0;
    EXPECT_EQ(ring.consume([&](int&) { return ++seen < 2; }), 2u);
    EXPECT_EQ(ring.size(), 5u);
}

/// Two-thread SPSC stress, the TSan target: one producer pushing a rising
/// sequence (spinning on full — this test checks ordering, not the drop
/// policy), one consumer asserting it reads exactly 0,1,2,... with
/// acquire/release visibility on every slot.
TEST(DescriptorRing, SpscStressOrderedUnderConcurrency) {
    constexpr std::uint64_t kItems = 200000;
    DescriptorRing<std::uint64_t> ring(64);
    std::atomic<bool> fail{false};

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kItems; ++i) {
            while (!ring.try_push(i)) {
            }
        }
    });
    std::uint64_t expect = 0;
    while (expect < kItems) {
        ring.consume([&](std::uint64_t& v) {
            if (v != expect) fail.store(true);
            ++expect;
            return true;
        });
    }
    producer.join();
    EXPECT_FALSE(fail.load());
    EXPECT_EQ(ring.dequeued(), kItems);
    EXPECT_TRUE(ring.empty());
    // The producer's failed pushes were retried, so the drop counter is
    // whatever the spin burned; enqueued must be exactly kItems.
    EXPECT_EQ(ring.enqueued(), kItems);
}

// ------------------------------------------------------- fixtures / helpers

NicModel nic() {
    NicModel m = bluefield2_model();
    m.cores = 8;
    return m;
}

Program chain_program() {
    return ir::chain_of_exact_tables("ring_p", 4, 2, 1);
}

trafficgen::FlowSet make_flows(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 4; ++i) {
        char name[8];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    return trafficgen::FlowSet::generate(tuple, static_cast<std::size_t>(n),
                                         rng);
}

// --------------------------------------------------------------- dispatch

TEST(RssDispatch, SameFlowSameQueueMatchesBatchSteering) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    emu.set_worker_count(4);
    ASSERT_EQ(emu.worker_count(), 4);

    RssDispatcher io = emu.make_rings();
    ASSERT_EQ(io.queue_count(), 4u);

    trafficgen::FlowSet flows = make_flows(64, 3);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 9);
    PacketBatch batch = wl.next_batch(emu.fields(), 256);
    for (const Packet& pkt : batch) {
        const int q = io.dispatch(pkt);
        ASSERT_GE(q, 0);
        // Ring dispatch and the batch path's steering agree, packet for
        // packet — the same-flow -> same-worker-shard invariant.
        EXPECT_EQ(q, emu.steer_worker(pkt));
    }
    EXPECT_EQ(io.stats().enqueued, 256u);
}

TEST(RssDispatch, OverflowDropsAreCountedAndConserved) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});  // single worker -> one queue
    RingConfig cfg;
    cfg.rx_capacity = 16;
    RssDispatcher io = emu.make_rings(cfg);
    ASSERT_EQ(io.queue_count(), 1u);

    trafficgen::FlowSet flows = make_flows(64, 4);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 10);
    PacketBatch batch = wl.next_batch(emu.fields(), 100);
    const std::size_t accepted = io.dispatch_batch(batch);
    EXPECT_EQ(accepted, 16u);
    const RingStats s = io.stats();
    EXPECT_EQ(s.enqueued, 16u);
    EXPECT_EQ(s.dropped, 84u);
    EXPECT_EQ(s.depth, 16u);
    EXPECT_EQ(s.offered(), 100u);
    EXPECT_EQ(io.next_seq(), 100u);  // drops still consume arrival numbers
}

// ------------------------------------------------------------------- poll

TEST(RingPoll, CompletesEverythingAndConserves) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    emu.set_worker_count(4);
    RssDispatcher io = emu.make_rings();

    trafficgen::FlowSet flows = make_flows(64, 5);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 11);
    PacketBatch batch = wl.next_batch(emu.fields(), 512);
    const std::size_t accepted = io.dispatch_batch(batch, emu.now_seconds());
    ASSERT_EQ(accepted, 512u);

    BatchResult out = emu.poll(io);
    EXPECT_EQ(out.workers_used, 4);
    EXPECT_EQ(out.ring_completed, 512u);
    EXPECT_EQ(out.results.size(), 512u);
    EXPECT_EQ(out.ring_dropped, 0u);
    EXPECT_EQ(out.ring_backlog, 0u);
    EXPECT_EQ(emu.packets_processed(), 512u);
    for (const ProcessResult& r : out.results) {
        EXPECT_GT(r.cycles, 0.0);
        EXPECT_GE(r.queue_cycles, 0.0);
    }
    // Nothing pending: a second poll is a no-op batch.
    BatchResult again = emu.poll(io);
    EXPECT_EQ(again.ring_completed, 0u);
}

TEST(RingPoll, CycleBudgetLeavesBacklogThenDrains) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    RssDispatcher io = emu.make_rings();

    trafficgen::FlowSet flows = make_flows(64, 6);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 12);
    PacketBatch batch = wl.next_batch(emu.fields(), 200);
    ASSERT_EQ(io.dispatch_batch(batch), 200u);

    // A tiny budget services only a handful of descriptors; the rest stay
    // queued for the next poll instead of being dropped or spun on.
    BatchResult first = emu.poll(io, /*cycle_budget=*/500.0);
    EXPECT_GT(first.ring_completed, 0u);
    EXPECT_LT(first.ring_completed, 200u);
    EXPECT_GT(first.ring_backlog, 0u);
    EXPECT_EQ(first.ring_completed + first.ring_backlog, 200u);

    std::uint64_t total = first.ring_completed;
    for (int i = 0; i < 1000 && total < 200; ++i) {
        total += emu.poll(io, 500.0).ring_completed;
    }
    EXPECT_EQ(total, 200u);
    EXPECT_TRUE(io.queue(0).rx().empty());
}

TEST(RingPoll, QueueCyclesReflectVirtualWait) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    RssDispatcher io = emu.make_rings();

    trafficgen::FlowSet flows = make_flows(8, 7);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 13);
    PacketBatch batch = wl.next_batch(emu.fields(), 4);
    io.dispatch_batch(batch, emu.now_seconds());
    emu.advance_time(1e-6);  // packets waited 1 microsecond of virtual time
    BatchResult out = emu.poll(io);
    ASSERT_EQ(out.results.size(), 4u);
    const double want = 1e-6 * emu.model().cycles_per_second;
    for (const ProcessResult& r : out.results) {
        EXPECT_DOUBLE_EQ(r.queue_cycles, want);
    }
}

TEST(RingPoll, PollIsControlDrainBoundary) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    RssDispatcher io = emu.make_rings();

    // Queue a worker-count change; it must apply at the poll boundary even
    // with nothing in the rings.
    emu.set_worker_count(2);
    BatchResult out = emu.poll(io);
    EXPECT_EQ(emu.worker_count(), 2);
    // (The op may already have drained synchronously at submit; either way
    // the boundary leaves no backlog.)
    EXPECT_EQ(emu.control_pending(), 0u);
    (void)out;
}

TEST(RingPoll, WorkerCountMismatchFallsBackInOrder) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    emu.set_worker_count(2);
    RssDispatcher io = emu.make_rings();  // built for 2 queues
    ASSERT_EQ(io.queue_count(), 2u);

    emu.set_worker_count(4);  // stale dispatcher: 2 queues vs 4 workers

    trafficgen::FlowSet flows = make_flows(64, 8);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 14);
    PacketBatch batch = wl.next_batch(emu.fields(), 128);
    const std::size_t accepted = io.dispatch_batch(batch);
    BatchResult out = emu.poll(io);
    // Still correct — every accepted packet completes — just serviced in
    // order on the calling thread.
    EXPECT_EQ(out.ring_completed, accepted);
    EXPECT_EQ(out.workers_used, 1);
}

TEST(RingPoll, EpochSwapRefreshesSteeringFields) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    RssDispatcher io = emu.make_rings();
    const std::uint64_t before = io.steer_epoch();

    // Reconfigure to a different program (new steering tuple), then poll:
    // the drain applies the swap and the poll re-syncs the dispatcher.
    ProgramBuilder b("ring_p2");
    b.append(TableSpec("only")
                 .key("zz")
                 .noop_action("fwd", 1)
                 .default_to("fwd")
                 .build());
    emu.reconfigure(b.build());
    emu.poll(io);
    EXPECT_GT(io.steer_epoch(), before);
    EXPECT_EQ(io.steer_epoch(), emu.epoch());
}

// ---------------------------------------------------------- offered load

TEST(OfferedLoad, PacingAccruesFractionalCredit) {
    trafficgen::FlowSet flows = make_flows(8, 9);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 15);
    trafficgen::OfferedLoad src(wl, 1000.0);  // 1000 pps
    EXPECT_EQ(src.accrue(0.0105), 10u);       // 10.5 due -> 10, carry 0.5
    EXPECT_EQ(src.accrue(0.0105), 11u);       // carry makes it 21 total
    EXPECT_EQ(src.accrue(0.0), 0u);
    src.set_rate(0.0);
    EXPECT_EQ(src.accrue(10.0), 0u);
}

TEST(OfferedLoad, OfferDispatchesAndAccountsDrops) {
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    RingConfig cfg;
    cfg.rx_capacity = 32;
    RssDispatcher io = emu.make_rings(cfg);

    trafficgen::FlowSet flows = make_flows(64, 10);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 16);
    trafficgen::OfferedLoad src(wl, 1e6);

    const std::size_t accepted = src.offer(io, emu.fields(), 100, 0.0);
    EXPECT_EQ(accepted, 32u);  // ring capacity bounds the burst
    EXPECT_EQ(src.offered(), 100u);
    EXPECT_EQ(src.accepted(), 32u);
    EXPECT_EQ(io.stats().dropped, 68u);

    BatchResult out = emu.poll(io);
    EXPECT_EQ(out.ring_completed, 32u);
    // Offered == completed + overflow drops + backlog (zero here).
    EXPECT_EQ(src.offered(),
              out.ring_completed + io.stats().dropped + io.stats().depth);
}

// ---------------------------------------------------------- determinism

/// The acceptance-criterion guarantee: in deterministic mode the ring path
/// (single in-order queue) is bit-identical to the pre-ring scalar loop —
/// same packets, same counters, same float accumulation order, so
/// latency_stats() compares equal on every bit.
TEST(RingDeterminism, BitIdenticalToScalarPath) {
    Program p = chain_program();
    profile::InstrumentationConfig inst;
    inst.enabled = true;
    inst.sampling_rate = 1.0;

    Emulator ring_emu(nic(), p, inst);
    Emulator ref_emu(nic(), p, inst);
    for (Emulator* e : {&ring_emu, &ref_emu}) {
        e->set_worker_count(4);
        e->set_deterministic(true);
    }

    trafficgen::FlowSet flows = make_flows(64, 11);
    apps::install_flow_entries(ring_emu, flows);
    apps::install_flow_entries(ref_emu, flows);

    // Identical packet sequences from identically seeded workloads.
    trafficgen::Workload ring_wl(flows, trafficgen::Locality::Zipf, 1.1, 17);
    trafficgen::Workload ref_wl(flows, trafficgen::Locality::Zipf, 1.1, 17);

    RssDispatcher io = ring_emu.make_rings();
    ASSERT_EQ(io.queue_count(), 1u);  // deterministic mode: in-order config

    BatchResult out;
    for (int round = 0; round < 8; ++round) {
        PacketBatch batch = ring_wl.next_batch(ring_emu.fields(), 100);
        ASSERT_EQ(io.dispatch_batch(batch), 100u);
        ring_emu.poll(io, out);
        ASSERT_EQ(out.ring_completed, 100u);

        PacketBatch ref_batch = ref_wl.next_batch(ref_emu.fields(), 100);
        for (Packet& pkt : ref_batch) ref_emu.process(pkt);
    }

    const util::RunningStats ring_lat = ring_emu.latency_stats();
    const util::RunningStats ref_lat = ref_emu.latency_stats();
    EXPECT_EQ(ring_lat.count(), ref_lat.count());
    // Bit-equality, not near-equality: the accumulation order must match.
    EXPECT_EQ(ring_lat.sum(), ref_lat.sum());
    EXPECT_EQ(ring_lat.mean(), ref_lat.mean());
    EXPECT_EQ(ring_lat.min(), ref_lat.min());
    EXPECT_EQ(ring_lat.max(), ref_lat.max());

    // Sampled P4 counters agree exactly too.
    const profile::RawCounters a = ring_emu.read_counters();
    const profile::RawCounters b = ref_emu.read_counters();
    ASSERT_EQ(a.action_hits.size(), b.action_hits.size());
    for (std::size_t i = 0; i < a.action_hits.size(); ++i) {
        EXPECT_EQ(a.action_hits[i], b.action_hits[i]) << "node " << i;
        EXPECT_EQ(a.misses[i], b.misses[i]) << "node " << i;
    }
    EXPECT_EQ(ring_emu.packets_processed(), ref_emu.packets_processed());
    EXPECT_EQ(ring_emu.packets_dropped(), ref_emu.packets_dropped());
}

/// Same check through telemetry: ring.* metrics account the poll traffic.
TEST(RingTelemetry, RingMetricsTrackPollAccounting) {
    if (!telemetry::kEnabled) GTEST_SKIP() << "telemetry compiled out";
    Program p = chain_program();
    Emulator emu(nic(), p, {});
    RingConfig cfg;
    cfg.rx_capacity = 64;
    RssDispatcher io = emu.make_rings(cfg);

    trafficgen::FlowSet flows = make_flows(64, 12);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 18);
    PacketBatch batch = wl.next_batch(emu.fields(), 100);
    io.dispatch_batch(batch);  // 64 in, 36 overflow
    emu.poll(io);

    const telemetry::MetricsSnapshot snap = emu.telemetry_snapshot();
    EXPECT_EQ(snap.counter("ring.enqueued"), 64u);
    EXPECT_EQ(snap.counter("ring.dequeued"), 64u);
    EXPECT_EQ(snap.counter("ring.dropped"), 36u);
}

// ------------------------------------------------------------ hash quality

/// Chi-square uniformity of rss_hash queue assignment (ISSUE 8): across 1,
/// 2, 4, and 8 queues, random 4-field tuples must land near-uniformly. The
/// thresholds are the p = 0.001 chi-square critical values for df = n - 1 —
/// a correct hash fails this test about once per thousand seeds, and the
/// seed here is fixed, so a failure means the avalanche actually regressed
/// (e.g. someone dropped the SplitMix64 finisher and a modulo started
/// reading unmixed low bits).
TEST(RssHash, QueueAssignmentIsChiSquareUniform) {
    FieldTable fields;
    std::vector<FieldId> tuple;
    for (const char* n : {"f0", "f1", "f2", "f3"}) {
        tuple.push_back(fields.intern(n));
    }

    constexpr std::size_t kPackets = 8192;
    util::Rng rng(0xC41551F1EDULL);
    std::vector<std::uint64_t> hashes;
    hashes.reserve(kPackets);
    Packet pkt(tuple.size());
    for (std::size_t i = 0; i < kPackets; ++i) {
        for (FieldId id : tuple) pkt.set(id, rng.next_u64() >> 32);
        hashes.push_back(rss_hash(pkt, tuple.data(), tuple.size()));
    }

    // df -> p=0.001 critical value (chi-square upper tail).
    const struct { std::size_t queues; double critical; } cases[] = {
        {2, 10.828}, {4, 16.266}, {8, 24.322}};

    // One queue: everything trivially lands on queue 0.
    for (std::uint64_t h : hashes) ASSERT_EQ(h % 1, 0u);

    for (const auto& c : cases) {
        std::vector<std::size_t> bins(c.queues, 0);
        for (std::uint64_t h : hashes) ++bins[h % c.queues];
        const double expected =
            static_cast<double>(kPackets) / static_cast<double>(c.queues);
        double chi2 = 0.0;
        std::size_t total = 0;
        for (std::size_t obs : bins) {
            const double d = static_cast<double>(obs) - expected;
            chi2 += d * d / expected;
            total += obs;
        }
        EXPECT_EQ(total, kPackets);
        EXPECT_LT(chi2, c.critical)
            << c.queues << " queues: chi2 " << chi2 << " exceeds the "
            << "p=0.001 critical value " << c.critical;
    }
}

}  // namespace
}  // namespace pipeleon::sim
