// Tests for opt/cache: legality and cache-table construction.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/cache.h"

namespace pipeleon::opt {
namespace {

using ir::Action;
using ir::MatchKind;
using ir::Primitive;
using ir::Table;
using ir::TableSpec;

TEST(Cache, CacheableRequiresOriginals) {
    Table a = TableSpec("a").key("x").noop_action("n").build();
    Table b = TableSpec("b").key("y", MatchKind::Ternary).noop_action("n").build();
    EXPECT_TRUE(cacheable({&a}));
    EXPECT_TRUE(cacheable({&a, &b}));
    EXPECT_FALSE(cacheable({}));

    Table c = TableSpec("c").key("z").noop_action("n").build();
    c.role = ir::TableRole::Cache;
    EXPECT_FALSE(cacheable({&a, &c}));
}

TEST(Cache, MatchDependencyBlocksCaching) {
    // a writes "y"; b matches on "y": the cache cannot read b's key up
    // front.
    Action w;
    w.name = "w";
    w.primitives.push_back(Primitive::set_const("y", 1));
    Table a = TableSpec("a").key("x").action(w).build();
    Table b = TableSpec("b").key("y").noop_action("n").build();
    EXPECT_FALSE(cacheable({&a, &b}));
    // The reverse order is fine (b matches before a writes).
    EXPECT_TRUE(cacheable({&b, &a}));
}

TEST(Cache, ActionDependencyDoesNotBlockCaching) {
    // a writes "m"; b's action reads "m" — replay reproduces the sequence.
    Action w;
    w.name = "w";
    w.primitives.push_back(Primitive::set_const("m", 1));
    Table a = TableSpec("a").key("x").action(w).build();
    Action r;
    r.name = "r";
    r.primitives.push_back(Primitive::copy_field("out", "m"));
    Table b = TableSpec("b").key("y").action(r).build();
    EXPECT_TRUE(cacheable({&a, &b}));
}

TEST(Cache, BuildUnionsKeysAsExact) {
    Table a = TableSpec("a").key("src", MatchKind::Lpm).noop_action("n").build();
    Table b = TableSpec("b")
                  .key("dst", MatchKind::Ternary)
                  .key("port", MatchKind::Exact, 16)
                  .noop_action("n")
                  .build();
    ir::CacheConfig cfg;
    cfg.capacity = 99;
    Table cache = build_cache_table({&a, &b}, cfg);
    EXPECT_EQ(cache.role, ir::TableRole::Cache);
    ASSERT_EQ(cache.keys.size(), 3u);
    for (const ir::MatchKey& k : cache.keys) {
        EXPECT_EQ(k.kind, MatchKind::Exact);  // flow caches are exact
    }
    EXPECT_EQ(cache.keys[2].width_bits, 16);
    EXPECT_EQ(cache.size, 99u);
    EXPECT_EQ(cache.cache.capacity, 99u);
    EXPECT_EQ(cache.origin_tables, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(cache.actions.size(), 1u);
    EXPECT_EQ(cache.default_action, -1);  // miss falls through
    EXPECT_EQ(cache.name, "cache_a_b");
}

TEST(Cache, SharedKeyFieldsDeduplicated) {
    Table a = TableSpec("a").key("dst").noop_action("n").build();
    Table b = TableSpec("b").key("dst").key("port").noop_action("n").build();
    Table cache = build_cache_table({&a, &b}, {});
    EXPECT_EQ(cache.keys.size(), 2u);  // dst deduplicated
}

TEST(Cache, KeySpace) {
    EXPECT_DOUBLE_EQ(cache_key_space({100, 200}), 20000.0);
    EXPECT_DOUBLE_EQ(cache_key_space({}), 1.0);
    EXPECT_DOUBLE_EQ(cache_key_space({0.0}), 1.0);  // floors at 1
}

}  // namespace
}  // namespace pipeleon::opt
