// tests/test_topology.cpp — util::Topology sysfs parsing against committed
// fixture trees (tests/fixtures/topology/*, each a /sys-shaped directory),
// the cpulist grammar, the locality-first worker->CPU assignment policy,
// the non-Linux/CI fallback path, and the pinned WorkerPool built on top.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/worker_pool.h"
#include "util/topology.h"

using pipeleon::util::parse_cpu_list;
using pipeleon::util::Topology;

namespace {

std::string fixture(const std::string& name) {
    return std::string(PIPELEON_SOURCE_DIR) + "/tests/fixtures/topology/" + name;
}

}  // namespace

TEST(CpuList, ParsesRangesSinglesAndJunk) {
    EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(parse_cpu_list("0,2-3\n"), (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{5}));
    EXPECT_EQ(parse_cpu_list("1,1,0-1"), (std::vector<int>{0, 1}));  // dedup
    EXPECT_TRUE(parse_cpu_list("").empty());
    EXPECT_TRUE(parse_cpu_list("none").empty());
}

TEST(Topology, DualNodeFixtureParsesNodesAndPackages) {
    Topology t = Topology::from_root(fixture("dual_node"));
    ASSERT_TRUE(t.from_sysfs());
    EXPECT_EQ(t.cpu_count(), 8);
    EXPECT_EQ(t.node_count(), 2);
    EXPECT_EQ(t.node_of(0), 0);
    EXPECT_EQ(t.node_of(3), 0);
    EXPECT_EQ(t.node_of(4), 1);
    EXPECT_EQ(t.node_of(7), 1);
    // Per-CPU topology files parsed through.
    EXPECT_EQ(t.cpus()[0].package, 0);
    EXPECT_EQ(t.cpus()[7].package, 1);
    EXPECT_EQ(t.cpus()[5].core, 1);
}

TEST(Topology, AssignmentIsLocalityFirstThenWraps) {
    Topology t = Topology::from_root(fixture("dual_node"));
    // Packing: node 0's CPUs fill before node 1 is touched.
    EXPECT_EQ(t.assign(3), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(t.assign(6), (std::vector<int>{0, 1, 2, 3, 4, 5}));
    // Oversubscription wraps around the locality order.
    EXPECT_EQ(t.assign(10), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 0, 1}));
}

TEST(Topology, SingleCoreFixtureHasOneCpuOneNode) {
    Topology t = Topology::from_root(fixture("single_core"));
    ASSERT_TRUE(t.from_sysfs());
    EXPECT_EQ(t.cpu_count(), 1);
    EXPECT_EQ(t.node_count(), 1);  // no node dirs -> single implicit node
    EXPECT_EQ(t.assign(4), (std::vector<int>{0, 0, 0, 0}));
}

TEST(Topology, OfflineCpuExcludedFromOnlineSet) {
    Topology t = Topology::from_root(fixture("offline_cpu"));
    ASSERT_TRUE(t.from_sysfs());
    // cpu1 is offline: the node's cpulist says 0-3 but only 0,2,3 are online.
    EXPECT_EQ(t.cpu_count(), 3);
    std::vector<int> ids;
    for (const Topology::Cpu& c : t.cpus()) ids.push_back(c.id);
    EXPECT_EQ(ids, (std::vector<int>{0, 2, 3}));
    // Assignment never hands out the offline CPU.
    for (int cpu : t.assign(6)) EXPECT_NE(cpu, 1);
}

TEST(Topology, MissingRootFallsBackCleanly) {
    Topology t = Topology::from_root(fixture("does_not_exist"));
    EXPECT_FALSE(t.from_sysfs());
    EXPECT_GE(t.cpu_count(), 1);
    EXPECT_EQ(t.node_count(), 1);
    EXPECT_EQ(static_cast<int>(t.assign(2).size()), 2);
}

TEST(Topology, ExplicitFallbackSizing) {
    Topology t = Topology::fallback(3);
    EXPECT_FALSE(t.from_sysfs());
    EXPECT_EQ(t.cpu_count(), 3);
    EXPECT_EQ(t.assign(5), (std::vector<int>{0, 1, 2, 0, 1}));
    EXPECT_GE(Topology::fallback(0).cpu_count(), 1);
}

TEST(Topology, DetectNeverThrowsAndIsUsable) {
    // Live-host detection: whatever the container exposes, the result must
    // be well-formed (>= 1 CPU, >= 1 node, assignment works).
    Topology t = Topology::detect();
    EXPECT_GE(t.cpu_count(), 1);
    EXPECT_GE(t.node_count(), 1);
    EXPECT_EQ(static_cast<int>(t.assign(4).size()), 4);
    EXPECT_FALSE(t.summary().empty());
}

// ---------------------------------------------------------------- WorkerPool

TEST(PinnedPool, RunsJobsWithAndWithoutPinning) {
    using pipeleon::sim::WorkerPool;
    using pipeleon::sim::WorkerPoolOptions;
    Topology topo = Topology::detect();
    for (bool pin : {true, false}) {
        WorkerPoolOptions opts;
        opts.pin = pin;
        opts.topology = &topo;
        WorkerPool pool(4, opts);
        std::vector<int> hits(4, 0);
        for (int round = 0; round < 8; ++round) {
            pool.run([&](int id) { ++hits[static_cast<std::size_t>(id)]; });
        }
        for (int h : hits) EXPECT_EQ(h, 8);
        if (!pin || !WorkerPool::pin_enabled_from_env()) {
            // Unpinned — either by request or because the env escape hatch
            // (PIPELEON_PIN_WORKERS=0) overrides the explicit option, as CI's
            // TSan job does when it reruns this binary.
            EXPECT_EQ(pool.pinned_count(), 0);
            if (!pin) {
                EXPECT_EQ(pool.cpu_of(0), -1);
            }
        } else {
            // Best-effort: pinning may be denied (cpuset-restricted CI), but
            // the assignment itself must be topology-valid.
            for (int w = 0; w < 4; ++w) EXPECT_GE(pool.cpu_of(w), 0);
        }
    }
}

TEST(PinnedPool, EnvEscapeHatchDisablesPinning) {
    using pipeleon::sim::WorkerPool;
    ::setenv("PIPELEON_PIN_WORKERS", "0", 1);
    EXPECT_FALSE(WorkerPool::pin_enabled_from_env());
    {
        WorkerPool pool(2);
        std::atomic<int> sum{0};
        pool.run([&](int) { sum.fetch_add(1); });
        EXPECT_EQ(sum.load(), 2);
        EXPECT_EQ(pool.pinned_count(), 0);
    }
    ::unsetenv("PIPELEON_PIN_WORKERS");
    EXPECT_TRUE(WorkerPool::pin_enabled_from_env());
}

// Stress: thousands of tiny batch barriers, interleaved with pool
// teardown/rebuild. CI runs this binary under TSan with
// PIPELEON_PIN_WORKERS=0 (cpuset-restricted runners), so the per-worker
// futex wake/done slots get hammered for races on both the pinned and
// unpinned configurations.
TEST(PinnedPool, StressRapidBarriersAndRebuilds) {
    using pipeleon::sim::WorkerPool;
    using pipeleon::sim::WorkerPoolOptions;
    Topology topo = Topology::detect();
    for (int rebuild = 0; rebuild < 6; ++rebuild) {
        WorkerPoolOptions opts;
        opts.pin = (rebuild % 2 == 0) && WorkerPool::pin_enabled_from_env();
        opts.topology = &topo;
        const int workers = 2 + rebuild % 3;
        WorkerPool pool(workers, opts);
        std::atomic<std::uint64_t> sum{0};
        std::uint64_t expect = 0;
        for (int round = 0; round < 400; ++round) {
            pool.run([&](int id) {
                sum.fetch_add(static_cast<std::uint64_t>(id) + 1,
                              std::memory_order_relaxed);
            });
            expect += static_cast<std::uint64_t>(workers) *
                      static_cast<std::uint64_t>(workers + 1) / 2;
        }
        ASSERT_EQ(sum.load(), expect);
    }
}

TEST(PinnedPool, ExceptionFromWorkerRethrownAfterBarrier) {
    using pipeleon::sim::WorkerPool;
    WorkerPool pool(3);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.run([&](int id) {
            if (id == 1) throw std::runtime_error("boom");
            completed.fetch_add(1);
        }),
        std::runtime_error);
    // The barrier drained: the other workers finished their job.
    EXPECT_EQ(completed.load(), 2);
    // The pool survives the throw and runs the next job.
    pool.run([&](int) { completed.fetch_add(1); });
    EXPECT_EQ(completed.load(), 5);
}
