// Tests for cost/model and cost/calibrate: the equations of §3.1 and the
// linearity identity between Eq. 1 (path sum) and the reach-weighted form.
#include <gtest/gtest.h>

#include "analysis/pipelet.h"
#include "cost/calibrate.h"
#include "cost/model.h"
#include "ir/builder.h"
#include "synth/profile_synth.h"
#include "synth/program_synth.h"

namespace pipeleon::cost {
namespace {

using ir::kNoNode;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

CostParams unit_params() {
    CostParams p;
    p.l_mat = 10.0;
    p.l_act = 2.0;
    p.l_branch = 1.0;
    p.l_counter = 0.5;
    p.l_migration = 50.0;
    p.cpu_slowdown = 3.0;
    p.default_lpm_m = 3;
    p.default_ternary_m = 5;
    return p;
}

profile::InstrumentationConfig no_instr() {
    profile::InstrumentationConfig c;
    c.enabled = false;
    return c;
}

TEST(CostModel, MMultiplierByKind) {
    CostModel model(unit_params(), no_instr());
    profile::TableStats stats;

    ir::Table exact = TableSpec("e").key("f").noop_action("a").build();
    EXPECT_EQ(model.m_multiplier(exact, stats), 1);

    ir::Table lpm =
        TableSpec("l").key("f", ir::MatchKind::Lpm).noop_action("a").build();
    EXPECT_EQ(model.m_multiplier(lpm, stats), 3);  // default
    stats.lpm_prefix_count = 7;
    EXPECT_EQ(model.m_multiplier(lpm, stats), 7);  // measured

    ir::Table tern =
        TableSpec("t").key("f", ir::MatchKind::Ternary).noop_action("a").build();
    profile::TableStats tstats;
    EXPECT_EQ(model.m_multiplier(tern, tstats), 5);  // default
    tstats.ternary_mask_count = 9;
    EXPECT_EQ(model.m_multiplier(tern, tstats), 9);

    // Cap.
    tstats.ternary_mask_count = 10000;
    EXPECT_EQ(model.m_multiplier(tern, tstats), unit_params().max_m);
}

TEST(CostModel, NodeCostEquation3) {
    // L(v) = m*L_mat + sum_a P(a)*n_a*L_act.
    CostModel model(unit_params(), no_instr());
    ProgramBuilder b("eq3");
    b.append(TableSpec("t")
                 .key("f")
                 .noop_action("a0", 2)   // 2 primitives
                 .noop_action("a1", 4)   // 4 primitives
                 .build());
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(0).action_hits = {75, 25};
    // 1*10 + (0.75*2 + 0.25*4)*2 = 10 + 5 = 15.
    EXPECT_DOUBLE_EQ(model.node_cost(p.node(0), prof), 15.0);
}

TEST(CostModel, InstrumentationAddsCounterCost) {
    profile::InstrumentationConfig instr;
    instr.enabled = true;
    instr.sampling_rate = 1.0;
    CostModel model(unit_params(), instr);
    Program p = ir::chain_of_exact_tables("i", 1, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    // 10 (match) + 2 (one primitive) + 0.5 (counter).
    EXPECT_DOUBLE_EQ(model.node_cost(p.node(0), prof), 12.5);

    instr.sampling_rate = 1.0 / 1024.0;
    CostModel sampled(unit_params(), instr);
    EXPECT_NEAR(sampled.node_cost(p.node(0), prof), 12.0 + 0.5 / 1024.0, 1e-12);
}

TEST(CostModel, CpuCoreSlowdown) {
    CostModel model(unit_params(), no_instr());
    Program p = ir::chain_of_exact_tables("cpu", 1, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    double asic = model.node_cost(p.node(0), prof);
    p.node(0).core = ir::CoreKind::Cpu;
    EXPECT_DOUBLE_EQ(model.node_cost(p.node(0), prof), 3.0 * asic);
}

TEST(CostModel, ExpectedLatencyLinearChain) {
    CostModel model(unit_params(), no_instr());
    Program p = ir::chain_of_exact_tables("lin", 4, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    // 4 tables * (10 + 2).
    EXPECT_DOUBLE_EQ(model.expected_latency(p, prof), 48.0);
}

TEST(CostModel, DroppedTrafficSkipsDownstreamCost) {
    CostModel model(unit_params(), no_instr());
    ProgramBuilder b("drop");
    b.append(TableSpec("acl").key("a").noop_action("ok", 1).drop_action("deny").build());
    b.append(TableSpec("t").key("b").noop_action("x", 1).build());
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(0).action_hits = {50, 50};  // 50% dropped
    // acl: 10 + (0.5*1 + 0.5*1)*2 = 12; t reached with p=0.5: 0.5*12 = 6.
    EXPECT_DOUBLE_EQ(model.expected_latency(p, prof), 18.0);
}

TEST(CostModel, MigrationCostOnCoreCrossing) {
    CostModel model(unit_params(), no_instr());
    Program p = ir::chain_of_exact_tables("mig", 2, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    double base = model.expected_latency(p, prof);
    p.node(1).core = ir::CoreKind::Cpu;
    // +50 migration, and node 1 costs 3x.
    EXPECT_DOUBLE_EQ(model.expected_latency(p, prof), base + 50.0 + 2.0 * 12.0);
}

TEST(CostModel, PathEnumerationSmallDiamond) {
    CostModel model(unit_params(), no_instr());
    ProgramBuilder b("paths");
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId t1 = b.add(TableSpec("t1").key("a").noop_action("x", 1).build());
    NodeId t2 = b.add(TableSpec("t2").key("b").noop_action("y", 1).build());
    b.connect_branch(br, t1, t2);
    b.set_root(br);
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.branch(br).taken_true = 60;
    prof.branch(br).taken_false = 40;

    auto paths = model.enumerate_paths(p, prof);
    ASSERT_EQ(paths.size(), 2u);
    double total_prob = 0.0;
    for (const auto& path : paths) total_prob += path.probability;
    EXPECT_NEAR(total_prob, 1.0, 1e-12);
}

TEST(CostModel, PathSumMatchesLinearityOnChain) {
    CostModel model(unit_params(), no_instr());
    Program p = ir::chain_of_exact_tables("id", 5, 2, 3);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) {
        prof.table(id).action_hits = {3, 7};
    }
    EXPECT_NEAR(model.expected_latency(p, prof),
                model.expected_latency_by_paths(p, prof), 1e-9);
}

TEST(CostModel, PipeletLatencyTruncatesAfterDrop) {
    CostModel model(unit_params(), no_instr());
    ProgramBuilder b("pl");
    b.append(
        TableSpec("acl").key("a").noop_action("ok", 1).drop_action("deny").build());
    b.append(TableSpec("t").key("b").noop_action("x", 1).build());
    Program p = b.build();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(0).action_hits = {0, 100};  // everything dropped

    analysis::Pipelet pl;
    pl.nodes = {0, 1};
    // Only the first node's cost counts: 10 + 1*2 = 12.
    EXPECT_DOUBLE_EQ(model.pipelet_latency(p, pl, prof), 12.0);
}

TEST(CostModel, MemoryEstimateUsesM) {
    CostModel model(unit_params(), no_instr());
    ir::Table lpm = TableSpec("l").key("f", ir::MatchKind::Lpm, 32).noop_action("a").build();
    profile::TableStats stats;
    stats.entry_count = 100;
    stats.lpm_prefix_count = 4;
    // 100 entries * (4 key bytes + 16 overhead) * m=4.
    EXPECT_DOUBLE_EQ(model.memory_bytes(lpm, stats), 100 * 20.0 * 4);
}

TEST(CostModel, ThroughputConversionCapsAtLineRate) {
    // 1e9 cycles/s, 100 cycles/packet -> 1e7 pps * 512B*8 = 40.96 Gbps.
    EXPECT_NEAR(CostModel::throughput_gbps(100.0, 1e9, 100.0), 40.96, 0.01);
    EXPECT_DOUBLE_EQ(CostModel::throughput_gbps(1.0, 1e9, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(CostModel::throughput_gbps(0.0, 1e9, 100.0), 100.0);
}

TEST(Calibrate, RecoversModelConstants) {
    // Synthesize ideal measurements from known constants and re-fit.
    const double l_mat = 12.0, l_act = 3.0, base = 40.0;
    std::vector<CalibrationPoint> exact_sweep, prim_sweep, lpm_sweep, tern_sweep;
    for (int n = 10; n <= 40; n += 10) {
        exact_sweep.push_back({static_cast<double>(n), base + n * (l_mat + 2 * l_act)});
    }
    // Hmm: the exact sweep varies tables with fixed 2-primitive actions, so
    // the slope is l_mat + 2*l_act; the primitive sweep isolates l_act.
    for (int k = 2; k <= 8; k += 2) {
        prim_sweep.push_back(
            {static_cast<double>(20 * k), base + 20 * l_mat + 20.0 * k * l_act});
    }
    for (int n = 10; n <= 16; n += 2) {
        lpm_sweep.push_back({static_cast<double>(n), n * 3.0 * (l_mat + 2 * l_act)});
    }
    for (int n = 10; n <= 16; n += 2) {
        tern_sweep.push_back({static_cast<double>(n), n * 5.0 * (l_mat + 2 * l_act)});
    }
    CalibrationResult r = calibrate(exact_sweep, prim_sweep, lpm_sweep, tern_sweep);
    EXPECT_NEAR(r.l_mat, l_mat + 2 * l_act, 1e-9);  // slope per exact table
    EXPECT_NEAR(r.l_act, l_act, 1e-9);              // slope per primitive
    EXPECT_GT(r.l_mat_r2, 0.999);
    EXPECT_NEAR(r.lpm_m, 3.0, 0.35);
    EXPECT_NEAR(r.ternary_m, 5.0, 0.6);
}

TEST(Calibrate, ApplyCalibrationUpdatesParams) {
    CalibrationResult r;
    r.l_mat = 42.0;
    r.l_act = 7.0;
    r.lpm_m = 3.4;
    r.ternary_m = 4.6;
    CostParams p = apply_calibration(unit_params(), r);
    EXPECT_DOUBLE_EQ(p.l_mat, 42.0);
    EXPECT_DOUBLE_EQ(p.l_act, 7.0);
    EXPECT_EQ(p.default_lpm_m, 3);
    EXPECT_EQ(p.default_ternary_m, 5);
}

// Property: for random synthesized programs and profiles, the path-sum form
// of Eq. 1 equals the reach-weighted form.
class LinearityProperty : public testing::TestWithParam<int> {};

TEST_P(LinearityProperty, PathSumEqualsReachSum) {
    synth::SynthConfig cfg;
    cfg.pipelets = 6;
    cfg.diamond_fraction = 0.5;
    synth::ProgramSynthesizer gen(cfg, static_cast<std::uint64_t>(GetParam()));
    Program p = gen.generate("prop");

    synth::ProfileSynthesizer profgen(synth::heavy_drop_config(),
                                      static_cast<std::uint64_t>(GetParam()) + 99);
    profile::RuntimeProfile prof = profgen.generate(p);

    CostModel model(unit_params(), no_instr());
    double by_reach = model.expected_latency(p, prof);
    double by_paths = model.expected_latency_by_paths(p, prof);
    EXPECT_NEAR(by_reach, by_paths, 1e-6 * std::max(1.0, by_reach));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearityProperty, testing::Range(1, 21));

}  // namespace
}  // namespace pipeleon::cost
