// Tests for profile/profile and profile/change_detect.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "profile/change_detect.h"
#include "profile/profile.h"

namespace pipeleon::profile {
namespace {

using ir::kNoNode;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

Program drop_chain() {
    // t0 (50% drop) -> t1.
    ProgramBuilder b("p");
    b.append(TableSpec("t0").key("a").noop_action("ok").drop_action("deny").build());
    b.append(TableSpec("t1").key("b").noop_action("x").build());
    return b.build();
}

TEST(Profile, ActionProbabilityWithCounts) {
    Program p = drop_chain();
    RuntimeProfile prof;
    prof.reset_for(p, 2.0);
    prof.table(0).action_hits = {600, 400};
    const ir::Node& n = p.node(0);
    EXPECT_DOUBLE_EQ(prof.action_probability(n, 0), 0.6);
    EXPECT_DOUBLE_EQ(prof.action_probability(n, 1), 0.4);
    EXPECT_DOUBLE_EQ(prof.drop_probability(n), 0.4);
    EXPECT_DOUBLE_EQ(prof.miss_probability(n), 0.0);
}

TEST(Profile, UniformFallbackWithoutTraffic) {
    Program p = drop_chain();
    RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    const ir::Node& n = p.node(0);
    EXPECT_DOUBLE_EQ(prof.action_probability(n, 0), 0.5);
    EXPECT_DOUBLE_EQ(prof.action_probability(n, 1), 0.5);
}

TEST(Profile, MissesCountTowardDefaultAction) {
    ProgramBuilder b("m");
    b.append(TableSpec("t")
                 .key("a")
                 .noop_action("hit_a")
                 .noop_action("dflt")
                 .default_to("dflt")
                 .build());
    Program p = b.build();
    RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(0).action_hits = {50, 25};
    prof.table(0).misses = 25;
    const ir::Node& n = p.node(0);
    EXPECT_DOUBLE_EQ(prof.action_probability(n, 1), 0.5);
    EXPECT_DOUBLE_EQ(prof.miss_probability(n), 0.25);
}

TEST(Profile, BranchProbability) {
    ProgramBuilder b("br");
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    b.set_root(br);
    Program p = b.build();
    RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    EXPECT_DOUBLE_EQ(prof.branch_true_probability(br), 0.5);  // fallback
    prof.branch(br).taken_true = 75;
    prof.branch(br).taken_false = 25;
    EXPECT_DOUBLE_EQ(prof.branch_true_probability(br), 0.75);
}

TEST(Profile, EdgeProbabilityDropsTerminatePaths) {
    Program p = drop_chain();
    RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(0).action_hits = {700, 300};
    const ir::Node& t0 = p.node(0);
    NodeId t1 = p.find_table("t1");
    // Only the non-drop 70% flows to t1.
    EXPECT_DOUBLE_EQ(prof.edge_probability(t0, t1), 0.7);
}

TEST(Profile, ReachProbabilities) {
    ProgramBuilder b("reach");
    NodeId t0 =
        b.add(TableSpec("t0").key("a").noop_action("ok").drop_action("deny").build());
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId t1 = b.add(TableSpec("t1").key("b").noop_action("x").build());
    NodeId t2 = b.add(TableSpec("t2").key("c").noop_action("x").build());
    b.connect(t0, br);
    b.connect_branch(br, t1, t2);
    b.set_root(t0);
    Program p = b.build();

    RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(t0).action_hits = {800, 200};  // 20% dropped
    prof.branch(br).taken_true = 600;
    prof.branch(br).taken_false = 200;

    auto reach = prof.reach_probabilities(p);
    EXPECT_DOUBLE_EQ(reach[static_cast<std::size_t>(t0)], 1.0);
    EXPECT_DOUBLE_EQ(reach[static_cast<std::size_t>(br)], 0.8);
    EXPECT_DOUBLE_EQ(reach[static_cast<std::size_t>(t1)], 0.8 * 0.75);
    EXPECT_DOUBLE_EQ(reach[static_cast<std::size_t>(t2)], 0.8 * 0.25);
}

TEST(Profile, ReachRequiresMatchingProgram) {
    Program p = drop_chain();
    RuntimeProfile prof(1);  // wrong size
    EXPECT_THROW(prof.reach_probabilities(p), std::invalid_argument);
}

TEST(Profile, UpdateRateUsesWindow) {
    Program p = drop_chain();
    RuntimeProfile prof;
    prof.reset_for(p, 4.0);
    prof.table(0).entry_updates = 100;
    EXPECT_DOUBLE_EQ(prof.update_rate(0), 25.0);
}

TEST(Profile, CacheHitRate) {
    Program p = drop_chain();
    RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    EXPECT_DOUBLE_EQ(prof.cache_hit_rate(0, 0.77), 0.77);  // fallback
    prof.table(0).cache_hits = 90;
    prof.table(0).cache_misses = 10;
    EXPECT_DOUBLE_EQ(prof.cache_hit_rate(0), 0.9);
}

TEST(ChangeDetect, NoChangeForIdenticalProfiles) {
    Program p = drop_chain();
    RuntimeProfile a;
    a.reset_for(p, 1.0);
    a.table(0).action_hits = {70, 30};
    RuntimeProfile b = a;
    ProfileDelta d = profile_delta(p, a, b);
    EXPECT_DOUBLE_EQ(d.max_shift(), 0.0);
    EXPECT_FALSE(ChangeDetector{0.1}.changed(p, a, b));
}

TEST(ChangeDetect, DetectsActionShift) {
    Program p = drop_chain();
    RuntimeProfile a;
    a.reset_for(p, 1.0);
    a.table(0).action_hits = {90, 10};
    RuntimeProfile b;
    b.reset_for(p, 1.0);
    b.table(0).action_hits = {10, 90};
    ProfileDelta d = profile_delta(p, a, b);
    EXPECT_NEAR(d.max_action_shift, 0.8, 1e-12);
    EXPECT_TRUE(ChangeDetector{0.1}.changed(p, a, b));
}

TEST(ChangeDetect, DetectsUpdateRateShift) {
    Program p = drop_chain();
    RuntimeProfile a;
    a.reset_for(p, 1.0);
    a.table(0).action_hits = {50, 50};
    RuntimeProfile b = a;
    b.table(1).entry_updates = 1000;
    ProfileDelta d = profile_delta(p, a, b);
    EXPECT_DOUBLE_EQ(d.max_update_rate_shift, 1.0);
    EXPECT_TRUE(ChangeDetector{0.5}.changed(p, a, b));
}

TEST(ChangeDetect, SmallShiftBelowThreshold) {
    Program p = drop_chain();
    RuntimeProfile a;
    a.reset_for(p, 1.0);
    a.table(0).action_hits = {50, 50};
    RuntimeProfile b;
    b.reset_for(p, 1.0);
    b.table(0).action_hits = {52, 48};
    EXPECT_FALSE(ChangeDetector{0.1}.changed(p, a, b));
}

}  // namespace
}  // namespace pipeleon::profile
