// Tests for opt/memory_tiers (§6 hierarchical memory) and the per-tier cost
// accounting in the cost model and emulator.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/json_io.h"
#include "opt/memory_tiers.h"
#include "sim/emulator.h"

namespace pipeleon::opt {
namespace {

using ir::MemTier;
using ir::NodeId;
using ir::Program;
using ir::TableSpec;

cost::CostParams tiered_params() {
    cost::CostParams p;
    p.l_mat = 20.0;
    p.l_act = 1.0;
    p.l_mat_fast = 4.0;
    p.fast_memory_bytes = 10000.0;
    p.entry_overhead_bytes = 16;
    return p;
}

profile::InstrumentationConfig no_instr() {
    profile::InstrumentationConfig c;
    c.enabled = false;
    return c;
}

TEST(MemoryTiers, DisabledWithoutFastTier) {
    Program p = ir::chain_of_exact_tables("d", 3, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostParams params = tiered_params();
    params.l_mat_fast = 0.0;
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_fast, 0u);
    EXPECT_TRUE(a.program == p);
}

TEST(MemoryTiers, HotTablesPlacedFirst) {
    // Two tables: a hot small one behind a branch with 90% traffic and a
    // cold one with 10%. Budget fits only one -> the hot one wins.
    ir::ProgramBuilder b("place");
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId hot = b.add(TableSpec("hot").key("a").noop_action("n", 1).build());
    NodeId cold = b.add(TableSpec("cold").key("b").noop_action("n", 1).build());
    b.connect_branch(br, hot, cold);
    b.set_root(br);
    Program p = b.build();

    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.branch(br).taken_true = 900;
    prof.branch(br).taken_false = 100;
    prof.table(hot).action_hits = {900};
    prof.table(hot).entry_count = 100;
    prof.table(cold).action_hits = {100};
    prof.table(cold).entry_count = 100;

    cost::CostParams params = tiered_params();
    params.fast_memory_bytes = 2100.0;  // one table = 100 * (4+16) = 2000 B
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_fast, 1u);
    EXPECT_EQ(a.program.node(hot).table.tier, MemTier::Fast);
    EXPECT_EQ(a.program.node(cold).table.tier, MemTier::Default);
    EXPECT_GT(a.predicted_gain, 0.0);
    EXPECT_LE(a.fast_bytes_used, params.fast_memory_bytes);
}

TEST(MemoryTiers, CostModelUsesTier) {
    Program p = ir::chain_of_exact_tables("c", 1, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostModel model(tiered_params(), no_instr());
    double slow = model.expected_latency(p, prof);
    p.node(0).table.tier = MemTier::Fast;
    double fast = model.expected_latency(p, prof);
    // 20 -> 4 per access.
    EXPECT_DOUBLE_EQ(slow - fast, 16.0);
}

TEST(MemoryTiers, EmulatorChargesTier) {
    Program p = ir::chain_of_exact_tables("e", 2, 1, 1);
    p.node(1).table.tier = MemTier::Fast;
    sim::NicModel nic;
    nic.costs = tiered_params();
    sim::Emulator emu(nic, p, no_instr());
    sim::Packet pkt;
    sim::ProcessResult r = emu.process(pkt);
    // Table 0: 20 + 1 (default action, 1 prim at l_act=1);
    // table 1: 4 + 1.
    EXPECT_DOUBLE_EQ(r.cycles, 21.0 + 5.0);
}

TEST(MemoryTiers, PlacementLowersMeasuredLatency) {
    Program p = ir::chain_of_exact_tables("m", 6, 2, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) {
        prof.table(id).action_hits = {500, 500};
        prof.table(id).entry_count = 64;
    }
    cost::CostModel model(tiered_params(), no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_GT(a.tables_in_fast, 0u);

    sim::NicModel nic;
    nic.costs = tiered_params();
    sim::Emulator before(nic, p, no_instr());
    sim::Emulator after(nic, a.program, no_instr());
    sim::Packet x, y;
    EXPECT_LT(after.process(y).cycles, before.process(x).cycles);
}

TEST(MemoryTiers, TierSurvivesJsonRoundTrip) {
    Program p = ir::chain_of_exact_tables("j", 2, 1, 1);
    p.node(1).table.tier = MemTier::Fast;
    Program q = ir::program_from_json(ir::program_to_json(p));
    EXPECT_EQ(q.node(1).table.tier, MemTier::Fast);
    EXPECT_TRUE(p == q);
}

// ---------------------------------------------------------------------------
// Three-tier placement (ISSUE 9): host spill + cache-budget carve.

cost::CostParams three_tier_params() {
    cost::CostParams p = tiered_params();
    p.l_tier_dram = 30.0;
    p.l_tier_host = 90.0;
    p.dma_setup = 400.0;
    p.dma_per_entry = 16.0;
    return p;
}

ir::Program cache_chain_program() {
    // cache(a,b) -> [a -> b] with a miss fall-through, the shape the cache
    // transform emits.
    ir::Table cache =
        TableSpec("cache_ab").key("f").noop_action("cache_hit").build();
    cache.role = ir::TableRole::Cache;
    cache.origin_tables = {"a", "b"};
    cache.cache.capacity = 64;
    cache.default_action = -1;
    ir::ProgramBuilder b("carve");
    NodeId c = b.add(cache);
    NodeId ta = b.add(TableSpec("a").key("f").noop_action("na", 1).build());
    NodeId tb = b.add(TableSpec("b").key("g").noop_action("nb", 1).build());
    b.connect_action(c, 0, ir::kNoNode);
    b.connect_miss(c, ta);
    b.connect(ta, tb);
    b.set_root(c);
    return b.build();
}

TEST(MemoryTiers, NoLowerTiersWithoutBudgets) {
    // l_tier_* costs alone (no dram/host byte budgets) must leave the pass
    // exactly as the legacy fast greedy: no spill, no cache carve.
    ir::Program p = cache_chain_program();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostModel model(three_tier_params(), no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_host, 0u);
    EXPECT_EQ(a.cache_dram_entries, 0u);
    EXPECT_EQ(a.cache_host_entries, 0u);
    for (NodeId id : a.program.reachable()) {
        const ir::Node& n = a.program.node(id);
        if (!n.is_table()) continue;
        EXPECT_NE(n.table.tier, MemTier::Host);
        EXPECT_FALSE(n.table.cache.tiers.enabled());
    }
}

TEST(MemoryTiers, SpillsColdestTablesToHost) {
    // Three 2000-byte tables, a DRAM budget that holds two: the coldest
    // (lowest benefit density) spills to MemTier::Host.
    Program p = ir::chain_of_exact_tables("spill", 3, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) prof.table(id).entry_count = 100;
    cost::CostParams params = three_tier_params();
    params.fast_memory_bytes = 0.0;  // isolate the spill stage
    params.dram_memory_bytes = 4100.0;
    params.host_memory_bytes = 100000.0;
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_host, 1u);
    EXPECT_LE(a.dram_bytes_used, params.dram_memory_bytes);
    EXPECT_GT(a.host_bytes_used, 0.0);
    std::size_t host_tables = 0;
    for (NodeId id : a.program.reachable()) {
        if (a.program.node(id).table.tier == MemTier::Host) ++host_tables;
    }
    EXPECT_EQ(host_tables, 1u);
}

TEST(MemoryTiers, NoSpillWithoutHostBudget) {
    Program p = ir::chain_of_exact_tables("nospill", 3, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) prof.table(id).entry_count = 100;
    cost::CostParams params = three_tier_params();
    params.dram_memory_bytes = 100.0;  // overflows, but nowhere to spill
    params.host_memory_bytes = 0.0;
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_host, 0u);
}

TEST(MemoryTiers, CarvesCacheBudgetAcrossTiers) {
    ir::Program p = cache_chain_program();
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.table(p.find_table("a")).entry_count = 10;  // 10*20 = 200 B in DRAM
    prof.table(p.find_table("b")).entry_count = 10;
    cost::CostParams params = three_tier_params();
    params.dram_memory_bytes = 10400.0;  // 10000 B left after the tables
    params.host_memory_bytes = 100000.0;
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);

    const ir::Table& cache =
        a.program.node(a.program.find_table("cache_ab")).table;
    EXPECT_TRUE(cache.cache.tiers.enabled());
    // Cache entry = 4-byte key + 16 overhead = 20 B; one cache gets the
    // whole leftover: 10000/20 = 500 DRAM entries, 100000/20 = 5000 host.
    EXPECT_EQ(cache.cache.tiers.dram_entries, 500u);
    EXPECT_EQ(cache.cache.tiers.host_entries, 5000u);
    EXPECT_EQ(a.cache_dram_entries, 500u);
    EXPECT_EQ(a.cache_host_entries, 5000u);
    // Tier-0 capacity untouched by the carve.
    EXPECT_EQ(cache.cache.capacity, 64u);
}

TEST(MemoryTiers, EmulatorChargesHostTierTables) {
    Program p = ir::chain_of_exact_tables("h", 2, 1, 1);
    p.node(1).table.tier = MemTier::Host;
    sim::NicModel nic;
    nic.costs = three_tier_params();
    sim::Emulator emu(nic, p, no_instr());
    sim::Packet pkt;
    sim::ProcessResult r = emu.process(pkt);
    // Table 0: 20 + 1; table 1 in host memory: (20 + 90) + 1.
    EXPECT_DOUBLE_EQ(r.cycles, 21.0 + 111.0);
}

TEST(MemoryTiers, TierConfigSurvivesJsonRoundTrip) {
    ir::Program p = cache_chain_program();
    ir::TierConfig& tiers =
        p.node(p.find_table("cache_ab")).table.cache.tiers;
    tiers.dram_entries = 1000;
    tiers.host_entries = 50000;
    tiers.promote_hits = 3;
    tiers.decay_every = 16;
    tiers.dma_batch = 64;
    ir::Program q = ir::program_from_json(ir::program_to_json(p));
    EXPECT_TRUE(p == q);
    const ir::TierConfig& rt =
        q.node(q.find_table("cache_ab")).table.cache.tiers;
    EXPECT_EQ(rt.dram_entries, 1000u);
    EXPECT_EQ(rt.host_entries, 50000u);
    EXPECT_EQ(rt.promote_hits, 3u);
    EXPECT_EQ(rt.decay_every, 16u);
    EXPECT_EQ(rt.dma_batch, 64u);
}

TEST(MemoryTiers, BudgetRespected) {
    Program p = ir::chain_of_exact_tables("b", 10, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) prof.table(id).entry_count = 100;
    cost::CostParams params = tiered_params();
    params.fast_memory_bytes = 4100.0;  // fits two 2000-byte tables
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_fast, 2u);
    EXPECT_LE(a.fast_bytes_used, 4100.0);
}

}  // namespace
}  // namespace pipeleon::opt
