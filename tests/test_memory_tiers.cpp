// Tests for opt/memory_tiers (§6 hierarchical memory) and the per-tier cost
// accounting in the cost model and emulator.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/json_io.h"
#include "opt/memory_tiers.h"
#include "sim/emulator.h"

namespace pipeleon::opt {
namespace {

using ir::MemTier;
using ir::NodeId;
using ir::Program;
using ir::TableSpec;

cost::CostParams tiered_params() {
    cost::CostParams p;
    p.l_mat = 20.0;
    p.l_act = 1.0;
    p.l_mat_fast = 4.0;
    p.fast_memory_bytes = 10000.0;
    p.entry_overhead_bytes = 16;
    return p;
}

profile::InstrumentationConfig no_instr() {
    profile::InstrumentationConfig c;
    c.enabled = false;
    return c;
}

TEST(MemoryTiers, DisabledWithoutFastTier) {
    Program p = ir::chain_of_exact_tables("d", 3, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostParams params = tiered_params();
    params.l_mat_fast = 0.0;
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_fast, 0u);
    EXPECT_TRUE(a.program == p);
}

TEST(MemoryTiers, HotTablesPlacedFirst) {
    // Two tables: a hot small one behind a branch with 90% traffic and a
    // cold one with 10%. Budget fits only one -> the hot one wins.
    ir::ProgramBuilder b("place");
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId hot = b.add(TableSpec("hot").key("a").noop_action("n", 1).build());
    NodeId cold = b.add(TableSpec("cold").key("b").noop_action("n", 1).build());
    b.connect_branch(br, hot, cold);
    b.set_root(br);
    Program p = b.build();

    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.branch(br).taken_true = 900;
    prof.branch(br).taken_false = 100;
    prof.table(hot).action_hits = {900};
    prof.table(hot).entry_count = 100;
    prof.table(cold).action_hits = {100};
    prof.table(cold).entry_count = 100;

    cost::CostParams params = tiered_params();
    params.fast_memory_bytes = 2100.0;  // one table = 100 * (4+16) = 2000 B
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_fast, 1u);
    EXPECT_EQ(a.program.node(hot).table.tier, MemTier::Fast);
    EXPECT_EQ(a.program.node(cold).table.tier, MemTier::Default);
    EXPECT_GT(a.predicted_gain, 0.0);
    EXPECT_LE(a.fast_bytes_used, params.fast_memory_bytes);
}

TEST(MemoryTiers, CostModelUsesTier) {
    Program p = ir::chain_of_exact_tables("c", 1, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostModel model(tiered_params(), no_instr());
    double slow = model.expected_latency(p, prof);
    p.node(0).table.tier = MemTier::Fast;
    double fast = model.expected_latency(p, prof);
    // 20 -> 4 per access.
    EXPECT_DOUBLE_EQ(slow - fast, 16.0);
}

TEST(MemoryTiers, EmulatorChargesTier) {
    Program p = ir::chain_of_exact_tables("e", 2, 1, 1);
    p.node(1).table.tier = MemTier::Fast;
    sim::NicModel nic;
    nic.costs = tiered_params();
    sim::Emulator emu(nic, p, no_instr());
    sim::Packet pkt;
    sim::ProcessResult r = emu.process(pkt);
    // Table 0: 20 + 1 (default action, 1 prim at l_act=1);
    // table 1: 4 + 1.
    EXPECT_DOUBLE_EQ(r.cycles, 21.0 + 5.0);
}

TEST(MemoryTiers, PlacementLowersMeasuredLatency) {
    Program p = ir::chain_of_exact_tables("m", 6, 2, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) {
        prof.table(id).action_hits = {500, 500};
        prof.table(id).entry_count = 64;
    }
    cost::CostModel model(tiered_params(), no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_GT(a.tables_in_fast, 0u);

    sim::NicModel nic;
    nic.costs = tiered_params();
    sim::Emulator before(nic, p, no_instr());
    sim::Emulator after(nic, a.program, no_instr());
    sim::Packet x, y;
    EXPECT_LT(after.process(y).cycles, before.process(x).cycles);
}

TEST(MemoryTiers, TierSurvivesJsonRoundTrip) {
    Program p = ir::chain_of_exact_tables("j", 2, 1, 1);
    p.node(1).table.tier = MemTier::Fast;
    Program q = ir::program_from_json(ir::program_to_json(p));
    EXPECT_EQ(q.node(1).table.tier, MemTier::Fast);
    EXPECT_TRUE(p == q);
}

TEST(MemoryTiers, BudgetRespected) {
    Program p = ir::chain_of_exact_tables("b", 10, 1, 1);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    for (NodeId id : p.reachable()) prof.table(id).entry_count = 100;
    cost::CostParams params = tiered_params();
    params.fast_memory_bytes = 4100.0;  // fits two 2000-byte tables
    cost::CostModel model(params, no_instr());
    TierAssignment a = assign_memory_tiers(p, prof, model);
    EXPECT_EQ(a.tables_in_fast, 2u);
    EXPECT_LE(a.fast_bytes_used, 4100.0);
}

}  // namespace
}  // namespace pipeleon::opt
