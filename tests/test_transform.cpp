// Tests for opt/transform: structural correctness of reorder / cache / merge
// rewrites (semantic equivalence is covered end-to-end in test_equivalence).
#include <gtest/gtest.h>

#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"

namespace pipeleon::opt {
namespace {

using ir::kNoNode;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableRole;
using ir::TableSpec;

Program chain3() {
    ProgramBuilder b("chain3");
    b.append(TableSpec("A").key("a").noop_action("a1").build());
    b.append(TableSpec("B").key("b").noop_action("b1").build());
    b.append(TableSpec("C").key("c").noop_action("c1").build());
    return b.build();
}

std::vector<std::string> table_order(const Program& p) {
    std::vector<std::string> names;
    NodeId cur = p.root();
    while (cur != kNoNode) {
        const ir::Node& n = p.node(cur);
        if (n.is_table()) names.push_back(n.table.name);
        auto succ = n.successors();
        cur = succ.empty() ? kNoNode : succ[0];
    }
    return names;
}

TEST(Transform, ReorderRewiresChain) {
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {2, 0, 1};
    Program q = apply_plans(p, pipelets, {plan});
    EXPECT_EQ(table_order(q), (std::vector<std::string>{"C", "A", "B"}));
    EXPECT_EQ(q.table_count(), 3u);
    EXPECT_NO_THROW(q.validate());
}

TEST(Transform, IdentityPlanIsNoOp) {
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1, 2};
    Program q = apply_plans(p, pipelets, {plan});
    EXPECT_TRUE(q == p);
}

TEST(Transform, CacheInsertsFrontNodeWithFallthrough) {
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1, 2};
    plan.layout.caches = {Segment{0, 1}};  // cache A+B
    plan.layout.cache_config.capacity = 77;
    Program q = apply_plans(p, pipelets, {plan});

    // Root is now the cache node.
    const ir::Node& root = q.node(q.root());
    ASSERT_TRUE(root.is_table());
    EXPECT_EQ(root.table.role, TableRole::Cache);
    EXPECT_EQ(root.table.origin_tables, (std::vector<std::string>{"A", "B"}));
    EXPECT_EQ(root.table.cache.capacity, 77u);

    // Hit edge skips A and B; miss edge falls into A.
    NodeId c = q.find_table("C");
    NodeId a = q.find_table("A");
    NodeId b = q.find_table("B");
    EXPECT_EQ(root.next_by_action[0], c);
    EXPECT_EQ(root.miss_next, a);
    EXPECT_EQ(q.node(a).next_by_action[0], b);
    EXPECT_EQ(q.node(b).next_by_action[0], c);
    EXPECT_EQ(q.table_count(), 4u);
}

TEST(Transform, FullMergeRemovesOriginals) {
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1, 2};
    plan.layout.merges = {MergeSpec{Segment{0, 1}, false}};
    Program q = apply_plans(p, pipelets, {plan});

    EXPECT_EQ(q.find_table("A"), kNoNode);  // compacted away
    EXPECT_EQ(q.find_table("B"), kNoNode);
    NodeId m = q.find_table("merge_A_B");
    ASSERT_NE(m, kNoNode);
    EXPECT_EQ(q.node(m).table.role, TableRole::Merged);
    EXPECT_EQ(q.root(), m);
    EXPECT_EQ(q.node(m).next_by_action[0], q.find_table("C"));
    EXPECT_EQ(q.table_count(), 2u);
}

TEST(Transform, MergeAsCacheKeepsOriginals) {
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1, 2};
    plan.layout.merges = {MergeSpec{Segment{1, 2}, true}};  // merge B+C as cache
    Program q = apply_plans(p, pipelets, {plan});

    NodeId m = q.find_table("merge_B_C");
    ASSERT_NE(m, kNoNode);
    EXPECT_EQ(q.node(m).table.role, TableRole::MergedCache);
    NodeId b = q.find_table("B");
    NodeId c = q.find_table("C");
    ASSERT_NE(b, kNoNode);
    ASSERT_NE(c, kNoNode);
    // Hits exit the pipeline (original C exited), miss falls into B -> C.
    EXPECT_EQ(q.node(m).miss_next, b);
    EXPECT_EQ(q.node(b).next_by_action[0], c);
    for (NodeId t : q.node(m).next_by_action) EXPECT_EQ(t, kNoNode);
}

TEST(Transform, ReorderPlusCacheCompose) {
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {2, 0, 1};               // C A B
    plan.layout.caches = {Segment{1, 2}};        // cache {A, B}
    Program q = apply_plans(p, pipelets, {plan});

    EXPECT_EQ(q.root(), q.find_table("C"));
    NodeId cache = q.find_table("cache_A_B");
    ASSERT_NE(cache, kNoNode);
    EXPECT_EQ(q.node(q.find_table("C")).next_by_action[0], cache);
    EXPECT_EQ(q.node(cache).miss_next, q.find_table("A"));
    EXPECT_EQ(q.node(q.find_table("B")).next_by_action[0], kNoNode);
}

TEST(Transform, MidProgramPipeletPreservesSurroundings) {
    // branch -> (X | chain A,B) ... chain exits to Y.
    ProgramBuilder bld("mid");
    NodeId br = bld.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId x = bld.add(TableSpec("X").key("x").noop_action("x1").build());
    NodeId a = bld.add(TableSpec("A").key("a").noop_action("a1").build());
    NodeId b = bld.add(TableSpec("B").key("b").noop_action("b1").build());
    NodeId y = bld.add(TableSpec("Y").key("y").noop_action("y1").build());
    bld.connect_branch(br, x, a);
    bld.connect(x, y);
    bld.connect(a, b);
    bld.connect(b, y);
    bld.set_root(br);
    Program p = bld.build();

    auto pipelets = analysis::form_pipelets(p);
    int ab_id = -1;
    for (const auto& pl : pipelets) {
        if (pl.length() == 2) ab_id = pl.id;
    }
    ASSERT_GE(ab_id, 0);

    PipeletPlan plan;
    plan.pipelet_id = ab_id;
    plan.layout.order = {1, 0};  // B before A
    Program q = apply_plans(p, pipelets, {plan});
    // The branch's false edge now points at B; B -> A -> Y.
    NodeId qb = q.find_table("B");
    NodeId qa = q.find_table("A");
    NodeId qy = q.find_table("Y");
    const ir::Node& qbr = q.node(q.root());
    EXPECT_EQ(qbr.false_next, qb);
    EXPECT_EQ(q.node(qb).next_by_action[0], qa);
    EXPECT_EQ(q.node(qa).next_by_action[0], qy);
    // X path untouched.
    EXPECT_EQ(q.node(q.find_table("X")).next_by_action[0], qy);
}

TEST(Transform, CacheCoveringEntryGetsIncomingEdges) {
    // The cache sits at the pipelet entry: incoming edges must point at the
    // cache, and the cache's miss edge at the old entry — no self-loops.
    Program p = chain3();
    auto pipelets = analysis::form_pipelets(p);
    PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1, 2};
    plan.layout.caches = {Segment{0, 2}};
    Program q = apply_plans(p, pipelets, {plan});
    const ir::Node& root = q.node(q.root());
    EXPECT_EQ(root.table.role, TableRole::Cache);
    EXPECT_EQ(root.miss_next, q.find_table("A"));
    EXPECT_NO_THROW(q.validate());
}

TEST(Transform, MultiplePlansApply) {
    // Two pipelets split by a branch; reorder both.
    ProgramBuilder bld("multi");
    NodeId a = bld.add(TableSpec("A").key("a").noop_action("a1").build());
    NodeId b = bld.add(TableSpec("B").key("b").noop_action("b1").build());
    NodeId br = bld.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId c = bld.add(TableSpec("C").key("c").noop_action("c1").build());
    NodeId d = bld.add(TableSpec("D").key("d").noop_action("d1").build());
    bld.connect(a, b);
    bld.connect(b, br);
    bld.connect_branch(br, c, d);
    bld.connect(c, kNoNode);
    bld.set_root(a);
    Program p = bld.build();
    auto pipelets = analysis::form_pipelets(p);
    ASSERT_EQ(pipelets.size(), 3u);

    PipeletPlan plan0;
    plan0.pipelet_id = 0;
    plan0.layout.order = {1, 0};
    std::vector<PipeletPlan> plans{plan0};
    Program q = apply_plans(p, pipelets, plans);
    EXPECT_EQ(q.root(), q.find_table("B"));
    EXPECT_NO_THROW(q.validate());
}

TEST(Transform, SwitchCasePipeletRejected) {
    ProgramBuilder bld("sw");
    NodeId sw = bld.add(
        TableSpec("S").key("k").noop_action("a0").noop_action("a1").build());
    NodeId t0 = bld.add(TableSpec("T0").key("x").noop_action("t").build());
    NodeId t1 = bld.add(TableSpec("T1").key("y").noop_action("t").build());
    bld.connect_action(sw, 0, t0);
    bld.connect_action(sw, 1, t1);
    bld.connect_miss(sw, t0);
    bld.set_root(sw);
    Program p = bld.build();
    auto pipelets = analysis::form_pipelets(p);
    for (const auto& pl : pipelets) {
        if (!pl.is_switch_case) continue;
        PipeletPlan plan;
        plan.pipelet_id = pl.id;
        plan.layout.order = {0};
        plan.layout.caches = {Segment{0, 0}};
        EXPECT_THROW(apply_plans(p, pipelets, {plan}), std::runtime_error);
    }
}

TEST(Transform, RepointEdges) {
    Program p = chain3();
    NodeId a = p.find_table("A");
    NodeId b = p.find_table("B");
    NodeId c = p.find_table("C");
    repoint_edges(p, b, c);
    EXPECT_EQ(p.node(a).next_by_action[0], c);
    repoint_edges(p, a, b);  // root moves too
    EXPECT_EQ(p.root(), b);
}

}  // namespace
}  // namespace pipeleon::opt
