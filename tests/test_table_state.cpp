// Direct unit tests for sim/table_state: TableState entry management and
// CacheStore LRU/limiter mechanics (the emulator tests exercise them
// end-to-end; these pin down the data-structure contracts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/builder.h"
#include "sim/table_state.h"
#include "util/rng.h"

namespace pipeleon::sim {
namespace {

using ir::FieldMatch;
using ir::TableEntry;
using ir::TableSpec;

TableEntry entry(std::uint64_t key, int action = 0) {
    TableEntry e;
    e.key = {FieldMatch::exact(key)};
    e.action_index = action;
    return e;
}

TEST(TableState, InsertLookupEraseModify) {
    ir::Table t = TableSpec("t").key("f").noop_action("a").noop_action("b").build();
    TableState state(t);
    EXPECT_EQ(state.update_count(), 0u);

    EXPECT_TRUE(state.insert(entry(1, 0)));
    EXPECT_TRUE(state.insert(entry(2, 1)));
    EXPECT_EQ(state.entries().size(), 2u);
    EXPECT_EQ(state.update_count(), 2u);

    auto hit = state.lookup({2});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(state.entries()[hit->entry_index].action_index, 1);

    EXPECT_TRUE(state.modify(entry(2, 0)));
    EXPECT_EQ(state.entries()[state.lookup({2})->entry_index].action_index, 0);

    EXPECT_TRUE(state.erase({FieldMatch::exact(1)}));
    EXPECT_FALSE(state.lookup({1}).has_value());
    EXPECT_FALSE(state.erase({FieldMatch::exact(1)}));
    EXPECT_EQ(state.update_count(), 4u);

    state.reset_update_count();
    EXPECT_EQ(state.update_count(), 0u);
}

TEST(TableState, CapacityEnforced) {
    ir::Table t = TableSpec("t").key("f").noop_action("a").size(2).build();
    TableState state(t);
    EXPECT_TRUE(state.insert(entry(1)));
    EXPECT_TRUE(state.insert(entry(2)));
    EXPECT_FALSE(state.insert(entry(3)));  // full
    EXPECT_EQ(state.entries().size(), 2u);
}

TEST(TableState, IncompatibleEntryRejected) {
    ir::Table t = TableSpec("t").key("f").noop_action("a").build();
    TableState state(t);
    TableEntry wrong;
    wrong.key = {FieldMatch::exact(1), FieldMatch::exact(2)};
    wrong.action_index = 0;
    EXPECT_FALSE(state.insert(wrong));
    TableEntry bad_action = entry(1, 7);
    EXPECT_FALSE(state.insert(bad_action));
}

TEST(TableState, PrefixAndMaskCounts) {
    ir::Table t = TableSpec("t").key("f", ir::MatchKind::Lpm).noop_action("a").build();
    TableState state(t);
    for (int len : {8, 16, 16, 24}) {
        TableEntry e;
        e.key = {FieldMatch::lpm(0, len)};
        e.action_index = 0;
        ASSERT_TRUE(state.insert(e));
    }
    EXPECT_EQ(state.lpm_prefix_count(), 3);
    EXPECT_EQ(state.ternary_mask_count(), 0);
}

CacheStore::CacheEntry make_payload(int marker) {
    CacheStore::CacheEntry e;
    ReplayStep step;
    step.origin_node = marker;
    step.action_index = 0;
    e.steps.push_back(step);
    return e;
}

TEST(CacheStore, LruEvictsLeastRecentlyUsed) {
    ir::CacheConfig cfg;
    cfg.capacity = 2;
    cfg.max_insert_per_sec = 1e9;
    CacheStore store(cfg);
    EXPECT_TRUE(store.insert({1}, make_payload(1), 0.0));
    EXPECT_TRUE(store.insert({2}, make_payload(2), 0.1));
    // Touch key 1 so key 2 becomes the LRU victim.
    EXPECT_NE(store.lookup({1}), nullptr);
    EXPECT_TRUE(store.insert({3}, make_payload(3), 0.2));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_NE(store.lookup({1}), nullptr);
    EXPECT_EQ(store.lookup({2}), nullptr);  // evicted
    EXPECT_NE(store.lookup({3}), nullptr);
}

TEST(CacheStore, InsertRefreshesExistingKey) {
    ir::CacheConfig cfg;
    cfg.capacity = 4;
    cfg.max_insert_per_sec = 1e9;
    CacheStore store(cfg);
    EXPECT_TRUE(store.insert({5}, make_payload(1), 0.0));
    EXPECT_TRUE(store.insert({5}, make_payload(2), 0.1));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.lookup({5})->steps[0].origin_node, 2);
}

TEST(CacheStore, TokenBucketLimitsInserts) {
    ir::CacheConfig cfg;
    cfg.capacity = 100;
    cfg.max_insert_per_sec = 2.0;  // 2-token burst
    CacheStore store(cfg);
    EXPECT_TRUE(store.insert({1}, make_payload(1), 0.0));
    EXPECT_TRUE(store.insert({2}, make_payload(2), 0.0));
    EXPECT_FALSE(store.insert({3}, make_payload(3), 0.0));  // bucket empty
    EXPECT_EQ(store.inserts_dropped(), 1u);
    // Half a second refills one token.
    EXPECT_TRUE(store.insert({4}, make_payload(4), 0.5));
    EXPECT_FALSE(store.insert({5}, make_payload(5), 0.5));
    EXPECT_EQ(store.inserts_dropped(), 2u);
}

TEST(CacheStore, ClearEmptiesEverything) {
    ir::CacheConfig cfg;
    cfg.capacity = 8;
    CacheStore store(cfg);
    store.insert({1}, make_payload(1), 0.0);
    store.insert({2}, make_payload(2), 0.0);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.lookup({1}), nullptr);
}

TEST(CacheStore, ZeroCapacityNeverStores) {
    ir::CacheConfig cfg;
    cfg.capacity = 0;
    cfg.max_insert_per_sec = 1e9;
    CacheStore store(cfg);
    EXPECT_FALSE(store.insert({1}, make_payload(1), 0.0));
    EXPECT_EQ(store.size(), 0u);
}

// ------------------------------------------------- flat-LRU equivalence
//
// ISSUE 5 replaced the std::list + unordered_map LRU with a flat
// open-addressing table (intrusive prev/next indices). These tests mirror
// randomized op sequences against ReferenceLruStore — a verbatim port of
// the old list-based implementation — and require identical observable
// behavior: hit/miss per lookup, accept/drop per insert, size, the
// rate-limiter drop count, and (the sharp edge) identical eviction order.

/// The pre-ISSUE-5 list-based store, kept here as the behavioral oracle.
class ReferenceLruStore {
public:
    explicit ReferenceLruStore(const ir::CacheConfig& config)
        : config_(config), tokens_(config.max_insert_per_sec) {}

    const CacheStore::CacheEntry* lookup(const KeyVec& key) {
        auto it = index_.find(key);
        if (it == index_.end()) return nullptr;
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second = lru_.begin();
        return &lru_.front().second;
    }

    bool insert(const KeyVec& key, CacheStore::CacheEntry entry,
                double now_seconds) {
        if (now_seconds > last_refill_) {
            tokens_ = std::min(config_.max_insert_per_sec,
                               tokens_ + (now_seconds - last_refill_) *
                                             config_.max_insert_per_sec);
            last_refill_ = now_seconds;
        }
        if (tokens_ < 1.0) {
            ++inserts_dropped_;
            return false;
        }
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(entry);
            lru_.splice(lru_.begin(), lru_, it->second);
            it->second = lru_.begin();
            tokens_ -= 1.0;
            return true;
        }
        while (lru_.size() >= config_.capacity && !lru_.empty()) {
            index_.erase(lru_.back().first);
            lru_.pop_back();
        }
        if (config_.capacity == 0) return false;
        lru_.emplace_front(key, std::move(entry));
        index_.emplace(key, lru_.begin());
        tokens_ -= 1.0;
        return true;
    }

    void clear() {
        lru_.clear();
        index_.clear();
    }

    std::size_t size() const { return lru_.size(); }
    std::uint64_t inserts_dropped() const { return inserts_dropped_; }

    /// Keys in LRU order, most recent first (eviction-order oracle).
    std::vector<KeyVec> keys_mru_to_lru() const {
        std::vector<KeyVec> keys;
        for (const auto& [k, v] : lru_) keys.push_back(k);
        return keys;
    }

private:
    using LruList = std::list<std::pair<KeyVec, CacheStore::CacheEntry>>;
    ir::CacheConfig config_;
    LruList lru_;
    std::unordered_map<KeyVec, LruList::iterator, KeyVecHash> index_;
    double tokens_;
    double last_refill_ = 0.0;
    std::uint64_t inserts_dropped_ = 0;
};

/// Drives both stores through the same randomized op sequence and checks
/// every observable after every op.
void mirror_random_ops(std::uint64_t seed, ir::CacheConfig cfg, int ops,
                       std::uint64_t key_space) {
    CacheStore flat(cfg);
    ReferenceLruStore ref(cfg);
    util::Rng rng(seed);
    double now = 0.0;
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t k = rng.next_below(key_space);
        const KeyVec key{k, k ^ 0xABCDu};
        const int what = static_cast<int>(rng.next_below(10));
        if (what < 5) {
            const CacheStore::CacheEntry* a = flat.lookup(key);
            const CacheStore::CacheEntry* b = ref.lookup(key);
            ASSERT_EQ(a != nullptr, b != nullptr) << "lookup divergence op " << op;
            if (a != nullptr) {
                ASSERT_EQ(a->steps.size(), b->steps.size());
                ASSERT_EQ(a->steps[0].origin_node, b->steps[0].origin_node);
            }
        } else if (what < 9) {
            auto payload_id = static_cast<ir::NodeId>(op);
            const bool a = flat.insert(key, make_payload(payload_id), now);
            const bool b = ref.insert(key, make_payload(payload_id), now);
            ASSERT_EQ(a, b) << "insert divergence op " << op;
        } else if (what == 9 && rng.next_below(8) == 0) {
            flat.clear();
            ref.clear();
        } else {
            now += 0.001 * static_cast<double>(rng.next_below(50));
        }
        ASSERT_EQ(flat.size(), ref.size()) << "size divergence op " << op;
        ASSERT_EQ(flat.inserts_dropped(), ref.inserts_dropped())
            << "drop-count divergence op " << op;
    }
    // Final eviction-order check: evicting one by one from the flat store
    // (by inserting fresh keys into a full store) must remove the exact
    // keys the reference says are least recent. Simpler equivalent probe:
    // every key the reference still holds must hit in the flat store.
    for (const KeyVec& k : ref.keys_mru_to_lru()) {
        EXPECT_NE(flat.lookup(k), nullptr);
    }
}

TEST(CacheStoreEquivalence, RandomizedMirrorSmallCache) {
    ir::CacheConfig cfg;
    cfg.capacity = 8;  // constant eviction pressure
    cfg.max_insert_per_sec = 1e9;
    mirror_random_ops(1, cfg, 4000, 32);
}

TEST(CacheStoreEquivalence, RandomizedMirrorRateLimited) {
    ir::CacheConfig cfg;
    cfg.capacity = 64;
    cfg.max_insert_per_sec = 50.0;  // limiter actively dropping
    mirror_random_ops(2, cfg, 4000, 256);
}

TEST(CacheStoreEquivalence, RandomizedMirrorLargeKeySpace) {
    ir::CacheConfig cfg;
    cfg.capacity = 512;  // mostly misses + growth/rehash churn
    cfg.max_insert_per_sec = 1e9;
    mirror_random_ops(3, cfg, 6000, 100000);
}

TEST(CacheStoreEquivalence, EvictionOrderIdenticalUnderTouches) {
    ir::CacheConfig cfg;
    cfg.capacity = 4;
    cfg.max_insert_per_sec = 1e9;
    CacheStore flat(cfg);
    ReferenceLruStore ref(cfg);
    util::Rng rng(7);
    // Fill, touch a random subset, then overflow one key at a time and
    // verify both stores evict the same victim at every step.
    for (std::uint64_t k = 0; k < 4; ++k) {
        flat.insert({k}, make_payload(1), 0.0);
        ref.insert({k}, make_payload(1), 0.0);
    }
    for (int round = 0; round < 200; ++round) {
        const std::uint64_t t = rng.next_below(1000);
        flat.lookup({t % 7});
        ref.lookup({t % 7});
        const KeyVec fresh{1000 + static_cast<std::uint64_t>(round)};
        flat.insert(fresh, make_payload(2), 0.0);
        ref.insert(fresh, make_payload(2), 0.0);
        ASSERT_EQ(flat.size(), ref.size());
        for (const KeyVec& k : ref.keys_mru_to_lru()) {
            ASSERT_NE(flat.lookup(k), nullptr) << "round " << round;
            ref.lookup(k);  // keep the two LRU orders in lockstep
        }
    }
}

}  // namespace
}  // namespace pipeleon::sim
