// Direct unit tests for sim/table_state: TableState entry management and
// CacheStore LRU/limiter mechanics (the emulator tests exercise them
// end-to-end; these pin down the data-structure contracts).
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/table_state.h"

namespace pipeleon::sim {
namespace {

using ir::FieldMatch;
using ir::TableEntry;
using ir::TableSpec;

TableEntry entry(std::uint64_t key, int action = 0) {
    TableEntry e;
    e.key = {FieldMatch::exact(key)};
    e.action_index = action;
    return e;
}

TEST(TableState, InsertLookupEraseModify) {
    ir::Table t = TableSpec("t").key("f").noop_action("a").noop_action("b").build();
    TableState state(t);
    EXPECT_EQ(state.update_count(), 0u);

    EXPECT_TRUE(state.insert(entry(1, 0)));
    EXPECT_TRUE(state.insert(entry(2, 1)));
    EXPECT_EQ(state.entries().size(), 2u);
    EXPECT_EQ(state.update_count(), 2u);

    auto hit = state.lookup({2});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(state.entries()[hit->entry_index].action_index, 1);

    EXPECT_TRUE(state.modify(entry(2, 0)));
    EXPECT_EQ(state.entries()[state.lookup({2})->entry_index].action_index, 0);

    EXPECT_TRUE(state.erase({FieldMatch::exact(1)}));
    EXPECT_FALSE(state.lookup({1}).has_value());
    EXPECT_FALSE(state.erase({FieldMatch::exact(1)}));
    EXPECT_EQ(state.update_count(), 4u);

    state.reset_update_count();
    EXPECT_EQ(state.update_count(), 0u);
}

TEST(TableState, CapacityEnforced) {
    ir::Table t = TableSpec("t").key("f").noop_action("a").size(2).build();
    TableState state(t);
    EXPECT_TRUE(state.insert(entry(1)));
    EXPECT_TRUE(state.insert(entry(2)));
    EXPECT_FALSE(state.insert(entry(3)));  // full
    EXPECT_EQ(state.entries().size(), 2u);
}

TEST(TableState, IncompatibleEntryRejected) {
    ir::Table t = TableSpec("t").key("f").noop_action("a").build();
    TableState state(t);
    TableEntry wrong;
    wrong.key = {FieldMatch::exact(1), FieldMatch::exact(2)};
    wrong.action_index = 0;
    EXPECT_FALSE(state.insert(wrong));
    TableEntry bad_action = entry(1, 7);
    EXPECT_FALSE(state.insert(bad_action));
}

TEST(TableState, PrefixAndMaskCounts) {
    ir::Table t = TableSpec("t").key("f", ir::MatchKind::Lpm).noop_action("a").build();
    TableState state(t);
    for (int len : {8, 16, 16, 24}) {
        TableEntry e;
        e.key = {FieldMatch::lpm(0, len)};
        e.action_index = 0;
        ASSERT_TRUE(state.insert(e));
    }
    EXPECT_EQ(state.lpm_prefix_count(), 3);
    EXPECT_EQ(state.ternary_mask_count(), 0);
}

CacheStore::CacheEntry make_payload(int marker) {
    CacheStore::CacheEntry e;
    ReplayStep step;
    step.origin_node = marker;
    step.action_index = 0;
    e.steps.push_back(step);
    return e;
}

TEST(CacheStore, LruEvictsLeastRecentlyUsed) {
    ir::CacheConfig cfg;
    cfg.capacity = 2;
    cfg.max_insert_per_sec = 1e9;
    CacheStore store(cfg);
    EXPECT_TRUE(store.insert({1}, make_payload(1), 0.0));
    EXPECT_TRUE(store.insert({2}, make_payload(2), 0.1));
    // Touch key 1 so key 2 becomes the LRU victim.
    EXPECT_NE(store.lookup({1}), nullptr);
    EXPECT_TRUE(store.insert({3}, make_payload(3), 0.2));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_NE(store.lookup({1}), nullptr);
    EXPECT_EQ(store.lookup({2}), nullptr);  // evicted
    EXPECT_NE(store.lookup({3}), nullptr);
}

TEST(CacheStore, InsertRefreshesExistingKey) {
    ir::CacheConfig cfg;
    cfg.capacity = 4;
    cfg.max_insert_per_sec = 1e9;
    CacheStore store(cfg);
    EXPECT_TRUE(store.insert({5}, make_payload(1), 0.0));
    EXPECT_TRUE(store.insert({5}, make_payload(2), 0.1));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.lookup({5})->steps[0].origin_node, 2);
}

TEST(CacheStore, TokenBucketLimitsInserts) {
    ir::CacheConfig cfg;
    cfg.capacity = 100;
    cfg.max_insert_per_sec = 2.0;  // 2-token burst
    CacheStore store(cfg);
    EXPECT_TRUE(store.insert({1}, make_payload(1), 0.0));
    EXPECT_TRUE(store.insert({2}, make_payload(2), 0.0));
    EXPECT_FALSE(store.insert({3}, make_payload(3), 0.0));  // bucket empty
    EXPECT_EQ(store.inserts_dropped(), 1u);
    // Half a second refills one token.
    EXPECT_TRUE(store.insert({4}, make_payload(4), 0.5));
    EXPECT_FALSE(store.insert({5}, make_payload(5), 0.5));
    EXPECT_EQ(store.inserts_dropped(), 2u);
}

TEST(CacheStore, ClearEmptiesEverything) {
    ir::CacheConfig cfg;
    cfg.capacity = 8;
    CacheStore store(cfg);
    store.insert({1}, make_payload(1), 0.0);
    store.insert({2}, make_payload(2), 0.0);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.lookup({1}), nullptr);
}

TEST(CacheStore, ZeroCapacityNeverStores) {
    ir::CacheConfig cfg;
    cfg.capacity = 0;
    cfg.max_insert_per_sec = 1e9;
    CacheStore store(cfg);
    EXPECT_FALSE(store.insert({1}, make_payload(1), 0.0));
    EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace pipeleon::sim
