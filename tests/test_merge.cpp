// Tests for opt/merge: reproduces the Fig 6 example — merging two exact
// tables yields a ternary table with wildcard rows and priorities — plus
// merge-as-cache, action-argument remapping, and the blowup estimators.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/merge.h"

namespace pipeleon::opt {
namespace {

using ir::Action;
using ir::FieldMatch;
using ir::MatchKind;
using ir::Primitive;
using ir::Table;
using ir::TableEntry;
using ir::TableSpec;

// The two tables from Fig 6: A matches srcIP exactly with actions a1/a2
// (default a2); B matches dstIP exactly with actions b1/b2 (default b2).
Table fig6_a() {
    return TableSpec("A")
        .key("srcIP")
        .noop_action("a1")
        .noop_action("a2")
        .default_to("a2")
        .build();
}

Table fig6_b() {
    return TableSpec("B")
        .key("dstIP")
        .noop_action("b1")
        .noop_action("b2")
        .default_to("b2")
        .build();
}

TEST(Merge, Fig6TableShape) {
    Table a = fig6_a(), b = fig6_b();
    auto merged = build_merged_table({&a, &b}, /*as_cache=*/false);
    ASSERT_TRUE(merged.has_value());
    EXPECT_EQ(merged->role, ir::TableRole::Merged);
    ASSERT_EQ(merged->keys.size(), 2u);
    // "The naive merge of two exact tables will generate a ternary table."
    EXPECT_EQ(merged->keys[0].kind, MatchKind::Ternary);
    EXPECT_EQ(merged->keys[1].kind, MatchKind::Ternary);
    // Cross product of actions: a1b1, a1b2, a2b1, a2b2.
    EXPECT_EQ(merged->actions.size(), 4u);
    EXPECT_GE(merged->action_index("a1+b1"), 0);
    EXPECT_GE(merged->action_index("a1+b2"), 0);
    EXPECT_GE(merged->action_index("a2+b1"), 0);
    EXPECT_GE(merged->action_index("a2+b2"), 0);
    // Miss = both defaults.
    EXPECT_EQ(merged->default_action, merged->action_index("a2+b2"));
    EXPECT_EQ(merged->origin_tables, (std::vector<std::string>{"A", "B"}));
}

TEST(Merge, Fig6Entries) {
    Table a = fig6_a(), b = fig6_b();
    auto merged = build_merged_table({&a, &b}, false);
    ASSERT_TRUE(merged.has_value());

    // A: 10.0.0.1 => a1.  B: 1.1.0.0 => b1.
    TableEntry ea;
    ea.key = {FieldMatch::exact(0x0A000001)};
    ea.action_index = 0;
    TableEntry eb;
    eb.key = {FieldMatch::exact(0x01010000)};
    eb.action_index = 0;

    auto entries = build_merged_entries({&a, &b}, {{ea}, {eb}}, *merged, false);
    ASSERT_TRUE(entries.has_value());
    // Fig 6 shows 4 rows; the all-miss row is the default action, so 3
    // materialized entries: (hit,hit), (hit,miss), (miss,hit).
    ASSERT_EQ(entries->size(), 3u);

    auto find_row = [&](const std::string& action) -> const TableEntry* {
        int idx = merged->action_index(action);
        for (const TableEntry& e : *entries) {
            if (e.action_index == idx) return &e;
        }
        return nullptr;
    };
    const TableEntry* both = find_row("a1+b1");
    ASSERT_NE(both, nullptr);
    EXPECT_EQ(both->priority, 2);  // Fig 6: priority=2 for the double hit
    EXPECT_EQ(both->key[0].mask, 0xFFFFFFFFu);
    EXPECT_EQ(both->key[1].mask, 0xFFFFFFFFu);

    const TableEntry* a_only = find_row("a1+b2");
    ASSERT_NE(a_only, nullptr);
    EXPECT_EQ(a_only->priority, 1);
    EXPECT_TRUE(a_only->key[1].is_wildcard());  // dstIP = "*"

    const TableEntry* b_only = find_row("a2+b1");
    ASSERT_NE(b_only, nullptr);
    EXPECT_EQ(b_only->priority, 1);
    EXPECT_TRUE(b_only->key[0].is_wildcard());

    EXPECT_EQ(find_row("a2+b2"), nullptr);  // covered by the default action
}

TEST(Merge, AsCacheKeepsExactKeysAndAllHitRowsOnly) {
    Table a = fig6_a(), b = fig6_b();
    auto merged = build_merged_table({&a, &b}, /*as_cache=*/true);
    ASSERT_TRUE(merged.has_value());
    EXPECT_EQ(merged->role, ir::TableRole::MergedCache);
    EXPECT_EQ(merged->keys[0].kind, MatchKind::Exact);
    EXPECT_EQ(merged->keys[1].kind, MatchKind::Exact);
    EXPECT_EQ(merged->default_action, -1);  // miss falls back to originals

    TableEntry ea;
    ea.key = {FieldMatch::exact(1)};
    ea.action_index = 0;
    TableEntry ea2;
    ea2.key = {FieldMatch::exact(2)};
    ea2.action_index = 1;
    TableEntry eb;
    eb.key = {FieldMatch::exact(9)};
    eb.action_index = 0;

    auto entries =
        build_merged_entries({&a, &b}, {{ea, ea2}, {eb}}, *merged, true);
    ASSERT_TRUE(entries.has_value());
    EXPECT_EQ(entries->size(), 2u);  // 2 x 1 all-hit combos
    for (const TableEntry& e : *entries) {
        for (const FieldMatch& m : e.key) EXPECT_EQ(m.kind, MatchKind::Exact);
    }
}

TEST(Merge, ActionArgumentsAreRemapped) {
    Action set_port;
    set_port.name = "set_port";
    set_port.primitives.push_back(Primitive::forward_from_arg(0));
    Table a = TableSpec("A").key("x").action(set_port).build();

    Action set_meta;
    set_meta.name = "set_meta";
    set_meta.primitives.push_back(Primitive::set_from_arg("meta", 0));
    Table b = TableSpec("B").key("y").action(set_meta).build();

    auto merged = build_merged_table({&a, &b}, false);
    ASSERT_TRUE(merged.has_value());
    int idx = merged->action_index("set_port+set_meta");
    ASSERT_GE(idx, 0);
    const Action& m = merged->actions[static_cast<std::size_t>(idx)];
    ASSERT_EQ(m.primitives.size(), 2u);
    EXPECT_EQ(m.primitives[0].arg_index, 0);  // A's arg stays at 0
    EXPECT_EQ(m.primitives[1].arg_index, 1);  // B's arg shifted past A's

    // Entry data concatenates in component order.
    TableEntry ea;
    ea.key = {FieldMatch::exact(1)};
    ea.action_index = 0;
    ea.action_data = {7};
    TableEntry eb;
    eb.key = {FieldMatch::exact(2)};
    eb.action_index = 0;
    eb.action_data = {13};
    auto entries = build_merged_entries({&a, &b}, {{ea}, {eb}}, *merged, false);
    ASSERT_TRUE(entries.has_value());
    const TableEntry* both = nullptr;
    for (const TableEntry& e : *entries) {
        if (e.action_index == idx) both = &e;
    }
    ASSERT_NE(both, nullptr);
    EXPECT_EQ(both->action_data, (std::vector<std::uint64_t>{7, 13}));
}

TEST(Merge, LpmSourceBecomesTernary) {
    Table a = TableSpec("A").key("dst", MatchKind::Lpm).noop_action("a1").build();
    Table b = fig6_b();
    auto merged = build_merged_table({&a, &b}, false);
    ASSERT_TRUE(merged.has_value());
    EXPECT_EQ(merged->keys[0].kind, MatchKind::Ternary);

    TableEntry ea;
    ea.key = {FieldMatch::lpm(0x0A000000, 8)};
    ea.action_index = 0;
    TableEntry eb;
    eb.key = {FieldMatch::exact(5)};
    eb.action_index = 0;
    auto entries = build_merged_entries({&a, &b}, {{ea}, {eb}}, *merged, false);
    ASSERT_TRUE(entries.has_value());
    // The LPM /8 prefix becomes mask 0xFF000000.
    bool found = false;
    for (const TableEntry& e : *entries) {
        if (e.key[0].mask == 0xFF000000u) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Merge, MergeableRejectsBadInputs) {
    Table a = fig6_a(), b = fig6_b();
    EXPECT_TRUE(mergeable({&a, &b}, false));
    EXPECT_FALSE(mergeable({&a}, false));  // need at least two

    Table lpm = TableSpec("L").key("x", MatchKind::Lpm).noop_action("l1").build();
    EXPECT_TRUE(mergeable({&a, &lpm}, false));
    EXPECT_FALSE(mergeable({&a, &lpm}, true));  // as-cache needs exact keys

    Table cache = TableSpec("C").key("x").noop_action("h").build();
    cache.role = ir::TableRole::Cache;
    EXPECT_FALSE(mergeable({&a, &cache}, false));

    // Default actions with runtime args cannot back wildcard rows.
    Action dflt;
    dflt.name = "argy";
    dflt.primitives.push_back(Primitive::set_from_arg("m", 0));
    Table bad = TableSpec("D").key("y").action(dflt).default_to("argy").build();
    EXPECT_FALSE(mergeable({&a, &bad}, false));
    EXPECT_TRUE(mergeable({&a, &bad}, true));  // cache flavor: hits only
}

TEST(Merge, ActionCrossProductCap) {
    TableSpec sa("A"), sb("B");
    sa.key("x");
    sb.key("y");
    for (int i = 0; i < 20; ++i) {
        sa.noop_action("a" + std::to_string(i));
        sb.noop_action("b" + std::to_string(i));
    }
    Table a = sa.build(), b = sb.build();
    MergeLimits limits;
    limits.max_actions = 100;  // 20*20 = 400 > 100
    EXPECT_FALSE(build_merged_table({&a, &b}, false, "", limits).has_value());
}

TEST(Merge, EntryCrossProductCap) {
    Table a = fig6_a(), b = fig6_b();
    auto merged = build_merged_table({&a, &b}, false);
    ASSERT_TRUE(merged.has_value());
    std::vector<TableEntry> many_a, many_b;
    for (int i = 0; i < 100; ++i) {
        TableEntry e;
        e.key = {FieldMatch::exact(static_cast<std::uint64_t>(i))};
        e.action_index = 0;
        many_a.push_back(e);
        many_b.push_back(e);
    }
    MergeLimits limits;
    limits.max_entries = 1000;  // 101*101 > 1000
    EXPECT_FALSE(
        build_merged_entries({&a, &b}, {many_a, many_b}, *merged, false, limits)
            .has_value());
}

TEST(Merge, Estimators) {
    // N(T_AB) = N(A) * N(B).
    EXPECT_DOUBLE_EQ(estimated_merged_entries({10, 20}), 200.0);
    EXPECT_DOUBLE_EQ(estimated_merged_entries({}), 1.0);
    // I(T_AB) = I_A*N_B + I_B*N_A.
    EXPECT_DOUBLE_EQ(estimated_merged_update_rate({10, 20}, {2, 3}),
                     2 * 20 + 3 * 10);
}

TEST(Merge, ThreeWayMerge) {
    Table a = fig6_a(), b = fig6_b();
    Table c = TableSpec("C")
                  .key("port")
                  .noop_action("c1")
                  .default_to("c1")
                  .build();
    auto merged = build_merged_table({&a, &b, &c}, false);
    ASSERT_TRUE(merged.has_value());
    EXPECT_EQ(merged->keys.size(), 3u);
    EXPECT_EQ(merged->actions.size(), 4u);  // 2*2*1
    EXPECT_EQ(merged->default_action, merged->action_index("a2+b2+c1"));
}

TEST(Merge, ArgCount) {
    Action a;
    a.name = "x";
    EXPECT_EQ(action_arg_count(a), 0);
    a.primitives.push_back(Primitive::set_from_arg("f", 2));
    EXPECT_EQ(action_arg_count(a), 3);
}

}  // namespace
}  // namespace pipeleon::opt
