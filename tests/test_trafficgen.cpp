// Tests for trafficgen/workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "trafficgen/workload.h"

namespace pipeleon::trafficgen {
namespace {

std::vector<FieldRange> two_tuple() {
    return {{"src", 0, 0xFFFF}, {"dst", 0, 0xFFFF}};
}

TEST(FlowSet, GenerateIsDeterministic) {
    util::Rng r1(5), r2(5);
    FlowSet a = FlowSet::generate(two_tuple(), 100, r1);
    FlowSet b = FlowSet::generate(two_tuple(), 100, r2);
    ASSERT_EQ(a.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(a.value(i, "src"), b.value(i, "src"));
        EXPECT_EQ(a.value(i, "dst"), b.value(i, "dst"));
    }
}

TEST(FlowSet, ValuesInRange) {
    util::Rng rng(7);
    FlowSet fs = FlowSet::generate({{"f", 100, 200}}, 1000, rng);
    for (std::size_t i = 0; i < fs.size(); ++i) {
        EXPECT_GE(fs.value(i, "f"), 100u);
        EXPECT_LE(fs.value(i, "f"), 200u);
    }
    EXPECT_EQ(fs.value(0, "nope"), 0u);
    EXPECT_EQ(fs.value(99999, "f"), 0u);
}

TEST(FlowSet, MakePacketSetsFields) {
    util::Rng rng(9);
    FlowSet fs = FlowSet::generate(two_tuple(), 10, rng);
    sim::FieldTable ft;
    sim::Packet p = fs.make_packet(3, ft, 256);
    EXPECT_EQ(p.get(ft.find("src")), fs.value(3, "src"));
    EXPECT_EQ(p.get(ft.find("dst")), fs.value(3, "dst"));
    EXPECT_EQ(p.wire_bytes(), 256u);
}

TEST(FlowSet, ExactEntryMatchesFlowPacket) {
    util::Rng rng(11);
    FlowSet fs = FlowSet::generate(two_tuple(), 10, rng);
    ir::TableEntry e = fs.exact_entry(4, {"dst", "src"}, 1, {42}, 3);
    EXPECT_EQ(e.key.size(), 2u);
    EXPECT_EQ(e.key[0].value, fs.value(4, "dst"));
    EXPECT_EQ(e.key[1].value, fs.value(4, "src"));
    EXPECT_EQ(e.action_index, 1);
    EXPECT_EQ(e.action_data, (std::vector<std::uint64_t>{42}));
    EXPECT_EQ(e.priority, 3);
}

TEST(Workload, UniformCoversFlows) {
    util::Rng rng(13);
    FlowSet fs = FlowSet::generate(two_tuple(), 16, rng);
    Workload w(fs, Locality::Uniform, 0.0, 17);
    std::set<std::size_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(w.next_flow());
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Workload, ZipfConcentratesTraffic) {
    util::Rng rng(19);
    FlowSet fs = FlowSet::generate(two_tuple(), 1000, rng);
    Workload w(fs, Locality::Zipf, 1.2, 23);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 50000; ++i) ++counts[w.next_flow()];
    // The single hottest flow should carry far more than 1/1000 of traffic.
    int max_count = 0;
    for (auto& [flow, c] : counts) max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 2500);  // > 5% for the top flow
}

TEST(Workload, ReshuffleChangesHotFlows) {
    util::Rng rng(29);
    FlowSet fs = FlowSet::generate(two_tuple(), 1000, rng);
    Workload w(fs, Locality::Zipf, 1.5, 31);
    auto hottest = [&w]() {
        std::map<std::size_t, int> counts;
        for (int i = 0; i < 20000; ++i) ++counts[w.next_flow()];
        std::size_t best = 0;
        int best_count = -1;
        for (auto& [flow, c] : counts) {
            if (c > best_count) {
                best = flow;
                best_count = c;
            }
        }
        return best;
    };
    std::size_t before = hottest();
    w.reshuffle_ranks();
    std::size_t after = hottest();
    // With 1000 flows, the hot flow almost surely moves.
    EXPECT_NE(before, after);
}

TEST(Workload, PickFlowsFractions) {
    util::Rng rng(37);
    FlowSet fs = FlowSet::generate(two_tuple(), 100, rng);
    Workload w(fs, Locality::Uniform, 0.0, 41);
    auto quarter = w.pick_flows(0.25);
    EXPECT_EQ(quarter.size(), 25u);
    std::set<std::size_t> uniq(quarter.begin(), quarter.end());
    EXPECT_EQ(uniq.size(), 25u);  // distinct
    EXPECT_EQ(w.pick_flows(1.0).size(), 100u);
    EXPECT_EQ(w.pick_flows(2.0).size(), 100u);  // clamped
}

TEST(Workload, NextPacketCarriesFlowFields) {
    util::Rng rng(43);
    FlowSet fs = FlowSet::generate(two_tuple(), 8, rng);
    Workload w(fs, Locality::Uniform, 0.0, 47);
    sim::FieldTable ft;
    sim::Packet p = w.next_packet(ft);
    bool matched = false;
    for (std::size_t f = 0; f < fs.size(); ++f) {
        if (p.get(ft.find("src")) == fs.value(f, "src") &&
            p.get(ft.find("dst")) == fs.value(f, "dst")) {
            matched = true;
        }
    }
    EXPECT_TRUE(matched);
}

}  // namespace
}  // namespace pipeleon::trafficgen
