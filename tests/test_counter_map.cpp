// Tests for profile/counter_map: translating optimized-program counters back
// into original-program profiles (§4.1.2).
#include <gtest/gtest.h>

#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "profile/counter_map.h"

namespace pipeleon::profile {
namespace {

using ir::kNoNode;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

Program two_table_chain() {
    ProgramBuilder b("orig");
    b.append(TableSpec("A").key("src").noop_action("a1").noop_action("a2").build());
    b.append(TableSpec("B").key("dst").noop_action("b1").noop_action("b2").build());
    return b.build();
}

TEST(CounterMap, IdentityMapping) {
    Program p = two_table_chain();
    CounterMap map = CounterMap::build(p, p);
    RawCounters raw;
    raw.reset_for(p, 2.0);
    raw.action_hits[0] = {10, 20};
    raw.action_hits[1] = {5, 25};
    raw.misses[0] = 3;
    EntrySnapshot snap;
    snap.entry_count = 42;
    snap.entry_updates = 8;
    raw.entries["A"] = snap;

    RuntimeProfile prof = map.translate(p, raw);
    EXPECT_EQ(prof.table(0).action_hits, (std::vector<std::uint64_t>{10, 20}));
    EXPECT_EQ(prof.table(0).misses, 3u);
    EXPECT_EQ(prof.table(0).entry_count, 42u);
    EXPECT_DOUBLE_EQ(prof.update_rate(0), 4.0);
    EXPECT_EQ(prof.table(1).action_hits, (std::vector<std::uint64_t>{5, 25}));
}

TEST(CounterMap, BranchesPairInTopoOrder) {
    ProgramBuilder b("br");
    NodeId t = b.add(TableSpec("T").key("k").noop_action("a").build());
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 7});
    b.connect(t, br);
    b.set_root(t);
    Program p = b.build();

    CounterMap map = CounterMap::build(p, p);
    RawCounters raw;
    raw.reset_for(p, 1.0);
    raw.branch_true[static_cast<std::size_t>(br)] = 11;
    raw.branch_false[static_cast<std::size_t>(br)] = 22;
    RuntimeProfile prof = map.translate(p, raw);
    EXPECT_EQ(prof.branch(br).taken_true, 11u);
    EXPECT_EQ(prof.branch(br).taken_false, 22u);
}

TEST(CounterMap, BranchCountMismatchThrows) {
    ProgramBuilder b1("a");
    NodeId br = b1.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId t = b1.add(TableSpec("T").key("k").noop_action("a").build());
    b1.connect_branch(br, t, t);
    b1.set_root(br);
    Program with_branch = b1.build();

    Program without = two_table_chain();
    EXPECT_THROW(CounterMap::build(with_branch, without), std::runtime_error);
}

TEST(CounterMap, CacheReplaysFoldIntoOriginalActions) {
    Program original = two_table_chain();
    auto pipelets = analysis::form_pipelets(original);

    // Cache both tables together.
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1};
    plan.layout.caches = {opt::Segment{0, 1}};
    Program optimized = opt::apply_plans(original, pipelets, {plan});

    NodeId cache_node = kNoNode;
    for (NodeId id : optimized.reachable()) {
        if (optimized.node(id).is_table() &&
            optimized.node(id).table.role == ir::TableRole::Cache) {
            cache_node = id;
        }
    }
    ASSERT_NE(cache_node, kNoNode);

    CounterMap map = CounterMap::build(original, optimized);
    RawCounters raw;
    raw.reset_for(optimized, 1.0);
    // Fall-through hits on the deployed originals.
    NodeId a_opt = optimized.find_table("A");
    NodeId b_opt = optimized.find_table("B");
    raw.action_hits[static_cast<std::size_t>(a_opt)] = {10, 0};
    raw.action_hits[static_cast<std::size_t>(b_opt)] = {0, 10};
    // Cache-served traffic.
    raw.replays[{cache_node, "A", "a1"}] = 90;
    raw.replays[{cache_node, "B", "b2"}] = 90;
    raw.cache_hits[static_cast<std::size_t>(cache_node)] = 90;
    raw.cache_misses[static_cast<std::size_t>(cache_node)] = 10;

    RuntimeProfile prof = map.translate(original, raw);
    NodeId a_orig = original.find_table("A");
    NodeId b_orig = original.find_table("B");
    // Original counter = cache replays + fall-through hits (the §4.1.2 sum).
    EXPECT_EQ(prof.table(a_orig).action_hits[0], 100u);
    EXPECT_EQ(prof.table(b_orig).action_hits[1], 100u);
    // Cache stats attributed to the covered originals.
    EXPECT_EQ(prof.table(a_orig).cache_hits, 90u);
    EXPECT_EQ(prof.table(a_orig).cache_misses, 10u);
    EXPECT_DOUBLE_EQ(prof.cache_hit_rate(a_orig), 0.9);
}

TEST(CounterMap, MergedActionsDecompose) {
    Program original = two_table_chain();
    auto pipelets = analysis::form_pipelets(original);

    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout.order = {0, 1};
    plan.layout.merges = {opt::MergeSpec{opt::Segment{0, 1}, false}};
    Program optimized = opt::apply_plans(original, pipelets, {plan});

    NodeId merged = kNoNode;
    for (NodeId id : optimized.reachable()) {
        if (optimized.node(id).table.role == ir::TableRole::Merged) merged = id;
    }
    ASSERT_NE(merged, kNoNode);
    const ir::Table& mt = optimized.node(merged).table;

    CounterMap map = CounterMap::build(original, optimized);
    RawCounters raw;
    raw.reset_for(optimized, 1.0);
    int a1b2 = mt.action_index("a1+b2");
    int a2b1 = mt.action_index("a2+b1");
    ASSERT_GE(a1b2, 0);
    ASSERT_GE(a2b1, 0);
    raw.action_hits[static_cast<std::size_t>(merged)]
                   [static_cast<std::size_t>(a1b2)] = 30;
    raw.action_hits[static_cast<std::size_t>(merged)]
                   [static_cast<std::size_t>(a2b1)] = 70;

    RuntimeProfile prof = map.translate(original, raw);
    NodeId a_orig = original.find_table("A");
    NodeId b_orig = original.find_table("B");
    EXPECT_EQ(prof.table(a_orig).action_hits[0], 30u);  // a1
    EXPECT_EQ(prof.table(a_orig).action_hits[1], 70u);  // a2
    EXPECT_EQ(prof.table(b_orig).action_hits[0], 70u);  // b1
    EXPECT_EQ(prof.table(b_orig).action_hits[1], 30u);  // b2
}

}  // namespace
}  // namespace pipeleon::profile
