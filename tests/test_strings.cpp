// Tests for util/strings.
#include <gtest/gtest.h>

#include "util/strings.h"

namespace pipeleon::util {
namespace {

TEST(Strings, Split) {
    EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, "+"), "a+b+c");
    EXPECT_EQ(join({}, "+"), "");
    EXPECT_EQ(join({"solo"}, "+"), "solo");
}

TEST(Strings, SplitJoinRoundTrip) {
    std::string s = "t0_a1+t1_deny+-";
    EXPECT_EQ(join(split(s, '+'), "+"), s);
}

TEST(Strings, Format) {
    EXPECT_EQ(format("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
    EXPECT_EQ(format("%s", ""), "");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(starts_with("cache_t1_t2", "cache_"));
    EXPECT_FALSE(starts_with("t1", "cache_"));
    EXPECT_TRUE(ends_with("prog.json", ".json"));
    EXPECT_FALSE(ends_with("prog.json", ".dot"));
    EXPECT_TRUE(starts_with("x", ""));
    EXPECT_TRUE(ends_with("x", ""));
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(TextTable, RendersAlignedRows) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::string out = t.to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    // Three lines of header + rule + 2 rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, NumericRows) {
    TextTable t({"a", "b"});
    t.add_numeric_row({1.23456, 2.0}, 3);
    std::string out = t.to_string();
    EXPECT_NE(out.find("1.235"), std::string::npos);
    EXPECT_NE(out.find("2.000"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
    TextTable t({"a", "b", "c"});
    t.add_row({"only"});
    EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace pipeleon::util
