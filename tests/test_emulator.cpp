// Tests for sim/emulator: run-to-completion execution, latency accounting
// against the cost model, flow caches (learning, replay, LRU, rate limits,
// invalidation), counters with sampling, migration, and reconfiguration.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.h"
#include "sim/emulator.h"

namespace pipeleon::sim {
namespace {

using ir::Action;
using ir::FieldMatch;
using ir::kNoNode;
using ir::MatchKind;
using ir::NodeId;
using ir::Primitive;
using ir::Program;
using ir::ProgramBuilder;
using ir::Table;
using ir::TableEntry;
using ir::TableSpec;

NicModel test_model() {
    NicModel m;
    m.name = "test";
    m.costs.l_mat = 10.0;
    m.costs.l_act = 2.0;
    m.costs.l_branch = 1.0;
    m.costs.l_counter = 0.0;
    m.costs.l_migration = 100.0;
    m.costs.cpu_slowdown = 3.0;
    m.line_rate_gbps = 100.0;
    m.cycles_per_second = 1e9;
    m.cores = 1;
    return m;
}

profile::InstrumentationConfig no_instr() {
    profile::InstrumentationConfig c;
    c.enabled = false;
    return c;
}

TableEntry exact_entry(std::uint64_t key, int action,
                       std::vector<std::uint64_t> data = {}) {
    TableEntry e;
    e.key = {FieldMatch::exact(key)};
    e.action_index = action;
    e.action_data = std::move(data);
    return e;
}

TEST(Emulator, ExactTableHitExecutesAction) {
    ProgramBuilder b("p");
    Action set_meta;
    set_meta.name = "set_meta";
    set_meta.primitives.push_back(Primitive::set_from_arg("meta", 0));
    b.append(TableSpec("t").key("f").action(set_meta).build());
    Emulator emu(test_model(), b.build(), no_instr());

    ASSERT_TRUE(emu.insert_entry("t", exact_entry(7, 0, {99})));
    Packet pkt;
    pkt.set(emu.fields().intern("f"), 7);
    ProcessResult r = emu.process(pkt);
    EXPECT_EQ(pkt.get(emu.fields().find("meta")), 99u);
    EXPECT_FALSE(r.dropped);
    // 1 exact lookup (10) + 1 primitive (2).
    EXPECT_DOUBLE_EQ(r.cycles, 12.0);
    EXPECT_EQ(r.nodes_visited, 1);
}

TEST(Emulator, MissRunsDefaultAction) {
    ProgramBuilder b("p");
    b.append(TableSpec("t")
                 .key("f")
                 .noop_action("hit", 1)
                 .drop_action("deny")
                 .default_to("deny")
                 .build());
    Emulator emu(test_model(), b.build(), no_instr());
    Packet pkt;
    pkt.set(emu.fields().intern("f"), 123);  // no entries -> miss -> deny
    ProcessResult r = emu.process(pkt);
    EXPECT_TRUE(r.dropped);
    EXPECT_EQ(emu.packets_dropped(), 1u);
}

TEST(Emulator, MissWithoutDefaultContinues) {
    ProgramBuilder b("p");
    b.append(TableSpec("t0").key("f").noop_action("a", 1).build());
    b.append(TableSpec("t1").key("g").noop_action("b", 1).build());
    Emulator emu(test_model(), b.build(), no_instr());
    Packet pkt;
    ProcessResult r = emu.process(pkt);
    EXPECT_EQ(r.nodes_visited, 2);  // both tables looked up, no action run
    EXPECT_DOUBLE_EQ(r.cycles, 20.0);
}

TEST(Emulator, DropHaltsExecution) {
    ProgramBuilder b("p");
    b.append(TableSpec("acl")
                 .key("f")
                 .drop_action("deny")
                 .noop_action("ok", 1)
                 .default_to("ok")
                 .build());
    b.append(TableSpec("t").key("g").noop_action("a", 5).build());
    Emulator emu(test_model(), b.build(), no_instr());
    ASSERT_TRUE(emu.insert_entry("acl", exact_entry(1, 0)));

    Packet bad;
    bad.set(emu.fields().intern("f"), 1);
    ProcessResult r = emu.process(bad);
    EXPECT_TRUE(r.dropped);
    EXPECT_EQ(r.nodes_visited, 1);  // never reached t

    Packet good;
    good.set(emu.fields().intern("f"), 2);
    ProcessResult r2 = emu.process(good);
    EXPECT_FALSE(r2.dropped);
    EXPECT_EQ(r2.nodes_visited, 2);
    EXPECT_GT(r2.cycles, r.cycles);
}

TEST(Emulator, BranchRouting) {
    ProgramBuilder b("p");
    NodeId br = b.add_branch({"proto", ir::CmpOp::Eq, 6});
    NodeId tcp = b.add(TableSpec("tcp").key("sport").noop_action("a", 1).build());
    NodeId other = b.add(TableSpec("other").key("x").noop_action("a", 2).build());
    b.connect_branch(br, tcp, other);
    b.set_root(br);
    Emulator emu(test_model(), b.build(), {});  // instrumented

    Packet p1;
    p1.set(emu.fields().intern("proto"), 6);
    emu.process(p1);
    Packet p2;
    p2.set(emu.fields().intern("proto"), 17);
    emu.process(p2);

    auto raw = emu.read_counters();
    EXPECT_EQ(raw.branch_true[static_cast<std::size_t>(br)], 1u);
    EXPECT_EQ(raw.branch_false[static_cast<std::size_t>(br)], 1u);
}

TEST(Emulator, LatencyMatchesCostModelForChain) {
    // Emulated per-packet cycles must equal the cost model's L(G) for a
    // deterministic single-path program.
    Program p = ir::chain_of_exact_tables("c", 6, 1, 2);
    Emulator emu(test_model(), p, no_instr());
    Packet pkt;
    ProcessResult r = emu.process(pkt);

    // Cost model: 6 tables * (1*10 + ... ) — misses with default action a0
    // (2 noop primitives): 10 + 2*2 = 14 each.
    EXPECT_DOUBLE_EQ(r.cycles, 6 * 14.0);
}

TEST(Emulator, TernaryTableChargesMaskCount) {
    ProgramBuilder b("p");
    b.append(TableSpec("t").key("f", MatchKind::Ternary).noop_action("a").build());
    Emulator emu(test_model(), b.build(), no_instr());
    // Three distinct masks -> m = 3 probes.
    for (std::uint64_t i = 0; i < 3; ++i) {
        TableEntry e;
        e.key = {FieldMatch::ternary(0, 0xFULL << (8 * i))};
        e.action_index = 0;
        ASSERT_TRUE(emu.insert_entry("t", e));
    }
    Packet pkt;
    pkt.set(emu.fields().intern("f"), 0);  // matches every mask group
    ProcessResult r = emu.process(pkt);
    // m=3 lookups (30) + 1 noop primitive (2).
    EXPECT_DOUBLE_EQ(r.cycles, 32.0);
}

TEST(Emulator, CountersAndSampling) {
    profile::InstrumentationConfig instr;
    instr.enabled = true;
    instr.sampling_rate = 1.0;
    Program p = ir::chain_of_exact_tables("c", 2, 1, 1);
    NicModel counting = test_model();
    counting.costs.l_counter = 0.5;
    Emulator emu(counting, p, instr);
    Packet pkt;
    ProcessResult r = emu.process(pkt);
    // Counter update cost: 0.5 per node.
    EXPECT_DOUBLE_EQ(r.cycles, 2 * (10.0 + 2.0 + 0.5));

    auto raw = emu.read_counters();
    EXPECT_EQ(raw.misses[0], 1u);  // miss executes default a0

    // Sampled 1/4: only every 4th packet pays and counts, export rescales.
    emu.set_instrumentation({true, 0.25});
    emu.begin_window();
    double cycles_sampled = 0.0, cycles_unsampled = 1e18;
    for (int i = 0; i < 8; ++i) {
        Packet q;
        double c = emu.process(q).cycles;
        cycles_sampled = std::max(cycles_sampled, c);
        cycles_unsampled = std::min(cycles_unsampled, c);
    }
    EXPECT_DOUBLE_EQ(cycles_sampled, 2 * 12.5);
    EXPECT_DOUBLE_EQ(cycles_unsampled, 2 * 12.0);
    auto raw2 = emu.read_counters();
    EXPECT_EQ(raw2.misses[0], 8u);  // 2 sampled * 4 (rescaled)
}

Program cached_two_tables() {
    // cache(A,B) -> [A -> B] -> exit, built via the transform would be
    // equivalent; construct manually for a focused test.
    ProgramBuilder b("cached");
    Action set_x;
    set_x.name = "set_x";
    set_x.primitives.push_back(Primitive::set_from_arg("x", 0));
    Table a = TableSpec("A").key("src").action(set_x).build();
    Action set_y;
    set_y.name = "set_y";
    set_y.primitives.push_back(Primitive::set_from_arg("y", 0));
    Table bt = TableSpec("B").key("dst").action(set_y).build();

    ir::Table cache;
    cache.name = "cache_A_B";
    cache.role = ir::TableRole::Cache;
    cache.keys = {{"src", MatchKind::Exact, 32}, {"dst", MatchKind::Exact, 32}};
    Action hit;
    hit.name = "cache_hit";
    cache.actions.push_back(hit);
    cache.default_action = -1;
    cache.origin_tables = {"A", "B"};
    cache.cache.capacity = 4;
    cache.cache.max_insert_per_sec = 1000.0;

    NodeId c = b.add(cache);
    NodeId na = b.add(a);
    NodeId nb = b.add(bt);
    b.connect_action(c, 0, kNoNode);
    b.connect_miss(c, na);
    b.connect(na, nb);
    b.set_root(c);
    return b.build();
}

TEST(Emulator, CacheLearnsAndReplays) {
    Emulator emu(test_model(), cached_two_tables(), {});  // instrumented
    ASSERT_TRUE(emu.insert_entry("A", exact_entry(1, 0, {11})));
    ASSERT_TRUE(emu.insert_entry("B", exact_entry(2, 0, {22})));

    FieldId src = emu.fields().intern("src");
    FieldId dst = emu.fields().intern("dst");

    // First packet misses the cache, traverses A and B, installs an entry.
    Packet p1;
    p1.set(src, 1);
    p1.set(dst, 2);
    ProcessResult r1 = emu.process(p1);
    EXPECT_EQ(p1.get(emu.fields().find("x")), 11u);
    EXPECT_EQ(p1.get(emu.fields().find("y")), 22u);
    // cache probe + A (10+2) + B (10+2).
    EXPECT_DOUBLE_EQ(r1.cycles, 10.0 + 12.0 + 12.0);
    EXPECT_EQ(emu.cache_size("cache_A_B"), 1u);

    // Second packet of the same flow hits the cache: replay only.
    Packet p2;
    p2.set(src, 1);
    p2.set(dst, 2);
    ProcessResult r2 = emu.process(p2);
    EXPECT_EQ(p2.get(emu.fields().find("x")), 11u);
    EXPECT_EQ(p2.get(emu.fields().find("y")), 22u);
    // cache probe (10) + replayed primitives (2 + 2).
    EXPECT_DOUBLE_EQ(r2.cycles, 14.0);

    auto raw = emu.read_counters();
    NodeId cache_node = emu.program().find_table("cache_A_B");
    EXPECT_EQ(raw.cache_hits[static_cast<std::size_t>(cache_node)], 1u);
    EXPECT_EQ(raw.cache_misses[static_cast<std::size_t>(cache_node)], 1u);
    EXPECT_EQ((raw.replays.at({cache_node, "A", "set_x"})), 1u);
    EXPECT_EQ((raw.replays.at({cache_node, "B", "set_y"})), 1u);
}

TEST(Emulator, CacheReplaysMissOutcomes) {
    Emulator emu(test_model(), cached_two_tables(), no_instr());
    ASSERT_TRUE(emu.insert_entry("A", exact_entry(1, 0, {11})));
    // B has no entries; flow (1, 9) hits A, misses B.
    FieldId src = emu.fields().intern("src");
    FieldId dst = emu.fields().intern("dst");
    Packet p1;
    p1.set(src, 1);
    p1.set(dst, 9);
    emu.process(p1);
    Packet p2;
    p2.set(src, 1);
    p2.set(dst, 9);
    ProcessResult r2 = emu.process(p2);
    EXPECT_EQ(p2.get(emu.fields().find("x")), 11u);
    EXPECT_EQ(p2.get(emu.fields().find("y")), 0u);  // B missed, no default
    // cache probe + replay of A's primitive only.
    EXPECT_DOUBLE_EQ(r2.cycles, 12.0);
}

TEST(Emulator, CacheLruEviction) {
    Emulator emu(test_model(), cached_two_tables(), no_instr());
    FieldId src = emu.fields().intern("src");
    FieldId dst = emu.fields().intern("dst");
    // Capacity is 4; install 6 distinct flows.
    for (std::uint64_t f = 0; f < 6; ++f) {
        Packet p;
        p.set(src, f);
        p.set(dst, f);
        emu.process(p);
        emu.advance_time(0.01);
    }
    EXPECT_EQ(emu.cache_size("cache_A_B"), 4u);
}

TEST(Emulator, CacheInsertionRateLimited) {
    Program p = cached_two_tables();
    // Tighten the limiter: 1 insert per second.
    NodeId cache_node = p.find_table("cache_A_B");
    p.node(cache_node).table.cache.max_insert_per_sec = 1.0;
    Emulator emu(test_model(), p, no_instr());
    FieldId src = emu.fields().intern("src");
    FieldId dst = emu.fields().intern("dst");
    for (std::uint64_t f = 0; f < 5; ++f) {
        Packet pkt;
        pkt.set(src, 100 + f);
        pkt.set(dst, 100 + f);
        emu.process(pkt);  // all at t=0: only the initial burst fits
    }
    EXPECT_LE(emu.cache_size("cache_A_B"), 1u);
    auto raw = emu.read_counters();
    EXPECT_GE(raw.inserts_dropped[static_cast<std::size_t>(
                  emu.program().find_table("cache_A_B"))],
              3u);
}

TEST(Emulator, CacheInvalidation) {
    Emulator emu(test_model(), cached_two_tables(), no_instr());
    FieldId src = emu.fields().intern("src");
    FieldId dst = emu.fields().intern("dst");
    Packet p;
    p.set(src, 1);
    p.set(dst, 2);
    emu.process(p);
    EXPECT_EQ(emu.cache_size("cache_A_B"), 1u);
    EXPECT_EQ(emu.invalidate_caches_covering("A"), 1);
    EXPECT_EQ(emu.cache_size("cache_A_B"), 0u);
    EXPECT_EQ(emu.invalidate_caches_covering("unrelated"), 0);
}

TEST(Emulator, MigrationCostCharged) {
    Program p = ir::chain_of_exact_tables("mig", 3, 1, 1);
    p.node(1).core = ir::CoreKind::Cpu;
    Emulator emu(test_model(), p, no_instr());
    Packet pkt;
    ProcessResult r = emu.process(pkt);
    EXPECT_EQ(r.migrations, 2);  // asic -> cpu -> asic
    // node0: 12, node1: 12*3 (cpu), node2: 12, + 2 migrations.
    EXPECT_DOUBLE_EQ(r.cycles, 12.0 + 36.0 + 12.0 + 200.0);
}

TEST(Emulator, EntryUpdatesTracked) {
    Program p = ir::chain_of_exact_tables("u", 1, 2, 1);
    Emulator emu(test_model(), p, no_instr());
    emu.insert_entry("t0", exact_entry(1, 0));
    emu.insert_entry("t0", exact_entry(2, 1));
    emu.delete_entry("t0", {FieldMatch::exact(1)});
    emu.modify_entry("t0", exact_entry(2, 0));
    auto raw = emu.read_counters();
    EXPECT_EQ(raw.entries.at("t0").entry_count, 1u);
    EXPECT_EQ(raw.entries.at("t0").entry_updates, 4u);
}

TEST(Emulator, ControlPlaneErrorsReturnFalse) {
    Program p = ir::chain_of_exact_tables("e", 1, 1, 1);
    Emulator emu(test_model(), p, no_instr());
    EXPECT_FALSE(emu.insert_entry("nope", exact_entry(1, 0)));
    EXPECT_FALSE(emu.delete_entry("t0", {FieldMatch::exact(1)}));  // absent
    EXPECT_FALSE(emu.modify_entry("t0", exact_entry(1, 0)));
    TableEntry wrong;
    wrong.key = {FieldMatch::exact(1), FieldMatch::exact(2)};  // arity
    wrong.action_index = 0;
    EXPECT_FALSE(emu.insert_entry("t0", wrong));
}

TEST(Emulator, ThroughputConversion) {
    Program p = ir::chain_of_exact_tables("th", 1, 1, 1);
    NicModel m = test_model();
    m.cores = 2;
    Emulator emu(m, p, no_instr());
    // 1e9 cycles/s * 2 cores / 1000 cycles = 2e6 pps * 4096 bits = 8.19 Gbps.
    EXPECT_NEAR(emu.throughput_gbps(1000.0), 8.192, 0.001);
    EXPECT_DOUBLE_EQ(emu.throughput_gbps(0.1), 100.0);  // line-rate cap
}

TEST(Emulator, ReconfigurePreservesEntriesAndChargesDowntime) {
    Program p = ir::chain_of_exact_tables("rc", 2, 2, 1);
    NicModel m = test_model();
    m.live_reconfig = false;
    m.reload_downtime_s = 3.0;
    Emulator emu(m, p, no_instr());
    emu.insert_entry("t0", exact_entry(5, 1));

    // New program: same t0, t1 dropped, new t9.
    ProgramBuilder b("rc2");
    b.append(TableSpec("t0")
                 .key("f0")
                 .noop_action("t0_a0", 1)
                 .noop_action("t0_a1", 1)
                 .default_to("t0_a0")
                 .build());
    b.append(TableSpec("t9").key("f9").noop_action("z", 1).build());
    double downtime = emu.reconfigure(b.build());
    EXPECT_DOUBLE_EQ(downtime, 3.0);
    EXPECT_DOUBLE_EQ(emu.now_seconds(), 3.0);
    EXPECT_EQ(emu.entry_count("t0"), 1u);
    EXPECT_EQ(emu.entry_count("t9"), 0u);

    NicModel live = test_model();
    Emulator emu2(live, p, no_instr());
    EXPECT_DOUBLE_EQ(emu2.reconfigure(ir::chain_of_exact_tables("x", 1, 1, 1)),
                     0.0);
}

TEST(Emulator, IncrementalReconfigureKeepsWarmCaches) {
    // Two independent cached regions; changing one must not cool the other.
    Program p = cached_two_tables();
    NicModel m = test_model();
    m.live_reconfig = false;
    m.reload_downtime_s = 10.0;
    Emulator emu(m, p, no_instr());
    ASSERT_TRUE(emu.insert_entry("A", exact_entry(1, 0, {11})));

    FieldId src = emu.fields().intern("src");
    FieldId dst = emu.fields().intern("dst");
    Packet warm;
    warm.set(src, 1);
    warm.set(dst, 2);
    emu.process(warm);
    ASSERT_EQ(emu.cache_size("cache_A_B"), 1u);

    // New program: identical cache + tables, plus one new table at the end.
    Program q = p;
    ir::NodeId extra = q.add_table(
        TableSpec("Z").key("zzz").noop_action("z1", 1).build());
    ir::NodeId b_node = q.find_table("B");
    q.node(b_node).set_uniform_next(extra);
    q.validate();

    Emulator::ReconfigureStats stats = emu.reconfigure_incremental(q);
    EXPECT_EQ(stats.tables_total, 4u);    // cache + A + B + Z
    EXPECT_EQ(stats.tables_changed, 2u);  // Z is new; B's wiring changed
    EXPECT_EQ(stats.caches_kept_warm, 1u);
    EXPECT_EQ(emu.cache_size("cache_A_B"), 1u);  // still warm
    // Downtime scaled by the changed fraction (2 of 4 tables).
    EXPECT_NEAR(stats.downtime_s, 10.0 * 0.5, 1e-9);
    // Entries survived too.
    EXPECT_EQ(emu.entry_count("A"), 1u);

    // The warm cache still replays correctly on the new program.
    Packet replay;
    replay.set(emu.fields().intern("src"), 1);
    replay.set(emu.fields().intern("dst"), 2);
    ProcessResult r = emu.process(replay);
    EXPECT_EQ(replay.get(emu.fields().find("x")), 11u);
    // The cache's hit edge still exits the pipeline directly (only B's
    // fall-through was rewired to Z), so a hit visits one node.
    EXPECT_EQ(r.nodes_visited, 1);
}

TEST(Emulator, IncrementalReconfigureCoolsChangedCaches) {
    Program p = cached_two_tables();
    Emulator emu(test_model(), p, no_instr());
    Packet warm;
    warm.set(emu.fields().intern("src"), 1);
    warm.set(emu.fields().intern("dst"), 2);
    emu.process(warm);
    ASSERT_EQ(emu.cache_size("cache_A_B"), 1u);

    // Change the cache definition itself (different capacity).
    Program q = p;
    q.node(q.find_table("cache_A_B")).table.cache.capacity = 99;
    Emulator::ReconfigureStats stats = emu.reconfigure_incremental(q);
    EXPECT_EQ(stats.caches_kept_warm, 0u);
    EXPECT_EQ(emu.cache_size("cache_A_B"), 0u);  // cold: definition changed
}

TEST(Emulator, SwitchCaseRoutesByAction) {
    // A switch-case table: different entries steer packets down different
    // edges; the miss path takes its own edge.
    ProgramBuilder b("sw");
    NodeId sw = b.add(TableSpec("steer")
                          .key("cls")
                          .noop_action("to_fast", 1)
                          .noop_action("to_slow", 1)
                          .build());
    Action mark_fast;
    mark_fast.name = "mf";
    mark_fast.primitives.push_back(Primitive::set_const("path", 1));
    NodeId fast = b.add(TableSpec("fast").key("x").action(mark_fast)
                            .default_to("mf").build());
    Action mark_slow;
    mark_slow.name = "ms";
    mark_slow.primitives.push_back(Primitive::set_const("path", 2));
    NodeId slow = b.add(TableSpec("slow").key("y").action(mark_slow)
                            .default_to("ms").build());
    b.connect_action(sw, 0, fast);
    b.connect_action(sw, 1, slow);
    b.connect_miss(sw, slow);
    b.set_root(sw);
    Emulator emu(test_model(), b.build(), {});
    ASSERT_TRUE(emu.insert_entry("steer", exact_entry(1, 0)));
    ASSERT_TRUE(emu.insert_entry("steer", exact_entry(2, 1)));

    FieldId cls = emu.fields().intern("cls");
    FieldId path = emu.fields().intern("path");

    Packet p1;
    p1.set(cls, 1);
    emu.process(p1);
    EXPECT_EQ(p1.get(path), 1u);  // action 0 -> fast

    Packet p2;
    p2.set(cls, 2);
    emu.process(p2);
    EXPECT_EQ(p2.get(path), 2u);  // action 1 -> slow

    Packet p3;
    p3.set(cls, 99);  // miss -> slow via miss edge
    emu.process(p3);
    EXPECT_EQ(p3.get(path), 2u);

    auto raw = emu.read_counters();
    EXPECT_EQ(raw.action_hits[static_cast<std::size_t>(sw)][0], 1u);
    EXPECT_EQ(raw.action_hits[static_cast<std::size_t>(sw)][1], 1u);
    EXPECT_EQ(raw.misses[static_cast<std::size_t>(sw)], 1u);
}

TEST(Emulator, ForwardSetsEgressPort) {
    ProgramBuilder b("fw");
    b.append(TableSpec("route").key("dst").forward_action("fwd").build());
    Emulator emu(test_model(), b.build(), no_instr());
    TableEntry e = exact_entry(5, 0, {42});
    ASSERT_TRUE(emu.insert_entry("route", e));
    Packet pkt;
    pkt.set(emu.fields().intern("dst"), 5);
    emu.process(pkt);
    EXPECT_EQ(pkt.egress_port(), 42u);
}

TEST(Emulator, GuardsAgainstRuntimeCycles) {
    // Hand-wire a cycle past validation by mutating after construction is
    // impossible through the public API; instead check the guard budget by
    // a long legal chain (sanity that the guard is generous enough).
    Program p = ir::chain_of_exact_tables("long", 64, 1, 1);
    Emulator emu(test_model(), p, no_instr());
    Packet pkt;
    EXPECT_NO_THROW(emu.process(pkt));
    EXPECT_EQ(emu.packets_processed(), 1u);
}

TEST(Emulator, WindowReset) {
    Program p = ir::chain_of_exact_tables("w", 1, 1, 1);
    Emulator emu(test_model(), p, {});
    Packet pkt;
    emu.process(pkt);
    EXPECT_EQ(emu.packets_processed(), 1u);
    emu.begin_window();
    EXPECT_EQ(emu.packets_processed(), 0u);
    auto raw = emu.read_counters();
    EXPECT_EQ(raw.misses[0], 0u);
}

}  // namespace
}  // namespace pipeleon::sim
