// Tests for apps/scenarios: the paper's evaluation programs must have the
// structure the paper describes.
#include <gtest/gtest.h>

#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "sim/nic_model.h"

namespace pipeleon::apps {
namespace {

TEST(Apps, MicrobenchShape) {
    ir::Program p = microbench_program(3, 4, true);
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.table_count(), 13u);  // 3 groups x 4 + ACL
    ir::NodeId acl = p.find_table("acl");
    ASSERT_NE(acl, ir::kNoNode);
    EXPECT_TRUE(p.node(acl).table.can_drop());

    ir::Program q = microbench_program(2, 4, false);
    EXPECT_EQ(q.table_count(), 8u);
    EXPECT_EQ(q.find_table("acl"), ir::kNoNode);
}

TEST(Apps, FourTablePipelet) {
    ir::Program p = four_table_pipelet(ir::MatchKind::Ternary, 2);
    EXPECT_EQ(p.table_count(), 4u);
    for (ir::NodeId id : p.reachable()) {
        EXPECT_EQ(p.node(id).table.effective_match_kind(), ir::MatchKind::Ternary);
        // "used a different match key for T1 to T4"
    }
    auto pipelets = analysis::form_pipelets(p);
    EXPECT_EQ(pipelets.size(), 1u);
}

TEST(Apps, AclRoutingProgram) {
    ir::Program p = acl_routing_program(4, 4);
    EXPECT_NO_THROW(p.validate());
    // 4 ACLs first, then regular tables, routing last.
    const ir::Node& root = p.node(p.root());
    EXPECT_EQ(root.table.name, "acl_cloud");
    auto topo = p.topo_order();
    EXPECT_EQ(p.node(topo.back()).table.name, "routing");
    EXPECT_EQ(p.node(topo.back()).table.effective_match_kind(), ir::MatchKind::Lpm);

    // Extended ACL block.
    ir::Program q = acl_routing_program(2, 8, ir::MatchKind::Ternary);
    EXPECT_EQ(q.table_count(), 8u + 2u + 1u);
    EXPECT_NE(q.find_table("acl_geo"), ir::kNoNode);
    EXPECT_EQ(q.node(q.find_table("proc0")).table.effective_match_kind(),
              ir::MatchKind::Ternary);
}

TEST(Apps, AclSpecsNaming) {
    auto specs = acl_specs(10);
    ASSERT_EQ(specs.size(), 10u);
    EXPECT_EQ(specs[0].first, "acl_cloud");
    EXPECT_EQ(specs[3].second, "vm_id");
    EXPECT_EQ(specs[9].first, "acl_x9");  // generated beyond the named eight
    EXPECT_EQ(acl_table_names().size(), 4u);
}

TEST(Apps, LoadBalancerStructure) {
    ir::Program p = load_balancer_program();
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.table_count(), 12u);  // 8 proc + 2 LB + 2 ACL (§5.3.1)
    // The LB pair has a real match dependency: lb_vip writes what
    // lb_backend matches on.
    const ir::Table& vip = p.node(p.find_table("lb_vip")).table;
    const ir::Table& backend = p.node(p.find_table("lb_backend")).table;
    bool writes_backend = false;
    for (const ir::Action& a : vip.actions) {
        for (const std::string& f : a.written_fields()) {
            if (f == "backend") writes_backend = true;
        }
    }
    EXPECT_TRUE(writes_backend);
    EXPECT_EQ(backend.keys[0].field, "backend");
}

TEST(Apps, DashRoutingStructure) {
    ir::Program p = dash_routing_program();
    EXPECT_NO_THROW(p.validate());
    // direction + 3 metadata + conntrack + 3 ACLs + routing (§5.3.2).
    EXPECT_EQ(p.table_count(), 9u);
    // The metadata block must be mergeable (independent, no '+' in names).
    for (const char* name : {"direction_lookup", "appliance", "eni", "vni"}) {
        ASSERT_NE(p.find_table(name), ir::kNoNode) << name;
        EXPECT_LE(p.node(p.find_table(name)).table.size, 64u);  // small/static
    }
    // Conntrack mutates per-flow state.
    const ir::Table& ct = p.node(p.find_table("conntrack")).table;
    EXPECT_FALSE(ct.actions[0].written_fields().empty());
}

TEST(Apps, NfCompositionHasNinePipelets) {
    ir::Program p = nf_composition_program();
    EXPECT_NO_THROW(p.validate());
    analysis::PipeletOptions opts;
    auto pipelets = analysis::form_pipelets(p, opts);
    // "this produces nine pipelets in total" (§5.3.3).
    EXPECT_EQ(pipelets.size(), 9u);
}

TEST(Apps, InstallAclDenies) {
    ir::Program p = acl_routing_program(2, 4);
    sim::Emulator emu(sim::bluefield2_model(), p, {});
    util::Rng rng(1);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"vm_id", 0, 9999}}, 100, rng);
    install_acl_denies(emu, "acl_vm", flows, {0, 1, 2}, "vm_id");
    EXPECT_EQ(emu.entry_count("acl_vm"), 3u);
    // Unknown table / non-dropping table: no-ops.
    install_acl_denies(emu, "nope", flows, {0}, "vm_id");
    install_acl_denies(emu, "proc0", flows, {0}, "vm_id");
    EXPECT_EQ(emu.entry_count("proc0"), 0u);
}

TEST(Apps, InstallFlowEntries) {
    ir::Program p = microbench_program(1, 3, false);
    sim::Emulator emu(sim::bluefield2_model(), p, {});
    util::Rng rng(2);
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(
        {{"f_g0t0", 0, 63}, {"f_g0t1", 0, 63}}, 40, rng);
    int installed = install_flow_entries(emu, flows);
    // Two tables match tuple fields, 40 flows each (duplicate keys rejected
    // by value-collision are possible but rare over 64 values).
    EXPECT_GT(installed, 60);
    EXPECT_GT(emu.entry_count("g0t0"), 30u);
    EXPECT_EQ(emu.entry_count("g0t2"), 0u);  // field not in the tuple
}

}  // namespace
}  // namespace pipeleon::apps
