// tests/test_hotpath_alloc.cpp — proves the batch hot path is allocation-free
// in steady state (ISSUE 5 acceptance criterion). A global operator new/delete
// override counts every heap allocation made while `g_counting` is armed; the
// test warms an emulator until all flows are cached and every amortized buffer
// (steering plan, worker scratch, result vector, counter shards) has reached
// its high-water capacity, then asserts that further process_batch calls make
// exactly zero allocations across all worker threads.
//
// This binary owns the override, so it must not be linked into other tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "sim/tiered_store.h"
#include "trafficgen/workload.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void note_alloc() {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    }
}

void* counted_alloc(std::size_t size) {
    note_alloc();
    void* p = std::malloc(size ? size : 1);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
    note_alloc();
    void* p = nullptr;
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size ? size : align) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    note_alloc();
    return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    note_alloc();
    return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t al) {
    return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
    return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace pipeleon::sim {
namespace {

constexpr int kChainLen = 6;
constexpr int kFlows = 128;

TEST(HotPathAlloc, HookCountsAllocations) {
    g_alloc_count.store(0);
    g_counting.store(true);
    auto* v = new std::vector<int>(64);
    g_counting.store(false);
    delete v;
    EXPECT_GE(g_alloc_count.load(), 1u) << "override not linked in";
}

TEST(HotPathAlloc, SteadyStateBatchLoopMakesZeroAllocations) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    Emulator emu(bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(5);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        // snprintf, not string operator+: GCC 12 -O3 emits a bogus
        // -Wrestrict through char_traits when the concat inlines against
        // this binary's custom operator new, and CI builds with -Werror.
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(tuple, kFlows, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 3);

    // One pristine batch, replayed every iteration. Packets are mutated in
    // place by processing, so each round restores them by copy-assignment —
    // equal sizes mean the inner vectors reuse capacity: no allocation.
    const PacketBatch pristine = wl.next_batch(emu.fields(), 256);
    PacketBatch work = pristine;
    BatchResult out;

    // Warm-up: steering plan, scratch, result vector, and counter shards all
    // reach their high-water capacity; pool threads are up.
    for (int i = 0; i < 6; ++i) {
        work = pristine;
        emu.process_batch(work, out);
    }

    g_alloc_count.store(0);
    g_counting.store(true);
    for (int i = 0; i < 10; ++i) {
        work = pristine;
        emu.process_batch(work, out);
    }
    g_counting.store(false);

    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "steering/dispatch hot path allocated on the steady-state batch "
           "loop";
    EXPECT_EQ(out.results.size(), pristine.size());
    EXPECT_EQ(out.workers_used, 4);
}

/// Same criterion through the flow-cache hit path: once every flow in the
/// batch has been learned, replaying the batch is pure cache hits and must
/// not touch the heap either.
TEST(HotPathAlloc, CachedProgramHitPathMakesZeroAllocations) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    // Wrap the chain's head in a flow cache exactly as the figure benches do.
    analysis::PipeletOptions popt;
    popt.max_length = kChainLen + 2;
    auto pipelets = analysis::form_pipelets(prog, popt);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    for (std::size_t i = 0; i < pipelets[0].nodes.size(); ++i) {
        plan.layout.order.push_back(i);
    }
    plan.layout.caches = {opt::Segment{0, 2}};
    plan.layout.cache_config.capacity = 4096;
    plan.layout.cache_config.max_insert_per_sec = 1e9;
    ir::Program cached = opt::apply_plans(prog, pipelets, {plan});

    Emulator emu(bluefield2_model(), cached, {});
    emu.set_worker_count(2);

    util::Rng rng(6);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        // snprintf, not string operator+: GCC 12 -O3 emits a bogus
        // -Wrestrict through char_traits when the concat inlines against
        // this binary's custom operator new, and CI builds with -Werror.
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(tuple, kFlows, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 4);

    const PacketBatch pristine = wl.next_batch(emu.fields(), 256);
    PacketBatch work = pristine;
    BatchResult out;
    for (int i = 0; i < 6; ++i) {  // learn all flows + reach capacity
        work = pristine;
        emu.process_batch(work, out);
    }

    profile::RawCounters before = emu.read_counters();

    g_alloc_count.store(0);
    g_counting.store(true);
    for (int i = 0; i < 10; ++i) {
        work = pristine;
        emu.process_batch(work, out);
    }
    g_counting.store(false);

    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "cache-hit replay path allocated in steady state";
    // The cache was genuinely exercised during the counted region.
    profile::RawCounters after = emu.read_counters();
    std::uint64_t hits_before = 0, hits_after = 0;
    for (std::uint64_t h : before.cache_hits) hits_before += h;
    for (std::uint64_t h : after.cache_hits) hits_after += h;
    EXPECT_GT(hits_after, hits_before);
}

/// Same criterion through the descriptor-ring I/O path (ISSUE 6): once the
/// ring slots' inline Packets have grown to the workload's field count and
/// the OfferedLoad source has interned its tuple ids, an offer -> poll cycle
/// is pure copy-assignment into pre-sized storage and must stay off the heap.
TEST(HotPathAlloc, RingOfferPollLoopMakesZeroAllocations) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    Emulator emu(bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(7);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        // snprintf, not string operator+: GCC 12 -O3 emits a bogus
        // -Wrestrict through char_traits when the concat inlines against
        // this binary's custom operator new, and CI builds with -Werror.
        char name[16];
        std::snprintf(name, sizeof(name), "f%d", i);
        tuple.push_back({name, 0, 255});
    }
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(tuple, kFlows, rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 5);

    RingConfig cfg;
    cfg.rx_capacity = 512;
    RssDispatcher io = emu.make_rings(cfg);
    trafficgen::OfferedLoad src(wl, /*pps=*/1.0);  // offer() drives counts
    BatchResult out;

    // Warm-up: every RX slot's inline Packet must have held a max-width
    // packet at least once (copy-assign then reuses field capacity), the TX
    // completion rings must have wrapped, and the poll result vector must
    // reach its high-water size. 24 rounds x 256 packets pushes > 6x the
    // ring capacity through every queue.
    for (int i = 0; i < 24; ++i) {
        src.offer(io, emu.fields(), 256, emu.now_seconds());
        emu.poll(io, out);
    }

    g_alloc_count.store(0);
    g_counting.store(true);
    std::size_t completed = 0;
    for (int i = 0; i < 10; ++i) {
        src.offer(io, emu.fields(), 256, emu.now_seconds());
        emu.poll(io, out);
        completed += out.results.size();
    }
    g_counting.store(false);

    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "descriptor-ring offer/poll loop allocated in steady state";
    EXPECT_EQ(completed, 2560u);
    EXPECT_EQ(out.workers_used, 4);
    EXPECT_EQ(out.ring_dropped, 0u);
}

/// Same criterion through the hierarchical store (ISSUE 9): a steady-state
/// lookup batch over all three tiers — DRAM touches, host hits through the
/// DMA descriptor ring, batch-boundary promotions and the demotion cascade
/// they trigger — must stay off the heap. Every movement between tiers swaps
/// recycled buffers; the pending-promotion list and the DMA ring are sized
/// up front.
TEST(HotPathAlloc, TieredStoreLookupBatchMakesZeroAllocations) {
    ir::CacheConfig cfg;
    cfg.capacity = 32;
    cfg.max_insert_per_sec = 1e9;
    cfg.tiers.dram_entries = 128;
    cfg.tiers.host_entries = 512;
    cfg.tiers.promote_hits = 2;
    cfg.tiers.decay_every = 4;
    cfg.tiers.dma_batch = 8;
    TierCosts costs;
    costs.l_tier_dram = 30.0;
    costs.l_tier_host = 90.0;
    costs.dma_setup = 400.0;
    costs.dma_per_entry = 16.0;
    TieredStore store(cfg, costs);

    constexpr std::uint64_t kKeys = 600;  // fully resident across 32+128+512
    KeyVec key;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        key.clear();
        key.push_back(k);
        key.push_back(k ^ 0xABCDu);
        CacheStore::CacheEntry e;
        e.steps.push_back(ReplayStep{static_cast<ir::NodeId>(k), 0, {}});
        ASSERT_TRUE(store.insert(key, std::move(e), 0.0));
    }

    // One deterministic round: a sequential sweep with a batch boundary
    // every 64 lookups, and every seventh key touched twice back-to-back so
    // it crosses promote_hits=2 within one batch — constant promotion and
    // demotion churn through all three tiers. Warm rounds drive every
    // recycled buffer (slot arrays, free lists, probe indices, the pending
    // list, DMA ring) to the same high-water marks the counted rounds
    // revisit.
    auto sweep = [&store, &key]() {
        std::uint64_t hits = 0;
        for (std::uint64_t k = 0; k < kKeys; ++k) {
            key.clear();
            key.push_back(k);
            key.push_back(k ^ 0xABCDu);
            if (store.lookup(key).entry != nullptr) ++hits;
            if (k % 7 == 0 && store.lookup(key).entry != nullptr) ++hits;
            if (k % 64 == 63) store.flush_batch();
        }
        store.flush_batch();
        return hits;
    };
    for (int i = 0; i < 8; ++i) sweep();

    const TierStats before = store.stats();
    g_alloc_count.store(0);
    g_counting.store(true);
    std::uint64_t hits = 0;
    for (int i = 0; i < 5; ++i) hits += sweep();
    g_counting.store(false);

    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "tiered lookup/promotion/DMA path allocated in steady state";
    // Everything stays resident: 32+128+512 capacity holds all 600 keys, so
    // every lookup (600 + 86 double-touches per sweep) hits some tier.
    EXPECT_EQ(hits, 5 * (kKeys + (kKeys + 6) / 7));
    // The counted region genuinely crossed the tiers and the DMA engine.
    const TierStats after = store.stats();
    EXPECT_GT(after.dram_hits, before.dram_hits);
    EXPECT_GT(after.host_hits, before.host_hits);
    EXPECT_GT(after.dma_fetches, before.dma_fetches);
    EXPECT_GT(after.promotions, before.promotions);
    EXPECT_GT(after.demotions, before.demotions);
    EXPECT_EQ(after.lookups,
              after.sram_hits + after.dram_hits + after.host_hits +
                  after.misses);
}

}  // namespace
}  // namespace pipeleon::sim
