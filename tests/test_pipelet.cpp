// Tests for analysis/pipelet: partitioning, splitting, groups, top-k.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/pipelet.h"
#include "ir/builder.h"

namespace pipeleon::analysis {
namespace {

using ir::kNoNode;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

ir::Table simple(const std::string& name, const std::string& key) {
    return TableSpec(name).key(key).noop_action(name + "_a").build();
}

TEST(Pipelet, LinearProgramIsOnePipelet) {
    Program p = ir::chain_of_exact_tables("lin", 5);
    auto pipelets = form_pipelets(p);
    ASSERT_EQ(pipelets.size(), 1u);
    EXPECT_EQ(pipelets[0].length(), 5u);
    EXPECT_EQ(pipelets[0].exit, kNoNode);
    EXPECT_EQ(pipelets[0].entry(), p.root());
}

TEST(Pipelet, BranchesSplitPipelets) {
    ProgramBuilder b("br");
    NodeId t0 = b.add(simple("t0", "a"));
    NodeId br = b.add_branch({"flag", ir::CmpOp::Eq, 1});
    NodeId t1 = b.add(simple("t1", "b"));
    NodeId t2 = b.add(simple("t2", "c"));
    b.connect(t0, br);
    b.connect_branch(br, t1, t2);
    b.set_root(t0);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    ASSERT_EQ(pipelets.size(), 3u);
    EXPECT_EQ(pipelets[0].nodes, std::vector<NodeId>{t0});
    EXPECT_EQ(pipelets[0].exit, br);
}

TEST(Pipelet, SwitchCaseTableIsOwnPipelet) {
    ProgramBuilder b("sw");
    NodeId pre = b.add(simple("pre", "a"));
    NodeId sw = b.add(
        TableSpec("sw").key("f").noop_action("a0").noop_action("a1").build());
    NodeId x = b.add(simple("x", "b"));
    NodeId y = b.add(simple("y", "c"));
    b.connect(pre, sw);
    b.connect_action(sw, 0, x);
    b.connect_action(sw, 1, y);
    b.connect_miss(sw, x);
    b.set_root(pre);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    ASSERT_EQ(pipelets.size(), 4u);
    bool found_sw = false;
    for (const Pipelet& pl : pipelets) {
        if (pl.nodes == std::vector<NodeId>{sw}) {
            EXPECT_TRUE(pl.is_switch_case);
            found_sw = true;
        }
    }
    EXPECT_TRUE(found_sw);
}

TEST(Pipelet, JoinNodeStartsNewPipelet) {
    // Diamond: branch -> {a, c} -> j; j has 2 predecessors so it cannot be
    // absorbed into either arm.
    ProgramBuilder b("d");
    NodeId br = b.add_branch({"flag", ir::CmpOp::Eq, 1});
    NodeId a = b.add(simple("a", "x"));
    NodeId c = b.add(simple("c", "y"));
    NodeId j = b.add(simple("j", "z"));
    b.connect_branch(br, a, c);
    b.connect(a, j);
    b.connect(c, j);
    b.set_root(br);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    ASSERT_EQ(pipelets.size(), 3u);
    for (const Pipelet& pl : pipelets) {
        if (pl.entry() == a || pl.entry() == c) {
            EXPECT_EQ(pl.exit, j);
            EXPECT_EQ(pl.length(), 1u);
        }
    }
}

TEST(Pipelet, LongPipeletsAreSplit) {
    Program p = ir::chain_of_exact_tables("long", 20);
    PipeletOptions opts;
    opts.max_length = 6;
    auto pipelets = form_pipelets(p, opts);
    ASSERT_EQ(pipelets.size(), 4u);  // 6+6+6+2
    EXPECT_EQ(pipelets[0].length(), 6u);
    EXPECT_EQ(pipelets[3].length(), 2u);
    // Chained exits.
    EXPECT_EQ(pipelets[0].exit, pipelets[1].entry());
    EXPECT_EQ(pipelets[2].exit, pipelets[3].entry());
    EXPECT_EQ(pipelets[3].exit, kNoNode);

    PipeletOptions no_split;
    no_split.max_length = 0;
    EXPECT_EQ(form_pipelets(p, no_split).size(), 1u);
}

TEST(Pipelet, IdsAreDense) {
    Program p = ir::chain_of_exact_tables("ids", 20);
    PipeletOptions opts;
    opts.max_length = 4;
    auto pipelets = form_pipelets(p, opts);
    for (std::size_t i = 0; i < pipelets.size(); ++i) {
        EXPECT_EQ(pipelets[i].id, static_cast<int>(i));
    }
}

TEST(Pipelet, EveryTableInExactlyOnePipelet) {
    ProgramBuilder b("cover");
    NodeId t0 = b.add(simple("t0", "a"));
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId t1 = b.add(simple("t1", "b"));
    NodeId t2 = b.add(simple("t2", "c"));
    NodeId t3 = b.add(simple("t3", "d"));
    b.connect(t0, br);
    b.connect_branch(br, t1, t2);
    b.connect(t1, t3);
    b.connect(t2, t3);
    b.set_root(t0);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    std::vector<int> covered(p.node_count(), 0);
    for (const Pipelet& pl : pipelets) {
        for (NodeId id : pl.nodes) ++covered[static_cast<std::size_t>(id)];
    }
    for (NodeId id : p.reachable()) {
        if (p.node(id).is_table()) {
            EXPECT_EQ(covered[static_cast<std::size_t>(id)], 1)
                << "table node " << id;
        } else {
            EXPECT_EQ(covered[static_cast<std::size_t>(id)], 0);
        }
    }
}

TEST(PipeletGroup, DiamondDetected) {
    ProgramBuilder b("grp");
    NodeId pre = b.add(simple("pre", "a"));
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId armt = b.add(simple("armt", "b"));
    NodeId armf = b.add(simple("armf", "c"));
    NodeId post = b.add(simple("post", "d"));
    b.connect(pre, br);
    b.connect_branch(br, armt, armf);
    b.connect(armt, post);
    b.connect(armf, post);
    b.set_root(pre);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    auto groups = find_pipelet_groups(p, pipelets);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].branch, br);
    EXPECT_GE(groups[0].pre, 0);
    EXPECT_GE(groups[0].post, 0);
    EXPECT_EQ(pipelets[static_cast<std::size_t>(groups[0].pre)].entry(), pre);
    EXPECT_EQ(pipelets[static_cast<std::size_t>(groups[0].post)].entry(), post);
}

TEST(PipeletGroup, ArmsThatDoNotRejoinRejected) {
    // The true arm is a pipelet but the false edge goes straight into
    // another branch (not a pipelet entry): no diamond.
    ProgramBuilder b("nogrp");
    NodeId pre = b.add(simple("pre", "a"));
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId armt = b.add(simple("armt", "b"));
    NodeId br2 = b.add_branch({"g", ir::CmpOp::Eq, 2});
    NodeId x = b.add(simple("x", "c"));
    NodeId y = b.add(simple("y", "d"));
    b.connect(pre, br);
    b.connect_branch(br, armt, br2);
    b.connect_branch(br2, x, y);
    b.set_root(pre);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    for (const PipeletGroup& g : find_pipelet_groups(p, pipelets)) {
        EXPECT_NE(g.branch, br);
    }
}

TEST(PipeletGroup, ArmsRejoiningAtTheSinkFormAGroup) {
    // Both arms exiting the pipeline count as "traffic moves to the same
    // node after leaving the group".
    ProgramBuilder b("sinkgrp");
    NodeId pre = b.add(simple("pre", "a"));
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId armt = b.add(simple("armt", "b"));
    NodeId armf = b.add(simple("armf", "c"));
    b.connect(pre, br);
    b.connect_branch(br, armt, armf);
    b.set_root(pre);
    Program p = b.build();

    auto pipelets = form_pipelets(p);
    auto groups = find_pipelet_groups(p, pipelets);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_GE(groups[0].pre, 0);
    EXPECT_EQ(groups[0].post, -1);  // the sink
}

TEST(TopK, SelectsHottestPipelets) {
    // Two pipelets after a branch; skew traffic to one side.
    ProgramBuilder b("hot");
    NodeId pre = b.add(simple("pre", "a"));
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId hot = b.add(simple("hot", "b"));
    NodeId cold = b.add(simple("cold", "c"));
    b.connect(pre, br);
    b.connect_branch(br, hot, cold);
    b.set_root(pre);
    Program p = b.build();

    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    prof.branch(br).taken_true = 900;
    prof.branch(br).taken_false = 100;
    prof.table(pre).action_hits[0] = 1000;
    prof.table(hot).action_hits[0] = 900;
    prof.table(cold).action_hits[0] = 100;

    auto pipelets = form_pipelets(p);
    auto latency = [](const Pipelet& pl) {
        return static_cast<double>(pl.length());
    };

    auto top1 = top_k_pipelets(p, pipelets, prof, 0.3, latency);
    ASSERT_EQ(top1.size(), 1u);
    // The "pre" pipelet sees 100% of traffic -> hottest.
    EXPECT_EQ(pipelets[static_cast<std::size_t>(top1[0].pipelet_id)].entry(), pre);

    auto top2 = top_k_pipelets(p, pipelets, prof, 0.66, latency);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(pipelets[static_cast<std::size_t>(top2[1].pipelet_id)].entry(), hot);

    auto all = top_k_pipelets(p, pipelets, prof, 1.0, latency);
    EXPECT_EQ(all.size(), 3u);
    // Sorted by weighted latency, descending.
    for (std::size_t i = 1; i < all.size(); ++i) {
        EXPECT_GE(all[i - 1].weighted_latency, all[i].weighted_latency);
    }
}

TEST(TopK, AtLeastOneSelected) {
    Program p = ir::chain_of_exact_tables("one", 3);
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    auto pipelets = form_pipelets(p);
    auto top = top_k_pipelets(p, pipelets, prof, 0.0001,
                              [](const Pipelet&) { return 1.0; });
    EXPECT_EQ(top.size(), 1u);
}

}  // namespace
}  // namespace pipeleon::analysis
