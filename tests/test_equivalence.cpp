// End-to-end semantic-equivalence property tests: Pipeleon's transformations
// must "preserve the program semantics" (§3.2). We deploy the original and
// the optimized program on two emulators with the same control-plane state
// (via the ApiMapper) and stream identical packets through both. A packet
// must either be dropped by both, or exit both with identical header fields
// and egress port. This holds for reordering, caching (cold and warm),
// merging (both flavors), and for optimizer-chosen combinations on random
// programs.
#include <gtest/gtest.h>

#include <map>

#include "analysis/pipelet.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "runtime/api_mapper.h"
#include "search/optimizer.h"
#include "sim/emulator.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pipeleon {
namespace {

using ir::Action;
using ir::FieldMatch;
using ir::MatchKind;
using ir::Primitive;
using ir::Program;
using ir::TableEntry;
using ir::TableSpec;

sim::NicModel nic() {
    sim::NicModel m;
    m.costs.l_mat = 10.0;
    m.costs.l_act = 2.0;
    m.cores = 1;
    return m;
}

/// A randomized table universe: `n` independent tables keyed on distinct
/// fields over a small value domain, with actions that write distinct
/// output fields (some from action data), and optional droppers.
struct Universe {
    Program program;
    std::vector<std::string> key_fields;
    std::map<std::string, std::vector<TableEntry>> entries;

    static Universe make(int n, util::Rng& rng, bool with_droppers,
                         bool with_defaults) {
        Universe u;
        ir::ProgramBuilder b("universe");
        for (int i = 0; i < n; ++i) {
            std::string key = util::format("k%d", i);
            u.key_fields.push_back(key);
            TableSpec spec(util::format("T%d", i));
            spec.key(key);

            Action set_out;
            set_out.name = util::format("T%d_set", i);
            set_out.primitives.push_back(
                Primitive::set_from_arg(util::format("out%d", i), 0));
            spec.action(set_out);

            Action mark;
            mark.name = util::format("T%d_mark", i);
            mark.primitives.push_back(
                Primitive::set_const(util::format("out%d", i), 7777));
            spec.action(mark);

            if (with_droppers && rng.chance(0.5)) {
                spec.drop_action(util::format("T%d_deny", i));
            }
            if (with_defaults && rng.chance(0.5)) {
                spec.default_to(util::format("T%d_mark", i));
            }
            b.append(spec.build());
        }
        u.program = b.build();

        // Random entries: keys drawn from [0, 8) so packets hit often.
        for (int i = 0; i < n; ++i) {
            std::string name = util::format("T%d", i);
            const ir::Table& t =
                u.program.node(u.program.find_table(name)).table;
            std::set<std::uint64_t> used;
            int count = 2 + static_cast<int>(rng.next_below(5));
            for (int e = 0; e < count; ++e) {
                std::uint64_t key = rng.next_below(8);
                if (!used.insert(key).second) continue;
                TableEntry entry;
                entry.key = {FieldMatch::exact(key)};
                entry.action_index =
                    static_cast<int>(rng.next_below(t.actions.size()));
                if (entry.action_index == 0) {
                    entry.action_data = {rng.next_below(1000)};
                }
                u.entries[name].push_back(entry);
            }
        }
        return u;
    }

    sim::Packet random_packet(util::Rng& rng, sim::FieldTable& fields) const {
        sim::Packet p;
        for (const std::string& key : key_fields) {
            p.set(fields.intern(key), rng.next_below(10));  // some miss
        }
        return p;
    }
};

/// Streams `n_packets` identical packets through both deployments and
/// checks observable equivalence.
void expect_equivalent(const Program& original, const Program& optimized,
                       const Universe& universe, std::uint64_t seed,
                       int n_packets = 300) {
    sim::Emulator emu_orig(nic(), original, {});
    sim::Emulator emu_opt(nic(), optimized, {});
    runtime::ApiMapper api_orig(original);
    runtime::ApiMapper api_opt(original);
    for (const auto& [table, entries] : universe.entries) {
        for (const TableEntry& e : entries) {
            ASSERT_TRUE(api_orig.insert(emu_orig, table, e)) << table;
            ASSERT_TRUE(api_opt.insert(emu_opt, table, e)) << table;
        }
    }

    util::Rng rng(seed);
    for (int i = 0; i < n_packets; ++i) {
        // Two independent field tables may intern differently; build the
        // packet per emulator from the same flow values.
        util::Rng flow_rng(seed * 7919 + static_cast<std::uint64_t>(i));
        sim::Packet a = universe.random_packet(flow_rng, emu_orig.fields());
        util::Rng flow_rng2(seed * 7919 + static_cast<std::uint64_t>(i));
        sim::Packet b = universe.random_packet(flow_rng2, emu_opt.fields());

        emu_orig.process(a);
        emu_opt.process(b);
        emu_orig.advance_time(0.001);
        emu_opt.advance_time(0.001);

        ASSERT_EQ(a.dropped(), b.dropped()) << "packet " << i;
        if (a.dropped()) continue;  // dropped packets are discarded anyway
        ASSERT_EQ(a.egress_port(), b.egress_port()) << "packet " << i;
        for (std::size_t t = 0; t < universe.key_fields.size(); ++t) {
            std::string out = util::format("out%zu", t);
            EXPECT_EQ(a.get(emu_orig.fields().find(out)),
                      b.get(emu_opt.fields().find(out)))
                << "packet " << i << " field " << out;
        }
    }
}

opt::PipeletPlan plan_for(const Program& p, opt::CandidateLayout layout) {
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    plan.layout = std::move(layout);
    (void)p;
    return plan;
}

TEST(Equivalence, ReorderIndependentTables) {
    util::Rng rng(101);
    Universe u = Universe::make(4, rng, /*droppers=*/true, /*defaults=*/true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {3, 1, 0, 2};
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    expect_equivalent(u.program, q, u, 1);
}

TEST(Equivalence, SingleCache) {
    util::Rng rng(102);
    Universe u = Universe::make(3, rng, true, true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {0, 1, 2};
    layout.caches = {opt::Segment{0, 2}};
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    // Repeated flows exercise warm-cache replay paths.
    expect_equivalent(u.program, q, u, 2, 600);
}

TEST(Equivalence, TwoSmallCaches) {
    util::Rng rng(103);
    Universe u = Universe::make(4, rng, false, true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {0, 1, 2, 3};
    layout.caches = {opt::Segment{0, 1}, opt::Segment{2, 3}};
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    expect_equivalent(u.program, q, u, 3, 600);
}

TEST(Equivalence, FullMerge) {
    util::Rng rng(104);
    Universe u = Universe::make(3, rng, false, true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {0, 1, 2};
    layout.merges = {opt::MergeSpec{opt::Segment{0, 1}, false}};
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    expect_equivalent(u.program, q, u, 4);
}

TEST(Equivalence, MergeAsCache) {
    util::Rng rng(105);
    Universe u = Universe::make(3, rng, false, true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {0, 1, 2};
    layout.merges = {opt::MergeSpec{opt::Segment{1, 2}, true}};
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    expect_equivalent(u.program, q, u, 5);
}

TEST(Equivalence, MergeWithDroppers) {
    util::Rng rng(106);
    Universe u = Universe::make(2, rng, true, true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {0, 1};
    layout.merges = {opt::MergeSpec{opt::Segment{0, 1}, false}};
    // Only applicable when the merge is legal (deny default with args is
    // filtered by mergeable(); Universe never sets deny as default).
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    expect_equivalent(u.program, q, u, 6);
}

TEST(Equivalence, ReorderPlusCachePlusMerge) {
    util::Rng rng(107);
    Universe u = Universe::make(5, rng, false, true);
    auto pipelets = analysis::form_pipelets(u.program);
    opt::CandidateLayout layout;
    layout.order = {4, 2, 0, 1, 3};
    layout.caches = {opt::Segment{0, 1}};
    layout.merges = {opt::MergeSpec{opt::Segment{2, 3}, true}};
    Program q = opt::apply_plans(u.program, pipelets, {plan_for(u.program, layout)});
    expect_equivalent(u.program, q, u, 7, 600);
}

/// A mixed-kind universe: LPM and ternary tables alongside exact ones, to
/// exercise the multi-probe engines and ternary-converting merges under
/// transformation.
struct MixedUniverse {
    Program program;
    std::vector<std::string> key_fields;
    std::map<std::string, std::vector<TableEntry>> entries;

    static MixedUniverse make(util::Rng& rng) {
        MixedUniverse u;
        ir::ProgramBuilder b("mixed");
        const MatchKind kinds[] = {MatchKind::Exact, MatchKind::Lpm,
                                   MatchKind::Ternary, MatchKind::Exact};
        for (int i = 0; i < 4; ++i) {
            std::string key = util::format("k%d", i);
            u.key_fields.push_back(key);
            TableSpec spec(util::format("T%d", i));
            spec.key(key, kinds[i], 16);
            Action set_out;
            set_out.name = util::format("T%d_set", i);
            set_out.primitives.push_back(
                Primitive::set_from_arg(util::format("out%d", i), 0));
            spec.action(set_out);
            spec.noop_action(util::format("T%d_idle", i), 1);
            if (rng.chance(0.5)) spec.default_to(util::format("T%d_idle", i));
            b.append(spec.build());
        }
        u.program = b.build();

        for (int i = 0; i < 4; ++i) {
            std::string name = util::format("T%d", i);
            int count = 3 + static_cast<int>(rng.next_below(4));
            for (int e = 0; e < count; ++e) {
                TableEntry entry;
                switch (kinds[i]) {
                    case MatchKind::Lpm:
                        entry.key = {FieldMatch::lpm(
                            rng.next_below(0x10000),
                            4 + static_cast<int>(rng.next_below(3)) * 4)};
                        break;
                    case MatchKind::Ternary:
                        entry.key = {FieldMatch::ternary(
                            rng.next_below(0x10000),
                            0xFFFFULL & ~((1ULL << rng.next_below(12)) - 1))};
                        entry.priority = e;
                        break;
                    default:
                        entry.key = {FieldMatch::exact(rng.next_below(16))};
                        break;
                }
                entry.action_index = 0;
                entry.action_data = {rng.next_below(1000)};
                u.entries[name].push_back(entry);
            }
        }
        return u;
    }

    Universe as_universe() const {
        Universe u;
        u.program = program;
        u.key_fields = key_fields;
        u.entries = entries;
        return u;
    }
};

class MixedKindEquivalence : public testing::TestWithParam<int> {};

TEST_P(MixedKindEquivalence, ReorderAndCachePreserveSemantics) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 4099);
    MixedUniverse mu = MixedUniverse::make(rng);
    auto pipelets = analysis::form_pipelets(mu.program);

    // Reorder (all four tables are independent).
    opt::CandidateLayout reorder;
    reorder.order = {2, 3, 0, 1};
    Program q1 = opt::apply_plans(mu.program, pipelets,
                                  {plan_for(mu.program, reorder)});
    expect_equivalent(mu.program, q1, mu.as_universe(),
                      static_cast<std::uint64_t>(GetParam()), 400);

    // Cache the LPM+ternary pair behind one flow cache.
    opt::CandidateLayout cached;
    cached.order = {0, 1, 2, 3};
    cached.caches = {opt::Segment{1, 2}};
    Program q2 = opt::apply_plans(mu.program, pipelets,
                                  {plan_for(mu.program, cached)});
    expect_equivalent(mu.program, q2, mu.as_universe(),
                      static_cast<std::uint64_t>(GetParam()) + 7, 600);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedKindEquivalence, testing::Range(1, 9));

TEST(Equivalence, FullMergeOfLpmWithExact) {
    // Full merge with one LPM source: entries become ternary rows.
    util::Rng rng(424242);
    MixedUniverse mu = MixedUniverse::make(rng);
    auto pipelets = analysis::form_pipelets(mu.program);
    opt::CandidateLayout merged;
    merged.order = {0, 1, 2, 3};
    merged.merges = {opt::MergeSpec{opt::Segment{0, 1}, false}};  // exact+lpm
    Program q = opt::apply_plans(mu.program, pipelets,
                                 {plan_for(mu.program, merged)});
    expect_equivalent(mu.program, q, mu.as_universe(), 99, 400);
}

// The big property: run the real optimizer on random universes with random
// synthetic profiles and verify whatever plan it picks is equivalent.
class OptimizerEquivalence : public testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalence, ChosenPlansPreserveSemantics) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
    int n = 3 + static_cast<int>(rng.next_below(3));
    Universe u = Universe::make(n, rng, true, true);

    // Synthesize a plausible profile directly from random counters.
    profile::RuntimeProfile prof;
    prof.reset_for(u.program, 1.0);
    for (ir::NodeId id : u.program.reachable()) {
        const ir::Node& node = u.program.node(id);
        auto& st = prof.table(id);
        for (std::size_t a = 0; a < node.table.actions.size(); ++a) {
            st.action_hits[a] = rng.next_below(1000);
        }
        st.misses = rng.next_below(500);
        st.entry_count = u.entries.count(node.table.name)
                             ? u.entries.at(node.table.name).size()
                             : 0;
    }

    cost::CostParams params;
    params.l_mat = 10.0;
    params.l_act = 2.0;
    profile::InstrumentationConfig instr;
    instr.enabled = false;
    search::OptimizerConfig cfg;
    cfg.top_k_fraction = 1.0;
    cfg.search.min_latency_gain = -1e18;  // accept any valid plan
    search::Optimizer optimizer(cost::CostModel(params, instr), cfg);
    search::OptimizationOutcome out = optimizer.optimize(u.program, prof);

    expect_equivalent(u.program, out.optimized, u,
                      static_cast<std::uint64_t>(GetParam()), 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalence, testing::Range(1, 16));

}  // namespace
}  // namespace pipeleon
