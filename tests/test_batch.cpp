// Tests for the batched multi-worker data plane (sim/batch.h,
// sim/counter_shard.h, Emulator::process_batch): deterministic-mode
// bit-equivalence with the scalar loop, RSS steering stability, control-plane
// fencing against in-flight batches, and wall-clock scaling across workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "analysis/pipelet.h"
#include "apps/scenarios.h"
#include "ir/builder.h"
#include "opt/transform.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "trafficgen/workload.h"

namespace pipeleon::sim {
namespace {

constexpr int kChainLen = 6;
constexpr int kFlows = 128;

trafficgen::FlowSet chain_flows(util::Rng& rng) {
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < kChainLen; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    return trafficgen::FlowSet::generate(tuple, kFlows, rng);
}

/// The chain program with a flow cache over its first half, built the same
/// way the figure benches build cached layouts (form_pipelets + apply_plans),
/// so batches exercise cache learning, replay, and replay counters.
ir::Program cached_chain() {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    analysis::PipeletOptions popt;
    popt.max_length = kChainLen + 2;
    auto pipelets = analysis::form_pipelets(prog, popt);
    opt::PipeletPlan plan;
    plan.pipelet_id = 0;
    for (std::size_t i = 0; i < pipelets[0].nodes.size(); ++i) {
        plan.layout.order.push_back(i);
    }
    plan.layout.caches = {opt::Segment{0, 2}};
    plan.layout.cache_config.capacity = 4096;
    plan.layout.cache_config.max_insert_per_sec = 1e9;
    return opt::apply_plans(prog, pipelets, {plan});
}

/// Pumps `packets` packets through `emu` via the scalar process() loop when
/// `batched` is false, or via process_batch in chunks of `batch_size`.
void pump(Emulator& emu, trafficgen::Workload& wl, int packets, bool batched,
          std::size_t batch_size = 64) {
    if (!batched) {
        for (int i = 0; i < packets; ++i) {
            Packet pkt = wl.next_packet(emu.fields());
            emu.process(pkt);
        }
        return;
    }
    int done = 0;
    while (done < packets) {
        std::size_t n = std::min<std::size_t>(
            batch_size, static_cast<std::size_t>(packets - done));
        PacketBatch batch = wl.next_batch(emu.fields(), n);
        BatchResult r = emu.process_batch(batch);
        ASSERT_EQ(r.results.size(), n);
        done += static_cast<int>(n);
    }
}

/// Bit-for-bit comparison of two exported counter windows.
void expect_counters_identical(const profile::RawCounters& a,
                               const profile::RawCounters& b) {
    EXPECT_EQ(a.action_hits, b.action_hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.branch_true, b.branch_true);
    EXPECT_EQ(a.branch_false, b.branch_false);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.inserts_dropped, b.inserts_dropped);
    EXPECT_EQ(a.replays, b.replays);
    EXPECT_EQ(a.entries, b.entries);
}

void expect_latency_identical(const util::RunningStats& a,
                              const util::RunningStats& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());  // bit-identical, not just approximately
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

/// (a) Deterministic mode reproduces the scalar loop bit-for-bit — counters
/// AND float latency accumulation — even with many workers configured.
TEST(Batch, DeterministicMatchesScalarPlainChain) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    Emulator scalar(bluefield2_model(), prog, {});
    Emulator batched(bluefield2_model(), prog, {});
    batched.set_worker_count(4);
    batched.set_deterministic(true);

    util::Rng rng(7);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(scalar, flows);
    apps::install_flow_entries(batched, flows);

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 3);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Zipf, 1.1, 3);
    pump(scalar, wl_a, 2000, /*batched=*/false);
    pump(batched, wl_b, 2000, /*batched=*/true);

    EXPECT_EQ(scalar.packets_processed(), batched.packets_processed());
    EXPECT_EQ(scalar.packets_dropped(), batched.packets_dropped());
    expect_counters_identical(scalar.read_counters(), batched.read_counters());
    expect_latency_identical(scalar.latency_stats(), batched.latency_stats());
}

/// Same equivalence over a cached program (cache learning order, LRU state,
/// replay counters) and with sampled instrumentation, whose per-packet
/// sampling decision must follow the global arrival sequence in both paths.
TEST(Batch, DeterministicMatchesScalarCachedProgramSampled) {
    ir::Program prog = cached_chain();
    profile::InstrumentationConfig instr;
    instr.sampling_rate = 1.0 / 8.0;
    Emulator scalar(bluefield2_model(), prog, instr);
    Emulator batched(bluefield2_model(), prog, instr);
    batched.set_worker_count(8);
    batched.set_deterministic(true);

    util::Rng rng(7);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(scalar, flows);
    apps::install_flow_entries(batched, flows);

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 5);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Zipf, 1.1, 5);
    pump(scalar, wl_a, 3000, /*batched=*/false, 96);
    pump(batched, wl_b, 3000, /*batched=*/true, 96);

    profile::RawCounters ca = scalar.read_counters();
    profile::RawCounters cb = batched.read_counters();
    // The cache must actually be exercised for this test to mean anything.
    std::uint64_t hits = 0;
    for (std::uint64_t h : ca.cache_hits) hits += h;
    EXPECT_GT(hits, 0u);
    EXPECT_FALSE(ca.replays.empty());
    expect_counters_identical(ca, cb);
    expect_latency_identical(scalar.latency_stats(), batched.latency_stats());
}

/// A single-worker emulator takes the sequential path even without
/// deterministic mode — also bit-identical to the scalar loop.
TEST(Batch, SingleWorkerMatchesScalar) {
    ir::Program prog = cached_chain();
    Emulator scalar(bluefield2_model(), prog, {});
    Emulator batched(bluefield2_model(), prog, {});
    ASSERT_EQ(batched.worker_count(), 1);

    util::Rng rng(9);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(scalar, flows);
    apps::install_flow_entries(batched, flows);

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Uniform, 0.0, 4);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Uniform, 0.0, 4);
    pump(scalar, wl_a, 1500, /*batched=*/false);
    pump(batched, wl_b, 1500, /*batched=*/true, 50);

    expect_counters_identical(scalar.read_counters(), batched.read_counters());
    expect_latency_identical(scalar.latency_stats(), batched.latency_stats());
}

/// Parallel mode merges the same integer counters as the scalar loop (only
/// float latency accumulation order may differ).
TEST(Batch, ParallelCountersMatchScalar) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    Emulator scalar(bluefield2_model(), prog, {});
    Emulator batched(bluefield2_model(), prog, {});
    batched.set_worker_count(4);
    ASSERT_FALSE(batched.deterministic());

    util::Rng rng(11);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(scalar, flows);
    apps::install_flow_entries(batched, flows);

    trafficgen::Workload wl_a(flows, trafficgen::Locality::Zipf, 1.1, 6);
    trafficgen::Workload wl_b(flows, trafficgen::Locality::Zipf, 1.1, 6);
    pump(scalar, wl_a, 2000, /*batched=*/false);
    pump(batched, wl_b, 2000, /*batched=*/true);

    profile::RawCounters ca = scalar.read_counters();
    profile::RawCounters cb = batched.read_counters();
    EXPECT_EQ(ca.action_hits, cb.action_hits);
    EXPECT_EQ(ca.misses, cb.misses);
    EXPECT_EQ(scalar.packets_processed(), batched.packets_processed());
    EXPECT_EQ(scalar.latency_stats().count(), batched.latency_stats().count());
    // Means agree closely even though the float accumulation order differs.
    EXPECT_NEAR(scalar.latency_stats().mean(), batched.latency_stats().mean(),
                1e-6 * scalar.latency_stats().mean() + 1e-9);
}

/// (b) Steering is a pure function of the packet's key fields and the worker
/// count: the same flow lands on the same worker in every batch, and a
/// many-flow workload spreads across workers.
TEST(Batch, SteeringStableAcrossBatchesAndSpreads) {
    ir::Program prog = ir::chain_of_exact_tables("p", kChainLen, 2, 1);
    Emulator emu(bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(13);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 8);

    // First pass: record each flow's worker (keyed by flow field values).
    std::map<std::vector<std::uint64_t>, int> flow_worker;
    std::vector<bool> used(4, false);
    for (int round = 0; round < 4; ++round) {
        PacketBatch batch = wl.next_batch(emu.fields(), 256);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<std::uint64_t> key;
            for (int f = 0; f < kChainLen; ++f) {
                key.push_back(
                    batch[i].get(emu.fields().intern("f" + std::to_string(f))));
            }
            int w = emu.steer_worker(batch[i]);
            ASSERT_GE(w, 0);
            ASSERT_LT(w, 4);
            used[w] = true;
            auto [it, inserted] = flow_worker.emplace(std::move(key), w);
            if (!inserted) {
                EXPECT_EQ(it->second, w)
                    << "flow steered to a different worker across batches";
            }
        }
        emu.process_batch(batch);  // processing must not perturb steering
    }
    int used_count = 0;
    for (bool u : used) used_count += u;
    EXPECT_GT(used_count, 1) << "128 flows all hashed to one of 4 workers";
}

/// (c) Control-plane mutations from another thread while batches are in
/// flight: the fence serializes them, so nothing corrupts and every packet
/// is accounted. Run under TSan to verify the absence of data races.
TEST(Batch, ControlPlaneUpdatesDuringBatchesAreFenced) {
    ir::Program prog = cached_chain();
    Emulator emu(bluefield2_model(), prog, {});
    emu.set_worker_count(4);

    util::Rng rng(17);
    trafficgen::FlowSet flows = chain_flows(rng);
    apps::install_flow_entries(emu, flows);
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 2);

    std::atomic<bool> stop{false};
    std::thread control([&] {
        std::uint64_t next_key = 100000;
        while (!stop.load(std::memory_order_relaxed)) {
            ir::TableEntry e;
            e.key = {ir::FieldMatch::exact(next_key++)};
            e.action_index = 0;
            emu.insert_entry("t0", e);
            emu.invalidate_caches_covering("t1");
            emu.read_counters();
            std::this_thread::yield();
        }
    });

    constexpr int kPackets = 6000;
    int done = 0;
    while (done < kPackets) {
        PacketBatch batch = wl.next_batch(
            emu.fields(), std::min<std::size_t>(
                              128, static_cast<std::size_t>(kPackets - done)));
        BatchResult r = emu.process_batch(batch);
        EXPECT_EQ(r.results.size(), batch.size());
        done += static_cast<int>(batch.size());
    }
    stop.store(true);
    control.join();

    EXPECT_EQ(emu.packets_processed(), static_cast<std::uint64_t>(kPackets));
    // The inserted entries are all present (none lost mid-batch).
    EXPECT_GT(emu.entry_count("t0"), static_cast<std::size_t>(kFlows));
    profile::RawCounters c = emu.read_counters();
    std::uint64_t hits = 0, misses = 0;
    for (std::size_t n = 0; n < c.action_hits.size(); ++n) {
        for (std::uint64_t h : c.action_hits[n]) hits += h;
        misses += c.misses[n];
    }
    EXPECT_GT(hits + misses, 0u);
}

/// Worker count is clamped to the NIC model's core count.
TEST(Batch, WorkerCountClampedToModelCores) {
    ir::Program prog = ir::chain_of_exact_tables("p", 3, 2, 1);
    Emulator emu(bluefield2_model(), prog, {});  // 8 cores
    emu.set_worker_count(64);
    EXPECT_EQ(emu.worker_count(), 8);
    emu.set_worker_count(0);
    EXPECT_EQ(emu.worker_count(), 1);
    emu.set_worker_count(-3);
    EXPECT_EQ(emu.worker_count(), 1);
}

/// (d) Wall-clock throughput is monotonically non-decreasing (with a
/// generous tolerance) from 1 worker up to the core count. Only meaningful
/// on a multi-core host; the steering/merge logic itself is covered above.
TEST(Batch, ThroughputScalesWithWorkers) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 2) {
        GTEST_SKIP() << "single-CPU host: parallel speedup cannot manifest";
    }
    ir::Program prog = ir::chain_of_exact_tables("p", 12, 2, 1);
    util::Rng rng(21);
    std::vector<trafficgen::FieldRange> tuple;
    for (int i = 0; i < 12; ++i) {
        tuple.push_back({"f" + std::to_string(i), 0, 255});
    }
    trafficgen::FlowSet flows =
        trafficgen::FlowSet::generate(tuple, 512, rng);

    auto pps = [&](int workers) {
        Emulator emu(bluefield2_model(), prog, {});
        emu.set_worker_count(workers);
        apps::install_flow_entries(emu, flows);
        trafficgen::Workload wl(flows, trafficgen::Locality::Uniform, 0.0, 2);
        // Warm-up batch (pool spin-up, cache warm).
        PacketBatch warm = wl.next_batch(emu.fields(), 512);
        emu.process_batch(warm);
        constexpr int kPackets = 20000;
        auto t0 = std::chrono::steady_clock::now();
        int done = 0;
        while (done < kPackets) {
            PacketBatch batch = wl.next_batch(emu.fields(), 512);
            emu.process_batch(batch);
            done += static_cast<int>(batch.size());
        }
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        return static_cast<double>(kPackets) / dt.count();
    };

    int max_workers = static_cast<int>(std::min<unsigned>(hw, 8));
    double prev = pps(1);
    for (int w = 2; w <= max_workers; w *= 2) {
        double cur = pps(w);
        // Generous tolerance: non-decreasing within 25% noise.
        EXPECT_GT(cur, prev * 0.75)
            << "throughput regressed from " << w / 2 << " to " << w
            << " workers";
        prev = std::max(prev, cur);
    }
}

}  // namespace
}  // namespace pipeleon::sim
