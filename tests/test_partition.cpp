// Tests for opt/partition: heterogeneous core assignment, migration
// infrastructure, and the table-copy optimization (§3.2.4, Fig 7/17).
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/partition.h"
#include "sim/emulator.h"
#include "profile/profile.h"

namespace pipeleon::opt {
namespace {

using ir::CoreKind;
using ir::NodeId;
using ir::Program;
using ir::ProgramBuilder;
using ir::TableSpec;

/// Interleaved chain: asic, cpu-only, asic, cpu-only (the Appendix A.2
/// program shape).
Program interleaved(int pairs) {
    ProgramBuilder b("inter");
    for (int i = 0; i < pairs; ++i) {
        b.append(TableSpec("hw" + std::to_string(i))
                     .key("h" + std::to_string(i))
                     .noop_action("a", 1)
                     .build());
        b.append(TableSpec("sw" + std::to_string(i))
                     .key("s" + std::to_string(i))
                     .noop_action("a", 1)
                     .cpu_only()
                     .build());
    }
    return b.build();
}

cost::CostModel model() {
    cost::CostParams p;
    p.l_mat = 10.0;
    p.l_act = 1.0;
    p.l_migration = 100.0;
    p.cpu_slowdown = 2.0;
    profile::InstrumentationConfig instr;
    instr.enabled = false;
    return cost::CostModel(p, instr);
}

TEST(Partition, BySupportAssignsCores) {
    Program p = partition_by_support(interleaved(2));
    EXPECT_EQ(p.node(p.find_table("hw0")).core, CoreKind::Asic);
    EXPECT_EQ(p.node(p.find_table("sw0")).core, CoreKind::Cpu);
    EXPECT_EQ(p.node(p.find_table("sw1")).core, CoreKind::Cpu);
}

TEST(Partition, BranchesInheritPredecessorCore) {
    ProgramBuilder b("br");
    NodeId t = b.add(TableSpec("t").key("x").noop_action("a").cpu_only().build());
    NodeId br = b.add_branch({"f", ir::CmpOp::Eq, 1});
    NodeId u = b.add(TableSpec("u").key("y").noop_action("a").build());
    b.connect(t, br);
    b.connect_branch(br, u, u);
    b.set_root(t);
    Program p = partition_by_support(b.build());
    EXPECT_EQ(p.node(br).core, CoreKind::Cpu);
}

TEST(Partition, ExpectedMigrationsCountsCrossings) {
    Program p = partition_by_support(interleaved(2));
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    // hw0->sw0, sw0->hw1, hw1->sw1: 3 crossings at probability 1.
    EXPECT_NEAR(expected_migrations(p, prof), 3.0, 1e-9);
}

TEST(Partition, InsertMigrationTablesAtBoundaries) {
    Program p = partition_by_support(interleaved(1));  // hw0 -> sw0: 1 crossing
    Program q = insert_migration_tables(p);
    int nav = 0, mig = 0;
    for (NodeId id : q.reachable()) {
        const ir::Node& n = q.node(id);
        if (!n.is_table()) continue;
        if (n.table.role == ir::TableRole::Navigation) {
            ++nav;
            EXPECT_EQ(n.core, CoreKind::Cpu);  // entry side of the CPU region
        }
        if (n.table.role == ir::TableRole::Migration) {
            ++mig;
            EXPECT_EQ(n.core, CoreKind::Asic);  // exit side of the ASIC region
        }
    }
    EXPECT_EQ(nav, 1);
    EXPECT_EQ(mig, 1);
    EXPECT_NO_THROW(q.validate());
    // The context tables match on next_tab_id.
    NodeId any_nav = q.find_table("navigate_0");
    ASSERT_NE(any_nav, ir::kNoNode);
    EXPECT_EQ(q.node(any_nav).table.keys[0].field, kNextTabIdField);
}

TEST(Partition, MigrationTablesPreserveMigrationCount) {
    Program p = partition_by_support(interleaved(2));
    profile::RuntimeProfile before;
    before.reset_for(p, 1.0);
    double crossings = expected_migrations(p, before);
    Program q = insert_migration_tables(p);
    profile::RuntimeProfile after;
    after.reset_for(q, 1.0);
    // Context tables sit on the boundary but the crossing count is the same.
    EXPECT_NEAR(expected_migrations(q, after), crossings, 1e-9);
}

TEST(Partition, DuplicateTableForCore) {
    Program p = interleaved(1);
    NodeId clone = duplicate_table_for_core(p, "hw0", CoreKind::Cpu);
    ASSERT_NE(clone, ir::kNoNode);
    EXPECT_EQ(p.node(clone).table.name, "hw0_cpu");
    EXPECT_EQ(p.node(clone).core, CoreKind::Cpu);
    EXPECT_EQ(duplicate_table_for_core(p, "nope", CoreKind::Cpu), ir::kNoNode);
}

TEST(Partition, OptimizeCopiesReducesCost) {
    // 4 interleaved pairs: naive partition migrates 7 times. Copying the
    // interior hw tables to CPU collapses the CPU region.
    Program p = partition_by_support(interleaved(4));
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostModel m = model();
    double before = m.expected_latency(p, prof);
    Program q = optimize_copies(p, prof, m, 8);
    double after = m.expected_latency(q, prof);
    EXPECT_LT(after, before);
    EXPECT_LT(expected_migrations(q, prof), expected_migrations(p, prof));
}

TEST(Partition, OptimizeCopiesStopsWhenUnprofitable) {
    // Single pair: hw0 -> sw0 (1 migration at the boundary, none saveable:
    // moving hw0 to CPU saves the crossing but costs 2x on its table).
    // With migration cost 100 vs slowdown cost 11, copying IS profitable;
    // use a huge slowdown to make it unprofitable instead.
    cost::CostParams params;
    params.l_mat = 10.0;
    params.l_act = 1.0;
    params.l_migration = 1.0;  // cheap migration
    params.cpu_slowdown = 50.0;
    profile::InstrumentationConfig instr;
    instr.enabled = false;
    cost::CostModel m(params, instr);

    Program p = partition_by_support(interleaved(2));
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    Program q = optimize_copies(p, prof, m, 8);
    // No ASIC table should have moved.
    for (NodeId id : q.reachable()) {
        const ir::Node& n = q.node(id);
        if (n.is_table() && n.table.asic_supported) {
            EXPECT_EQ(n.core, CoreKind::Asic) << n.table.name;
        }
    }
}

TEST(Partition, MaxCopiesRespected) {
    Program p = partition_by_support(interleaved(4));
    profile::RuntimeProfile prof;
    prof.reset_for(p, 1.0);
    cost::CostModel m = model();
    Program q1 = optimize_copies(p, prof, m, 1);
    int moved = 0;
    for (NodeId id : q1.reachable()) {
        const ir::Node& n = q1.node(id);
        if (n.is_table() && n.table.asic_supported && n.core == CoreKind::Cpu) {
            ++moved;
        }
    }
    EXPECT_LE(moved, 1);
}

TEST(Partition, MigrationTablesExecuteOnEmulator) {
    // A partitioned program with navigation/migration tables must run to
    // completion and produce the same field effects as the unpartitioned
    // one; only the emulated cost differs.
    Program plain = interleaved(2);
    Program partitioned = insert_migration_tables(partition_by_support(plain));

    sim::NicModel nic_model;
    nic_model.costs.l_mat = 10.0;
    nic_model.costs.l_act = 2.0;
    nic_model.costs.l_migration = 50.0;
    nic_model.costs.cpu_slowdown = 2.0;
    sim::Emulator emu_plain(nic_model, plain, {});
    sim::Emulator emu_part(nic_model, partitioned, {});

    sim::Packet a, b;
    sim::ProcessResult ra = emu_plain.process(a);
    sim::ProcessResult rb = emu_part.process(b);
    EXPECT_EQ(ra.dropped, rb.dropped);
    // Same table count traversed, plus the inserted context tables.
    EXPECT_GT(rb.nodes_visited, ra.nodes_visited);
    EXPECT_EQ(rb.migrations, 3);  // hw0|sw0|hw1|sw1 -> 3 boundary crossings
    // The partitioned run pays migration + context-table costs.
    EXPECT_GT(rb.cycles, ra.cycles);
}

}  // namespace
}  // namespace pipeleon::opt
