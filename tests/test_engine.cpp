// Tests for sim/engine: exact / LPM / ternary match engines and their probe
// counts (the m of Equation 4a).
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace pipeleon::sim {
namespace {

using ir::FieldMatch;
using ir::MatchKind;
using ir::Table;
using ir::TableEntry;
using ir::TableSpec;

TableEntry entry1(FieldMatch m, int action = 0, int priority = 0) {
    TableEntry e;
    e.key = {m};
    e.action_index = action;
    e.priority = priority;
    return e;
}

TEST(ExactEngine, LookupAndMiss) {
    Table t = TableSpec("t").key("f").noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries{entry1(FieldMatch::exact(5)),
                                    entry1(FieldMatch::exact(9))};
    engine->rebuild(t, entries);
    EXPECT_EQ(engine->m(), 1);
    auto hit = engine->lookup({5});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->entry_index, 0u);
    EXPECT_TRUE(engine->lookup({9}).has_value());
    EXPECT_FALSE(engine->lookup({6}).has_value());
}

TEST(ExactEngine, MultiComponentKeys) {
    Table t = TableSpec("t").key("a").key("b").noop_action("x").build();
    auto engine = make_engine(t);
    TableEntry e;
    e.key = {FieldMatch::exact(1), FieldMatch::exact(2)};
    e.action_index = 0;
    engine->rebuild(t, {e});
    EXPECT_TRUE(engine->lookup({1, 2}).has_value());
    EXPECT_FALSE(engine->lookup({2, 1}).has_value());
}

TEST(LpmEngine, LongestPrefixWins) {
    Table t = TableSpec("t").key("dst", MatchKind::Lpm).noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries{
        entry1(FieldMatch::lpm(0x0A000000, 8)),    // 10/8
        entry1(FieldMatch::lpm(0x0A0B0000, 16)),   // 10.11/16
        entry1(FieldMatch::lpm(0x0A0B0C00, 24)),   // 10.11.12/24
    };
    engine->rebuild(t, entries);
    EXPECT_EQ(engine->m(), 3);  // three distinct prefix lengths
    EXPECT_EQ(engine->lookup({0x0A0B0C0D})->entry_index, 2u);
    EXPECT_EQ(engine->lookup({0x0A0B0F01})->entry_index, 1u);
    EXPECT_EQ(engine->lookup({0x0AFFFFFF})->entry_index, 0u);
    EXPECT_FALSE(engine->lookup({0x0B000000}).has_value());
}

TEST(LpmEngine, DefaultRouteViaZeroPrefix) {
    Table t = TableSpec("t").key("dst", MatchKind::Lpm).noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries{entry1(FieldMatch::lpm(0, 0)),
                                    entry1(FieldMatch::lpm(0x0A000000, 8))};
    engine->rebuild(t, entries);
    EXPECT_EQ(engine->lookup({0x0A123456})->entry_index, 1u);
    EXPECT_EQ(engine->lookup({0x22222222})->entry_index, 0u);
}

TEST(LpmEngine, MixedExactComponent) {
    Table t = TableSpec("t")
                  .key("vrf", MatchKind::Exact, 16)
                  .key("dst", MatchKind::Lpm)
                  .noop_action("a")
                  .build();
    auto engine = make_engine(t);
    TableEntry e;
    e.key = {FieldMatch::exact(7), FieldMatch::lpm(0x0A000000, 8)};
    e.action_index = 0;
    engine->rebuild(t, {e});
    EXPECT_TRUE(engine->lookup({7, 0x0A010203}).has_value());
    EXPECT_FALSE(engine->lookup({8, 0x0A010203}).has_value());
}

TEST(TernaryEngine, PriorityArbitration) {
    Table t = TableSpec("t").key("f", MatchKind::Ternary).noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries{
        entry1(FieldMatch::ternary(0x0A00, 0xFF00), 0, 1),
        entry1(FieldMatch::ternary(0x0A0B, 0xFFFF), 0, 2),
        entry1(FieldMatch::wildcard(), 0, 0),
    };
    engine->rebuild(t, entries);
    EXPECT_EQ(engine->m(), 3);  // three distinct masks
    EXPECT_EQ(engine->lookup({0x0A0B})->entry_index, 1u);  // most specific
    EXPECT_EQ(engine->lookup({0x0A0C})->entry_index, 0u);
    EXPECT_EQ(engine->lookup({0x1234})->entry_index, 2u);  // wildcard
}

TEST(TernaryEngine, SameMaskHigherPriorityWins) {
    Table t = TableSpec("t").key("f", MatchKind::Ternary).noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries{
        entry1(FieldMatch::ternary(5, 0xFF), 0, 1),
        entry1(FieldMatch::ternary(5, 0xFF), 0, 9),
    };
    engine->rebuild(t, entries);
    EXPECT_EQ(engine->lookup({5})->entry_index, 1u);
}

TEST(TernaryEngine, MaskCountDrivesM) {
    Table t = TableSpec("t").key("f", MatchKind::Ternary).noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries;
    for (std::uint64_t i = 0; i < 5; ++i) {
        entries.push_back(entry1(FieldMatch::ternary(0, 0xFULL << (4 * i))));
    }
    engine->rebuild(t, entries);
    EXPECT_EQ(engine->m(), 5);  // "five different masks" (§3.1 methodology)
}

TEST(TernaryEngine, RangeEntriesUseLinearGroup) {
    Table t = TableSpec("t").key("port", MatchKind::Range, 16).noop_action("a").build();
    auto engine = make_engine(t);
    std::vector<TableEntry> entries{entry1(FieldMatch::range(100, 200), 0, 1),
                                    entry1(FieldMatch::range(150, 300), 0, 2)};
    engine->rebuild(t, entries);
    EXPECT_FALSE(engine->lookup({99}).has_value());
    EXPECT_EQ(engine->lookup({120})->entry_index, 0u);
    EXPECT_EQ(engine->lookup({180})->entry_index, 1u);  // overlap: priority 2
    EXPECT_EQ(engine->lookup({250})->entry_index, 1u);
}

TEST(TernaryEngine, ExactComponentsGetFullMask) {
    Table t = TableSpec("t")
                  .key("a", MatchKind::Exact)
                  .key("b", MatchKind::Ternary)
                  .noop_action("x")
                  .build();
    auto engine = make_engine(t);
    TableEntry e;
    e.key = {FieldMatch::exact(3), FieldMatch::wildcard()};
    e.action_index = 0;
    engine->rebuild(t, {e});
    EXPECT_TRUE(engine->lookup({3, 999}).has_value());
    EXPECT_FALSE(engine->lookup({4, 999}).has_value());
}

TEST(Engines, EmptyTablesMissEverything) {
    for (MatchKind kind : {MatchKind::Exact, MatchKind::Lpm, MatchKind::Ternary}) {
        Table t = TableSpec("t").key("f", kind).noop_action("a").build();
        auto engine = make_engine(t);
        engine->rebuild(t, {});
        EXPECT_FALSE(engine->lookup({1}).has_value());
        EXPECT_GE(engine->m(), 1);
    }
}

TEST(KeyVecHash, DifferentKeysDifferentHashesUsually) {
    KeyVecHash h;
    EXPECT_NE(h({1, 2}), h({2, 1}));
    EXPECT_EQ(h({5}), h({5}));
}

// Property sweep: engines agree with brute-force matching over random
// entry sets.
class EngineAgainstBruteForce : public testing::TestWithParam<int> {};

TEST_P(EngineAgainstBruteForce, TernaryMatchesReference) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    Table t = TableSpec("t").key("f", MatchKind::Ternary, 16).noop_action("a").build();
    std::vector<TableEntry> entries;
    for (int i = 0; i < 32; ++i) {
        std::uint64_t mask = rng.next_below(4) == 0
                                 ? 0xFFFF
                                 : (0xFFFFULL & ~((1ULL << rng.next_below(12)) - 1));
        TableEntry e = entry1(
            FieldMatch::ternary(rng.next_below(0x10000) & mask, mask), 0,
            static_cast<int>(rng.next_below(8)));
        entries.push_back(e);
    }
    auto engine = make_engine(t);
    engine->rebuild(t, entries);

    for (int trial = 0; trial < 200; ++trial) {
        std::uint64_t key = rng.next_below(0x10000);
        // Brute force reference.
        int best = -1;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (!entries[i].key[0].matches(key, 16)) continue;
            if (best < 0 ||
                entries[i].priority > entries[static_cast<std::size_t>(best)].priority ||
                (entries[i].priority ==
                     entries[static_cast<std::size_t>(best)].priority &&
                 i < static_cast<std::size_t>(best))) {
                best = static_cast<int>(i);
            }
        }
        auto got = engine->lookup({key});
        if (best < 0) {
            EXPECT_FALSE(got.has_value());
        } else {
            ASSERT_TRUE(got.has_value());
            const TableEntry& g = entries[got->entry_index];
            const TableEntry& want = entries[static_cast<std::size_t>(best)];
            EXPECT_EQ(g.priority, want.priority);
            EXPECT_TRUE(g.key[0].matches(key, 16));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgainstBruteForce, testing::Range(1, 11));

}  // namespace
}  // namespace pipeleon::sim
