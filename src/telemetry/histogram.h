// telemetry/histogram.h — an HDR-style log-linear latency histogram. Fixed
// storage (no allocation after construction), mergeable across worker shards
// by plain bucket addition, and queryable for p50/p90/p99/p999/max. Values
// are bucketed with kSubBits bits of sub-bucket resolution per power of two,
// bounding the relative quantization error at 1/2^kSubBits (~3.1%), which is
// the same accuracy class real latency recorders (HdrHistogram, DDSketch)
// trade for O(1) record cost. Recording is one branch + one increment — the
// data plane records every packet's emulated latency without atomics because
// each worker owns a private histogram, merged at batch boundaries (see
// sim::CounterShard).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace pipeleon::telemetry {

class LatencyHistogram {
public:
    /// Sub-bucket resolution: each power-of-two range splits into
    /// 2^kSubBits linear buckets.
    static constexpr int kSubBits = 5;
    static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBits;
    /// Buckets cover the full uint64 range: 32 exact low buckets plus
    /// (64 - kSubBits) log ranges of kSubBuckets each.
    static constexpr std::size_t kBucketCount =
        (64 - kSubBits + 1) * static_cast<std::size_t>(kSubBuckets);

    /// Maps a value to its bucket. Values < kSubBuckets get exact buckets.
    static std::size_t bucket_index(std::uint64_t v);
    /// Inclusive lower edge of bucket `i`.
    static std::uint64_t bucket_lower(std::size_t i);
    /// Exclusive upper edge of bucket `i`.
    static std::uint64_t bucket_upper(std::size_t i);

    /// Records one value. Negative doubles clamp to 0; values are rounded
    /// to the nearest integer unit (the caller picks the unit: cycles, ns).
    void record(double v);
    void record_value(std::uint64_t v, std::uint64_t n = 1);

    /// Adds every bucket (and count/sum/min/max) of `other` into this
    /// histogram. Associative and commutative — shard merge order never
    /// changes any quantile.
    void merge(const LatencyHistogram& other);

    void reset();

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double sum() const { return sum_; }
    double mean() const {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    /// Exact (not quantized) extrema of the recorded values.
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    /// Quantile via cumulative bucket walk with linear interpolation inside
    /// the containing bucket; q in [0, 100]. Returns 0 when empty.
    double percentile(double q) const;
    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }

    /// Raw bucket access (tests, exporters).
    const std::array<std::uint64_t, kBucketCount>& buckets() const {
        return buckets_;
    }

    /// Compact one-line rendering for dashboards:
    /// "n=... mean=... p50=... p90=... p99=... p999=... max=...".
    std::string summary(const std::string& unit = "") const;

private:
    std::array<std::uint64_t, kBucketCount> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/// The scalar summary exported in snapshots and bench reports.
struct HistogramSummary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double min = 0.0;
    double max = 0.0;

    static HistogramSummary of(const LatencyHistogram& h);
};

}  // namespace pipeleon::telemetry
