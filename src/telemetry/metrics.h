// telemetry/metrics.h — the host-side metrics registry. Named counters,
// gauges, and latency histograms with two write paths:
//
//   - the cold path (add / set_gauge / record): takes the registry mutex;
//     for control-plane-rate events (ticks, deploys, batch boundaries).
//   - the hot path (shard_add / shard_record): a plain non-atomic bump in a
//     per-worker lane the caller owns exclusively — the same sharding
//     discipline as sim::CounterShard. Lanes fold into the locked master at
//     batch boundaries via merge_shards(), so `snapshot()` (which reads the
//     master only) is safe to call concurrently with lane writers and
//     observes the state as of the last merge, mirroring the emulator's
//     epoch read semantics.
//
// Registration is idempotent by name and intended for setup time: callers
// must not register while lanes are being written (the emulator registers in
// its constructor and resizes lanes only under its control lock).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/histogram.h"
#include "util/json.h"

namespace pipeleon::telemetry {

/// Dense per-kind index: counter ids, gauge ids, and histogram ids are
/// separate spaces (the accessor that registered a name tells you which).
using MetricId = std::uint32_t;

/// A point-in-time copy of the master metrics, insertion-ordered.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSummary>> histograms;

    /// Value of the named counter, or 0 when absent.
    std::uint64_t counter(const std::string& name) const;
    /// Value of the named gauge, or 0 when absent.
    double gauge(const std::string& name) const;
    /// Summary of the named histogram, or nullptr when absent.
    const HistogramSummary* histogram(const std::string& name) const;

    util::Json to_json() const;
    /// Multi-line dashboard rendering (pipeleon_stats).
    std::string to_text() const;
};

class MetricsRegistry {
public:
    /// Register-or-get by name. Ids are dense per kind and stable for the
    /// registry's lifetime. A name belongs to exactly one kind;
    /// re-registering it under another kind throws.
    MetricId counter(const std::string& name);
    MetricId gauge(const std::string& name);
    MetricId histogram(const std::string& name);

    // ------------------------------------------------------------ hot path
    //
    // One plain vector increment, no lock, no atomic. The caller must own
    // lane `shard` exclusively (one worker per lane) and must not run
    // concurrently with merge_shards(), set_shard_count(), or registration —
    // the emulator guarantees this by doing all three under its control
    // lock while no batch is in flight.

    void shard_add(std::size_t shard, MetricId counter_id,
                   std::uint64_t delta = 1) {
        lanes_[shard].counters[counter_id] += delta;
    }
    void shard_record(std::size_t shard, MetricId histogram_id, double v) {
        lanes_[shard].histograms[histogram_id].record(v);
    }

    /// Sizes the lane set (existing lane contents are preserved up to the
    /// new count; merge first when shrinking).
    void set_shard_count(std::size_t n);
    std::size_t shard_count() const { return lanes_.size(); }

    /// Folds every lane into the master and zeroes the lanes. Call at batch
    /// boundaries, with lane writers quiesced.
    void merge_shards();

    // ----------------------------------------------------------- cold path

    void add(MetricId counter_id, std::uint64_t delta = 1);
    void set_gauge(MetricId gauge_id, double value);
    void record(MetricId histogram_id, double value);

    /// Copy of the named histogram's master state (merge_shards first to
    /// fold pending lane records).
    LatencyHistogram histogram_state(MetricId histogram_id) const;

    /// Reads the master only — safe concurrently with lane writers.
    MetricsSnapshot snapshot() const;

    /// Zeroes master values and lanes (names and ids survive).
    void reset();

private:
    struct Lane {
        std::vector<std::uint64_t> counters;
        std::vector<LatencyHistogram> histograms;
    };

    MetricId register_in(std::vector<std::string>& names,
                         const std::string& name);
    void check_kind_locked(const std::string& name,
                           const std::vector<std::string>& own) const;

    mutable std::mutex mu_;
    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::vector<std::string> histogram_names_;
    std::vector<std::uint64_t> counter_values_;  // master, id-indexed
    std::vector<double> gauge_values_;
    std::vector<LatencyHistogram> histogram_values_;
    std::vector<Lane> lanes_;
};

}  // namespace pipeleon::telemetry
