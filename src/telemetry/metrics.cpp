#include "telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace pipeleon::telemetry {

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
    for (const auto& [n, v] : counters) {
        if (n == name) return v;
    }
    return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
    for (const auto& [n, v] : gauges) {
        if (n == name) return v;
    }
    return 0.0;
}

const HistogramSummary* MetricsSnapshot::histogram(
    const std::string& name) const {
    for (const auto& [n, v] : histograms) {
        if (n == name) return &v;
    }
    return nullptr;
}

util::Json MetricsSnapshot::to_json() const {
    util::Json out = util::Json::object();
    util::Json cs = util::Json::object();
    for (const auto& [n, v] : counters) cs.as_object().set(n, util::Json(v));
    util::Json gs = util::Json::object();
    for (const auto& [n, v] : gauges) gs.as_object().set(n, util::Json(v));
    util::Json hs = util::Json::object();
    for (const auto& [n, h] : histograms) {
        util::Json o = util::Json::object();
        o.as_object().set("count", util::Json(h.count));
        o.as_object().set("mean", util::Json(h.mean));
        o.as_object().set("p50", util::Json(h.p50));
        o.as_object().set("p90", util::Json(h.p90));
        o.as_object().set("p99", util::Json(h.p99));
        o.as_object().set("p999", util::Json(h.p999));
        o.as_object().set("min", util::Json(h.min));
        o.as_object().set("max", util::Json(h.max));
        hs.as_object().set(n, std::move(o));
    }
    out.as_object().set("counters", std::move(cs));
    out.as_object().set("gauges", std::move(gs));
    out.as_object().set("histograms", std::move(hs));
    return out;
}

std::string MetricsSnapshot::to_text() const {
    std::string out;
    for (const auto& [n, v] : counters) {
        out += util::format("  %-32s %20llu\n", n.c_str(),
                            static_cast<unsigned long long>(v));
    }
    for (const auto& [n, v] : gauges) {
        out += util::format("  %-32s %20.3f\n", n.c_str(), v);
    }
    for (const auto& [n, h] : histograms) {
        out += util::format(
            "  %-32s n=%llu mean=%.1f p50=%.1f p90=%.1f p99=%.1f "
            "p999=%.1f max=%.0f\n",
            n.c_str(), static_cast<unsigned long long>(h.count), h.mean, h.p50,
            h.p90, h.p99, h.p999, h.max);
    }
    return out;
}

void MetricsRegistry::check_kind_locked(
    const std::string& name, const std::vector<std::string>& own) const {
    for (const std::vector<std::string>* names :
         {&counter_names_, &gauge_names_, &histogram_names_}) {
        if (names == &own) continue;
        if (std::find(names->begin(), names->end(), name) != names->end()) {
            throw std::logic_error("MetricsRegistry: metric '" + name +
                                   "' already registered under another kind");
        }
    }
}

MetricId MetricsRegistry::register_in(std::vector<std::string>& names,
                                      const std::string& name) {
    auto it = std::find(names.begin(), names.end(), name);
    if (it != names.end()) {
        return static_cast<MetricId>(it - names.begin());
    }
    check_kind_locked(name, names);
    names.push_back(name);
    return static_cast<MetricId>(names.size() - 1);
}

MetricId MetricsRegistry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    MetricId id = register_in(counter_names_, name);
    counter_values_.resize(counter_names_.size(), 0);
    for (Lane& lane : lanes_) lane.counters.resize(counter_names_.size(), 0);
    return id;
}

MetricId MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    MetricId id = register_in(gauge_names_, name);
    gauge_values_.resize(gauge_names_.size(), 0.0);
    return id;
}

MetricId MetricsRegistry::histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    MetricId id = register_in(histogram_names_, name);
    histogram_values_.resize(histogram_names_.size());
    for (Lane& lane : lanes_) lane.histograms.resize(histogram_names_.size());
    return id;
}

void MetricsRegistry::set_shard_count(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    lanes_.resize(n);
    for (Lane& lane : lanes_) {
        lane.counters.resize(counter_names_.size(), 0);
        lane.histograms.resize(histogram_names_.size());
    }
}

void MetricsRegistry::merge_shards() {
    std::lock_guard<std::mutex> lock(mu_);
    for (Lane& lane : lanes_) {
        for (std::size_t i = 0; i < lane.counters.size(); ++i) {
            counter_values_[i] += lane.counters[i];
            lane.counters[i] = 0;
        }
        for (std::size_t i = 0; i < lane.histograms.size(); ++i) {
            histogram_values_[i].merge(lane.histograms[i]);
            lane.histograms[i].reset();
        }
    }
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counter_values_[id] += delta;
}

void MetricsRegistry::set_gauge(MetricId id, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    gauge_values_[id] = value;
}

void MetricsRegistry::record(MetricId id, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_values_[id].record(value);
}

LatencyHistogram MetricsRegistry::histogram_state(MetricId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_values_[id];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        snap.counters.emplace_back(counter_names_[i], counter_values_[i]);
    }
    snap.gauges.reserve(gauge_names_.size());
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
        snap.gauges.emplace_back(gauge_names_[i], gauge_values_[i]);
    }
    snap.histograms.reserve(histogram_names_.size());
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
        snap.histograms.emplace_back(histogram_names_[i],
                                     HistogramSummary::of(histogram_values_[i]));
    }
    return snap;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(counter_values_.begin(), counter_values_.end(), 0);
    std::fill(gauge_values_.begin(), gauge_values_.end(), 0.0);
    for (LatencyHistogram& h : histogram_values_) h.reset();
    for (Lane& lane : lanes_) {
        std::fill(lane.counters.begin(), lane.counters.end(), 0);
        for (LatencyHistogram& h : lane.histograms) h.reset();
    }
}

}  // namespace pipeleon::telemetry
