// telemetry/telemetry.h — the compile-time switch and the span macro for the
// host-side observability subsystem (ISSUE 4). Pipeleon is profile-*guided*
// optimization, so the harness holds itself to the same standard it demands
// of the data plane (Fig 12): measurement must be first-class and cheap. The
// subsystem has four parts:
//
//   - MetricsRegistry (metrics.h): named counters/gauges/histograms with
//     per-worker sharded lanes — plain non-atomic bumps on the hot path,
//     merged into the locked master at batch boundaries, exactly the
//     CounterShard discipline the batched data plane already uses.
//   - LatencyHistogram (histogram.h): HDR-style log-linear fixed-bin
//     histogram (p50/p90/p99/p999/max), mergeable across shards.
//   - Tracer / TELEMETRY_SPAN (trace.h): scoped spans buffered per thread,
//     exportable as chrome://tracing trace-event JSON.
//   - BenchReport / CsvSeries (bench_report.h): the machine-readable bench
//     export schema every bench/ binary emits (BENCH_<name>.json).
//
// PIPELEON_TELEMETRY is a CMake option (default ON). When OFF, kEnabled is
// false: every hot-path recording site is guarded by `if constexpr
// (telemetry::kEnabled)` and TELEMETRY_SPAN expands to nothing, so the cost
// is zero by construction (bench/micro_telemetry verifies). Telemetry only
// observes — deterministic mode stays bit-identical with it enabled.
#pragma once

#ifndef PIPELEON_TELEMETRY
#define PIPELEON_TELEMETRY 1
#endif

namespace pipeleon::telemetry {

/// Compile-time master switch; hot paths guard recording with
/// `if constexpr (kEnabled)` so the disabled build carries no cost.
inline constexpr bool kEnabled = PIPELEON_TELEMETRY != 0;

}  // namespace pipeleon::telemetry

// The span macro lives in trace.h (it needs ScopedSpan); include it through
// this umbrella so call sites only ever include telemetry/telemetry.h.
#include "telemetry/trace.h"  // IWYU pragma: export
