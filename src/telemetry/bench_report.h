// telemetry/bench_report.h — the machine-readable bench export. Every
// bench/ binary emits one BENCH_<name>.json conforming to the
// "pipeleon.bench_report/1" schema so CI can collect a perf trajectory
// across PRs instead of diffing free-form text:
//
//   {
//     "schema":    "pipeleon.bench_report/1",
//     "bench":     "<binary name>",            // non-empty string
//     "nic_model": "<NicModel name or host>",  // non-empty string
//     "params":    { ... free-form scalars ... },
//     "metrics":   {                            // required keys, extras ok
//       "throughput_gbps": <number>,
//       "latency_p50":     <number>,
//       "latency_p99":     <number>,
//       "drops":           <number>,
//       "epochs":          <number>,
//       ...
//     }
//   }
//
// Required metric keys are pre-seeded to 0 so a bench that has no natural
// value for one of them still emits a conformant report. CsvSeries is the
// companion window-level time-series export (one row per measurement
// window).
#pragma once

#include <string>
#include <vector>

#include "util/json.h"

namespace pipeleon::telemetry {

class BenchReport {
public:
    static constexpr const char* kSchema = "pipeleon.bench_report/1";
    /// Metric keys every report must carry.
    static const std::vector<std::string>& required_metrics();

    BenchReport(std::string bench, std::string nic_model);

    const std::string& bench() const { return bench_; }

    void set_param(const std::string& name, util::Json value);
    void set_metric(const std::string& name, double value);
    double metric(const std::string& name) const;

    util::Json to_json() const;

    /// Validates a parsed report against the schema. Returns a list of
    /// problems; empty means conformant.
    static std::vector<std::string> validate(const util::Json& report);

    /// "BENCH_<bench>.json", under $PIPELEON_BENCH_DIR when set, else the
    /// working directory.
    std::string default_path() const;
    /// The companion CsvSeries path: same directory, "BENCH_<bench>.csv".
    std::string csv_path() const;

    /// Writes to default_path() (pretty-printed). Returns the path.
    std::string write() const;

private:
    std::string bench_;
    std::string nic_model_;
    util::Json params_ = util::Json::object();
    util::Json metrics_ = util::Json::object();
};

/// A window-level time series written as CSV ("BENCH_<name>.csv" alongside
/// the JSON report): fixed columns, one row per measurement window.
class CsvSeries {
public:
    explicit CsvSeries(std::vector<std::string> columns);

    void add_row(const std::vector<double>& values);  // size must match
    std::size_t rows() const { return rows_.size(); }

    std::string to_csv() const;
    void write(const std::string& path) const;

private:
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_;
};

}  // namespace pipeleon::telemetry
