// telemetry/trace.h — scoped trace spans for the control plane. A
// TELEMETRY_SPAN("controller.prepare") records one complete ("ph":"X")
// trace event — name, start timestamp, duration, thread id — into a
// per-thread buffer; Tracer::to_chrome_json() exports everything in the
// chrome://tracing / Perfetto trace-event format, so a controller run can be
// opened in a real trace viewer.
//
// Buffers are per-thread (allocated on a thread's first span and owned by
// the global tracer), each guarded by its own uncontended mutex so a
// concurrent export never races a recording thread. Buffers are bounded:
// past kMaxEventsPerThread the tracer drops new events and counts the drops
// instead of growing without bound. Recording is disabled-by-default-cheap:
// one relaxed atomic load when tracing is off, and the whole macro compiles
// away when PIPELEON_TELEMETRY is OFF.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace pipeleon::telemetry {

/// One completed span. Timestamps are nanoseconds since the tracer's epoch
/// (process start), durations in nanoseconds.
struct TraceEvent {
    const char* name = "";  // static-storage string literals only
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
};

class Tracer {
public:
    static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

    /// The process-wide tracer TELEMETRY_SPAN records into.
    static Tracer& global();

    /// Runtime switch (benches turn tracing off so the measured loops carry
    /// no span cost; see bench::BenchEnv). Off by default cost: one relaxed
    /// load per span site.
    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Nanoseconds since the tracer's epoch.
    std::uint64_t now_ns() const;

    /// Records one completed span into the calling thread's buffer.
    void record(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns);

    /// Copies out every buffered event (all threads), sorted by start time.
    std::vector<TraceEvent> events() const;

    /// Chrome trace-event JSON: {"traceEvents": [{"name", "ph":"X", "ts"
    /// (µs), "dur" (µs), "pid", "tid"}, ...]}.
    util::Json to_chrome_json() const;
    void write_chrome_json(const std::string& path) const;

    /// Discards all buffered events (buffers stay registered).
    void clear();

    /// Events rejected because a thread's buffer was full.
    std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }

private:
    struct ThreadBuffer {
        std::mutex mu;
        std::vector<TraceEvent> events;
        std::uint32_t tid = 0;
    };

    ThreadBuffer& buffer_for_this_thread();

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();

    mutable std::mutex registry_mu_;  // guards buffers_ (list membership)
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: samples the clock at construction and records the completed
/// event at destruction. When the tracer is disabled at construction the
/// span is inert (no clock call at destruction either).
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name) {
        Tracer& t = Tracer::global();
        if (t.enabled()) {
            name_ = name;
            start_ns_ = t.now_ns();
            active_ = true;
        }
    }
    ~ScopedSpan() {
        if (active_) {
            Tracer& t = Tracer::global();
            t.record(name_, start_ns_, t.now_ns() - start_ns_);
        }
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    const char* name_ = "";
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
};

}  // namespace pipeleon::telemetry

#define PIPELEON_SPAN_CONCAT2(a, b) a##b
#define PIPELEON_SPAN_CONCAT(a, b) PIPELEON_SPAN_CONCAT2(a, b)

#ifndef PIPELEON_TELEMETRY
#define PIPELEON_TELEMETRY 1
#endif

#if PIPELEON_TELEMETRY
/// Scopes a trace span over the rest of the enclosing block. `name` must be
/// a string literal (stored by pointer).
#define TELEMETRY_SPAN(name)                               \
    ::pipeleon::telemetry::ScopedSpan PIPELEON_SPAN_CONCAT( \
        pipeleon_span_, __LINE__) { name }
#else
#define TELEMETRY_SPAN(name) \
    do {                     \
    } while (0)
#endif
