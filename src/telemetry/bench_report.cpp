#include "telemetry/bench_report.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/strings.h"

namespace pipeleon::telemetry {

const std::vector<std::string>& BenchReport::required_metrics() {
    static const std::vector<std::string> keys = {
        "throughput_gbps", "latency_p50", "latency_p99", "drops", "epochs"};
    return keys;
}

BenchReport::BenchReport(std::string bench, std::string nic_model)
    : bench_(std::move(bench)), nic_model_(std::move(nic_model)) {
    for (const std::string& key : required_metrics()) {
        metrics_.as_object().set(key, util::Json(0.0));
    }
}

void BenchReport::set_param(const std::string& name, util::Json value) {
    params_.as_object().set(name, std::move(value));
}

void BenchReport::set_metric(const std::string& name, double value) {
    metrics_.as_object().set(name, util::Json(value));
}

double BenchReport::metric(const std::string& name) const {
    const util::Json* v = metrics_.find(name);
    return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

util::Json BenchReport::to_json() const {
    util::Json out = util::Json::object();
    out.as_object().set("schema", util::Json(kSchema));
    out.as_object().set("bench", util::Json(bench_));
    out.as_object().set("nic_model", util::Json(nic_model_));
    out.as_object().set("params", params_);
    out.as_object().set("metrics", metrics_);
    return out;
}

std::vector<std::string> BenchReport::validate(const util::Json& report) {
    std::vector<std::string> problems;
    if (!report.is_object()) {
        problems.push_back("report is not a JSON object");
        return problems;
    }
    const util::Json* schema = report.find("schema");
    if (schema == nullptr || !schema->is_string()) {
        problems.push_back("missing string field 'schema'");
    } else if (schema->as_string() != kSchema) {
        problems.push_back("unknown schema '" + schema->as_string() +
                           "' (want '" + kSchema + "')");
    }
    for (const char* key : {"bench", "nic_model"}) {
        const util::Json* v = report.find(key);
        if (v == nullptr || !v->is_string() || v->as_string().empty()) {
            problems.push_back(std::string("missing non-empty string field '") +
                               key + "'");
        }
    }
    const util::Json* params = report.find("params");
    if (params == nullptr || !params->is_object()) {
        problems.push_back("missing object field 'params'");
    }
    const util::Json* metrics = report.find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
        problems.push_back("missing object field 'metrics'");
        return problems;
    }
    for (const std::string& key : required_metrics()) {
        const util::Json* v = metrics->find(key);
        if (v == nullptr || !v->is_number()) {
            problems.push_back("metrics." + key + " missing or not a number");
        }
    }
    return problems;
}

std::string BenchReport::default_path() const {
    std::string dir;
    if (const char* env = std::getenv("PIPELEON_BENCH_DIR")) dir = env;
    std::string file = "BENCH_" + bench_ + ".json";
    return dir.empty() ? file : dir + "/" + file;
}

std::string BenchReport::csv_path() const {
    std::string dir;
    if (const char* env = std::getenv("PIPELEON_BENCH_DIR")) dir = env;
    std::string file = "BENCH_" + bench_ + ".csv";
    return dir.empty() ? file : dir + "/" + file;
}

std::string BenchReport::write() const {
    std::string path = default_path();
    util::save_json_file(path, to_json());
    return path;
}

CsvSeries::CsvSeries(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvSeries::add_row(const std::vector<double>& values) {
    if (values.size() != columns_.size()) {
        throw std::invalid_argument(util::format(
            "CsvSeries: row has %zu values, expected %zu columns",
            values.size(), columns_.size()));
    }
    rows_.push_back(values);
}

std::string CsvSeries::to_csv() const {
    std::string out;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (i != 0) out += ",";
        out += columns_[i];
    }
    out += "\n";
    for (const std::vector<double>& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i != 0) out += ",";
            out += util::format("%.6g", row[i]);
        }
        out += "\n";
    }
    return out;
}

void CsvSeries::write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) {
        throw std::runtime_error("CsvSeries: cannot open " + path);
    }
    f << to_csv();
}

}  // namespace pipeleon::telemetry
