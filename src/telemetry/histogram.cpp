#include "telemetry/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/strings.h"

namespace pipeleon::telemetry {

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    // The log range is the position of the most significant bit beyond the
    // linear prefix; the sub-bucket is the kSubBits bits below it.
    const int msb = 63 - std::countl_zero(v);
    const int range = msb - kSubBits + 1;  // >= 1
    const std::uint64_t sub = (v >> (msb - kSubBits)) - kSubBuckets;
    return static_cast<std::size_t>(range) *
               static_cast<std::size_t>(kSubBuckets) +
           static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t i) {
    if (i < kSubBuckets) return i;
    const std::size_t range = i / static_cast<std::size_t>(kSubBuckets);
    const std::uint64_t sub = i % static_cast<std::size_t>(kSubBuckets);
    return (kSubBuckets + sub) << (range - 1);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t i) {
    if (i < kSubBuckets) return i + 1;
    const std::size_t range = i / static_cast<std::size_t>(kSubBuckets);
    const std::uint64_t sub = i % static_cast<std::size_t>(kSubBuckets);
    return (kSubBuckets + sub + 1) << (range - 1);
}

void LatencyHistogram::record(double v) {
    if (v < 0.0) v = 0.0;
    record_value(static_cast<std::uint64_t>(std::llround(v)));
}

void LatencyHistogram::record_value(std::uint64_t v, std::uint64_t n) {
    if (n == 0) return;
    buckets_[bucket_index(v)] += n;
    if (count_ == 0 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    count_ += n;
    sum_ += static_cast<double>(v) * static_cast<double>(n);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void LatencyHistogram::reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

double LatencyHistogram::percentile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 100.0);
    const double target = q / 100.0 * static_cast<double>(count_);
    double cum = 0.0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        if (buckets_[i] == 0) continue;
        const double next = cum + static_cast<double>(buckets_[i]);
        if (next >= target) {
            // Linear interpolation inside the bucket, clamped to the exact
            // extrema so p0/p100 read true.
            const double lo = static_cast<double>(bucket_lower(i));
            const double hi = static_cast<double>(bucket_upper(i));
            const double frac =
                buckets_[i] ? (target - cum) / static_cast<double>(buckets_[i])
                            : 0.0;
            double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
            return std::clamp(v, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
        cum = next;
    }
    return static_cast<double>(max_);
}

std::string LatencyHistogram::summary(const std::string& unit) const {
    return util::format(
        "n=%llu mean=%.1f%s p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%llu",
        static_cast<unsigned long long>(count_), mean(), unit.c_str(), p50(),
        p90(), p99(), p999(), static_cast<unsigned long long>(max()));
}

HistogramSummary HistogramSummary::of(const LatencyHistogram& h) {
    HistogramSummary s;
    s.count = h.count();
    s.mean = h.mean();
    s.p50 = h.p50();
    s.p90 = h.p90();
    s.p99 = h.p99();
    s.p999 = h.p999();
    s.min = static_cast<double>(h.min());
    s.max = static_cast<double>(h.max());
    return s;
}

}  // namespace pipeleon::telemetry
