#include "telemetry/trace.h"

#include <algorithm>

namespace pipeleon::telemetry {

Tracer& Tracer::global() {
    static Tracer tracer;
    return tracer;
}

std::uint64_t Tracer::now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
    // One buffer per (tracer, thread); the tracer owns the storage so a
    // thread exiting never invalidates an export in progress.
    thread_local ThreadBuffer* cached = nullptr;
    thread_local const Tracer* cached_owner = nullptr;
    if (cached != nullptr && cached_owner == this) return *cached;
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
    cached = buffers_.back().get();
    cached_owner = this;
    return *cached;
}

void Tracer::record(const char* name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns) {
    ThreadBuffer& buf = buffer_for_this_thread();
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.events.size() >= kMaxEventsPerThread) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.events.push_back(TraceEvent{name, ts_ns, dur_ns, buf.tid});
}

std::vector<TraceEvent> Tracer::events() const {
    std::vector<TraceEvent> out;
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& buf : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return out;
}

util::Json Tracer::to_chrome_json() const {
    util::Json trace_events = util::Json::array();
    for (const TraceEvent& e : events()) {
        util::Json ev = util::Json::object();
        ev.as_object().set("name", util::Json(std::string(e.name)));
        ev.as_object().set("cat", util::Json("pipeleon"));
        ev.as_object().set("ph", util::Json("X"));
        // Chrome's trace-event format wants microseconds.
        ev.as_object().set("ts", util::Json(static_cast<double>(e.ts_ns) / 1e3));
        ev.as_object().set("dur",
                           util::Json(static_cast<double>(e.dur_ns) / 1e3));
        ev.as_object().set("pid", util::Json(1));
        ev.as_object().set("tid", util::Json(static_cast<std::int64_t>(e.tid)));
        trace_events.push_back(std::move(ev));
    }
    util::Json out = util::Json::object();
    out.as_object().set("traceEvents", std::move(trace_events));
    out.as_object().set("displayTimeUnit", util::Json("ms"));
    return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
    util::save_json_file(path, to_chrome_json());
}

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& buf : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        buf->events.clear();
    }
    dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace pipeleon::telemetry
