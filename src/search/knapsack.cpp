#include "search/knapsack.h"

#include <algorithm>
#include <cmath>

namespace pipeleon::search {

using opt::Candidate;

namespace {

GlobalPlan pick_best_per_group(const std::vector<std::vector<Candidate>>& groups) {
    GlobalPlan plan;
    plan.chosen.assign(groups.size(), -1);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        int best = -1;
        double best_gain = 0.0;
        for (std::size_t c = 0; c < groups[g].size(); ++c) {
            if (groups[g][c].gain > best_gain) {
                best_gain = groups[g][c].gain;
                best = static_cast<int>(c);
            }
        }
        plan.chosen[g] = best;
        if (best >= 0) {
            plan.total_gain += groups[g][static_cast<std::size_t>(best)].gain;
            plan.memory_used +=
                groups[g][static_cast<std::size_t>(best)].memory_cost;
            plan.updates_used +=
                groups[g][static_cast<std::size_t>(best)].update_cost;
        }
    }
    return plan;
}

}  // namespace

GlobalPlan global_optimize(const std::vector<std::vector<Candidate>>& groups,
                           const ResourceLimits& limits,
                           const KnapsackOptions& options) {
    if (limits.unconstrained()) return pick_best_per_group(groups);

    const std::size_t mg =
        std::isfinite(limits.memory_bytes) ? std::max<std::size_t>(1, options.memory_grid) : 1;
    const std::size_t eg =
        std::isfinite(limits.updates_per_sec) ? std::max<std::size_t>(1, options.update_grid) : 1;
    const double mem_cell =
        std::isfinite(limits.memory_bytes) ? limits.memory_bytes / static_cast<double>(mg) : 0.0;
    const double upd_cell =
        std::isfinite(limits.updates_per_sec) ? limits.updates_per_sec / static_cast<double>(eg) : 0.0;

    // Conservative rounding: a candidate occupies ceil(cost / cell) cells,
    // so the reconstructed plan can never exceed the true limits.
    auto cells = [](double cost, double cell, std::size_t grid) -> std::ptrdiff_t {
        if (cell <= 0.0) return 0;  // unconstrained axis
        if (cost <= 0.0) return 0;
        double c = std::ceil(cost / cell);
        if (c > static_cast<double>(grid)) return -1;  // never fits
        return static_cast<std::ptrdiff_t>(c);
    };

    const std::size_t cells_total = (mg + 1) * (eg + 1);
    const double kNegInf = -std::numeric_limits<double>::infinity();
    std::vector<double> dp(cells_total, 0.0);
    // choice[g][m*(eg+1)+e] = candidate picked for group g at that budget.
    std::vector<std::vector<int>> choice(groups.size(),
                                         std::vector<int>(cells_total, -1));
    (void)kNegInf;

    auto at = [eg](std::size_t m, std::size_t e) { return m * (eg + 1) + e; };

    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::vector<double> next = dp;  // default: pick nothing for group g
        for (std::size_t c = 0; c < groups[g].size(); ++c) {
            const Candidate& cand = groups[g][c];
            if (cand.gain <= 0.0) continue;
            std::ptrdiff_t cm = cells(cand.memory_cost, mem_cell, mg);
            std::ptrdiff_t ce = cells(cand.update_cost, upd_cell, eg);
            if (cm < 0 || ce < 0) continue;
            for (std::size_t m = static_cast<std::size_t>(cm); m <= mg; ++m) {
                for (std::size_t e = static_cast<std::size_t>(ce); e <= eg; ++e) {
                    double v = dp[at(m - static_cast<std::size_t>(cm),
                                     e - static_cast<std::size_t>(ce))] +
                               cand.gain;
                    if (v > next[at(m, e)]) {
                        next[at(m, e)] = v;
                        choice[g][at(m, e)] = static_cast<int>(c);
                    }
                }
            }
        }
        dp = std::move(next);
    }

    // Reconstruct from the full-budget cell.
    GlobalPlan plan;
    plan.chosen.assign(groups.size(), -1);
    std::size_t m = mg, e = eg;
    for (std::size_t gi = groups.size(); gi-- > 0;) {
        int c = choice[gi][at(m, e)];
        plan.chosen[gi] = c;
        if (c < 0) continue;
        const Candidate& cand = groups[gi][static_cast<std::size_t>(c)];
        plan.total_gain += cand.gain;
        plan.memory_used += cand.memory_cost;
        plan.updates_used += cand.update_cost;
        m -= static_cast<std::size_t>(cells(cand.memory_cost, mem_cell, mg));
        e -= static_cast<std::size_t>(cells(cand.update_cost, upd_cell, eg));
    }
    return plan;
}

}  // namespace pipeleon::search
