// search/enumerate.h — the local search of §4.2: "for each top-k pipelet,
// Pipeleon computes all possible optimizations for each technique
// independently … Next, Pipeleon enumerates all valid combinations of these
// candidates." A pipelet with tables T_A, T_B yields caching candidates
// [T_A], [T_B], [T_A][T_B], [T_A,T_B], one merging candidate [T_A,T_B], and
// the dependency-respecting orders; merging and caching never apply to the
// same table. Every valid combination is evaluated with the cost model.
#pragma once

#include <vector>

#include "opt/candidate.h"
#include "opt/estimate.h"

namespace pipeleon::search {

/// Knobs bounding the local enumeration.
struct SearchOptions {
    bool allow_reorder = true;
    bool allow_cache = true;
    bool allow_merge = true;
    /// Paper default: "we restrict Pipeleon to merge at most two tables to
    /// control the memory overhead".
    std::size_t max_merge_len = 2;
    /// Caps keeping worst-case pipelets bounded.
    std::size_t max_orders = 64;
    std::size_t max_candidates = 2048;
    /// Per-cache sizing for every cache the candidates create.
    ir::CacheConfig cache_config;
    /// Candidates must beat the baseline by at least this much (cycles).
    double min_latency_gain = 1e-9;
};

/// Enumerates and evaluates all valid candidates for one pipelet. Returned
/// candidates have positive `gain` (= latency reduction × reach probability)
/// and carry their resource overheads; the identity layout is *not*
/// included (the global search may always pick nothing).
std::vector<opt::Candidate> enumerate_candidates(
    const opt::PipeletEvaluator& evaluator, int pipelet_id,
    double reach_probability, const SearchOptions& options);

}  // namespace pipeleon::search
