// search/budget_split.h — tenant-aware division of the Eq. 5 resource
// budget (ISSUE 8). The DPU characterization literature (PAPERS.md) shows
// shared on-NIC memory and table-update bandwidth are the contended
// resources under multi-tenancy, so the global §4/Eq. 5 knapsack budget
// cannot be optimized jointly: each tenant's optimizer must run against a
// private slice. The splitter divides both budget axes (memory_bytes,
// updates_per_sec) proportionally to measured per-tenant load — packets
// served in the last profiling window — with a configurable floor share so
// an idle tenant is never starved to zero and can ramp back up. Re-split at
// every window boundary (MultiController::tick_all does this).
#pragma once

#include <vector>

#include "search/knapsack.h"

namespace pipeleon::search {

struct BudgetSplitOptions {
    /// Minimum share any tenant receives regardless of load. Effective
    /// floor is min(floor_fraction, 1/n) so n floors always fit in the
    /// budget. Zero-load windows fall back to an equal split.
    double floor_fraction = 0.05;
};

/// Proportional shares with a floor: share_i = max(floor, load_i / Σload),
/// renormalized so Σ shares == 1 (waterfill — floored tenants take their
/// floor, the rest divide the remainder by relative load). Loads must be
/// non-negative; an empty input returns an empty vector.
std::vector<double> split_shares(const std::vector<double>& loads,
                                 const BudgetSplitOptions& opts = {});

/// Applies split_shares to both axes of `total`. Infinite axes stay
/// infinite for every tenant (an unconstrained budget has nothing to
/// carve).
std::vector<ResourceLimits> split_budget(const ResourceLimits& total,
                                         const std::vector<double>& loads,
                                         const BudgetSplitOptions& opts = {});

}  // namespace pipeleon::search
