#include "search/optimizer.h"

#include <chrono>

#include "analysis/diagnostics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace pipeleon::search {

using analysis::Pipelet;
using analysis::ScoredPipelet;
using ir::Program;

Optimizer::Optimizer(cost::CostModel model, OptimizerConfig config)
    : model_(std::move(model)), config_(std::move(config)) {}

OptimizationOutcome Optimizer::optimize(
    const Program& original, const profile::RuntimeProfile& profile) const {
    auto t0 = std::chrono::steady_clock::now();
    OptimizationOutcome out;
    out.optimized = original;

    std::vector<Pipelet> pipelets = analysis::form_pipelets(original, config_.pipelet);
    out.pipelet_count = pipelets.size();
    if (pipelets.empty()) return out;

    out.baseline_latency = model_.expected_latency(original, profile);

    // Hot pipelet detection: L(G') * P(G') ranking (§4.1.2).
    out.hot_pipelets = analysis::top_k_pipelets(
        original, pipelets, profile, config_.top_k_fraction,
        [&](const Pipelet& p) {
            return model_.pipelet_latency(original, p, profile);
        });

    std::vector<double> reach = profile.reach_probabilities(original);

    // Local search per hot pipelet.
    std::vector<std::vector<opt::Candidate>> groups;
    groups.reserve(out.hot_pipelets.size());
    for (const ScoredPipelet& hot : out.hot_pipelets) {
        const Pipelet& p = pipelets[static_cast<std::size_t>(hot.pipelet_id)];
        if (p.is_switch_case) {
            groups.emplace_back();  // not transformable; keep group indexing
            continue;
        }
        opt::PipeletEvaluator evaluator(original, p, profile, model_);
        std::vector<opt::Candidate> cands = enumerate_candidates(
            evaluator, hot.pipelet_id, hot.reach_probability, config_.search);
        out.candidates_evaluated += cands.size();
        groups.push_back(std::move(cands));
    }

    // Global knapsack over the per-pipelet candidate groups.
    GlobalPlan plan = global_optimize(groups, config_.limits, config_.knapsack);
    out.memory_used = plan.memory_used;
    out.updates_used = plan.updates_used;

    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (plan.chosen[g] < 0) continue;
        const opt::Candidate& cand =
            groups[g][static_cast<std::size_t>(plan.chosen[g])];
        opt::PipeletPlan chosen{cand.pipelet_id, cand.layout};
        // Translation-validate the candidate's applied form before adopting
        // it (ISSUE 2): a plan the verifier rejects is dropped — and its
        // budget refunded — instead of surfacing as an exception from a
        // background optimization round.
        if (analysis::verify_mode() != analysis::VerifyMode::Off) {
            try {
                opt::apply_plan(original, pipelets, chosen,
                                analysis::VerifyMode::Full);
            } catch (const analysis::VerifyError& e) {
                ++out.plans_rejected;
                out.memory_used -= cand.memory_cost;
                out.updates_used -= cand.update_cost;
                plan.total_gain -= cand.gain;
                util::log_warn(util::format(
                    "pipelet %d: candidate %s rejected by verifier: %s",
                    cand.pipelet_id, cand.layout.to_string().c_str(),
                    e.diagnostics().to_string().c_str()));
                continue;
            }
        }
        out.plans.push_back(std::move(chosen));
        util::log_info(util::format(
            "pipelet %d: %s (gain %.2f, mem %.0f B, upd %.1f/s)",
            cand.pipelet_id, cand.layout.to_string().c_str(), cand.gain,
            cand.memory_cost, cand.update_cost));
    }

    // Optional cross-pipelet group analysis (§5.4.4).
    if (config_.enable_groups) {
        std::vector<analysis::PipeletGroup> diamond_groups =
            analysis::find_pipelet_groups(original, pipelets);
        std::vector<int> selected;
        for (const ScoredPipelet& hot : out.hot_pipelets) {
            selected.push_back(hot.pipelet_id);
        }
        for (const GroupOpportunity& opp :
             evaluate_groups(original, pipelets, diamond_groups, selected,
                             profile, model_, config_.search)) {
            out.group_extra_gain += opp.extra_gain;
        }
    }

    if (!out.plans.empty()) {
        try {
            out.optimized = opt::apply_plans(original, pipelets, out.plans);
        } catch (const analysis::VerifyError& e) {
            // Every plan passed individually, so a combined failure means
            // cross-plan interference; keep the unoptimized program rather
            // than deploying an unverified layout.
            util::log_warn(util::format(
                "combined plan rejected by verifier; keeping the original "
                "program: %s",
                e.diagnostics().to_string().c_str()));
            out.plans_rejected += out.plans.size();
            out.plans.clear();
            out.optimized = original;
            out.memory_used = 0.0;
            out.updates_used = 0.0;
            plan.total_gain = 0.0;
        }
    }
    out.predicted_gain = plan.total_gain;
    out.predicted_latency = out.baseline_latency - plan.total_gain;

    out.search_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
}

}  // namespace pipeleon::search
