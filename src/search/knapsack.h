// search/knapsack.h — the global search of §4.2 / Appendix A.1 (Fig 16):
// "Pipeleon computes the best global optimization plan by modeling the
// problem as a group-based knapsack problem. Each pipelet is a group, and it
// has several options with various gains and costs. Our goal is to find the
// best way of selecting at most one option from each pipelet to maximize
// the total gain while ensuring the total cost is within the resource
// constraints." The two resources are memory and entry-update bandwidth
// (Eq. 5); the DP runs over a discretized (memory, update-rate) grid.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "opt/candidate.h"

namespace pipeleon::search {

/// The resource constraints M and E of Eq. 5.
struct ResourceLimits {
    double memory_bytes = std::numeric_limits<double>::infinity();
    double updates_per_sec = std::numeric_limits<double>::infinity();

    bool unconstrained() const {
        return !std::isfinite(memory_bytes) && !std::isfinite(updates_per_sec);
    }
};

/// The selected global plan: at most one candidate per pipelet.
struct GlobalPlan {
    /// Indices into the per-group candidate lists; -1 = no optimization for
    /// that group.
    std::vector<int> chosen;
    double total_gain = 0.0;
    double memory_used = 0.0;
    double updates_used = 0.0;
};

/// Knapsack discretization granularity (cells per resource axis).
struct KnapsackOptions {
    std::size_t memory_grid = 64;
    std::size_t update_grid = 64;
};

/// Solves the group knapsack. `groups[g]` lists the candidates for pipelet
/// group g. Without finite limits this reduces to picking each group's best
/// candidate ("Without resource limits, the best global plan can be
/// determined by selecting the candidate with the highest performance gain
/// for each pipelet").
GlobalPlan global_optimize(const std::vector<std::vector<opt::Candidate>>& groups,
                           const ResourceLimits& limits,
                           const KnapsackOptions& options = {});

}  // namespace pipeleon::search
