// search/group.h — cross-pipelet (pipelet group) optimization (§4.1.1,
// §5.4.4). When a program is branch-heavy its pipelets are short (often one
// table), which starves reordering and merging of opportunities. Pipeleon
// then treats neighboring pipelets around a common branch as one group and
// optimizes them jointly. We realize the diamond shape: the pipelet feeding
// the branch (`pre`) and the pipelet after the join (`post`) are jointly
// optimizable when their tables are independent of the branch condition and
// of both arms — the combined sequence is then evaluated like a single
// larger pipelet, and the group gain is whatever the joint candidate saves
// beyond optimizing the pieces separately.
#pragma once

#include <vector>

#include "analysis/pipelet.h"
#include "cost/model.h"
#include "search/enumerate.h"

namespace pipeleon::search {

/// Evaluation of one pipelet group opportunity.
struct GroupOpportunity {
    analysis::PipeletGroup group;
    /// Best joint latency gain (weighted by reach probability), counting
    /// only the improvement beyond per-pipelet optimization.
    double extra_gain = 0.0;
    /// The joint candidate realizing it (over the virtual pre+post pipelet).
    opt::CandidateLayout joint_layout;
    bool viable = false;
};

/// Evaluates all diamond groups whose pre/post pipelets both appear in
/// `selected` (the top-k set). Returns one opportunity per viable group.
std::vector<GroupOpportunity> evaluate_groups(
    const ir::Program& program, const std::vector<analysis::Pipelet>& pipelets,
    const std::vector<analysis::PipeletGroup>& groups,
    const std::vector<int>& selected_pipelet_ids,
    const profile::RuntimeProfile& profile, const cost::CostModel& model,
    const SearchOptions& options);

}  // namespace pipeleon::search
