#include "search/group.h"

#include <algorithm>

#include "analysis/dependency.h"

namespace pipeleon::search {

using analysis::Pipelet;
using analysis::PipeletGroup;
using ir::NodeId;
using ir::Program;

namespace {

/// Best achievable latency gain (unweighted) for a pipelet, by enumeration.
double best_latency_gain(const opt::PipeletEvaluator& evaluator,
                         const SearchOptions& options) {
    std::vector<opt::Candidate> cands =
        enumerate_candidates(evaluator, /*pipelet_id=*/0,
                             /*reach_probability=*/1.0, options);
    double best = 0.0;
    for (const opt::Candidate& c : cands) best = std::max(best, c.gain);
    return best;
}

/// True when every table of `nodes` commutes with the branch and with every
/// table of both arms, so pre/post tables may be interleaved freely.
bool movable_across(const Program& program, const std::vector<NodeId>& nodes,
                    const std::string& branch_field,
                    const std::vector<NodeId>& arm_nodes) {
    for (NodeId id : nodes) {
        const ir::Table& t = program.node(id).table;
        analysis::FieldSets fs = analysis::field_sets(t);
        if (fs.writes.count(branch_field) != 0) return false;
        for (NodeId arm : arm_nodes) {
            if (!analysis::independent(t, program.node(arm).table)) return false;
        }
    }
    return true;
}

}  // namespace

std::vector<GroupOpportunity> evaluate_groups(
    const Program& program, const std::vector<Pipelet>& pipelets,
    const std::vector<PipeletGroup>& groups,
    const std::vector<int>& selected_pipelet_ids,
    const profile::RuntimeProfile& profile, const cost::CostModel& model,
    const SearchOptions& options) {
    std::vector<GroupOpportunity> out;
    std::vector<double> reach = profile.reach_probabilities(program);

    auto selected = [&selected_pipelet_ids](int id) {
        return std::find(selected_pipelet_ids.begin(), selected_pipelet_ids.end(),
                         id) != selected_pipelet_ids.end();
    };

    for (const PipeletGroup& g : groups) {
        if (g.pre < 0 || g.post < 0) continue;
        if (!selected(g.pre) || !selected(g.post)) continue;

        const Pipelet& pre = pipelets[static_cast<std::size_t>(g.pre)];
        const Pipelet& post = pipelets[static_cast<std::size_t>(g.post)];

        std::vector<NodeId> arm_nodes;
        for (int arm : {g.arm_true, g.arm_false}) {
            if (arm < 0) continue;
            const Pipelet& ap = pipelets[static_cast<std::size_t>(arm)];
            arm_nodes.insert(arm_nodes.end(), ap.nodes.begin(), ap.nodes.end());
        }
        const std::string& branch_field = program.node(g.branch).cond.field;
        if (!movable_across(program, pre.nodes, branch_field, arm_nodes) ||
            !movable_across(program, post.nodes, branch_field, arm_nodes)) {
            continue;
        }

        // Joint virtual pipelet: pre tables followed by post tables.
        Pipelet joint;
        joint.id = -1;
        joint.nodes = pre.nodes;
        joint.nodes.insert(joint.nodes.end(), post.nodes.begin(),
                           post.nodes.end());

        opt::PipeletEvaluator joint_eval(program, joint, profile, model);
        opt::PipeletEvaluator pre_eval(program, pre, profile, model);
        opt::PipeletEvaluator post_eval(program, post, profile, model);

        double reach_pre =
            pre.entry() == ir::kNoNode
                ? 0.0
                : reach[static_cast<std::size_t>(pre.entry())];
        double reach_post =
            post.entry() == ir::kNoNode
                ? 0.0
                : reach[static_cast<std::size_t>(post.entry())];

        std::vector<opt::Candidate> joint_cands =
            enumerate_candidates(joint_eval, /*pipelet_id=*/-1, 1.0, options);
        double joint_gain = 0.0;
        opt::CandidateLayout best_layout;
        for (const opt::Candidate& c : joint_cands) {
            if (c.gain > joint_gain) {
                joint_gain = c.gain;
                best_layout = c.layout;
            }
        }
        // Weight: the joint block sees the pre pipelet's traffic; post-side
        // tables actually see slightly less when arms drop, so this is the
        // optimistic end of the paper's approximation.
        joint_gain *= reach_pre;

        double separate_gain = best_latency_gain(pre_eval, options) * reach_pre +
                               best_latency_gain(post_eval, options) * reach_post;

        GroupOpportunity opp;
        opp.group = g;
        opp.extra_gain = joint_gain - separate_gain;
        opp.joint_layout = best_layout;
        opp.viable = opp.extra_gain > 0.0;
        if (opp.viable) out.push_back(std::move(opp));
    }
    return out;
}

}  // namespace pipeleon::search
