#include "search/enumerate.h"

#include <algorithm>
#include <functional>

namespace pipeleon::search {

using opt::Candidate;
using opt::CandidateLayout;
using opt::MergeSpec;
using opt::PipeletEvaluator;
using opt::Segment;

std::vector<Candidate> enumerate_candidates(const PipeletEvaluator& evaluator,
                                            int pipelet_id,
                                            double reach_probability,
                                            const SearchOptions& options) {
    std::vector<Candidate> out;
    const std::size_t n = evaluator.size();
    if (n == 0) return out;

    double baseline = evaluator.baseline_latency();

    // Orders to consider: the identity, the greedy drop-promoting order
    // (reachable even when the permutation cap cannot), then all
    // dependency-respecting permutations up to the cap.
    std::vector<std::vector<std::size_t>> orders;
    std::vector<std::size_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = i;
    orders.push_back(identity);
    if (options.allow_reorder) {
        std::vector<std::size_t> greedy = evaluator.greedy_drop_order();
        if (greedy != identity) orders.push_back(std::move(greedy));
        for (auto& order : evaluator.deps().valid_orders(options.max_orders)) {
            if (std::find(orders.begin(), orders.end(), order) == orders.end()) {
                orders.push_back(std::move(order));
            }
        }
    }

    CandidateLayout layout;
    layout.cache_config = options.cache_config;

    auto consider = [&]() {
        if (out.size() >= options.max_candidates) return;
        if (layout.is_identity()) return;
        opt::EvalResult eval = evaluator.evaluate(layout);
        if (!eval.valid) return;
        double latency_gain = baseline - eval.latency;
        if (latency_gain < options.min_latency_gain) return;
        Candidate c;
        c.pipelet_id = pipelet_id;
        c.layout = layout;
        c.gain = latency_gain * reach_probability;
        c.memory_cost = eval.extra_memory;
        c.update_cost = eval.extra_updates;
        out.push_back(std::move(c));
    };

    // Recursive labeling of positions: start a cache run (longest first, so
    // high-coverage candidates are reached before any enumeration cap), a
    // merge run (both flavors), or leave the position plain. Runs are
    // disjoint by construction.
    std::function<void(std::size_t)> label = [&](std::size_t p) {
        if (out.size() >= options.max_candidates) return;
        if (p >= n) {
            consider();
            return;
        }
        if (options.allow_cache) {
            for (std::size_t q = n; q-- > p;) {
                layout.caches.push_back(Segment{p, q});
                label(q + 1);
                layout.caches.pop_back();
            }
        }
        if (options.allow_merge && options.max_merge_len >= 2) {
            std::size_t max_q = std::min(n - 1, p + options.max_merge_len - 1);
            for (std::size_t q = p + 1; q <= max_q; ++q) {
                for (bool as_cache : {false, true}) {
                    layout.merges.push_back(MergeSpec{Segment{p, q}, as_cache});
                    label(q + 1);
                    layout.merges.pop_back();
                }
            }
        }
        // Position stays plain.
        label(p + 1);
    };

    for (const auto& order : orders) {
        layout.order = order;
        label(0);
        if (out.size() >= options.max_candidates) break;
    }

    // Highest gain first: deterministic and friendly to greedy fallbacks.
    std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
        return a.gain > b.gain;
    });
    return out;
}

}  // namespace pipeleon::search
