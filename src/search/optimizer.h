// search/optimizer.h — the end-to-end Pipeleon optimizer (Fig 3): partition
// the program into pipelets, detect the top-k hot pipelets from the runtime
// profile, enumerate candidates locally, solve the global knapsack, and
// apply the chosen plans to produce the optimized program. ESearch (the
// exhaustive baseline of §5.4.2) is this optimizer with k = 100%.
#pragma once

#include <vector>

#include "analysis/pipelet.h"
#include "cost/model.h"
#include "opt/transform.h"
#include "search/enumerate.h"
#include "search/group.h"
#include "search/knapsack.h"

namespace pipeleon::search {

/// All optimizer knobs in one place.
struct OptimizerConfig {
    /// Fraction of pipelets optimized per round; "k being adjustable based
    /// on the available time budget and program size" (§4.1.2).
    double top_k_fraction = 0.2;
    SearchOptions search;
    ResourceLimits limits;
    KnapsackOptions knapsack;
    analysis::PipeletOptions pipelet;
    /// Also look for cross-pipelet group opportunities (§4.1.1, Fig 15).
    bool enable_groups = false;
};

/// The result of one optimization round.
struct OptimizationOutcome {
    ir::Program optimized;
    std::vector<opt::PipeletPlan> plans;
    /// Cost-model verdicts (cycles, original-program profile).
    double baseline_latency = 0.0;
    double predicted_latency = 0.0;
    double predicted_gain = 0.0;  ///< baseline - predicted
    /// Resource budget the plan consumes.
    double memory_used = 0.0;
    double updates_used = 0.0;
    /// The hot pipelets that were considered this round.
    std::vector<analysis::ScoredPipelet> hot_pipelets;
    std::size_t pipelet_count = 0;
    std::size_t candidates_evaluated = 0;
    /// Knapsack-chosen candidates the verifier rejected (ISSUE 2): their
    /// applied form failed translation validation, so they were dropped from
    /// the plan instead of propagating a VerifyError to the caller.
    std::size_t plans_rejected = 0;
    /// Extra group-level gain found (informational; Fig 15).
    double group_extra_gain = 0.0;
    /// Wall-clock search time in seconds (the Fig 13 metric).
    double search_seconds = 0.0;
};

class Optimizer {
public:
    Optimizer(cost::CostModel model, OptimizerConfig config);

    const OptimizerConfig& config() const { return config_; }
    OptimizerConfig& config() { return config_; }
    const cost::CostModel& model() const { return model_; }

    /// Runs one optimization round against the original program and its
    /// (original-space) runtime profile.
    OptimizationOutcome optimize(const ir::Program& original,
                                 const profile::RuntimeProfile& profile) const;

private:
    cost::CostModel model_;
    OptimizerConfig config_;
};

}  // namespace pipeleon::search
