#include "search/budget_split.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pipeleon::search {

std::vector<double> split_shares(const std::vector<double>& loads,
                                 const BudgetSplitOptions& opts) {
    const std::size_t n = loads.size();
    if (n == 0) return {};
    const double equal = 1.0 / static_cast<double>(n);
    const double floor = std::clamp(opts.floor_fraction, 0.0, equal);

    double total = 0.0;
    for (double l : loads) total += std::max(0.0, l);
    if (total <= 0.0) return std::vector<double>(n, equal);

    // Waterfill: tenants whose proportional share falls below the floor are
    // pinned to it; the remaining budget divides among the rest by relative
    // load. Pinning shrinks the remainder, which can push more tenants under
    // the floor, so iterate to the fixed point (at most n rounds).
    std::vector<double> shares(n, 0.0);
    std::vector<bool> floored(n, false);
    for (;;) {
        std::size_t n_floored = 0;
        double free_load = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (floored[i]) {
                ++n_floored;
            } else {
                free_load += std::max(0.0, loads[i]);
            }
        }
        double remainder = 1.0 - floor * static_cast<double>(n_floored);
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (floored[i]) {
                shares[i] = floor;
                continue;
            }
            double raw = free_load > 0.0
                             ? remainder * std::max(0.0, loads[i]) / free_load
                             : remainder / static_cast<double>(n - n_floored);
            if (raw < floor) {
                floored[i] = true;
                changed = true;
            } else {
                shares[i] = raw;
            }
        }
        if (!changed) break;
    }
    return shares;
}

std::vector<ResourceLimits> split_budget(const ResourceLimits& total,
                                         const std::vector<double>& loads,
                                         const BudgetSplitOptions& opts) {
    std::vector<double> shares = split_shares(loads, opts);
    std::vector<ResourceLimits> out(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) {
        if (std::isfinite(total.memory_bytes)) {
            out[i].memory_bytes = total.memory_bytes * shares[i];
        }
        if (std::isfinite(total.updates_per_sec)) {
            out[i].updates_per_sec = total.updates_per_sec * shares[i];
        }
    }
    return out;
}

}  // namespace pipeleon::search
