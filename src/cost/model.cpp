#include "cost/model.h"

#include <algorithm>
#include <stdexcept>

namespace pipeleon::cost {

using ir::Node;
using ir::NodeId;
using ir::Program;

CostModel::CostModel(CostParams params,
                     profile::InstrumentationConfig instrumentation)
    : params_(std::move(params)), instrumentation_(instrumentation) {}

int CostModel::m_multiplier(const ir::Table& table,
                            const profile::TableStats& stats) const {
    int m = 1;
    switch (table.effective_match_kind()) {
        case ir::MatchKind::Exact:
            m = 1;
            break;
        case ir::MatchKind::Lpm:
            m = stats.lpm_prefix_count > 0 ? stats.lpm_prefix_count
                                           : params_.default_lpm_m;
            break;
        case ir::MatchKind::Ternary:
        case ir::MatchKind::Range:
            m = stats.ternary_mask_count > 0 ? stats.ternary_mask_count
                                             : params_.default_ternary_m;
            break;
    }
    return std::clamp(m, 1, params_.max_m);
}

double CostModel::match_cost(const ir::Table& table,
                             const profile::TableStats& stats) const {
    double per_access = table.tier == ir::MemTier::Fast && params_.l_mat_fast > 0.0
                            ? params_.l_mat_fast
                            : params_.l_mat;
    return static_cast<double>(m_multiplier(table, stats)) * per_access;
}

double CostModel::action_cost(const Node& node,
                              const profile::RuntimeProfile& profile) const {
    double cost = 0.0;
    for (std::size_t a = 0; a < node.table.actions.size(); ++a) {
        double pa = profile.action_probability(node, static_cast<int>(a));
        double na = static_cast<double>(node.table.actions[a].primitives.size());
        cost += pa * na * params_.l_act;
    }
    return cost;
}

double CostModel::node_cost(const Node& node,
                            const profile::RuntimeProfile& profile) const {
    double cost;
    if (node.is_branch()) {
        cost = params_.l_branch;
    } else {
        cost = match_cost(node.table, profile.table(node.id)) +
               action_cost(node, profile);
    }
    if (instrumentation_.enabled) {
        cost += params_.l_counter * instrumentation_.sampling_rate;
    }
    if (node.core == ir::CoreKind::Cpu) cost *= params_.cpu_slowdown;
    return cost;
}

double CostModel::expected_latency(const Program& program,
                                   const profile::RuntimeProfile& profile) const {
    std::vector<double> reach = profile.reach_probabilities(program);
    double total = 0.0;
    for (NodeId id : program.reachable()) {
        const Node& n = program.node(id);
        double p = reach[static_cast<std::size_t>(id)];
        if (p <= 0.0) continue;
        total += p * node_cost(n, profile);
        // Migration cost on edges crossing the ASIC/CPU boundary (§3.2.4).
        for (NodeId s : n.successors()) {
            if (program.node(s).core != n.core) {
                total += p * profile.edge_probability(n, s) * params_.l_migration;
            }
        }
    }
    return total;
}

std::vector<PathInfo> CostModel::enumerate_paths(
    const Program& program, const profile::RuntimeProfile& profile,
    std::size_t max_paths) const {
    std::vector<PathInfo> paths;
    if (program.root() == ir::kNoNode) return paths;

    struct Frame {
        NodeId node;
        double prob;
        double latency;
        std::vector<NodeId> trail;
    };

    // Per-node fixed part (match + instrumentation), action part added per
    // executed action so switch-case tables only charge the taken action
    // (footnote 3 of the paper).
    auto fixed_cost = [this, &profile](const Node& n) {
        double c = n.is_branch()
                       ? params_.l_branch
                       : match_cost(n.table, profile.table(n.id));
        if (instrumentation_.enabled) {
            c += params_.l_counter * instrumentation_.sampling_rate;
        }
        return c;
    };
    auto core_scale = [this](const Node& n) {
        return n.core == ir::CoreKind::Cpu ? params_.cpu_slowdown : 1.0;
    };

    std::vector<Frame> stack;
    stack.push_back({program.root(), 1.0, 0.0, {}});
    while (!stack.empty()) {
        Frame f = std::move(stack.back());
        stack.pop_back();
        if (f.prob <= 0.0) continue;
        const Node& n = program.node(f.node);
        f.trail.push_back(f.node);
        double base = f.latency + fixed_cost(n) * core_scale(n);

        auto finish = [&](double prob, double latency) {
            if (paths.size() >= max_paths) {
                throw std::runtime_error(
                    "CostModel::enumerate_paths: path explosion");
            }
            paths.push_back({f.trail, prob, latency});
        };
        auto follow = [&](NodeId next, double prob, double latency) {
            if (prob <= 0.0) return;
            if (next == ir::kNoNode) {
                finish(prob, latency);
                return;
            }
            double migration = program.node(next).core != n.core
                                   ? params_.l_migration
                                   : 0.0;
            stack.push_back({next, prob, latency + migration, f.trail});
        };

        if (n.is_branch()) {
            double pt = profile.branch_true_probability(n.id);
            follow(n.true_next, f.prob * pt, base);
            follow(n.false_next, f.prob * (1.0 - pt), base);
            continue;
        }
        for (std::size_t a = 0; a < n.table.actions.size(); ++a) {
            double pa = profile.action_probability(n, static_cast<int>(a));
            if (pa <= 0.0) continue;
            double act = static_cast<double>(n.table.actions[a].primitives.size()) *
                         params_.l_act * core_scale(n);
            double lat = base + act;
            if (n.table.actions[a].drops()) {
                finish(f.prob * pa, lat);  // drop halts execution
            } else {
                follow(n.next_by_action[a], f.prob * pa, lat);
            }
        }
        if (n.table.default_action < 0) {
            follow(n.miss_next, f.prob * profile.miss_probability(n), base);
        }
    }
    return paths;
}

double CostModel::expected_latency_by_paths(
    const Program& program, const profile::RuntimeProfile& profile,
    std::size_t max_paths) const {
    double total = 0.0;
    for (const PathInfo& p : enumerate_paths(program, profile, max_paths)) {
        total += p.probability * p.latency;
    }
    return total;
}

double CostModel::pipelet_latency(const Program& program,
                                  const analysis::Pipelet& pipelet,
                                  const profile::RuntimeProfile& profile) const {
    double survive = 1.0;
    double total = 0.0;
    for (NodeId id : pipelet.nodes) {
        const Node& n = program.node(id);
        total += survive * node_cost(n, profile);
        survive *= 1.0 - profile.drop_probability(n);
        if (survive <= 0.0) break;
    }
    return total;
}

double CostModel::memory_bytes(const ir::Table& table,
                               const profile::TableStats& stats) const {
    double entry_bytes =
        static_cast<double>(table.key_width_bits()) / 8.0 +
        static_cast<double>(params_.entry_overhead_bytes);
    double entries = static_cast<double>(
        std::max(stats.entry_count, static_cast<std::size_t>(1)));
    return entries * entry_bytes *
           static_cast<double>(m_multiplier(table, stats));
}

double CostModel::throughput_gbps(double avg_latency_cycles,
                                  double cycles_per_second,
                                  double line_rate_gbps, double packet_bytes) {
    if (avg_latency_cycles <= 0.0) return line_rate_gbps;
    double pps = cycles_per_second / avg_latency_cycles;
    double gbps = pps * packet_bytes * 8.0 / 1e9;
    return std::min(gbps, line_rate_gbps);
}

}  // namespace pipeleon::cost
