// cost/calibrate.h — model calibration, reproducing the paper's fitting
// methodology (§3.1): benchmark a family of programs with varying exact-table
// counts to fit Y1 = A1*x + B1 (A1 = L_mat), vary action primitive counts to
// fit Y2 = A2*y + B2 (A2 = L_act), then estimate m for LPM/ternary tables by
// normalizing their observed performance against the exact-match baseline.
#pragma once

#include <vector>

#include "cost/params.h"
#include "util/stats.h"

namespace pipeleon::cost {

/// One benchmark observation: a program characteristic (e.g. table count)
/// and its measured average per-packet latency.
struct CalibrationPoint {
    double x = 0.0;        ///< swept parameter (tables / primitives)
    double latency = 0.0;  ///< measured average latency (cycles)
};

/// Result of calibrating against a target.
struct CalibrationResult {
    double l_mat = 0.0;       ///< slope of the exact-table sweep (A1)
    double l_mat_r2 = 0.0;
    double l_act = 0.0;       ///< slope of the primitive sweep (A2)
    double l_act_r2 = 0.0;
    double lpm_m = 0.0;       ///< estimated m for LPM tables
    double ternary_m = 0.0;   ///< estimated m for ternary tables
};

/// Fits L_mat from an exact-table-count sweep.
util::LinearFit fit_l_mat(const std::vector<CalibrationPoint>& exact_sweep);

/// Fits L_act from an action-primitive sweep (fixed table count).
util::LinearFit fit_l_act(const std::vector<CalibrationPoint>& primitive_sweep);

/// Estimates m for a non-exact match kind: given measured latencies of
/// programs with `x` tables of that kind and the exact-match baseline fit,
/// m ≈ mean over points of (latency - B1) / (x * L_mat), i.e. the observed
/// per-table cost normalized by the exact per-table cost.
double estimate_m(const std::vector<CalibrationPoint>& sweep,
                  const util::LinearFit& exact_fit);

/// Runs the full calibration given the three sweeps and returns both the
/// fitted constants and a CostParams updated with them.
CalibrationResult calibrate(const std::vector<CalibrationPoint>& exact_sweep,
                            const std::vector<CalibrationPoint>& primitive_sweep,
                            const std::vector<CalibrationPoint>& lpm_sweep,
                            const std::vector<CalibrationPoint>& ternary_sweep);

/// Applies a calibration result onto a params struct.
CostParams apply_calibration(CostParams params, const CalibrationResult& result);

}  // namespace pipeleon::cost
