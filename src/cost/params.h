// cost/params.h — cost-model parameters (Table 1 of the paper) and per-target
// presets. The model's unknowns L_mat (latency of one memory access / exact
// match) and L_act (latency of one action primitive) are obtained by
// benchmarking each target with sweeps of synthetic programs and fitting a
// line (§3.1, "Methodology and results"); the presets below carry the values
// our emulator targets are configured with, and cost/calibrate.h re-derives
// them from measurements exactly as the paper does.
//
// Latency unit: abstract "cycles". Only relative magnitudes matter — the
// model "estimates relative latency differences across optimization options,
// instead of their absolute values".
#pragma once

#include <string>

namespace pipeleon::cost {

/// Target-specific model constants.
struct CostParams {
    std::string target_name = "generic";

    double l_mat = 10.0;     ///< one memory access = one exact-match lookup
    double l_act = 2.0;      ///< one action primitive
    double l_branch = 0.0;   ///< conditional branch (≈free on most targets)
    double l_counter = 0.5;  ///< one P4 counter update (profiling overhead)
    /// One ASIC<->CPU packet migration, including the piggybacked context
    /// header processing (§3.2.4).
    double l_migration = 60.0;
    /// Multiplier applied to table/action costs executed on CPU cores
    /// relative to ASIC cores.
    double cpu_slowdown = 3.0;

    /// m multipliers used when live entry statistics are unavailable. The
    /// paper's measurement methodology used 3 distinct prefixes for LPM and
    /// 5 distinct masks for ternary tables.
    int default_lpm_m = 3;
    int default_ternary_m = 5;
    /// Cap on m: real implementations bound the number of sub-hashtables.
    int max_m = 64;

    /// Default estimated hit rate for a not-yet-deployed cache (§3.2.2:
    /// "uses a default estimated hit rate for calculation but continuously
    /// monitors its actual performance").
    double default_cache_hit_rate = 0.9;

    /// Invalidation model for predicting cache hit rates: every covered-
    /// table entry update invalidates the whole cache, so the predicted hit
    /// rate decays as h = default / (1 + penalty * update_rate). Once a
    /// cache is deployed the *measured* hit rate overrides the prediction.
    double cache_invalidation_penalty = 0.05;

    /// Bytes of overhead per stored entry beyond the key itself (action
    /// pointer, next-hop metadata); feeds the memory estimate of Eq. 5.
    std::size_t entry_overhead_bytes = 16;

    /// Hierarchical memory (§6): per-access latency of the Fast (on-chip
    /// SRAM) tier and the byte budget available for it. 0 disables the
    /// feature (the P4 memory model of today's compilers: everything in
    /// external memory).
    double l_mat_fast = 0.0;
    double fast_memory_bytes = 0.0;

    /// Tiered flow-state memory (SRAM -> NIC DRAM -> host over DMA). The
    /// DPU characterization papers quantify the asymmetry these model: NIC
    /// DRAM/EMEM is a few times slower than on-chip SRAM, and a host-memory
    /// access over PCIe is one to two orders of magnitude slower again
    /// unless its DMA setup cost is amortized across a descriptor batch.
    /// All four are *extra* cycles on top of the tier-0 probe the lookup
    /// already pays; 0 disables the corresponding tier.
    double l_tier_dram = 0.0;   ///< extra cycles per NIC-DRAM-tier access
    double l_tier_host = 0.0;   ///< extra cycles per host-tier access
    double dma_setup = 0.0;     ///< per-DMA-batch doorbell/completion cost
    double dma_per_entry = 0.0; ///< per-descriptor transfer cost
    /// Placement budgets for the lower tiers (opt::assign_memory_tiers
    /// carves table placement and cache capacity out of these); 0 = the
    /// tier is not part of placement.
    double dram_memory_bytes = 0.0;
    double host_memory_bytes = 0.0;
};

/// Nvidia BlueField2-like target: dRMT ASIC cores fetching MA entries over a
/// memory bus; fast counters (Fig 12c: <2% overhead even unsampled).
CostParams bluefield2_params();

/// Netronome Agilio CX-like target: micro-engine CPU cores with farther
/// memory (EMEM); slower counter updates (Fig 12a/b: up to ~35% latency
/// overhead at 40 updates unsampled).
CostParams agilio_cx_params();

/// The paper's BMv2-based emulated NIC model for §5.3.3: "LPM and ternary
/// matches have the same cost, which is 3x slower than exact matches;
/// conditional branches have 1/10 the cost of an exact table".
CostParams emulated_nic_params();

}  // namespace pipeleon::cost
