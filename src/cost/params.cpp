#include "cost/params.h"

namespace pipeleon::cost {

CostParams bluefield2_params() {
    CostParams p;
    p.target_name = "bluefield2";
    p.l_mat = 10.0;
    p.l_act = 2.0;
    p.l_branch = 0.5;
    p.l_counter = 0.2;  // hardware counters: cheap (Fig 12c)
    p.l_migration = 80.0;
    p.cpu_slowdown = 4.0;  // ARM cores vs ASIC packet engines
    p.default_lpm_m = 3;
    p.default_ternary_m = 5;
    p.default_cache_hit_rate = 0.9;
    // Tiered flow-state memory: DDR over the internal bus is ~3x an exact
    // match; a host access over PCIe costs ~25x unless the DMA engine
    // amortizes its doorbell across a descriptor batch.
    p.l_tier_dram = 30.0;
    p.l_tier_host = 90.0;
    p.dma_setup = 400.0;
    p.dma_per_entry = 16.0;
    return p;
}

CostParams agilio_cx_params() {
    CostParams p;
    p.target_name = "agilio_cx";
    p.l_mat = 26.0;   // EMEM accesses dominate on micro-engines
    p.l_act = 4.0;
    p.l_branch = 1.0;
    p.l_counter = 9.0;  // counter updates are expensive (Fig 12a/b)
    p.l_migration = 120.0;
    p.cpu_slowdown = 1.0;  // homogeneous CPU cores: no faster tier
    p.default_lpm_m = 3;
    p.default_ternary_m = 5;
    p.default_cache_hit_rate = 0.9;
    // Micro-engines already pay EMEM latency for l_mat; the DRAM tier adds
    // little, but host memory over the PCIe DMA engine stays expensive.
    p.l_tier_dram = 12.0;
    p.l_tier_host = 120.0;
    p.dma_setup = 520.0;
    p.dma_per_entry = 24.0;
    return p;
}

CostParams emulated_nic_params() {
    CostParams p;
    p.target_name = "emulated_nic";
    p.l_mat = 10.0;
    p.l_act = 2.0;
    p.l_branch = 1.0;      // 1/10 the cost of an exact table (l_mat)
    p.l_counter = 0.5;
    p.l_migration = 60.0;
    p.cpu_slowdown = 3.0;
    // "LPM and ternary matches have the same cost, which is 3x slower than
    // exact matches" — both default to m = 3.
    p.default_lpm_m = 3;
    p.default_ternary_m = 3;
    p.default_cache_hit_rate = 0.9;
    return p;
}

}  // namespace pipeleon::cost
