// cost/model.h — the approximate P4 performance model of §3.1.
//
//   L(G)  = Σ_π P(π) L(π)                       (Equation 1)
//   P(π)  = Π  edge probabilities on the path   (Equation 2a)
//   L(π)  = Σ  node latencies on the path       (Equation 2b)
//   L(v)  = L_match(v) + L_action(v)            (Equation 3, tables)
//   L_match(v)  = m_v * L_mat                   (Equation 4a)
//   L_action(v) = Σ_a P(a) * n_a * L_act        (Equation 4b)
//
// L(G) is computed by linearity as Σ_v P(reach v) * L(v), which equals the
// path sum (expected_latency_by_paths verifies the identity on small
// graphs and the tests assert it). The model also produces the memory and
// entry-update-rate estimates that constrain the optimization search (Eq. 5).
#pragma once

#include <vector>

#include "analysis/pipelet.h"
#include "cost/params.h"
#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::cost {

/// One enumerated execution path (for small-program analysis and tests).
struct PathInfo {
    std::vector<ir::NodeId> nodes;
    double probability = 0.0;
    double latency = 0.0;
};

class CostModel {
public:
    explicit CostModel(CostParams params,
                       profile::InstrumentationConfig instrumentation = {});

    const CostParams& params() const { return params_; }
    const profile::InstrumentationConfig& instrumentation() const {
        return instrumentation_;
    }

    // ------------------------------------------------------- per-node costs

    /// m_v: number of memory accesses for the table's key match. Exact = 1;
    /// LPM = distinct prefix lengths among live entries (default when
    /// unknown); ternary/range = distinct masks (default when unknown).
    int m_multiplier(const ir::Table& table, const profile::TableStats& stats) const;

    /// L_match(v) = m_v * L_mat.
    double match_cost(const ir::Table& table, const profile::TableStats& stats) const;

    /// L_action(v) = Σ_a P(a) n_a L_act, with P(a) from the profile.
    double action_cost(const ir::Node& node,
                       const profile::RuntimeProfile& profile) const;

    /// Total node cost: table match + action (+ counter instrumentation,
    /// + CPU slowdown when the node is assigned to CPU cores); branch cost
    /// for branch nodes.
    double node_cost(const ir::Node& node,
                     const profile::RuntimeProfile& profile) const;

    // --------------------------------------------------- program-level cost

    /// Expected program latency L(G) (Equation 1), computed by linearity.
    /// Includes migration costs for edges crossing ASIC/CPU boundaries.
    double expected_latency(const ir::Program& program,
                            const profile::RuntimeProfile& profile) const;

    /// L(G) by explicit path enumeration (Equations 1/2a/2b literally).
    /// Throws std::runtime_error when the path count exceeds `max_paths`.
    double expected_latency_by_paths(const ir::Program& program,
                                     const profile::RuntimeProfile& profile,
                                     std::size_t max_paths = 100000) const;

    /// Enumerates execution paths with probabilities and latencies.
    std::vector<PathInfo> enumerate_paths(const ir::Program& program,
                                          const profile::RuntimeProfile& profile,
                                          std::size_t max_paths = 100000) const;

    /// L(G') for a pipelet: expected latency per packet *entering* the
    /// pipelet, with drop-truncation (a dropped packet pays no downstream
    /// node costs — the SmartNIC halts execution on drop, §3.2.1).
    double pipelet_latency(const ir::Program& program,
                           const analysis::Pipelet& pipelet,
                           const profile::RuntimeProfile& profile) const;

    // -------------------------------------------------- resource estimates

    /// M(v): memory estimate = entries * (key bytes + overhead) * m
    /// ("Pipeleon multiplies the entry size with the same parameter m").
    double memory_bytes(const ir::Table& table,
                        const profile::TableStats& stats) const;

    /// Converts an average per-packet latency (cycles) into throughput in
    /// Gbps for reporting: rate = cycles_per_second / latency packets/s,
    /// capped at `line_rate_gbps`. `packet_bytes` defaults to the paper's
    /// 512-byte workload packets.
    static double throughput_gbps(double avg_latency_cycles,
                                  double cycles_per_second, double line_rate_gbps,
                                  double packet_bytes = 512.0);

private:
    CostParams params_;
    profile::InstrumentationConfig instrumentation_;
};

}  // namespace pipeleon::cost
