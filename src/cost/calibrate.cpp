#include "cost/calibrate.h"

#include <algorithm>
#include <cmath>

namespace pipeleon::cost {

namespace {

util::LinearFit fit_points(const std::vector<CalibrationPoint>& points) {
    std::vector<double> xs, ys;
    xs.reserve(points.size());
    ys.reserve(points.size());
    for (const CalibrationPoint& p : points) {
        xs.push_back(p.x);
        ys.push_back(p.latency);
    }
    return util::linear_fit(xs, ys);
}

}  // namespace

util::LinearFit fit_l_mat(const std::vector<CalibrationPoint>& exact_sweep) {
    return fit_points(exact_sweep);
}

util::LinearFit fit_l_act(const std::vector<CalibrationPoint>& primitive_sweep) {
    return fit_points(primitive_sweep);
}

double estimate_m(const std::vector<CalibrationPoint>& sweep,
                  const util::LinearFit& exact_fit) {
    if (sweep.empty() || exact_fit.slope <= 0.0) return 1.0;
    std::vector<double> estimates;
    estimates.reserve(sweep.size());
    for (const CalibrationPoint& p : sweep) {
        if (p.x <= 0.0) continue;
        double per_table = (p.latency - exact_fit.intercept) / p.x;
        estimates.push_back(per_table / exact_fit.slope);
    }
    if (estimates.empty()) return 1.0;
    double sum = 0.0;
    for (double e : estimates) sum += e;
    return std::max(1.0, sum / static_cast<double>(estimates.size()));
}

CalibrationResult calibrate(const std::vector<CalibrationPoint>& exact_sweep,
                            const std::vector<CalibrationPoint>& primitive_sweep,
                            const std::vector<CalibrationPoint>& lpm_sweep,
                            const std::vector<CalibrationPoint>& ternary_sweep) {
    CalibrationResult r;
    util::LinearFit mat = fit_l_mat(exact_sweep);
    r.l_mat = mat.slope;
    r.l_mat_r2 = mat.r_squared;
    util::LinearFit act = fit_l_act(primitive_sweep);
    // The primitive sweep varies primitives per packet at a fixed table
    // count; its slope is the marginal primitive cost.
    r.l_act = act.slope;
    r.l_act_r2 = act.r_squared;
    r.lpm_m = estimate_m(lpm_sweep, mat);
    r.ternary_m = estimate_m(ternary_sweep, mat);
    return r;
}

CostParams apply_calibration(CostParams params, const CalibrationResult& result) {
    if (result.l_mat > 0.0) params.l_mat = result.l_mat;
    if (result.l_act > 0.0) params.l_act = result.l_act;
    if (result.lpm_m >= 1.0) {
        params.default_lpm_m =
            std::max(1, static_cast<int>(std::lround(result.lpm_m)));
    }
    if (result.ternary_m >= 1.0) {
        params.default_ternary_m =
            std::max(1, static_cast<int>(std::lround(result.ternary_m)));
    }
    return params;
}

}  // namespace pipeleon::cost
