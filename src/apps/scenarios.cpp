#include "apps/scenarios.h"

#include "ir/builder.h"
#include "opt/merge.h"
#include "util/strings.h"

namespace pipeleon::apps {

using ir::Action;
using ir::MatchKind;
using ir::NodeId;
using ir::Primitive;
using ir::Program;
using ir::ProgramBuilder;
using ir::Table;
using ir::TableSpec;

namespace {

Table acl_table(const std::string& name, const std::string& key_field) {
    return TableSpec(name)
        .key(key_field)
        .noop_action(name + "_allow", 1)
        .drop_action(name + "_deny")
        .default_to(name + "_allow")
        .build();
}

Table proc_table(const std::string& name, const std::string& key_field,
                 int primitives = 1, MatchKind kind = MatchKind::Exact) {
    return TableSpec(name)
        .key(key_field, kind)
        .noop_action(name + "_a0", primitives)
        .noop_action(name + "_a1", primitives)
        .default_to(name + "_a0")
        .build();
}

Table set_meta_table(const std::string& name, const std::string& key_field,
                     const std::string& meta_field) {
    Action set;
    set.name = name + "_set";
    set.primitives.push_back(Primitive::set_from_arg(meta_field, 0));
    Action miss;
    miss.name = name + "_miss";
    miss.primitives.push_back(Primitive::set_const(meta_field, 0));
    return TableSpec(name)
        .key(key_field)
        .action(set)
        .action(miss)
        .default_to(name + "_miss")
        .size(64)
        .build();
}

}  // namespace

Program microbench_program(int n_groups, int group_size, bool acl_last) {
    ProgramBuilder b(util::format("microbench_N%d", n_groups));
    for (int g = 0; g < n_groups; ++g) {
        for (int t = 0; t < group_size; ++t) {
            std::string name = util::format("g%dt%d", g, t);
            b.append(proc_table(name, util::format("f_g%dt%d", g, t)));
        }
    }
    if (acl_last) b.append(acl_table("acl", "acl_key"));
    return b.build();
}

Program four_table_pipelet(MatchKind kind, int primitives_per_action) {
    ProgramBuilder b("four_table_pipelet");
    for (int t = 1; t <= 4; ++t) {
        std::string name = util::format("t%d", t);
        b.append(TableSpec(name)
                     .key(util::format("f%d", t - 1), kind)
                     .noop_action(name + "_a0", primitives_per_action)
                     .noop_action(name + "_a1", primitives_per_action)
                     .default_to(name + "_a0")
                     .build());
    }
    return b.build();
}

std::vector<std::pair<std::string, std::string>> acl_specs(int n) {
    static const std::vector<std::pair<std::string, std::string>> named = {
        {"acl_cloud", "cloud_id"},   {"acl_tenant", "tenant_id"},
        {"acl_subnet", "subnet_id"}, {"acl_vm", "vm_id"},
        {"acl_app", "app_id"},       {"acl_zone", "zone_id"},
        {"acl_service", "service_id"}, {"acl_geo", "geo_id"},
    };
    std::vector<std::pair<std::string, std::string>> out;
    for (int i = 0; i < n; ++i) {
        if (static_cast<std::size_t>(i) < named.size()) {
            out.push_back(named[static_cast<std::size_t>(i)]);
        } else {
            out.emplace_back(util::format("acl_x%d", i),
                             util::format("acl_x%d_id", i));
        }
    }
    return out;
}

std::vector<std::string> acl_table_names() {
    std::vector<std::string> names;
    for (auto& [name, key] : acl_specs(4)) names.push_back(name);
    return names;
}

Program acl_routing_program(int regular_tables, int n_acls, MatchKind proc_kind) {
    ProgramBuilder b("acl_routing");
    for (const auto& [name, key] : acl_specs(n_acls)) {
        b.append(acl_table(name, key));
    }
    for (int i = 0; i < regular_tables; ++i) {
        b.append(proc_table(util::format("proc%d", i), util::format("meta%d", i),
                            /*primitives=*/1, proc_kind));
    }
    Action fwd;
    fwd.name = "route_fwd";
    fwd.primitives.push_back(Primitive::forward_from_arg(0));
    b.append(TableSpec("routing")
                 .key("ipv4_dst", MatchKind::Lpm)
                 .action(fwd)
                 .build());
    return b.build();
}

Program load_balancer_program() {
    ProgramBuilder b("load_balancer");
    for (int i = 0; i < 8; ++i) {
        b.append(proc_table(util::format("proc%d", i), util::format("pf%d", i)));
    }
    // Two load-balancing tables: VIP -> backend, backend -> port. The first
    // writes what the second matches on (a real match dependency), so the
    // LB pair cannot be reordered or merged — only cached.
    Action pick_backend;
    pick_backend.name = "pick_backend";
    pick_backend.primitives.push_back(Primitive::set_from_arg("backend", 0));
    b.append(TableSpec("lb_vip").key("vip").action(pick_backend).size(512).build());
    Action fwd;
    fwd.name = "to_backend";
    fwd.primitives.push_back(Primitive::forward_from_arg(0));
    b.append(TableSpec("lb_backend").key("backend").action(fwd).size(512).build());
    b.append(acl_table("lb_acl0", "src_ip"));
    b.append(acl_table("lb_acl1", "dst_ip"));
    return b.build();
}

Program dash_routing_program() {
    ProgramBuilder b("dash_routing");
    // Direction lookup + metadata setup: small, static tables matching on
    // independent packet fields and writing independent metadata — the
    // merge-friendly region of §5.3.2.
    b.append(set_meta_table("direction_lookup", "direction", "meta_dir"));
    b.append(set_meta_table("appliance", "appliance_key", "meta_appliance"));
    b.append(set_meta_table("eni", "eni_mac", "meta_eni"));
    b.append(set_meta_table("vni", "vni_key", "meta_vni"));
    // Connection tracking: writes per-flow state on every packet; its state
    // churn is what breaks whole-program flow caches.
    Action track;
    track.name = "track";
    track.primitives.push_back(Primitive::add_const("conn_packets", 1));
    track.primitives.push_back(Primitive::set_const("conn_seen", 1));
    b.append(TableSpec("conntrack")
                 .key("flow_id")
                 .action(track)
                 .noop_action("conntrack_miss", 1)
                 .default_to("conntrack_miss")
                 .size(65536)
                 .build());
    // Three levels of ACLs.
    b.append(acl_table("acl_stage1", "src_ip"));
    b.append(acl_table("acl_stage2", "dst_ip"));
    b.append(acl_table("acl_stage3", "dst_port"));
    // Routing.
    Action fwd;
    fwd.name = "route_fwd";
    fwd.primitives.push_back(Primitive::forward_from_arg(0));
    b.append(TableSpec("routing").key("ipv4_dst", MatchKind::Lpm).action(fwd).build());
    return b.build();
}

Program nf_composition_program() {
    // LB + routing + L2/L3/ACL composed behind branches: nine pipelets.
    ProgramBuilder b("nf_composition");

    // NF1 — load balancer (pipelets 1-2).
    NodeId p1a = b.add(proc_table("lb_parse", "lbf0"));
    NodeId p1b = b.add(proc_table("lb_meta", "lbf1"));
    b.connect(p1a, p1b);
    NodeId br1 = b.add_branch({"is_vip_traffic", ir::CmpOp::Eq, 1});
    b.connect(p1b, br1);

    Action pick;
    pick.name = "pick_backend";
    pick.primitives.push_back(Primitive::set_from_arg("backend", 0));
    NodeId p2a = b.add(TableSpec("lb_vip").key("vip").action(pick).size(512).build());
    NodeId p2b = b.add(proc_table("lb_stats", "lbf2"));
    b.connect(p2a, p2b);

    // NF2 — DASH-style routing (pipelets 3-5).
    NodeId p3a = b.add(set_meta_table("rt_direction", "direction", "meta_dir"));
    NodeId p3b = b.add(set_meta_table("rt_eni", "eni_mac", "meta_eni"));
    b.connect(p3a, p3b);
    b.connect_branch(br1, p2a, p3a);
    b.connect(p2b, p3a);

    NodeId br2 = b.add_branch({"needs_conntrack", ir::CmpOp::Eq, 1});
    b.connect(p3b, br2);

    Action track;
    track.name = "track";
    track.primitives.push_back(Primitive::add_const("conn_packets", 1));
    NodeId p4 = b.add(TableSpec("rt_conntrack")
                          .key("flow_id")
                          .action(track)
                          .noop_action("ct_miss", 1)
                          .default_to("ct_miss")
                          .build());
    NodeId p5a = b.add(acl_table("rt_acl1", "src_ip"));
    NodeId p5b = b.add(acl_table("rt_acl2", "dst_ip"));
    b.connect(p5a, p5b);
    b.connect_branch(br2, p4, p5a);

    // NF3 — L2/L3/ACL (pipelets 6-9). The conntrack arm rejoins at the
    // routing table directly (tracked flows skip the stateless ACLs),
    // which also makes the routing table its own pipelet.
    Action route;
    route.name = "route_fwd";
    route.primitives.push_back(Primitive::forward_from_arg(0));
    NodeId p6 = b.add(TableSpec("l3_routing")
                          .key("ipv4_dst", MatchKind::Lpm)
                          .action(route)
                          .build());
    b.connect(p4, p6);
    b.connect(p5b, p6);

    NodeId br3 = b.add_branch({"is_l2", ir::CmpOp::Eq, 1});
    b.connect(p6, br3);

    NodeId p7a = b.add(proc_table("l2_smac", "eth_src"));
    NodeId p7b = b.add(proc_table("l2_dmac", "eth_dst"));
    b.connect(p7a, p7b);
    NodeId p8 = b.add(TableSpec("l3_flowcls")
                          .key("tuple_hash", MatchKind::Ternary)
                          .noop_action("cls_a0", 2)
                          .noop_action("cls_a1", 2)
                          .default_to("cls_a0")
                          .build());
    b.connect_branch(br3, p7a, p8);

    NodeId p9 = b.add(acl_table("egress_acl", "egress_key"));
    b.connect(p7b, p9);
    b.connect(p8, p9);

    b.set_root(p1a);
    return b.build();
}

void install_acl_denies(sim::Emulator& emulator, const std::string& table,
                        const trafficgen::FlowSet& flows,
                        const std::vector<std::size_t>& deny_flows,
                        const std::string& key_field) {
    NodeId id = emulator.program().find_table(table);
    if (id == ir::kNoNode) return;
    const Table& t = emulator.program().node(id).table;
    int deny = -1;
    for (std::size_t a = 0; a < t.actions.size(); ++a) {
        if (t.actions[a].drops()) deny = static_cast<int>(a);
    }
    if (deny < 0) return;
    for (std::size_t flow : deny_flows) {
        emulator.insert_entry(table,
                              flows.exact_entry(flow, {key_field}, deny));
    }
}

int install_flow_entries(sim::Emulator& emulator,
                         const trafficgen::FlowSet& flows) {
    int installed = 0;
    for (const ir::Node& n : emulator.program().nodes()) {
        if (!n.is_table() || n.table.role != ir::TableRole::Original) continue;
        const Table& t = n.table;
        if (t.keys.size() != 1 || t.keys[0].kind != MatchKind::Exact) continue;
        const std::string& field = t.keys[0].field;
        bool in_tuple = false;
        for (const trafficgen::FieldRange& fr : flows.fields()) {
            if (fr.field == field) in_tuple = true;
        }
        if (!in_tuple) continue;
        int args = opt::action_arg_count(t.actions[0]);
        for (std::size_t flow = 0; flow < flows.size(); ++flow) {
            std::vector<std::uint64_t> data;
            for (int a = 0; a < args; ++a) data.push_back(flow % 64);
            if (emulator.insert_entry(
                    t.name, flows.exact_entry(flow, {field}, 0, data))) {
                ++installed;
            }
        }
    }
    return installed;
}

}  // namespace pipeleon::apps
