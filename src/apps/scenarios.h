// apps/scenarios.h — the evaluation programs of §5, reconstructed from the
// paper's descriptions. Shared by the examples and the figure benches.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"
#include "sim/emulator.h"
#include "trafficgen/workload.h"

namespace pipeleon::apps {

// ------------------------------------------------------- §5.2.1 microbench

/// "The microbenchmark programs are constructed using pipelets with four
/// tables, replicated with a scale factor N": N groups of `group_size`
/// exact tables; when `acl_last` is set, the final table becomes an ACL
/// that drops via entries.
ir::Program microbench_program(int n_groups, int group_size = 4,
                               bool acl_last = true);

/// Fig 9c/9d microbench: one pipelet of four tables with the given match
/// kind and distinct keys f0..f3 (the paper "used a different match key for
/// T1 to T4").
ir::Program four_table_pipelet(ir::MatchKind kind, int primitives_per_action = 2);

// ------------------------------------------------ Fig 2 motivating example

/// "A P4 program which starts with multiple access control list (ACL)
/// tables (ACL-Cloud, ACL-Tenant, ACL-Subnet, ACL-VM), then a few regular
/// packet processing tables, and ends with a routing table." `n_acls`
/// extends the ACL block beyond the four named ones; `proc_kind` selects
/// the regular tables' match kind (ternary processing makes the pipeline
/// expensive enough that ACL ordering decides whether line rate is met).
ir::Program acl_routing_program(int regular_tables = 4, int n_acls = 4,
                                ir::MatchKind proc_kind = ir::MatchKind::Exact);

/// (name, key field) of the first `n` ACL tables, in program order.
std::vector<std::pair<std::string, std::string>> acl_specs(int n = 4);

/// The first four ACL table names, in program order.
std::vector<std::string> acl_table_names();

// ------------------------------------------------------- Fig 11a scenario

/// Service load balancer (§5.3.1): "a sequence of MA tables starting with
/// eight tables for regular packet processing, followed by two tables for
/// load balancing, and ending with two ACL tables."
ir::Program load_balancer_program();

// ------------------------------------------------------- Fig 11b scenario

/// DASH-style packet routing (§5.3.2): "direction lookup, metadata setup
/// including appliance ID, ENI, and VNI, connection tracking, three levels
/// of ACLs, and routing." Connection tracking writes per-flow state, which
/// is why it defeats whole-program vendor caches.
ir::Program dash_routing_program();

// ------------------------------------------------------- Fig 11c scenario

/// Network-function composition (§5.3.3): the load balancer + the DASH
/// routing + an L2/L3/ACL program, glued with branches so the partition
/// yields nine pipelets.
ir::Program nf_composition_program();

// --------------------------------------------------------------- utilities

/// Installs one exact allow/deny entry per flow of `flows` drawn from
/// `deny_flows` into the named ACL table (action 1 = deny); other flows are
/// left to the default allow.
void install_acl_denies(sim::Emulator& emulator, const std::string& table,
                        const trafficgen::FlowSet& flows,
                        const std::vector<std::size_t>& deny_flows,
                        const std::string& key_field);

/// Fills every exact table of the program that matches one of the workload
/// tuple fields with entries for every flow (action 0), so steady-state
/// traffic hits instead of missing. Returns the number of entries installed.
int install_flow_entries(sim::Emulator& emulator,
                         const trafficgen::FlowSet& flows);

}  // namespace pipeleon::apps
