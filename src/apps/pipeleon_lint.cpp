// apps/pipeleon_lint — standalone static-analysis front-end for the program
// verifier (ISSUE 2). Loads a program JSON (our IR schema, or BMv2 with
// --bmv2), runs the Layer-1 structural checks, and — when a plan file is
// given — applies the plan with full Layer-2 translation validation.
// Prints one diagnostic per line; exit code 0 when no Error-severity finding
// was reported, 1 on verification errors, 2 on usage/IO problems.
//
// Plan file schema (JSON):
//   {
//     "max_pipelet_length": 8,          // optional, pipelet formation knob
//     "plans": [
//       { "pipelet_id": 0,
//         "order": [2, 0, 1],           // optional, identity when absent
//         "caches": [[0, 1]],           // [first, last] segments, new order
//         "merges": [ { "seg": [2, 3], "as_cache": true } ],
//         "cache_capacity": 4096 }      // optional CacheConfig override
//     ]
//   }
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/pipelet.h"
#include "analysis/verify.h"
#include "ir/bmv2_import.h"
#include "ir/json_io.h"
#include "opt/transform.h"
#include "util/json.h"

namespace {

using pipeleon::analysis::DiagnosticList;
using pipeleon::analysis::VerifyError;

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--bmv2] [--pipeline NAME] [--plan PLAN.json] "
                 "[--quiet] PROGRAM.json\n"
                 "  --bmv2           input is a BMv2 p4c JSON (default: "
                 "pipeleon IR schema)\n"
                 "  --pipeline NAME  BMv2 pipeline to import (default "
                 "\"ingress\")\n"
                 "  --plan FILE      verify an optimization plan against the "
                 "program (Layer 2)\n"
                 "  --quiet          print nothing when the program is clean\n",
                 argv0);
    return 2;
}

void print_diagnostics(const DiagnosticList& diagnostics) {
    for (const auto& d : diagnostics.items()) {
        std::fprintf(stdout, "%s\n", pipeleon::analysis::to_string(d).c_str());
    }
}

std::vector<pipeleon::opt::PipeletPlan> parse_plans(const pipeleon::util::Json& doc) {
    using pipeleon::opt::MergeSpec;
    using pipeleon::opt::PipeletPlan;
    using pipeleon::opt::Segment;
    std::vector<PipeletPlan> plans;
    for (const auto& p : doc.at("plans").as_array()) {
        PipeletPlan plan;
        plan.pipelet_id = static_cast<int>(p.get_int("pipelet_id", -1));
        if (const auto* order = p.find("order")) {
            for (const auto& v : order->as_array()) {
                plan.layout.order.push_back(
                    static_cast<std::size_t>(v.as_int()));
            }
        }
        if (const auto* caches = p.find("caches")) {
            for (const auto& seg : caches->as_array()) {
                plan.layout.caches.push_back(
                    Segment{static_cast<std::size_t>(seg.at(0).as_int()),
                            static_cast<std::size_t>(seg.at(1).as_int())});
            }
        }
        if (const auto* merges = p.find("merges")) {
            for (const auto& m : merges->as_array()) {
                MergeSpec spec;
                spec.seg =
                    Segment{static_cast<std::size_t>(m.at("seg").at(0).as_int()),
                            static_cast<std::size_t>(m.at("seg").at(1).as_int())};
                spec.as_cache = m.get_bool("as_cache", false);
                plan.layout.merges.push_back(spec);
            }
        }
        plan.layout.cache_config.capacity = static_cast<std::size_t>(
            p.get_int("cache_capacity",
                      static_cast<std::int64_t>(
                          plan.layout.cache_config.capacity)));
        plans.push_back(std::move(plan));
    }
    return plans;
}

}  // namespace

int main(int argc, char** argv) {
    bool bmv2 = false;
    bool quiet = false;
    std::string pipeline = "ingress";
    std::string plan_path;
    std::string program_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--bmv2") {
            bmv2 = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--pipeline" && i + 1 < argc) {
            pipeline = argv[++i];
        } else if (arg == "--plan" && i + 1 < argc) {
            plan_path = argv[++i];
        } else if (arg == "--help" || arg == "-h" || arg[0] == '-') {
            return usage(argv[0]);
        } else if (program_path.empty()) {
            program_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (program_path.empty()) return usage(argv[0]);

    // Load. The load paths run Layer 1 themselves and throw a VerifyError
    // carrying the structured findings; re-running the verifier on success
    // also surfaces Warning-severity findings a throwing load would keep.
    pipeleon::ir::Program program;
    try {
        program = bmv2 ? pipeleon::ir::load_bmv2(program_path, {pipeline})
                       : pipeleon::ir::load_program(program_path);
    } catch (const VerifyError& e) {
        std::fprintf(stdout, "%s: FAIL\n", program_path.c_str());
        print_diagnostics(e.diagnostics());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: cannot load: %s\n", program_path.c_str(),
                     e.what());
        return 1;
    }

    pipeleon::analysis::Verifier verifier;
    DiagnosticList diagnostics = verifier.check_program(program);

    // Optional Layer 2: apply the plan against the loaded program and
    // translation-validate the result.
    if (!plan_path.empty()) {
        try {
            pipeleon::util::Json doc = pipeleon::util::load_json_file(plan_path);
            std::vector<pipeleon::opt::PipeletPlan> plans = parse_plans(doc);
            pipeleon::analysis::PipeletOptions popts;
            popts.max_length = static_cast<std::size_t>(
                doc.get_int("max_pipelet_length", 8));
            std::vector<pipeleon::analysis::Pipelet> pipelets =
                pipeleon::analysis::form_pipelets(program, popts);
            pipeleon::ir::Program optimized = pipeleon::opt::apply_plans(
                program, pipelets, plans, pipeleon::analysis::VerifyMode::Off);
            diagnostics.merge(
                verifier.check_translation(program, pipelets, plans, optimized));
        } catch (const VerifyError& e) {
            diagnostics.merge(e.diagnostics());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: cannot apply plan: %s\n",
                         plan_path.c_str(), e.what());
            return 2;
        }
    }

    if (!diagnostics.empty()) print_diagnostics(diagnostics);
    if (!diagnostics.ok()) {
        std::fprintf(stdout, "%s: FAIL (%zu error(s), %zu finding(s))\n",
                     program_path.c_str(), diagnostics.error_count(),
                     diagnostics.size());
        return 1;
    }
    if (!quiet) {
        std::fprintf(stdout, "%s: OK (%zu nodes, %zu tables)\n",
                     program_path.c_str(), program.node_count(),
                     program.table_count());
    }
    return 0;
}
