// apps/pipeleon_lint — standalone static-analysis front-end for the program
// verifier (ISSUE 2). Loads a program JSON (our IR schema, or BMv2 with
// --bmv2), runs the Layer-1 structural checks, and — when a plan file is
// given — applies the plan with full Layer-2 translation validation.
// Prints one diagnostic per line; exit code 0 when no Error-severity finding
// was reported, 1 on verification errors, 2 on usage/IO problems.
//
// Plan file schema: see opt/plan_io.h.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/pipelet.h"
#include "analysis/verify.h"
#include "ir/bmv2_import.h"
#include "ir/json_io.h"
#include "opt/plan_io.h"
#include "opt/transform.h"

namespace {

using pipeleon::analysis::DiagnosticList;
using pipeleon::analysis::VerifyError;

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--bmv2] [--pipeline NAME] [--plan PLAN.json] "
                 "[--quiet] PROGRAM.json\n"
                 "  --bmv2           input is a BMv2 p4c JSON (default: "
                 "pipeleon IR schema)\n"
                 "  --pipeline NAME  BMv2 pipeline to import (default "
                 "\"ingress\")\n"
                 "  --plan FILE      verify an optimization plan against the "
                 "program (Layer 2)\n"
                 "  --quiet          print nothing when the program is clean\n",
                 argv0);
    return 2;
}

void print_diagnostics(const DiagnosticList& diagnostics) {
    for (const auto& d : diagnostics.items()) {
        std::fprintf(stdout, "%s\n", pipeleon::analysis::to_string(d).c_str());
    }
}

}  // namespace

int main(int argc, char** argv) {
    bool bmv2 = false;
    bool quiet = false;
    std::string pipeline = "ingress";
    std::string plan_path;
    std::string program_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--bmv2") {
            bmv2 = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--pipeline" && i + 1 < argc) {
            pipeline = argv[++i];
        } else if (arg == "--plan" && i + 1 < argc) {
            plan_path = argv[++i];
        } else if (arg == "--help" || arg == "-h" || arg[0] == '-') {
            return usage(argv[0]);
        } else if (program_path.empty()) {
            program_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (program_path.empty()) return usage(argv[0]);

    // Load. The load paths run Layer 1 themselves and throw a VerifyError
    // carrying the structured findings; re-running the verifier on success
    // also surfaces Warning-severity findings a throwing load would keep.
    pipeleon::ir::Program program;
    try {
        program = bmv2 ? pipeleon::ir::load_bmv2(program_path, {pipeline})
                       : pipeleon::ir::load_program(program_path);
    } catch (const VerifyError& e) {
        std::fprintf(stdout, "%s: FAIL\n", program_path.c_str());
        print_diagnostics(e.diagnostics());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: cannot load: %s\n", program_path.c_str(),
                     e.what());
        return 1;
    }

    pipeleon::analysis::Verifier verifier;
    DiagnosticList diagnostics = verifier.check_program(program);

    // Optional Layer 2: apply the plan against the loaded program and
    // translation-validate the result.
    if (!plan_path.empty()) {
        try {
            pipeleon::opt::PlanFile plan_file =
                pipeleon::opt::load_plan_file(plan_path);
            pipeleon::analysis::PipeletOptions popts;
            popts.max_length = plan_file.max_pipelet_length;
            std::vector<pipeleon::analysis::Pipelet> pipelets =
                pipeleon::analysis::form_pipelets(program, popts);
            pipeleon::ir::Program optimized = pipeleon::opt::apply_plans(
                program, pipelets, plan_file.plans,
                pipeleon::analysis::VerifyMode::Off);
            diagnostics.merge(verifier.check_translation(
                program, pipelets, plan_file.plans, optimized));
        } catch (const VerifyError& e) {
            diagnostics.merge(e.diagnostics());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: cannot apply plan: %s\n",
                         plan_path.c_str(), e.what());
            return 2;
        }
    }

    if (!diagnostics.empty()) print_diagnostics(diagnostics);
    if (!diagnostics.ok()) {
        std::fprintf(stdout, "%s: FAIL (%zu error(s), %zu finding(s))\n",
                     program_path.c_str(), diagnostics.error_count(),
                     diagnostics.size());
        return 1;
    }
    if (!quiet) {
        std::fprintf(stdout, "%s: OK (%zu nodes, %zu tables)\n",
                     program_path.c_str(), program.node_count(),
                     program.table_count());
    }
    return 0;
}
