// pipeleon_stats — the live telemetry dashboard (ISSUE 4). Two modes:
//
//   pipeleon_stats [--windows N] [--packets N] [--workers N] [--live]
//                  [--trace FILE] [--csv FILE]
//     Runs the canonical ACL-routing scenario through the batched data plane
//     with the controller ticking once per window, and renders the metrics
//     snapshot (sim.* / ctl.* counters, latency histograms) plus the pump's
//     batch-sizing decisions after every window. --live redraws in place
//     (ANSI), --trace exports the controller spans as chrome://tracing JSON,
//     --csv writes the per-window time series.
//
//   pipeleon_stats --validate-report FILE...
//     Validates BENCH_*.json files against the "pipeleon.bench_report/1"
//     schema; prints each problem and exits 1 if any file is nonconformant
//     (CI's bench-smoke job runs this over every emitted report).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "cost/model.h"
#include "runtime/controller.h"
#include "sim/nic_model.h"
#include "telemetry/bench_report.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "trafficgen/workload.h"
#include "util/json.h"

using namespace pipeleon;

namespace {

int validate_reports(const std::vector<std::string>& paths) {
    int bad = 0;
    for (const std::string& path : paths) {
        std::vector<std::string> problems;
        try {
            util::Json report = util::load_json_file(path);
            problems = telemetry::BenchReport::validate(report);
        } catch (const std::exception& e) {
            problems.push_back(e.what());
        }
        if (problems.empty()) {
            std::printf("OK    %s\n", path.c_str());
        } else {
            ++bad;
            std::printf("FAIL  %s\n", path.c_str());
            for (const std::string& p : problems) {
                std::printf("      - %s\n", p.c_str());
            }
        }
    }
    std::printf("%zu report(s), %d nonconformant\n", paths.size(), bad);
    return bad == 0 ? 0 : 1;
}

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--windows N] [--packets N] [--workers N] [--live]\n"
        "          [--trace FILE] [--csv FILE]\n"
        "       %s --validate-report FILE...\n",
        argv0, argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    int windows = 10;
    int packets = 20000;
    int workers = 4;
    bool live = false;
    std::string trace_path;
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--validate-report") {
            std::vector<std::string> paths(argv + i + 1, argv + argc);
            if (paths.empty()) return usage(argv[0]);
            return validate_reports(paths);
        } else if (arg == "--windows") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            windows = std::atoi(v);
        } else if (arg == "--packets") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            packets = std::atoi(v);
        } else if (arg == "--workers") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            workers = std::atoi(v);
        } else if (arg == "--live") {
            live = true;
        } else if (arg == "--trace") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            trace_path = v;
        } else if (arg == "--csv") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            csv_path = v;
        } else {
            return usage(argv[0]);
        }
    }
    if (windows <= 0 || packets <= 0 || workers <= 0) return usage(argv[0]);

    if (!telemetry::kEnabled) {
        std::printf("telemetry is compiled out (PIPELEON_TELEMETRY=OFF); the\n"
                    "dashboard would show only zeros. Rebuild with the\n"
                    "default configuration to use pipeleon_stats.\n");
        return 0;
    }
    if (!trace_path.empty()) telemetry::Tracer::global().set_enabled(true);

    // The canonical scenario: ACL routing on BlueField2 with a deny-heavy
    // ACL — enough drops and reorder opportunity that the controller, the
    // pump's drop feedback, and the latency histograms all have work to do.
    ir::Program program = apps::acl_routing_program(4, 4);
    sim::NicModel nic = sim::bluefield2_model();
    sim::Emulator emu(nic, program, {});
    emu.set_worker_count(workers);

    runtime::ControllerConfig cfg;
    cfg.detector.threshold = 0.05;
    cost::CostModel model(nic.costs, {});
    runtime::Controller controller(emu, program, model, cfg);

    util::Rng rng(41);
    std::vector<trafficgen::FieldRange> tuple;
    for (auto& [name, key] : apps::acl_specs(4)) tuple.push_back({key, 0, 99999});
    trafficgen::FlowSet flows = trafficgen::FlowSet::generate(tuple, 1000, rng);
    trafficgen::Workload picker(flows, trafficgen::Locality::Uniform, 0.0, 1);
    apps::install_acl_denies(emu, "acl_subnet", flows, picker.pick_flows(0.3),
                             "subnet_id");
    trafficgen::Workload wl(flows, trafficgen::Locality::Zipf, 1.1, 2);

    telemetry::CsvSeries series(
        {"window", "throughput_gbps", "drop_rate", "mean_cycles",
         "last_batch", "shrinks_drops", "shrinks_cycles", "grows"});

    for (int w = 0; w < windows; ++w) {
        runtime::Controller::PumpStats pump =
            controller.pump_window(wl, packets, 5.0);
        runtime::TickResult tick = controller.tick();

        series.add_row({static_cast<double>(w), pump.throughput_gbps,
                        pump.drop_rate, pump.mean_cycles,
                        static_cast<double>(pump.last_batch),
                        static_cast<double>(pump.batch_shrinks_drops),
                        static_cast<double>(pump.batch_shrinks_cycles),
                        static_cast<double>(pump.batch_grows)});

        if (live) std::printf("\x1b[2J\x1b[H");
        std::printf("== window %d/%d ==\n", w + 1, windows);
        std::printf("pump: %.2f Gbps  drop=%.3f  mean=%.1f cyc  "
                    "batch=%zu [%zu..%zu]  moves: drops-%llu cycles-%llu "
                    "grow+%llu  worst-batch-drop=%.3f\n",
                    pump.throughput_gbps, pump.drop_rate, pump.mean_cycles,
                    pump.last_batch, pump.min_batch, pump.max_batch,
                    static_cast<unsigned long long>(pump.batch_shrinks_drops),
                    static_cast<unsigned long long>(pump.batch_shrinks_cycles),
                    static_cast<unsigned long long>(pump.batch_grows),
                    pump.max_batch_drop);
        std::printf("tick: profiled=%d searched=%d deployed=%d%s\n",
                    tick.profiled, tick.searched, tick.deployed,
                    tick.verify_rejected ? "  VERIFY-REJECTED" : "");
        std::printf("%s", emu.telemetry_snapshot().to_text().c_str());
        if (!live) std::printf("\n");
    }

    if (!csv_path.empty()) {
        series.write(csv_path);
        std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!trace_path.empty()) {
        telemetry::Tracer::global().write_chrome_json(trace_path);
        std::printf("wrote %s (%zu events, %llu dropped)\n", trace_path.c_str(),
                    telemetry::Tracer::global().events().size(),
                    static_cast<unsigned long long>(
                        telemetry::Tracer::global().dropped()));
    }
    return 0;
}
