#include "profile/change_detect.h"

#include <algorithm>
#include <cmath>

namespace pipeleon::profile {

double ProfileDelta::max_shift() const {
    return std::max({max_action_shift, max_branch_shift, max_update_rate_shift,
                     max_entry_count_shift});
}

ProfileDelta profile_delta(const ir::Program& program, const RuntimeProfile& old_p,
                           const RuntimeProfile& new_p) {
    ProfileDelta d;
    auto rel_change = [](double a, double b) {
        double hi = std::max(std::fabs(a), std::fabs(b));
        if (hi <= 0.0) return 0.0;
        return std::min(1.0, std::fabs(a - b) / hi);
    };
    for (ir::NodeId id : program.reachable()) {
        const ir::Node& n = program.node(id);
        if (n.is_branch()) {
            d.max_branch_shift = std::max(
                d.max_branch_shift, std::fabs(old_p.branch_true_probability(id) -
                                              new_p.branch_true_probability(id)));
            continue;
        }
        double tv = 0.0;
        for (std::size_t a = 0; a < n.table.actions.size(); ++a) {
            tv += std::fabs(old_p.action_probability(n, static_cast<int>(a)) -
                            new_p.action_probability(n, static_cast<int>(a)));
        }
        d.max_action_shift = std::max(d.max_action_shift, 0.5 * tv);
        d.max_update_rate_shift =
            std::max(d.max_update_rate_shift,
                     rel_change(old_p.update_rate(id), new_p.update_rate(id)));
        d.max_entry_count_shift = std::max(
            d.max_entry_count_shift,
            rel_change(static_cast<double>(old_p.table(id).entry_count),
                       static_cast<double>(new_p.table(id).entry_count)));
    }
    return d;
}

bool ChangeDetector::changed(const ir::Program& program,
                             const RuntimeProfile& old_p,
                             const RuntimeProfile& new_p) const {
    return profile_delta(program, old_p, new_p).max_shift() >= threshold;
}

}  // namespace pipeleon::profile
