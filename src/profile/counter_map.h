// profile/counter_map.h — the counter map of §4.1.2. Pipeleon's optimizer
// always starts from the *original* program, but measurements come from the
// *optimized* program running on the NIC. "To obtain the counter values for
// the original program, Pipeleon maintains a counter map that links the
// optimized program to its original counterpart" — e.g. after table caching,
// a table's traffic splits into cache hits plus fall-through hits, and the
// original counter value is their sum.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::profile {

/// Snapshot of a table's control-plane entry state over a window.
struct EntrySnapshot {
    std::size_t entry_count = 0;
    std::uint64_t entry_updates = 0;
    int lpm_prefix_count = 0;
    int ternary_mask_count = 0;

    friend bool operator==(const EntrySnapshot&, const EntrySnapshot&) = default;
};

/// Raw measurements read off the deployed (optimized) program: P4 counters
/// per node/action, cache statistics, and per-original-table entry state.
struct RawCounters {
    double window_seconds = 1.0;

    // Indexed by *optimized-program* node id.
    std::vector<std::vector<std::uint64_t>> action_hits;
    std::vector<std::uint64_t> misses;
    std::vector<std::uint64_t> branch_true;
    std::vector<std::uint64_t> branch_false;
    std::vector<std::uint64_t> cache_hits;
    std::vector<std::uint64_t> cache_misses;
    std::vector<std::uint64_t> inserts_dropped;

    /// Cache replay counters: how many cache hits replayed a given original
    /// table's action. Key: (cache node id, original table, original action).
    std::map<std::tuple<ir::NodeId, std::string, std::string>, std::uint64_t>
        replays;

    /// Entry state keyed by *original* table name (control-plane API calls
    /// are made against original names; §2.3). Hashed, not ordered — the
    /// profiler reads this once per packet window and never iterates it in
    /// a order-sensitive way.
    std::unordered_map<std::string, EntrySnapshot> entries;

    /// Sizes all per-node vectors for a program.
    void reset_for(const ir::Program& program, double window_seconds = 1.0);
};

/// Separator used in merged-table action names: merging tables A and B turns
/// actions a of A and b of B into an action named "a+b" (Fig 6's a1b1 etc.).
inline constexpr char kMergedActionSep = '+';

/// Translates raw optimized-program counters into a RuntimeProfile expressed
/// over the original program's node ids.
class CounterMap {
public:
    /// Builds the map by inspecting the optimized program's provenance
    /// metadata (table roles, origin_tables, merged action names). Branches
    /// are paired between the programs in topological order — Pipeleon's
    /// transformations never reorder or duplicate branches.
    static CounterMap build(const ir::Program& original,
                            const ir::Program& optimized);

    /// Produces a profile in original-program space. Cache-served traffic is
    /// attributed to the original table's action hits (it did match there);
    /// merged-table wildcard rows are attributed to the component's default
    /// action, which leaves P(a) — the value the cost model consumes — exact.
    RuntimeProfile translate(const ir::Program& original,
                             const RawCounters& raw) const;

private:
    struct ActionSource {
        ir::NodeId opt_node = ir::kNoNode;
        int opt_action = -1;
    };

    struct NodeActionHash {
        std::size_t operator()(const std::pair<ir::NodeId, int>& k) const {
            return std::hash<std::uint64_t>{}(
                (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.first))
                 << 32) |
                static_cast<std::uint32_t>(k.second));
        }
    };

    // Keyed by (original node id, original action index).
    std::unordered_map<std::pair<ir::NodeId, int>, std::vector<ActionSource>,
                       NodeActionHash>
        action_sources_;
    // Original node id -> optimized nodes whose miss counter contributes.
    std::unordered_map<ir::NodeId, std::vector<ir::NodeId>> miss_sources_;
    // Original node id -> cache node ids that may hold replays for it.
    std::unordered_map<ir::NodeId, std::vector<ir::NodeId>> replay_sources_;
    // Original branch node id -> optimized branch node id.
    std::unordered_map<ir::NodeId, ir::NodeId> branch_map_;
    // Original node id -> optimized cache nodes implementing it (for
    // cache_hits/cache_misses/inserts_dropped pass-through onto caches that
    // the optimizer itself created for this node).
    std::unordered_map<ir::NodeId, std::vector<ir::NodeId>> cache_stat_sources_;
    // Optimized cache/merged-cache node -> the original tables it covers
    // (for the churn-contamination signal, covering_update_rate).
    std::unordered_map<ir::NodeId, std::vector<std::string>> cache_origins_;
};

}  // namespace pipeleon::profile
