#include "profile/profile.h"

#include <stdexcept>

namespace pipeleon::profile {

RuntimeProfile::RuntimeProfile(std::size_t node_count, double window_seconds)
    : tables_(node_count), branches_(node_count), window_seconds_(window_seconds) {}

void RuntimeProfile::reset_for(const ir::Program& program, double window_seconds) {
    tables_.assign(program.node_count(), TableStats{});
    branches_.assign(program.node_count(), BranchStats{});
    window_seconds_ = window_seconds;
    for (const ir::Node& n : program.nodes()) {
        if (n.is_table()) {
            tables_[static_cast<std::size_t>(n.id)].action_hits.assign(
                n.table.actions.size(), 0);
        }
    }
}

void RuntimeProfile::check(ir::NodeId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= tables_.size()) {
        throw std::out_of_range("RuntimeProfile: node id " + std::to_string(id) +
                                " out of range");
    }
}

TableStats& RuntimeProfile::table(ir::NodeId id) {
    check(id);
    return tables_[static_cast<std::size_t>(id)];
}

const TableStats& RuntimeProfile::table(ir::NodeId id) const {
    check(id);
    return tables_[static_cast<std::size_t>(id)];
}

BranchStats& RuntimeProfile::branch(ir::NodeId id) {
    check(id);
    return branches_[static_cast<std::size_t>(id)];
}

const BranchStats& RuntimeProfile::branch(ir::NodeId id) const {
    check(id);
    return branches_[static_cast<std::size_t>(id)];
}

double RuntimeProfile::action_probability(const ir::Node& node,
                                          int action_idx) const {
    const TableStats& st = table(node.id);
    std::uint64_t total = st.lookups();
    std::size_t n_actions = node.table.actions.size();
    if (action_idx < 0 || static_cast<std::size_t>(action_idx) >= n_actions) {
        return 0.0;
    }
    if (total == 0) {
        // Uniform fallback so the cost model stays defined pre-traffic.
        return 1.0 / static_cast<double>(n_actions);
    }
    std::uint64_t c = 0;
    if (static_cast<std::size_t>(action_idx) < st.action_hits.size()) {
        c = st.action_hits[static_cast<std::size_t>(action_idx)];
    }
    if (action_idx == node.table.default_action) c += st.misses;
    return static_cast<double>(c) / static_cast<double>(total);
}

double RuntimeProfile::miss_probability(const ir::Node& node) const {
    const TableStats& st = table(node.id);
    std::uint64_t total = st.lookups();
    if (total == 0) return 0.0;
    return static_cast<double>(st.misses) / static_cast<double>(total);
}

double RuntimeProfile::drop_probability(const ir::Node& node) const {
    if (!node.is_table()) return 0.0;
    double p = 0.0;
    for (std::size_t a = 0; a < node.table.actions.size(); ++a) {
        if (node.table.actions[a].drops()) {
            p += action_probability(node, static_cast<int>(a));
        }
    }
    return p;
}

double RuntimeProfile::branch_true_probability(ir::NodeId id) const {
    const BranchStats& st = branch(id);
    if (st.total() == 0) return 0.5;
    return static_cast<double>(st.taken_true) / static_cast<double>(st.total());
}

double RuntimeProfile::edge_probability(const ir::Node& node,
                                        ir::NodeId successor) const {
    if (node.is_branch()) {
        double p_true = branch_true_probability(node.id);
        double p = 0.0;
        if (node.true_next == successor) p += p_true;
        if (node.false_next == successor) p += 1.0 - p_true;
        return p;
    }
    // Table: sum the probabilities of non-dropping actions whose edge leads
    // to `successor`, plus the miss edge when the table has no default.
    double p = 0.0;
    const ir::Table& t = node.table;
    for (std::size_t a = 0; a < t.actions.size(); ++a) {
        if (t.actions[a].drops()) continue;  // drop halts execution (§3.2.1)
        if (node.next_by_action[a] == successor) {
            double pa = action_probability(node, static_cast<int>(a));
            // The default action's probability already includes misses.
            p += pa;
        }
    }
    if (t.default_action < 0 && node.miss_next == successor) {
        p += miss_probability(node);
    }
    return p;
}

std::vector<double> RuntimeProfile::reach_probabilities(
    const ir::Program& program) const {
    if (program.node_count() != node_count()) {
        throw std::invalid_argument(
            "RuntimeProfile::reach_probabilities: profile sized for a "
            "different program");
    }
    std::vector<double> reach(program.node_count(), 0.0);
    if (program.root() == ir::kNoNode) return reach;
    reach[static_cast<std::size_t>(program.root())] = 1.0;
    for (ir::NodeId id : program.topo_order()) {
        const ir::Node& n = program.node(id);
        double p_here = reach[static_cast<std::size_t>(id)];
        if (p_here <= 0.0) continue;
        for (ir::NodeId s : n.successors()) {
            reach[static_cast<std::size_t>(s)] +=
                p_here * edge_probability(n, s);
        }
    }
    return reach;
}

double RuntimeProfile::update_rate(ir::NodeId id) const {
    const TableStats& st = table(id);
    if (window_seconds_ <= 0.0) return 0.0;
    return static_cast<double>(st.entry_updates) / window_seconds_;
}

double RuntimeProfile::cache_hit_rate(ir::NodeId id, double fallback) const {
    const TableStats& st = table(id);
    std::uint64_t total = st.cache_hits + st.cache_misses;
    if (total == 0) return fallback;
    return static_cast<double>(st.cache_hits) / static_cast<double>(total);
}

}  // namespace pipeleon::profile
