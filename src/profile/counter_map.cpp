#include "profile/counter_map.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace pipeleon::profile {

using ir::Node;
using ir::NodeId;
using ir::Program;
using ir::TableRole;

void RawCounters::reset_for(const Program& program, double window) {
    std::size_t n = program.node_count();
    action_hits.assign(n, {});
    misses.assign(n, 0);
    branch_true.assign(n, 0);
    branch_false.assign(n, 0);
    cache_hits.assign(n, 0);
    cache_misses.assign(n, 0);
    inserts_dropped.assign(n, 0);
    replays.clear();
    entries.clear();
    window_seconds = window;
    for (const Node& node : program.nodes()) {
        if (node.is_table()) {
            action_hits[static_cast<std::size_t>(node.id)].assign(
                node.table.actions.size(), 0);
        }
    }
}

CounterMap CounterMap::build(const Program& original, const Program& optimized) {
    CounterMap map;

    // Index original tables by name.
    std::unordered_map<std::string, NodeId> orig_by_name;
    std::vector<NodeId> orig_branches;
    for (NodeId id : original.topo_order()) {
        const Node& n = original.node(id);
        if (n.is_table()) {
            orig_by_name[n.table.name] = id;
        } else {
            orig_branches.push_back(id);
        }
    }

    std::vector<NodeId> opt_branches;
    for (NodeId id : optimized.topo_order()) {
        const Node& n = optimized.node(id);
        if (n.is_branch()) {
            opt_branches.push_back(id);
            continue;
        }
        const ir::Table& t = n.table;
        switch (t.role) {
            case TableRole::Original: {
                auto it = orig_by_name.find(t.name);
                if (it == orig_by_name.end()) break;  // new infra table
                NodeId orig_id = it->second;
                const Node& orig = original.node(orig_id);
                for (std::size_t a = 0; a < t.actions.size(); ++a) {
                    int orig_a = orig.table.action_index(t.actions[a].name);
                    if (orig_a < 0) continue;
                    map.action_sources_[{orig_id, orig_a}].push_back(
                        {id, static_cast<int>(a)});
                }
                map.miss_sources_[orig_id].push_back(id);
                break;
            }
            case TableRole::Merged:
            case TableRole::MergedCache: {
                // Action names are "<a_of_first>+<a_of_second>+..."; the i-th
                // component belongs to origin_tables[i].
                for (std::size_t a = 0; a < t.actions.size(); ++a) {
                    std::vector<std::string> parts =
                        util::split(t.actions[a].name, kMergedActionSep);
                    if (parts.size() != t.origin_tables.size()) continue;
                    for (std::size_t i = 0; i < parts.size(); ++i) {
                        auto it = orig_by_name.find(t.origin_tables[i]);
                        if (it == orig_by_name.end()) continue;
                        NodeId orig_id = it->second;
                        int orig_a =
                            original.node(orig_id).table.action_index(parts[i]);
                        if (orig_a < 0) continue;
                        map.action_sources_[{orig_id, orig_a}].push_back(
                            {id, static_cast<int>(a)});
                    }
                }
                if (t.role == TableRole::MergedCache) {
                    map.cache_origins_[id] = t.origin_tables;
                    for (const std::string& origin : t.origin_tables) {
                        auto it = orig_by_name.find(origin);
                        if (it != orig_by_name.end()) {
                            map.cache_stat_sources_[it->second].push_back(id);
                        }
                    }
                }
                break;
            }
            case TableRole::Cache: {
                map.cache_origins_[id] = t.origin_tables;
                for (const std::string& origin : t.origin_tables) {
                    auto it = orig_by_name.find(origin);
                    if (it == orig_by_name.end()) continue;
                    map.replay_sources_[it->second].push_back(id);
                    map.cache_stat_sources_[it->second].push_back(id);
                }
                break;
            }
            case TableRole::Navigation:
            case TableRole::Migration:
                break;  // infrastructure; not mapped
        }
    }

    // Pair branches in topological order. Transformations keep branch order
    // stable; verify conditions agree to catch violations early.
    if (opt_branches.size() != orig_branches.size()) {
        throw std::runtime_error(
            "CounterMap::build: branch count differs between original and "
            "optimized programs");
    }
    for (std::size_t i = 0; i < orig_branches.size(); ++i) {
        const Node& a = original.node(orig_branches[i]);
        const Node& b = optimized.node(opt_branches[i]);
        if (!(a.cond == b.cond)) {
            throw std::runtime_error(
                "CounterMap::build: branch conditions do not line up");
        }
        map.branch_map_[orig_branches[i]] = opt_branches[i];
    }
    return map;
}

RuntimeProfile CounterMap::translate(const Program& original,
                                     const RawCounters& raw) const {
    RuntimeProfile prof;
    prof.reset_for(original, raw.window_seconds);

    auto raw_at = [&raw](const std::vector<std::uint64_t>& v,
                         NodeId id) -> std::uint64_t {
        if (id < 0 || static_cast<std::size_t>(id) >= v.size()) return 0;
        return v[static_cast<std::size_t>(id)];
    };

    for (NodeId id : original.reachable()) {
        const Node& n = original.node(id);
        if (n.is_branch()) {
            auto it = branch_map_.find(id);
            if (it != branch_map_.end()) {
                prof.branch(id).taken_true = raw_at(raw.branch_true, it->second);
                prof.branch(id).taken_false = raw_at(raw.branch_false, it->second);
            }
            continue;
        }
        TableStats& st = prof.table(id);

        for (std::size_t a = 0; a < n.table.actions.size(); ++a) {
            std::uint64_t total = 0;
            auto sit = action_sources_.find({id, static_cast<int>(a)});
            if (sit != action_sources_.end()) {
                for (const ActionSource& src : sit->second) {
                    const auto idx = static_cast<std::size_t>(src.opt_node);
                    if (idx < raw.action_hits.size() &&
                        static_cast<std::size_t>(src.opt_action) <
                            raw.action_hits[idx].size()) {
                        total += raw.action_hits[idx]
                                     [static_cast<std::size_t>(src.opt_action)];
                    }
                }
            }
            // Cache replays for this original action.
            auto rit = replay_sources_.find(id);
            if (rit != replay_sources_.end()) {
                for (NodeId cache_node : rit->second) {
                    auto key = std::make_tuple(cache_node, n.table.name,
                                               n.table.actions[a].name);
                    auto cit = raw.replays.find(key);
                    if (cit != raw.replays.end()) total += cit->second;
                }
            }
            st.action_hits[a] = total;
        }

        auto mit = miss_sources_.find(id);
        if (mit != miss_sources_.end()) {
            for (NodeId src : mit->second) st.misses += raw_at(raw.misses, src);
        }

        auto cit = cache_stat_sources_.find(id);
        if (cit != cache_stat_sources_.end()) {
            for (NodeId src : cit->second) {
                st.cache_hits += raw_at(raw.cache_hits, src);
                st.cache_misses += raw_at(raw.cache_misses, src);
                st.inserts_dropped += raw_at(raw.inserts_dropped, src);
                // Churn-contamination signal: total update rate across the
                // covering cache's whole origin set.
                auto oit = cache_origins_.find(src);
                if (oit != cache_origins_.end() && raw.window_seconds > 0.0) {
                    double rate = 0.0;
                    for (const std::string& origin : oit->second) {
                        auto eit = raw.entries.find(origin);
                        if (eit != raw.entries.end()) {
                            rate += static_cast<double>(eit->second.entry_updates) /
                                    raw.window_seconds;
                        }
                    }
                    st.covering_update_rate =
                        std::max(st.covering_update_rate, rate);
                }
            }
        }

        auto eit = raw.entries.find(n.table.name);
        if (eit != raw.entries.end()) {
            st.entry_count = eit->second.entry_count;
            st.entry_updates = eit->second.entry_updates;
            st.lpm_prefix_count = eit->second.lpm_prefix_count;
            st.ternary_mask_count = eit->second.ternary_mask_count;
        }
    }
    return prof;
}

}  // namespace pipeleon::profile
