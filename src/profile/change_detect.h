// profile/change_detect.h — profile-change detection (§2.3: "Pipeleon
// constantly monitors the profile; when it varies, a new round of
// optimization will be triggered"). Change is quantified as a distance
// between two profiles of the same program: the maximum L1 shift of any
// table's action-probability vector, the branch probability shift, and the
// relative change of entry update rates.
#pragma once

#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::profile {

/// Per-aspect distances between two profiles of the same program.
struct ProfileDelta {
    /// Max over tables of 0.5 * Σ_a |P_new(a) - P_old(a)| (total variation).
    double max_action_shift = 0.0;
    /// Max over branches of |P_new(true) - P_old(true)|.
    double max_branch_shift = 0.0;
    /// Max over tables of relative update-rate change, capped at 1.0.
    double max_update_rate_shift = 0.0;
    /// Max over tables of relative entry-count change, capped at 1.0.
    double max_entry_count_shift = 0.0;

    double max_shift() const;
};

/// Computes the delta; both profiles must be sized for `program`.
ProfileDelta profile_delta(const ir::Program& program, const RuntimeProfile& old_p,
                           const RuntimeProfile& new_p);

/// Reoptimization trigger policy: fire when any aspect moves by at least
/// `threshold` (default 10%).
struct ChangeDetector {
    double threshold = 0.10;

    bool changed(const ir::Program& program, const RuntimeProfile& old_p,
                 const RuntimeProfile& new_p) const;
};

}  // namespace pipeleon::profile
