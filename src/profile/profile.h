// profile/profile.h — runtime profiles (§2.3, §4.1.2). A profile captures how
// traffic interacts with a program over a measurement window: per-action and
// per-branch counters (from P4 counter instrumentation), entry counts, and
// entry update rates (from control-plane API monitoring). All of Pipeleon's
// profile-guided decisions — edge probabilities, drop rates, hot pipelets —
// derive from this data.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace pipeleon::profile {

/// Counters and control-plane statistics for one MA table over a window.
struct TableStats {
    /// Matched-entry executions per action index (misses excluded).
    std::vector<std::uint64_t> action_hits;
    /// Lookups that missed every entry (the default action, if any, ran).
    std::uint64_t misses = 0;
    /// Live entries at the end of the window.
    std::size_t entry_count = 0;
    /// Control-plane entry insert/delete/modify calls during the window.
    std::uint64_t entry_updates = 0;
    /// Distinct LPM prefix lengths among live entries (m for LPM tables).
    int lpm_prefix_count = 0;
    /// Distinct ternary mask combinations among live entries (m for ternary).
    int ternary_mask_count = 0;
    /// For cache tables: hits/misses observed on the cache itself.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// For cache tables: insertions dropped by the rate limiter.
    std::uint64_t inserts_dropped = 0;
    /// Total entry-update rate (per second) across ALL tables covered by
    /// the cache currently covering this table. When high, the measured
    /// cache_hits/cache_misses are churn-contaminated and say nothing about
    /// this table's own cacheability.
    double covering_update_rate = 0.0;

    std::uint64_t lookups() const {
        std::uint64_t total = misses;
        for (std::uint64_t h : action_hits) total += h;
        return total;
    }
};

/// Counters for one conditional branch over a window.
struct BranchStats {
    std::uint64_t taken_true = 0;
    std::uint64_t taken_false = 0;

    std::uint64_t total() const { return taken_true + taken_false; }
};

/// Configuration of the P4-counter instrumentation the profiler relies on.
/// Sampling reduces the per-packet overhead without changing the measured
/// probabilities (§5.4.1: "sampling 1/1024 traffic" costs only 4-5%).
struct InstrumentationConfig {
    bool enabled = true;
    /// Fraction of packets that update counters (1.0 = every packet,
    /// 1.0/1024 = the paper's sampled configuration).
    double sampling_rate = 1.0;
};

/// A complete runtime profile of a program: one slot per node id, plus the
/// window length used to turn counts into rates.
class RuntimeProfile {
public:
    RuntimeProfile() = default;
    explicit RuntimeProfile(std::size_t node_count, double window_seconds = 1.0);

    /// Sizes the profile to a program, zeroing all counters and sizing each
    /// table's action_hits to the action count.
    void reset_for(const ir::Program& program, double window_seconds = 1.0);

    double window_seconds() const { return window_seconds_; }
    void set_window_seconds(double s) { window_seconds_ = s; }

    std::size_t node_count() const { return tables_.size(); }

    TableStats& table(ir::NodeId id);
    const TableStats& table(ir::NodeId id) const;
    BranchStats& branch(ir::NodeId id);
    const BranchStats& branch(ir::NodeId id) const;

    // ------------------------------------------------------- derived values

    /// P(a): probability that a lookup of this table executes action `a`
    /// (counting default-action executions on misses). Uniform fallback when
    /// the table saw no traffic.
    double action_probability(const ir::Node& node, int action_idx) const;

    /// Probability that a lookup misses all entries.
    double miss_probability(const ir::Node& node) const;

    /// Fraction of lookups that executed a dropping action — the signal the
    /// table-reordering optimization sorts by (§3.2.1).
    double drop_probability(const ir::Node& node) const;

    /// P(true edge) for a branch node; 0.5 fallback with no traffic.
    double branch_true_probability(ir::NodeId id) const;

    /// Probability that execution leaving `node` continues to `successor`
    /// (drops terminate paths, so dropping actions contribute to no
    /// successor).
    double edge_probability(const ir::Node& node, ir::NodeId successor) const;

    /// P(G') for every node: the probability a packet reaches it, computed by
    /// forward propagation from the root (root = 1.0). Vector indexed by
    /// NodeId. Requires `program.node_count() == node_count()`.
    std::vector<double> reach_probabilities(const ir::Program& program) const;

    /// Entry updates per second over the window.
    double update_rate(ir::NodeId id) const;

    /// Cache hit rate for cache-role tables; `fallback` when no traffic.
    double cache_hit_rate(ir::NodeId id, double fallback = 0.0) const;

private:
    void check(ir::NodeId id) const;

    std::vector<TableStats> tables_;
    std::vector<BranchStats> branches_;
    double window_seconds_ = 1.0;
};

}  // namespace pipeleon::profile
