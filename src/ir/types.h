// ir/types.h — fundamental P4 IR vocabulary: match kinds, match keys, action
// primitives, actions, and branch conditions.
//
// Pipeleon models a P4 program as a DAG whose nodes are match-action (MA)
// tables or conditional branches (§3.1, Fig 4). A table's cost is the sum of
// its key-match cost (m memory accesses, where m depends on the match kind
// and the entries) and its action cost (number of primitives); see
// Equations 3/4a/4b in the paper. These types carry exactly the information
// the cost model, the optimizer, and the emulator need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pipeleon::ir {

/// Node identifier inside a Program. Dense indices into Program::nodes().
using NodeId = std::int32_t;

/// Sentinel "no node": used for the DAG sink (packet leaves the pipeline)
/// and for unset edges during construction.
inline constexpr NodeId kNoNode = -1;

/// P4 match kinds. The paper's cost model distinguishes exact (one hash +
/// one memory access, m=1) from LPM/ternary (multiple hash tables, m>1);
/// range is treated like ternary by the model.
enum class MatchKind : std::uint8_t { Exact, Lpm, Ternary, Range };

const char* to_string(MatchKind kind);
MatchKind match_kind_from_string(const std::string& s);

/// One component of a table's match key: a header/metadata field matched
/// with a particular kind at a given bit width.
struct MatchKey {
    std::string field;
    MatchKind kind = MatchKind::Exact;
    int width_bits = 32;

    bool operator==(const MatchKey&) const = default;
};

/// Kinds of action primitives the emulator can execute. This is a compact
/// but sufficient subset of P4 primitives: header field writes, arithmetic,
/// drop, forward. Each primitive costs L_act in the cost model regardless of
/// kind (Equation 4b: action cost = n_a * L_act).
enum class PrimitiveKind : std::uint8_t {
    SetConst,     ///< dst_field = value (or entry action-data when arg_index >= 0)
    CopyField,    ///< dst_field = src_field
    AddConst,     ///< dst_field += value
    SubConst,     ///< dst_field -= value
    Drop,         ///< mark the packet dropped; execution halts at path end
    Forward,      ///< set egress port to value (or action-data)
    NoOp          ///< costs a primitive slot but has no effect (padding in
                  ///< microbenchmarks, mirroring the paper's synthetic actions)
};

const char* to_string(PrimitiveKind kind);
PrimitiveKind primitive_kind_from_string(const std::string& s);

/// A single action primitive. When `arg_index` is >= 0, the immediate
/// `value` is replaced at execution time by the matching entry's action-data
/// word at that index (P4 action parameters).
struct Primitive {
    PrimitiveKind kind = PrimitiveKind::NoOp;
    std::string dst_field;
    std::string src_field;
    std::uint64_t value = 0;
    int arg_index = -1;

    bool operator==(const Primitive&) const = default;

    static Primitive set_const(std::string dst, std::uint64_t v);
    static Primitive set_from_arg(std::string dst, int arg);
    static Primitive copy_field(std::string dst, std::string src);
    static Primitive add_const(std::string dst, std::uint64_t v);
    static Primitive sub_const(std::string dst, std::uint64_t v);
    static Primitive drop();
    static Primitive forward(std::uint64_t port);
    static Primitive forward_from_arg(int arg);
    static Primitive noop();
};

/// A P4 action: a named sequence of primitives. `n_a` in the cost model is
/// `primitives.size()`.
struct Action {
    std::string name;
    std::vector<Primitive> primitives;

    /// True when the action contains a Drop primitive — the basis of the
    /// table-reordering optimization (§3.2.1: promote high-drop tables).
    bool drops() const;

    /// Fields written by this action (dst fields of mutating primitives).
    std::vector<std::string> written_fields() const;
    /// Fields read by this action (src fields of CopyField primitives).
    std::vector<std::string> read_fields() const;

    bool operator==(const Action&) const = default;
};

/// Comparison operators available in branch conditions.
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

const char* to_string(CmpOp op);
CmpOp cmp_op_from_string(const std::string& s);

/// A conditional branch node's predicate: `field <op> value`. The paper's
/// model treats branches as (nearly) free — no memory access — but the
/// emulator NIC model can assign them a configurable cost (the Fig 11c
/// emulated NIC uses 1/10 of an exact-table cost).
struct BranchCond {
    std::string field;
    CmpOp op = CmpOp::Eq;
    std::uint64_t value = 0;

    bool evaluate(std::uint64_t field_value) const;

    bool operator==(const BranchCond&) const = default;
};

}  // namespace pipeleon::ir
