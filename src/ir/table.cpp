#include "ir/table.h"

#include <stdexcept>

namespace pipeleon::ir {

const char* to_string(TableRole role) {
    switch (role) {
        case TableRole::Original: return "original";
        case TableRole::Cache: return "cache";
        case TableRole::Merged: return "merged";
        case TableRole::MergedCache: return "merged_cache";
        case TableRole::Navigation: return "navigation";
        case TableRole::Migration: return "migration";
    }
    return "?";
}

TableRole table_role_from_string(const std::string& s) {
    if (s == "original") return TableRole::Original;
    if (s == "cache") return TableRole::Cache;
    if (s == "merged") return TableRole::Merged;
    if (s == "merged_cache") return TableRole::MergedCache;
    if (s == "navigation") return TableRole::Navigation;
    if (s == "migration") return TableRole::Migration;
    throw std::invalid_argument("unknown table role: " + s);
}

const char* to_string(MemTier tier) {
    switch (tier) {
        case MemTier::Default: return "default";
        case MemTier::Fast: return "fast";
        case MemTier::Host: return "host";
    }
    return "?";
}

MemTier mem_tier_from_string(const std::string& s) {
    if (s == "default") return MemTier::Default;
    if (s == "fast") return MemTier::Fast;
    if (s == "host") return MemTier::Host;
    throw std::invalid_argument("unknown memory tier: " + s);
}

MatchKind Table::effective_match_kind() const {
    bool has_lpm = false;
    for (const MatchKey& k : keys) {
        if (k.kind == MatchKind::Ternary || k.kind == MatchKind::Range) {
            return MatchKind::Ternary;
        }
        if (k.kind == MatchKind::Lpm) has_lpm = true;
    }
    return has_lpm ? MatchKind::Lpm : MatchKind::Exact;
}

bool Table::has_match_kind(MatchKind kind) const {
    for (const MatchKey& k : keys) {
        if (k.kind == kind) return true;
    }
    return false;
}

int Table::key_width_bits() const {
    int total = 0;
    for (const MatchKey& k : keys) total += k.width_bits;
    return total;
}

bool Table::can_drop() const {
    for (const Action& a : actions) {
        if (a.drops()) return true;
    }
    return false;
}

int Table::action_index(const std::string& action_name) const {
    for (std::size_t i = 0; i < actions.size(); ++i) {
        if (actions[i].name == action_name) return static_cast<int>(i);
    }
    return -1;
}

}  // namespace pipeleon::ir
