#include "ir/program.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pipeleon::ir {

const char* to_string(CoreKind core) {
    switch (core) {
        case CoreKind::Asic: return "asic";
        case CoreKind::Cpu: return "cpu";
    }
    return "?";
}

CoreKind core_kind_from_string(const std::string& s) {
    if (s == "asic") return CoreKind::Asic;
    if (s == "cpu") return CoreKind::Cpu;
    throw std::invalid_argument("unknown core kind: " + s);
}

NodeId Node::next_for_action(int action_idx) const {
    if (action_idx < 0 ||
        static_cast<std::size_t>(action_idx) >= next_by_action.size()) {
        return kNoNode;
    }
    return next_by_action[static_cast<std::size_t>(action_idx)];
}

NodeId Node::next_for_miss() const {
    if (table.default_action >= 0) return next_for_action(table.default_action);
    return miss_next;
}

bool Node::is_switch_case() const {
    if (!is_table()) return false;
    std::set<NodeId> targets;
    for (NodeId n : next_by_action) targets.insert(n);
    targets.insert(next_for_miss());
    return targets.size() > 1;
}

std::vector<NodeId> Node::successors() const {
    std::vector<NodeId> out;
    auto push = [&out](NodeId n) {
        if (n != kNoNode && std::find(out.begin(), out.end(), n) == out.end()) {
            out.push_back(n);
        }
    };
    if (is_branch()) {
        push(true_next);
        push(false_next);
    } else {
        for (NodeId n : next_by_action) push(n);
        push(next_for_miss());
    }
    return out;
}

void Node::set_uniform_next(NodeId next) {
    next_by_action.assign(table.actions.size(), next);
    miss_next = next;
}

NodeId Program::add_table(Table table) {
    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.kind = Node::Kind::Table;
    n.table = std::move(table);
    n.next_by_action.assign(n.table.actions.size(), kNoNode);
    nodes_.push_back(std::move(n));
    if (root_ == kNoNode) root_ = nodes_.back().id;
    return nodes_.back().id;
}

NodeId Program::add_branch(BranchCond cond) {
    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.kind = Node::Kind::Branch;
    n.cond = cond;
    nodes_.push_back(std::move(n));
    if (root_ == kNoNode) root_ = nodes_.back().id;
    return nodes_.back().id;
}

const Node& Program::node(NodeId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
        throw std::out_of_range("Program::node: invalid node id " +
                                std::to_string(id));
    }
    return nodes_[static_cast<std::size_t>(id)];
}

Node& Program::node(NodeId id) {
    return const_cast<Node&>(static_cast<const Program*>(this)->node(id));
}

NodeId Program::find_table(const std::string& table_name) const {
    for (const Node& n : nodes_) {
        if (n.is_table() && n.table.name == table_name) return n.id;
    }
    return kNoNode;
}

std::vector<NodeId> Program::reachable() const {
    std::vector<NodeId> order;
    if (root_ == kNoNode) return order;
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        if (id == kNoNode || seen[static_cast<std::size_t>(id)]) continue;
        seen[static_cast<std::size_t>(id)] = true;
        order.push_back(id);
        for (NodeId s : node(id).successors()) stack.push_back(s);
    }
    return order;
}

std::vector<NodeId> Program::topo_order() const {
    std::vector<NodeId> reach = reachable();
    std::vector<int> indeg(nodes_.size(), 0);
    std::vector<bool> in_reach(nodes_.size(), false);
    for (NodeId id : reach) in_reach[static_cast<std::size_t>(id)] = true;
    for (NodeId id : reach) {
        for (NodeId s : node(id).successors()) {
            if (s != kNoNode && in_reach[static_cast<std::size_t>(s)]) {
                ++indeg[static_cast<std::size_t>(s)];
            }
        }
    }
    std::vector<NodeId> queue;
    for (NodeId id : reach) {
        if (indeg[static_cast<std::size_t>(id)] == 0) queue.push_back(id);
    }
    std::vector<NodeId> order;
    while (!queue.empty()) {
        // Stable pop: take the smallest id so the order is deterministic.
        auto it = std::min_element(queue.begin(), queue.end());
        NodeId id = *it;
        queue.erase(it);
        order.push_back(id);
        for (NodeId s : node(id).successors()) {
            if (s == kNoNode || !in_reach[static_cast<std::size_t>(s)]) continue;
            if (--indeg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
        }
    }
    if (order.size() != reach.size()) {
        throw std::runtime_error("Program::topo_order: cycle detected in '" +
                                 name_ + "'");
    }
    return order;
}

std::vector<std::vector<NodeId>> Program::predecessors() const {
    std::vector<std::vector<NodeId>> preds(nodes_.size());
    for (NodeId id : reachable()) {
        for (NodeId s : node(id).successors()) {
            if (s == kNoNode) continue;
            auto& v = preds[static_cast<std::size_t>(s)];
            if (std::find(v.begin(), v.end(), id) == v.end()) v.push_back(id);
        }
    }
    return preds;
}

void Program::validate() const {
    if (nodes_.empty()) throw std::runtime_error("program has no nodes");
    if (root_ < 0 || static_cast<std::size_t>(root_) >= nodes_.size()) {
        throw std::runtime_error("program root is invalid");
    }
    std::set<std::string> names;
    for (const Node& n : nodes_) {
        auto check_edge = [&](NodeId target, const char* what) {
            if (target != kNoNode &&
                (target < 0 || static_cast<std::size_t>(target) >= nodes_.size())) {
                throw std::runtime_error("node " + std::to_string(n.id) + " " +
                                         what + " points outside the program");
            }
            if (target == n.id) {
                throw std::runtime_error("node " + std::to_string(n.id) + " " +
                                         what + " forms a self-loop");
            }
        };
        if (n.is_table()) {
            if (n.table.name.empty()) {
                throw std::runtime_error("table node " + std::to_string(n.id) +
                                         " has an empty name");
            }
            if (!names.insert(n.table.name).second) {
                throw std::runtime_error("duplicate table name '" +
                                         n.table.name + "'");
            }
            if (n.table.actions.empty()) {
                throw std::runtime_error("table '" + n.table.name +
                                         "' has no actions");
            }
            if (n.next_by_action.size() != n.table.actions.size()) {
                throw std::runtime_error(
                    "table '" + n.table.name +
                    "': next_by_action size does not match action count");
            }
            if (n.table.default_action >= 0 &&
                static_cast<std::size_t>(n.table.default_action) >=
                    n.table.actions.size()) {
                throw std::runtime_error("table '" + n.table.name +
                                         "': default action out of range");
            }
            if (n.table.keys.empty()) {
                throw std::runtime_error("table '" + n.table.name +
                                         "' has no match keys");
            }
            for (NodeId t : n.next_by_action) check_edge(t, "action edge");
            check_edge(n.miss_next, "miss edge");
        } else {
            if (n.cond.field.empty()) {
                throw std::runtime_error("branch node " + std::to_string(n.id) +
                                         " has an empty condition field");
            }
            check_edge(n.true_next, "true edge");
            check_edge(n.false_next, "false edge");
        }
    }
    topo_order();  // throws on cycles
}

std::vector<NodeId> Program::compact() {
    std::vector<NodeId> remap(nodes_.size(), kNoNode);
    std::vector<NodeId> reach = reachable();
    std::sort(reach.begin(), reach.end());
    NodeId next_id = 0;
    for (NodeId id : reach) remap[static_cast<std::size_t>(id)] = next_id++;

    auto translate = [&remap](NodeId id) {
        return id == kNoNode ? kNoNode : remap[static_cast<std::size_t>(id)];
    };

    std::vector<Node> new_nodes(reach.size());
    for (NodeId old_id : reach) {
        Node n = nodes_[static_cast<std::size_t>(old_id)];
        n.id = translate(old_id);
        for (NodeId& t : n.next_by_action) t = translate(t);
        n.miss_next = translate(n.miss_next);
        n.true_next = translate(n.true_next);
        n.false_next = translate(n.false_next);
        new_nodes[static_cast<std::size_t>(n.id)] = std::move(n);
    }
    nodes_ = std::move(new_nodes);
    root_ = translate(root_);
    return remap;
}

std::size_t Program::table_count() const {
    std::size_t count = 0;
    for (NodeId id : reachable()) {
        if (node(id).is_table()) ++count;
    }
    return count;
}

}  // namespace pipeleon::ir
