// ir/dot.h — Graphviz DOT export of the program DAG, optionally annotated
// with a runtime profile's edge probabilities (like Fig 4 in the paper).
// Useful for debugging transformations and for documentation.
#pragma once

#include <map>
#include <string>

#include "ir/program.h"

namespace pipeleon::ir {

/// Options controlling DOT rendering.
struct DotOptions {
    bool show_match_kinds = true;   ///< annotate tables with key kinds
    bool show_core = false;         ///< color nodes by ASIC/CPU assignment
    /// Optional edge probabilities keyed by (from-node, to-node); rendered
    /// as edge labels when present.
    std::map<std::pair<NodeId, NodeId>, double> edge_probability;
};

/// Renders the reachable subgraph as a DOT digraph.
std::string to_dot(const Program& program, const DotOptions& options = {});

}  // namespace pipeleon::ir
