// ir/program.h — the program DAG (§3.1, Fig 4). Nodes are MA tables or
// conditional branches; every packet traverses exactly one root-to-sink path
// (run-to-completion). Edges are labelled: a table's out-edges are selected
// by the executed action (a "switch-case table" when actions lead to
// different successors) plus a miss edge; a branch has true/false edges.
#pragma once

#include <string>
#include <vector>

#include "ir/entry.h"
#include "ir/table.h"
#include "ir/types.h"

namespace pipeleon::ir {

/// Which SmartNIC core class a node is assigned to when the program is
/// partitioned across heterogeneous targets (§3.2.4). Single-target programs
/// leave everything on Asic.
enum class CoreKind : std::uint8_t { Asic, Cpu };

const char* to_string(CoreKind core);
CoreKind core_kind_from_string(const std::string& s);

/// A node of the program DAG.
struct Node {
    enum class Kind : std::uint8_t { Table, Branch };

    NodeId id = kNoNode;
    Kind kind = Kind::Table;
    CoreKind core = CoreKind::Asic;

    // -- Table nodes ---------------------------------------------------
    Table table;
    /// Successor per action index; must have table.actions.size() elements
    /// for table nodes. kNoNode means "exit the pipeline".
    std::vector<NodeId> next_by_action;
    /// Successor on a miss when the table has no default action
    /// (default_action == -1). With a default action, the miss follows
    /// next_by_action[default_action].
    NodeId miss_next = kNoNode;

    // -- Branch nodes ----------------------------------------------------
    BranchCond cond;
    NodeId true_next = kNoNode;
    NodeId false_next = kNoNode;

    bool is_table() const { return kind == Kind::Table; }
    bool is_branch() const { return kind == Kind::Branch; }

    /// The successor taken when the table hits with `action_idx`.
    NodeId next_for_action(int action_idx) const;
    /// The successor taken when the table misses.
    NodeId next_for_miss() const;

    /// True when different actions (or the miss) lead to different
    /// successors — the "switch-case table" of §4.1.1, which forms its own
    /// pipelet because it creates multiple dataflows.
    bool is_switch_case() const;

    /// De-duplicated successor list (excluding kNoNode).
    std::vector<NodeId> successors() const;

    /// Points every action edge and the miss edge at `next`.
    void set_uniform_next(NodeId next);

    bool operator==(const Node&) const = default;
};

/// A P4 program as a rooted DAG. Node ids are dense indices; transformations
/// may leave unreachable nodes behind, which `compact()` removes.
class Program {
public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Adds a table node and returns its id. Edges start as kNoNode.
    NodeId add_table(Table table);
    /// Adds a branch node and returns its id.
    NodeId add_branch(BranchCond cond);

    NodeId root() const { return root_; }
    void set_root(NodeId id) { root_ = id; }

    std::size_t node_count() const { return nodes_.size(); }
    const Node& node(NodeId id) const;
    Node& node(NodeId id);
    const std::vector<Node>& nodes() const { return nodes_; }

    /// Finds the node id of the table with the given name; kNoNode if absent.
    NodeId find_table(const std::string& table_name) const;

    /// All node ids reachable from the root, in discovery order.
    std::vector<NodeId> reachable() const;

    /// Reachable nodes in topological order (root first). Throws
    /// std::runtime_error if the reachable subgraph has a cycle.
    std::vector<NodeId> topo_order() const;

    /// predecessors()[id] lists nodes with an edge into `id` (reachable
    /// subgraph only; duplicate parallel edges collapsed).
    std::vector<std::vector<NodeId>> predecessors() const;

    /// Structural sanity checks: root validity, edge targets in range,
    /// next_by_action sized to the action list, acyclicity, distinct table
    /// names. Throws std::runtime_error with a description on failure.
    void validate() const;

    /// Removes unreachable nodes and renumbers ids densely, preserving
    /// reachable-subgraph structure. Returns old-id -> new-id map (kNoNode
    /// for removed nodes).
    std::vector<NodeId> compact();

    /// Number of reachable table nodes.
    std::size_t table_count() const;

    bool operator==(const Program&) const = default;

private:
    std::string name_;
    std::vector<Node> nodes_;
    NodeId root_ = kNoNode;
};

}  // namespace pipeleon::ir
