#include "ir/dot.h"

#include "util/strings.h"

namespace pipeleon::ir {

namespace {

std::string table_label(const Table& t, bool show_match_kinds) {
    std::string label = t.name;
    if (show_match_kinds) {
        label += "\\n";
        std::vector<std::string> kinds;
        for (const MatchKey& k : t.keys) {
            kinds.push_back(k.field + ":" + to_string(k.kind));
        }
        label += util::join(kinds, ", ");
    }
    if (t.role != TableRole::Original) {
        label += util::format("\\n[%s]", to_string(t.role));
    }
    return label;
}

}  // namespace

std::string to_dot(const Program& program, const DotOptions& options) {
    std::string out = "digraph \"" + program.name() + "\" {\n";
    out += "  rankdir=LR;\n  node [fontsize=10];\n";

    auto edge_label = [&options](NodeId from, NodeId to,
                                 const std::string& tag) -> std::string {
        std::string label = tag;
        auto it = options.edge_probability.find({from, to});
        if (it != options.edge_probability.end()) {
            if (!label.empty()) label += " ";
            label += util::format("p=%.2f", it->second);
        }
        return label;
    };

    auto emit_edge = [&](NodeId from, NodeId to, const std::string& tag) {
        std::string target =
            to == kNoNode ? "sink" : util::format("n%d", to);
        std::string label = edge_label(from, to, tag);
        out += util::format("  n%d -> %s", from, target.c_str());
        if (!label.empty()) out += util::format(" [label=\"%s\"]", label.c_str());
        out += ";\n";
    };

    bool has_sink = false;
    for (NodeId id : program.reachable()) {
        const Node& n = program.node(id);
        if (n.is_table()) {
            std::string attrs = util::format(
                "shape=box,label=\"%s\"",
                table_label(n.table, options.show_match_kinds).c_str());
            if (options.show_core) {
                attrs += n.core == CoreKind::Asic ? ",style=filled,fillcolor=lightblue"
                                                  : ",style=filled,fillcolor=lightyellow";
            }
            out += util::format("  n%d [%s];\n", id, attrs.c_str());
            if (n.is_switch_case()) {
                for (std::size_t a = 0; a < n.next_by_action.size(); ++a) {
                    emit_edge(id, n.next_by_action[a], n.table.actions[a].name);
                    if (n.next_by_action[a] == kNoNode) has_sink = true;
                }
                if (n.table.default_action < 0) {
                    emit_edge(id, n.miss_next, "miss");
                    if (n.miss_next == kNoNode) has_sink = true;
                }
            } else {
                NodeId next = n.next_by_action.empty() ? n.next_for_miss()
                                                       : n.next_by_action[0];
                emit_edge(id, next, "");
                if (next == kNoNode) has_sink = true;
            }
        } else {
            out += util::format(
                "  n%d [shape=diamond,label=\"%s %s %llu\"];\n", id,
                n.cond.field.c_str(), to_string(n.cond.op),
                static_cast<unsigned long long>(n.cond.value));
            emit_edge(id, n.true_next, "T");
            emit_edge(id, n.false_next, "F");
            if (n.true_next == kNoNode || n.false_next == kNoNode) has_sink = true;
        }
    }
    if (has_sink) out += "  sink [shape=doublecircle,label=\"out\"];\n";
    out += "}\n";
    return out;
}

}  // namespace pipeleon::ir
