// ir/entry.h — logical table entries. The control plane owns entries at the
// *original* program level; deployment translates them into the optimized
// layout (Cartesian-combined for merged tables, §3.2.3). Entries drive both
// the match engines in the emulator and the m-multiplier estimation of the
// cost model (m for LPM/ternary depends on the number of distinct prefix
// lengths / masks in the entries, §3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/table.h"

namespace pipeleon::ir {

/// One key component of an entry. Interpretation depends on `kind`:
///  - Exact:   match when field == value
///  - Lpm:     match when (field >> (width-prefix_len)) == (value >> ...)
///  - Ternary: match when (field & mask) == (value & mask)
///  - Range:   match when lo <= field <= hi (value=lo, mask=hi)
struct FieldMatch {
    MatchKind kind = MatchKind::Exact;
    std::uint64_t value = 0;
    std::uint64_t mask = ~0ULL;  ///< ternary mask, or range hi bound
    int prefix_len = 0;          ///< LPM prefix length in bits

    bool operator==(const FieldMatch&) const = default;

    static FieldMatch exact(std::uint64_t v);
    static FieldMatch lpm(std::uint64_t v, int prefix_len);
    static FieldMatch ternary(std::uint64_t v, std::uint64_t mask);
    static FieldMatch range(std::uint64_t lo, std::uint64_t hi);
    /// Fully-wildcarded ternary component (the "*" rows a naive exact-table
    /// merge requires, Fig 6).
    static FieldMatch wildcard();

    /// True when this component matches the given field value, using the
    /// key's declared bit width for LPM shifts.
    bool matches(std::uint64_t field_value, int width_bits) const;

    /// True when every value matched by `other` is also matched by this
    /// component (used to detect shadowed merged entries).
    bool covers(const FieldMatch& other, int width_bits) const;

    bool is_wildcard() const;
};

/// A table entry: one FieldMatch per key component, an action selection,
/// action data (runtime arguments consumed by Primitive::arg_index), and a
/// priority for ternary tables (higher wins).
struct TableEntry {
    std::vector<FieldMatch> key;
    int action_index = 0;
    std::vector<std::uint64_t> action_data;
    int priority = 0;

    bool operator==(const TableEntry&) const = default;

    /// Checks structural compatibility with a table definition: component
    /// count and kinds line up with the table's keys. Ternary table keys
    /// accept exact and wildcard components (an exact value is a fully
    /// masked ternary).
    bool compatible_with(const Table& table) const;

    /// True when this entry matches the given key field values.
    bool matches(const std::vector<std::uint64_t>& field_values,
                 const std::vector<MatchKey>& keys) const;
};

/// A bulk entry load addressed to one *deployed* table — the unit the
/// control plane hands the emulator when an epoch swap installs a remapped
/// entry set (direct tables get the original store, merged tables their
/// rebuilt cross products). The verifier's entry.remap.* rules check a
/// vector of these against the original store before deployment.
struct EntryLoad {
    std::string table;
    std::vector<TableEntry> entries;

    bool operator==(const EntryLoad&) const = default;
};

/// Counts the distinct LPM prefix lengths across entries — the paper's m
/// multiplier for LPM tables ("implemented using multiple hash tables",
/// one per prefix length).
int distinct_prefix_lengths(const std::vector<TableEntry>& entries);

/// Counts the distinct ternary mask combinations across entries — the m
/// multiplier for ternary tables.
int distinct_masks(const std::vector<TableEntry>& entries);

}  // namespace pipeleon::ir
