#include "ir/bmv2_import.h"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>

#include "analysis/verify.h"
#include "util/strings.h"

namespace pipeleon::ir {

using util::Json;

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("bmv2 import: " + what);
}

std::string field_name(const Json& target) {
    // ["hdr", "field"] or ["scalars", "metadata.x"].
    const auto& parts = target.as_array();
    std::vector<std::string> names;
    for (const Json& p : parts) names.push_back(p.as_string());
    return util::join(names, ".");
}

std::uint64_t parse_hexstr(const std::string& s) {
    return std::stoull(s, nullptr, 0);
}

/// Field bit widths, resolved through header_types/headers when present.
class WidthTable {
public:
    explicit WidthTable(const Json& doc) {
        std::map<std::string, std::map<std::string, int>> type_fields;
        if (const Json* types = doc.find("header_types")) {
            for (const Json& t : types->as_array()) {
                auto& fields = type_fields[t.at("name").as_string()];
                if (const Json* fs = t.find("fields")) {
                    for (const Json& f : fs->as_array()) {
                        const auto& pair = f.as_array();
                        if (pair.size() >= 2 && pair[1].is_number()) {
                            fields[pair[0].as_string()] =
                                static_cast<int>(pair[1].as_int());
                        }
                    }
                }
            }
        }
        if (const Json* headers = doc.find("headers")) {
            for (const Json& h : headers->as_array()) {
                std::string inst = h.at("name").as_string();
                std::string type = h.get_string("header_type", "");
                auto it = type_fields.find(type);
                if (it == type_fields.end()) continue;
                for (const auto& [field, width] : it->second) {
                    widths_[inst + "." + field] = width;
                }
            }
        }
    }

    int width_of(const std::string& field) const {
        auto it = widths_.find(field);
        return it == widths_.end() ? 32 : std::min(64, it->second);
    }

private:
    std::map<std::string, int> widths_;
};

/// Parses the `actions` array into our Action bodies, indexed by action id.
std::map<std::int64_t, Action> parse_actions(const Json& doc) {
    std::map<std::int64_t, Action> out;
    const Json* actions = doc.find("actions");
    if (actions == nullptr) return out;
    for (const Json& a : actions->as_array()) {
        Action action;
        action.name = a.at("name").as_string();
        std::int64_t id = a.get_int("id", -1);
        if (const Json* prims = a.find("primitives")) {
            for (const Json& p : prims->as_array()) {
                std::string op = p.get_string("op", "");
                const Json* params = p.find("parameters");
                auto param = [&](std::size_t i) -> const Json* {
                    if (params == nullptr || i >= params->as_array().size()) {
                        return nullptr;
                    }
                    return &params->as_array()[i];
                };
                if (op == "assign" || op == "modify_field") {
                    const Json* dst = param(0);
                    const Json* src = param(1);
                    if (dst == nullptr || src == nullptr ||
                        dst->get_string("type", "") != "field") {
                        action.primitives.push_back(Primitive::noop());
                        continue;
                    }
                    std::string dst_field = field_name(dst->at("value"));
                    std::string src_type = src->get_string("type", "");
                    if (src_type == "runtime_data") {
                        action.primitives.push_back(Primitive::set_from_arg(
                            dst_field,
                            static_cast<int>(src->at("value").as_int())));
                    } else if (src_type == "hexstr") {
                        action.primitives.push_back(Primitive::set_const(
                            dst_field, parse_hexstr(src->at("value").as_string())));
                    } else if (src_type == "field") {
                        action.primitives.push_back(Primitive::copy_field(
                            dst_field, field_name(src->at("value"))));
                    } else {
                        // Expressions etc. — keep the cost, drop the effect.
                        action.primitives.push_back(Primitive::noop());
                    }
                } else if (op == "mark_to_drop" || op == "drop") {
                    action.primitives.push_back(Primitive::drop());
                } else {
                    action.primitives.push_back(Primitive::noop());
                }
            }
        }
        out.emplace(id, std::move(action));
    }
    return out;
}

MatchKind match_kind(const std::string& s) {
    if (s == "exact") return MatchKind::Exact;
    if (s == "lpm") return MatchKind::Lpm;
    if (s == "ternary") return MatchKind::Ternary;
    if (s == "range") return MatchKind::Range;
    // valid_union / optional etc. degrade to ternary (multi-probe).
    return MatchKind::Ternary;
}

/// Extracts a field-vs-constant comparison from a BMv2 conditional
/// expression; falls back to `first_field != 0`.
BranchCond parse_condition(const Json& expr_wrapper) {
    BranchCond cond;
    cond.op = CmpOp::Ne;
    cond.value = 0;

    // Recursively find the first field reference as the fallback.
    std::function<const Json*(const Json&)> find_field =
        [&](const Json& node) -> const Json* {
        if (node.is_object()) {
            if (node.get_string("type", "") == "field") return &node;
            for (const auto& [k, v] : node.as_object()) {
                if (const Json* f = find_field(v)) return f;
            }
        } else if (node.is_array()) {
            for (const Json& v : node.as_array()) {
                if (const Json* f = find_field(v)) return f;
            }
        }
        return nullptr;
    };

    const Json* field = find_field(expr_wrapper);
    if (field == nullptr) fail("conditional without any field reference");
    cond.field = field_name(field->at("value"));

    // Try the direct shape {op, left: field, right: hexstr} (possibly under
    // "expression" wrappers and d2b conversions).
    std::function<const Json*(const Json&)> unwrap = [&](const Json& node) -> const Json* {
        if (!node.is_object()) return nullptr;
        std::string type = node.get_string("type", "");
        if (type == "expression") return unwrap(node.at("value"));
        if (node.find("op") != nullptr) return &node;
        return nullptr;
    };
    const Json* cmp = unwrap(expr_wrapper);
    if (cmp == nullptr && expr_wrapper.find("expression") != nullptr) {
        cmp = unwrap(expr_wrapper.at("expression"));
    }
    if (cmp != nullptr) {
        std::string op = cmp->get_string("op", "");
        static const std::map<std::string, CmpOp> ops = {
            {"==", CmpOp::Eq}, {"!=", CmpOp::Ne}, {"<", CmpOp::Lt},
            {"<=", CmpOp::Le}, {">", CmpOp::Gt},  {">=", CmpOp::Ge}};
        auto oit = ops.find(op);
        const Json* left = cmp->find("left");
        const Json* right = cmp->find("right");
        if (oit != ops.end() && left != nullptr && right != nullptr) {
            const Json* lf = unwrap(*left) == nullptr ? left : unwrap(*left);
            const Json* rf = unwrap(*right) == nullptr ? right : unwrap(*right);
            if (lf->get_string("type", "") == "field" &&
                rf->get_string("type", "") == "hexstr") {
                cond.field = field_name(lf->at("value"));
                cond.op = oit->second;
                cond.value = parse_hexstr(rf->at("value").as_string());
            }
        }
    }
    return cond;
}

}  // namespace

Program import_bmv2(const Json& doc, const Bmv2ImportOptions& options) {
    const Json* pipelines = doc.find("pipelines");
    if (pipelines == nullptr) fail("document has no 'pipelines'");
    const Json* pipeline = nullptr;
    for (const Json& p : pipelines->as_array()) {
        if (p.get_string("name", "") == options.pipeline) pipeline = &p;
    }
    if (pipeline == nullptr) {
        fail("pipeline '" + options.pipeline + "' not found");
    }

    WidthTable widths(doc);
    std::map<std::int64_t, Action> actions_by_id = parse_actions(doc);

    Program program(doc.get_string("program", options.pipeline));
    std::map<std::string, NodeId> node_by_name;

    // Pass 1: create nodes.
    struct PendingTable {
        NodeId node;
        std::vector<std::string> next_by_action_name;  // parallel to actions
        std::string miss_next;
        bool has_base_default = false;
    };
    std::vector<PendingTable> pending_tables;

    if (const Json* tables = pipeline->find("tables")) {
        for (const Json& t : tables->as_array()) {
            Table table;
            table.name = t.at("name").as_string();
            table.size = static_cast<std::size_t>(t.get_int("max_size", 1024));
            if (const Json* key = t.find("key")) {
                for (const Json& k : key->as_array()) {
                    MatchKey mk;
                    mk.kind = match_kind(k.get_string("match_type", "exact"));
                    mk.field = field_name(k.at("target"));
                    mk.width_bits = widths.width_of(mk.field);
                    table.keys.push_back(std::move(mk));
                }
            }
            if (table.keys.empty()) {
                // Keyless tables (default-action only) still occupy a node;
                // give them a synthetic always-miss key.
                table.keys.push_back(
                    MatchKey{"$keyless", MatchKind::Exact, 1});
            }

            PendingTable pt;
            const Json* action_ids = t.find("action_ids");
            const Json* action_names = t.find("actions");
            std::size_t n_actions =
                action_names != nullptr ? action_names->as_array().size() : 0;
            for (std::size_t i = 0; i < n_actions; ++i) {
                std::string name = action_names->as_array()[i].as_string();
                Action body;
                if (action_ids != nullptr &&
                    i < action_ids->as_array().size()) {
                    auto it = actions_by_id.find(
                        action_ids->as_array()[i].as_int());
                    if (it != actions_by_id.end()) body = it->second;
                }
                body.name = name;
                table.actions.push_back(std::move(body));
            }
            if (table.actions.empty()) {
                Action nop;
                nop.name = "NoAction";
                table.actions.push_back(std::move(nop));
            }

            // Default action: match by name against default_entry.action_id.
            if (const Json* dflt = t.find("default_entry")) {
                std::int64_t id = dflt->get_int("action_id", -1);
                auto it = actions_by_id.find(id);
                if (it != actions_by_id.end()) {
                    int idx = table.action_index(it->second.name);
                    if (idx >= 0) table.default_action = idx;
                }
            }

            // Next hops per action name. BMv2 distinguishes an explicit
            // null ("this action ends the pipeline") from an absent entry
            // (fall back to base_default_next); encode the former with a
            // sentinel the resolver maps to kNoNode.
            static const char* kExplicitEnd = "\x01end";
            if (const Json* next = t.find("next_tables")) {
                for (const Action& a : table.actions) {
                    const Json* target = next->find(a.name);
                    if (target == nullptr) {
                        pt.next_by_action_name.emplace_back("");
                    } else if (target->is_string()) {
                        pt.next_by_action_name.push_back(target->as_string());
                    } else {
                        pt.next_by_action_name.emplace_back(kExplicitEnd);
                    }
                }
            } else {
                pt.next_by_action_name.assign(table.actions.size(), "");
            }
            if (const Json* base = t.find("base_default_next")) {
                if (base->is_string()) {
                    pt.miss_next = base->as_string();
                    pt.has_base_default = true;
                }
            }

            pt.node = program.add_table(std::move(table));
            node_by_name[program.node(pt.node).table.name] = pt.node;
            pending_tables.push_back(std::move(pt));
        }
    }

    struct PendingBranch {
        NodeId node;
        std::string true_next, false_next;
    };
    std::vector<PendingBranch> pending_branches;
    if (const Json* conds = pipeline->find("conditionals")) {
        for (const Json& c : conds->as_array()) {
            BranchCond cond = parse_condition(c.at("expression"));
            PendingBranch pb;
            pb.node = program.add_branch(cond);
            node_by_name[c.at("name").as_string()] = pb.node;
            if (const Json* t = c.find("true_next")) {
                if (t->is_string()) pb.true_next = t->as_string();
            }
            if (const Json* f = c.find("false_next")) {
                if (f->is_string()) pb.false_next = f->as_string();
            }
            pending_branches.push_back(std::move(pb));
        }
    }

    // Pass 2: wire edges.
    auto resolve = [&](const std::string& name) -> NodeId {
        if (name.empty() || name == "\x01end") return kNoNode;
        auto it = node_by_name.find(name);
        if (it == node_by_name.end()) fail("unknown next node '" + name + "'");
        return it->second;
    };
    for (PendingTable& pt : pending_tables) {
        Node& n = program.node(pt.node);
        for (std::size_t i = 0; i < n.next_by_action.size(); ++i) {
            std::string target = pt.next_by_action_name[i];
            n.next_by_action[i] =
                target.empty() ? resolve(pt.miss_next) : resolve(target);
        }
        n.miss_next = resolve(pt.miss_next);
    }
    for (PendingBranch& pb : pending_branches) {
        Node& n = program.node(pb.node);
        n.true_next = resolve(pb.true_next);
        n.false_next = resolve(pb.false_next);
    }

    std::string init = pipeline->get_string("init_table", "");
    if (init.empty()) fail("pipeline has no init_table");
    program.set_root(resolve(init));
    // Layer-1 structural verification on every import (ISSUE 2): diagnoses
    // dangling next_tables, cycles, and arity mismatches in one pass.
    analysis::verify_structure_or_throw(program, "bmv2_import");
    return program;
}

Program load_bmv2(const std::string& path, const Bmv2ImportOptions& options) {
    return import_bmv2(util::load_json_file(path), options);
}

}  // namespace pipeleon::ir
