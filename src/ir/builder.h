// ir/builder.h — fluent construction helpers. The microbenchmarks in the
// paper build families of programs ("pipelets with four tables, replicated
// with a scale factor N", §5.2.1); TableSpec/ProgramBuilder make those
// one-liners in tests, benches, and examples.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace pipeleon::ir {

/// Fluent specification of a Table.
class TableSpec {
public:
    explicit TableSpec(std::string name);

    TableSpec& key(std::string field, MatchKind kind = MatchKind::Exact,
                   int width_bits = 32);
    /// Adds a fully-specified action.
    TableSpec& action(Action a);
    /// Adds an action of `n` NoOp primitives (cost-model padding).
    TableSpec& noop_action(std::string name, int n_primitives = 1);
    /// Adds an action that drops the packet.
    TableSpec& drop_action(std::string name = "deny");
    /// Adds an action that forwards to a port taken from entry action data.
    TableSpec& forward_action(std::string name = "fwd");
    /// Adds an action that sets `field` from entry action data slot 0.
    TableSpec& set_field_action(std::string name, std::string field);
    /// Marks the named action as the default (miss) action.
    TableSpec& default_to(const std::string& action_name);
    TableSpec& size(std::size_t capacity);
    /// Marks the table as requiring CPU cores (§3.2.4).
    TableSpec& cpu_only();
    TableSpec& role(TableRole r);

    Table build() const;

private:
    Table table_;
};

/// Incremental program construction with explicit wiring.
class ProgramBuilder {
public:
    explicit ProgramBuilder(std::string name);

    /// Adds a node without wiring. Edges default to kNoNode (pipeline exit).
    NodeId add(Table table);
    NodeId add(const TableSpec& spec);
    NodeId add_branch(BranchCond cond);

    /// Adds and chains after the previously appended node: the previous
    /// node's uniform next (or dangling branch edges) points here.
    NodeId append(Table table);
    NodeId append(const TableSpec& spec);

    /// Wires all of `from`'s action edges and miss edge to `to`.
    ProgramBuilder& connect(NodeId from, NodeId to);
    /// Wires a single action edge (switch-case tables).
    ProgramBuilder& connect_action(NodeId from, int action_idx, NodeId to);
    /// Wires a table's miss edge.
    ProgramBuilder& connect_miss(NodeId from, NodeId to);
    /// Wires a branch's outcomes.
    ProgramBuilder& connect_branch(NodeId branch, NodeId on_true,
                                   NodeId on_false);

    ProgramBuilder& set_root(NodeId id);

    /// Validates and returns the program. Throws on structural errors.
    Program build() const;

private:
    Program program_;
    NodeId last_ = kNoNode;
};

/// Builds a straight-line program from a list of tables (each table's every
/// action continues to the next table; the last exits).
Program linear_program(std::string name, std::vector<Table> tables);

/// Builds the recurring microbenchmark family used throughout §5.2: `n`
/// exact-match tables in sequence, each with `actions_per_table` actions of
/// `primitives_per_action` NoOp primitives, matching on per-table fields
/// f0..f{n-1}.
Program chain_of_exact_tables(std::string name, int n, int actions_per_table = 2,
                              int primitives_per_action = 1);

}  // namespace pipeleon::ir
