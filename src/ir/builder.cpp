#include "ir/builder.h"

#include <stdexcept>

#include "util/strings.h"

namespace pipeleon::ir {

TableSpec::TableSpec(std::string name) { table_.name = std::move(name); }

TableSpec& TableSpec::key(std::string field, MatchKind kind, int width_bits) {
    table_.keys.push_back(MatchKey{std::move(field), kind, width_bits});
    return *this;
}

TableSpec& TableSpec::action(Action a) {
    table_.actions.push_back(std::move(a));
    return *this;
}

TableSpec& TableSpec::noop_action(std::string name, int n_primitives) {
    Action a;
    a.name = std::move(name);
    for (int i = 0; i < n_primitives; ++i) a.primitives.push_back(Primitive::noop());
    table_.actions.push_back(std::move(a));
    return *this;
}

TableSpec& TableSpec::drop_action(std::string name) {
    Action a;
    a.name = std::move(name);
    a.primitives.push_back(Primitive::drop());
    table_.actions.push_back(std::move(a));
    return *this;
}

TableSpec& TableSpec::forward_action(std::string name) {
    Action a;
    a.name = std::move(name);
    a.primitives.push_back(Primitive::forward_from_arg(0));
    table_.actions.push_back(std::move(a));
    return *this;
}

TableSpec& TableSpec::set_field_action(std::string name, std::string field) {
    Action a;
    a.name = std::move(name);
    a.primitives.push_back(Primitive::set_from_arg(std::move(field), 0));
    table_.actions.push_back(std::move(a));
    return *this;
}

TableSpec& TableSpec::default_to(const std::string& action_name) {
    int idx = table_.action_index(action_name);
    if (idx < 0) {
        throw std::invalid_argument("TableSpec::default_to: unknown action '" +
                                    action_name + "'");
    }
    table_.default_action = idx;
    return *this;
}

TableSpec& TableSpec::size(std::size_t capacity) {
    table_.size = capacity;
    return *this;
}

TableSpec& TableSpec::cpu_only() {
    table_.asic_supported = false;
    return *this;
}

TableSpec& TableSpec::role(TableRole r) {
    table_.role = r;
    return *this;
}

Table TableSpec::build() const { return table_; }

ProgramBuilder::ProgramBuilder(std::string name) : program_(std::move(name)) {}

NodeId ProgramBuilder::add(Table table) {
    NodeId id = program_.add_table(std::move(table));
    last_ = id;
    return id;
}

NodeId ProgramBuilder::add(const TableSpec& spec) { return add(spec.build()); }

NodeId ProgramBuilder::add_branch(BranchCond cond) {
    NodeId id = program_.add_branch(cond);
    last_ = id;
    return id;
}

NodeId ProgramBuilder::append(Table table) {
    NodeId prev = last_;
    NodeId id = add(std::move(table));
    if (prev != kNoNode && prev != id) {
        Node& p = program_.node(prev);
        if (p.is_table()) {
            p.set_uniform_next(id);
        } else {
            if (p.true_next == kNoNode) p.true_next = id;
            if (p.false_next == kNoNode) p.false_next = id;
        }
    }
    return id;
}

NodeId ProgramBuilder::append(const TableSpec& spec) { return append(spec.build()); }

ProgramBuilder& ProgramBuilder::connect(NodeId from, NodeId to) {
    Node& n = program_.node(from);
    if (!n.is_table()) {
        throw std::invalid_argument("connect: node is not a table; use connect_branch");
    }
    n.set_uniform_next(to);
    return *this;
}

ProgramBuilder& ProgramBuilder::connect_action(NodeId from, int action_idx,
                                               NodeId to) {
    Node& n = program_.node(from);
    if (!n.is_table() || action_idx < 0 ||
        static_cast<std::size_t>(action_idx) >= n.next_by_action.size()) {
        throw std::invalid_argument("connect_action: invalid table/action");
    }
    n.next_by_action[static_cast<std::size_t>(action_idx)] = to;
    return *this;
}

ProgramBuilder& ProgramBuilder::connect_miss(NodeId from, NodeId to) {
    Node& n = program_.node(from);
    if (!n.is_table()) throw std::invalid_argument("connect_miss: not a table");
    n.miss_next = to;
    return *this;
}

ProgramBuilder& ProgramBuilder::connect_branch(NodeId branch, NodeId on_true,
                                               NodeId on_false) {
    Node& n = program_.node(branch);
    if (!n.is_branch()) throw std::invalid_argument("connect_branch: not a branch");
    n.true_next = on_true;
    n.false_next = on_false;
    return *this;
}

ProgramBuilder& ProgramBuilder::set_root(NodeId id) {
    program_.set_root(id);
    return *this;
}

Program ProgramBuilder::build() const {
    program_.validate();
    return program_;
}

Program linear_program(std::string name, std::vector<Table> tables) {
    ProgramBuilder b(std::move(name));
    for (Table& t : tables) b.append(std::move(t));
    return b.build();
}

Program chain_of_exact_tables(std::string name, int n, int actions_per_table,
                              int primitives_per_action) {
    std::vector<Table> tables;
    tables.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        TableSpec spec(util::format("t%d", i));
        spec.key(util::format("f%d", i));
        for (int a = 0; a < actions_per_table; ++a) {
            spec.noop_action(util::format("t%d_a%d", i, a), primitives_per_action);
        }
        spec.default_to(util::format("t%d_a0", i));
        tables.push_back(spec.build());
    }
    return linear_program(std::move(name), std::move(tables));
}

}  // namespace pipeleon::ir
