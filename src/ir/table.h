// ir/table.h — the match-action table, Pipeleon's central object. Tables
// carry optimization provenance (cache/merged/navigation/migration roles) so
// that the runtime can map control-plane API calls on the *original* program
// onto the optimized layout (§2.3: "Pipeleon ensures the same program
// management APIs by mapping the API calls to the original program to the
// optimized version").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.h"

namespace pipeleon::ir {

/// Why a table exists in the (possibly optimized) program.
enum class TableRole : std::uint8_t {
    Original,    ///< present in the input program
    Cache,       ///< flow cache inserted by table caching (§3.2.2)
    Merged,      ///< product table from table merging (§3.2.3)
    MergedCache, ///< merged exact table used as a cache with fallback (§3.2.3)
    Navigation,  ///< next_tab_id dispatch table at a partition entry (§3.2.4)
    Migration    ///< next_tab_id update table at a partition exit (§3.2.4)
};

const char* to_string(TableRole role);
TableRole table_role_from_string(const std::string& s);

/// Memory tier a table's entries live in (§6 "Hierarchical memory support").
/// Most SmartNIC compilers place every table in external memory; targets
/// that expose placement can host hot tables in on-chip SRAM with a lower
/// per-access latency.
enum class MemTier : std::uint8_t {
    Default,  ///< external memory (EMEM/DRAM)
    Fast,     ///< on-chip SRAM
    Host      ///< host memory reached over DMA (slowest, effectively unbounded)
};

const char* to_string(MemTier tier);
MemTier mem_tier_from_string(const std::string& s);

/// Tiered flow-state placement for a cache table (§6 hierarchical memory).
/// Tier 0 is the on-NIC SRAM store (CacheConfig::capacity); the two
/// lower tiers below are NIC DRAM/EMEM and host memory over DMA. A zero
/// capacity disables a tier; all-zero — the default — keeps the flat
/// single-tier store, bit-identical to the pre-tier CacheStore.
struct TierConfig {
    std::size_t dram_entries = 0;  ///< tier-1 (NIC DRAM/EMEM) capacity
    std::size_t host_entries = 0;  ///< tier-2 (host memory over DMA) capacity
    /// Hits an entry must collect (between decays) to be promoted one tier
    /// up at the next batch boundary.
    std::uint32_t promote_hits = 2;
    /// Batch-boundary flushes between hit-counter decays (halving); 0
    /// disables decay.
    std::uint32_t decay_every = 64;
    /// Host fetches amortized per DMA doorbell (descriptor-ring batch).
    std::size_t dma_batch = 32;

    bool enabled() const { return dram_entries > 0 || host_entries > 0; }
    bool operator==(const TierConfig&) const = default;
};

/// Per-cache-table knobs (§3.2.2): a fixed memory budget with LRU eviction
/// and an insertion rate limit ("insertions beyond the limit will be
/// dropped").
struct CacheConfig {
    std::size_t capacity = 4096;          ///< max cached entries (LRU beyond)
    double max_insert_per_sec = 10000.0;  ///< insertion rate limit
    /// Lower-tier capacities and policy (hierarchical flow-state memory).
    TierConfig tiers;
    bool operator==(const CacheConfig&) const = default;
};

/// A match-action table.
struct Table {
    std::string name;
    std::vector<MatchKey> keys;
    std::vector<Action> actions;
    /// Index into `actions` executed on a miss; -1 means "no-op on miss".
    int default_action = -1;
    /// Capacity in entries; the optimizer's memory estimate multiplies the
    /// live entry count by entry size and the match multiplier m (§4, Eq. 5).
    std::size_t size = 1024;

    /// False when any action uses operations the ASIC cores cannot run, in
    /// which case the table must execute on CPU cores (§3.2.4).
    bool asic_supported = true;

    /// Memory tier; assigned by opt::assign_memory_tiers on targets that
    /// support placement, Default otherwise.
    MemTier tier = MemTier::Default;

    TableRole role = TableRole::Original;
    /// For Cache/Merged/MergedCache tables: names of covered source tables,
    /// in pipeline order. Used by the counter map and the API mapping.
    std::vector<std::string> origin_tables;
    CacheConfig cache;

    /// Dominant (most expensive) match kind across the key: a table with any
    /// ternary/range key behaves like a ternary table for the cost model; a
    /// LPM key makes it LPM; otherwise exact.
    MatchKind effective_match_kind() const;

    /// True if any key component uses the given kind.
    bool has_match_kind(MatchKind kind) const;

    /// Total key width in bits (used for memory estimates).
    int key_width_bits() const;

    /// True when the table has an action containing a Drop primitive.
    bool can_drop() const;

    /// Looks up an action index by name; -1 when absent.
    int action_index(const std::string& action_name) const;

    bool operator==(const Table&) const = default;
};

}  // namespace pipeleon::ir
