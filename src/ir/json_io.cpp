#include "ir/json_io.h"

#include <stdexcept>

#include "analysis/verify.h"
#include "util/strings.h"

namespace pipeleon::ir {

using util::Json;
using util::JsonObject;

namespace {

Json key_to_json(const MatchKey& key) {
    JsonObject o;
    o.set("field", Json(key.field));
    o.set("match_kind", Json(std::string(to_string(key.kind))));
    o.set("width_bits", Json(key.width_bits));
    return Json(std::move(o));
}

MatchKey key_from_json(const Json& j) {
    MatchKey key;
    key.field = j.at("field").as_string();
    key.kind = match_kind_from_string(j.at("match_kind").as_string());
    key.width_bits = static_cast<int>(j.get_int("width_bits", 32));
    return key;
}

Json primitive_to_json(const Primitive& p) {
    JsonObject o;
    o.set("op", Json(std::string(to_string(p.kind))));
    if (!p.dst_field.empty()) o.set("dst", Json(p.dst_field));
    if (!p.src_field.empty()) o.set("src", Json(p.src_field));
    if (p.value != 0) o.set("value", Json(p.value));
    if (p.arg_index >= 0) o.set("arg_index", Json(p.arg_index));
    return Json(std::move(o));
}

Primitive primitive_from_json(const Json& j) {
    Primitive p;
    p.kind = primitive_kind_from_string(j.at("op").as_string());
    p.dst_field = j.get_string("dst", "");
    p.src_field = j.get_string("src", "");
    p.value = static_cast<std::uint64_t>(j.get_int("value", 0));
    p.arg_index = static_cast<int>(j.get_int("arg_index", -1));
    return p;
}

Json action_to_json(const Action& a) {
    JsonObject o;
    o.set("name", Json(a.name));
    Json prims = Json::array();
    for (const Primitive& p : a.primitives) prims.push_back(primitive_to_json(p));
    o.set("primitives", std::move(prims));
    return Json(std::move(o));
}

Action action_from_json(const Json& j) {
    Action a;
    a.name = j.at("name").as_string();
    for (const Json& p : j.at("primitives").as_array()) {
        a.primitives.push_back(primitive_from_json(p));
    }
    return a;
}

Json table_to_json(const Table& t) {
    JsonObject o;
    o.set("name", Json(t.name));
    Json keys = Json::array();
    for (const MatchKey& k : t.keys) keys.push_back(key_to_json(k));
    o.set("keys", std::move(keys));
    Json actions = Json::array();
    for (const Action& a : t.actions) actions.push_back(action_to_json(a));
    o.set("actions", std::move(actions));
    o.set("default_action", Json(t.default_action));
    o.set("size", Json(t.size));
    o.set("asic_supported", Json(t.asic_supported));
    if (t.tier != MemTier::Default) {
        o.set("mem_tier", Json(std::string(to_string(t.tier))));
    }
    o.set("role", Json(std::string(to_string(t.role))));
    if (!t.origin_tables.empty()) {
        Json origins = Json::array();
        for (const std::string& name : t.origin_tables) origins.push_back(Json(name));
        o.set("origin_tables", std::move(origins));
    }
    if (t.role == TableRole::Cache || t.role == TableRole::MergedCache) {
        JsonObject c;
        c.set("capacity", Json(t.cache.capacity));
        c.set("max_insert_per_sec", Json(t.cache.max_insert_per_sec));
        if (t.cache.tiers.enabled()) {
            JsonObject tiers;
            tiers.set("dram_entries", Json(t.cache.tiers.dram_entries));
            tiers.set("host_entries", Json(t.cache.tiers.host_entries));
            tiers.set("promote_hits",
                      Json(static_cast<std::int64_t>(t.cache.tiers.promote_hits)));
            tiers.set("decay_every",
                      Json(static_cast<std::int64_t>(t.cache.tiers.decay_every)));
            tiers.set("dma_batch", Json(t.cache.tiers.dma_batch));
            c.set("tiers", Json(std::move(tiers)));
        }
        o.set("cache", Json(std::move(c)));
    }
    return Json(std::move(o));
}

Table table_from_json(const Json& j) {
    Table t;
    t.name = j.at("name").as_string();
    for (const Json& k : j.at("keys").as_array()) t.keys.push_back(key_from_json(k));
    for (const Json& a : j.at("actions").as_array()) {
        t.actions.push_back(action_from_json(a));
    }
    t.default_action = static_cast<int>(j.get_int("default_action", -1));
    t.size = static_cast<std::size_t>(j.get_int("size", 1024));
    t.asic_supported = j.get_bool("asic_supported", true);
    t.tier = mem_tier_from_string(j.get_string("mem_tier", "default"));
    t.role = table_role_from_string(j.get_string("role", "original"));
    if (const Json* origins = j.find("origin_tables")) {
        for (const Json& name : origins->as_array()) {
            t.origin_tables.push_back(name.as_string());
        }
    }
    if (const Json* c = j.find("cache")) {
        t.cache.capacity = static_cast<std::size_t>(c->get_int("capacity", 4096));
        t.cache.max_insert_per_sec = c->get_double("max_insert_per_sec", 10000.0);
        if (const Json* tiers = c->find("tiers")) {
            t.cache.tiers.dram_entries =
                static_cast<std::size_t>(tiers->get_int("dram_entries", 0));
            t.cache.tiers.host_entries =
                static_cast<std::size_t>(tiers->get_int("host_entries", 0));
            t.cache.tiers.promote_hits =
                static_cast<std::uint32_t>(tiers->get_int("promote_hits", 2));
            t.cache.tiers.decay_every =
                static_cast<std::uint32_t>(tiers->get_int("decay_every", 64));
            t.cache.tiers.dma_batch =
                static_cast<std::size_t>(tiers->get_int("dma_batch", 32));
        }
    }
    return t;
}

Json node_to_json(const Node& n) {
    JsonObject o;
    o.set("id", Json(n.id));
    o.set("core", Json(std::string(to_string(n.core))));
    if (n.is_table()) {
        o.set("kind", Json("table"));
        o.set("table", table_to_json(n.table));
        Json next = Json::array();
        for (NodeId t : n.next_by_action) next.push_back(Json(t));
        o.set("next_by_action", std::move(next));
        o.set("miss_next", Json(n.miss_next));
    } else {
        o.set("kind", Json("branch"));
        JsonObject cond;
        cond.set("field", Json(n.cond.field));
        cond.set("op", Json(std::string(to_string(n.cond.op))));
        cond.set("value", Json(n.cond.value));
        o.set("cond", Json(std::move(cond)));
        o.set("true_next", Json(n.true_next));
        o.set("false_next", Json(n.false_next));
    }
    return Json(std::move(o));
}

Node node_from_json(const Json& j) {
    Node n;
    n.id = static_cast<NodeId>(j.at("id").as_int());
    n.core = core_kind_from_string(j.get_string("core", "asic"));
    const std::string kind = j.at("kind").as_string();
    if (kind == "table") {
        n.kind = Node::Kind::Table;
        n.table = table_from_json(j.at("table"));
        for (const Json& t : j.at("next_by_action").as_array()) {
            n.next_by_action.push_back(static_cast<NodeId>(t.as_int()));
        }
        n.miss_next = static_cast<NodeId>(j.get_int("miss_next", kNoNode));
    } else if (kind == "branch") {
        n.kind = Node::Kind::Branch;
        const Json& cond = j.at("cond");
        n.cond.field = cond.at("field").as_string();
        n.cond.op = cmp_op_from_string(cond.at("op").as_string());
        n.cond.value = cond.at("value").as_uint();
        n.true_next = static_cast<NodeId>(j.get_int("true_next", kNoNode));
        n.false_next = static_cast<NodeId>(j.get_int("false_next", kNoNode));
    } else {
        throw std::runtime_error("unknown node kind: " + kind);
    }
    return n;
}

}  // namespace

Json program_to_json(const Program& program) {
    JsonObject o;
    o.set("format", Json("pipeleon-ir"));
    o.set("version", Json(1));
    o.set("name", Json(program.name()));
    o.set("root", Json(program.root()));
    Json nodes = Json::array();
    for (const Node& n : program.nodes()) nodes.push_back(node_to_json(n));
    o.set("nodes", std::move(nodes));
    return Json(std::move(o));
}

Program program_from_json(const Json& json) {
    if (json.get_string("format", "") != "pipeleon-ir") {
        throw std::runtime_error("not a pipeleon-ir JSON document");
    }
    Program program(json.get_string("name", "unnamed"));
    const auto& node_list = json.at("nodes").as_array();
    // Two-phase load: create all nodes first so ids resolve, then wire edges.
    std::vector<Node> parsed;
    parsed.reserve(node_list.size());
    for (const Json& j : node_list) parsed.push_back(node_from_json(j));
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        if (parsed[i].id != static_cast<NodeId>(i)) {
            throw std::runtime_error("node ids must be dense and ordered");
        }
        if (parsed[i].is_table()) {
            NodeId id = program.add_table(parsed[i].table);
            Node& n = program.node(id);
            n.next_by_action = parsed[i].next_by_action;
            n.miss_next = parsed[i].miss_next;
            n.core = parsed[i].core;
        } else {
            NodeId id = program.add_branch(parsed[i].cond);
            Node& n = program.node(id);
            n.true_next = parsed[i].true_next;
            n.false_next = parsed[i].false_next;
            n.core = parsed[i].core;
        }
    }
    program.set_root(static_cast<NodeId>(json.get_int("root", 0)));
    // Layer-1 structural verification on every load: a malformed document
    // fails here with the full diagnostic list instead of corrupting a
    // downstream pass.
    analysis::verify_structure_or_throw(program, "json_io.program_from_json");
    return program;
}

Program load_program(const std::string& path) {
    return program_from_json(util::load_json_file(path));
}

void save_program(const std::string& path, const Program& program) {
    util::save_json_file(path, program_to_json(program));
}

namespace {

// 64-bit values are serialized as hex strings: JSON numbers are doubles and
// cannot represent full-width masks exactly.
Json u64_to_json(std::uint64_t v) { return Json(util::format("0x%llx", static_cast<unsigned long long>(v))); }

std::uint64_t u64_from_json(const Json& j) {
    if (j.is_number()) return j.as_uint();
    return std::stoull(j.as_string(), nullptr, 0);
}

}  // namespace

Json entry_to_json(const TableEntry& entry) {
    JsonObject o;
    Json key = Json::array();
    for (const FieldMatch& m : entry.key) {
        JsonObject k;
        k.set("kind", Json(std::string(to_string(m.kind))));
        k.set("value", u64_to_json(m.value));
        switch (m.kind) {
            case MatchKind::Lpm: k.set("prefix_len", Json(m.prefix_len)); break;
            case MatchKind::Ternary: k.set("mask", u64_to_json(m.mask)); break;
            case MatchKind::Range: k.set("hi", u64_to_json(m.mask)); break;
            case MatchKind::Exact: break;
        }
        key.push_back(Json(std::move(k)));
    }
    o.set("key", std::move(key));
    o.set("action_index", Json(entry.action_index));
    if (!entry.action_data.empty()) {
        Json data = Json::array();
        for (std::uint64_t v : entry.action_data) data.push_back(u64_to_json(v));
        o.set("action_data", std::move(data));
    }
    o.set("priority", Json(entry.priority));
    return Json(std::move(o));
}

TableEntry entry_from_json(const Json& json) {
    TableEntry e;
    for (const Json& k : json.at("key").as_array()) {
        FieldMatch m;
        m.kind = match_kind_from_string(k.at("kind").as_string());
        m.value = u64_from_json(k.at("value"));
        switch (m.kind) {
            case MatchKind::Lpm:
                m.prefix_len = static_cast<int>(k.get_int("prefix_len", 0));
                break;
            case MatchKind::Ternary:
                if (const Json* mask = k.find("mask")) m.mask = u64_from_json(*mask);
                break;
            case MatchKind::Range:
                if (const Json* hi = k.find("hi")) m.mask = u64_from_json(*hi);
                break;
            case MatchKind::Exact: break;
        }
        e.key.push_back(m);
    }
    e.action_index = static_cast<int>(json.get_int("action_index", 0));
    if (const Json* data = json.find("action_data")) {
        for (const Json& v : data->as_array()) {
            e.action_data.push_back(u64_from_json(v));
        }
    }
    e.priority = static_cast<int>(json.get_int("priority", 0));
    return e;
}

}  // namespace pipeleon::ir
