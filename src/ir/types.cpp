#include "ir/types.h"

#include <stdexcept>

namespace pipeleon::ir {

const char* to_string(MatchKind kind) {
    switch (kind) {
        case MatchKind::Exact: return "exact";
        case MatchKind::Lpm: return "lpm";
        case MatchKind::Ternary: return "ternary";
        case MatchKind::Range: return "range";
    }
    return "?";
}

MatchKind match_kind_from_string(const std::string& s) {
    if (s == "exact") return MatchKind::Exact;
    if (s == "lpm") return MatchKind::Lpm;
    if (s == "ternary") return MatchKind::Ternary;
    if (s == "range") return MatchKind::Range;
    throw std::invalid_argument("unknown match kind: " + s);
}

const char* to_string(PrimitiveKind kind) {
    switch (kind) {
        case PrimitiveKind::SetConst: return "set_const";
        case PrimitiveKind::CopyField: return "copy_field";
        case PrimitiveKind::AddConst: return "add_const";
        case PrimitiveKind::SubConst: return "sub_const";
        case PrimitiveKind::Drop: return "drop";
        case PrimitiveKind::Forward: return "forward";
        case PrimitiveKind::NoOp: return "noop";
    }
    return "?";
}

PrimitiveKind primitive_kind_from_string(const std::string& s) {
    if (s == "set_const") return PrimitiveKind::SetConst;
    if (s == "copy_field") return PrimitiveKind::CopyField;
    if (s == "add_const") return PrimitiveKind::AddConst;
    if (s == "sub_const") return PrimitiveKind::SubConst;
    if (s == "drop") return PrimitiveKind::Drop;
    if (s == "forward") return PrimitiveKind::Forward;
    if (s == "noop") return PrimitiveKind::NoOp;
    throw std::invalid_argument("unknown primitive kind: " + s);
}

Primitive Primitive::set_const(std::string dst, std::uint64_t v) {
    Primitive p;
    p.kind = PrimitiveKind::SetConst;
    p.dst_field = std::move(dst);
    p.value = v;
    return p;
}

Primitive Primitive::set_from_arg(std::string dst, int arg) {
    Primitive p;
    p.kind = PrimitiveKind::SetConst;
    p.dst_field = std::move(dst);
    p.arg_index = arg;
    return p;
}

Primitive Primitive::copy_field(std::string dst, std::string src) {
    Primitive p;
    p.kind = PrimitiveKind::CopyField;
    p.dst_field = std::move(dst);
    p.src_field = std::move(src);
    return p;
}

Primitive Primitive::add_const(std::string dst, std::uint64_t v) {
    Primitive p;
    p.kind = PrimitiveKind::AddConst;
    p.dst_field = std::move(dst);
    p.value = v;
    return p;
}

Primitive Primitive::sub_const(std::string dst, std::uint64_t v) {
    Primitive p;
    p.kind = PrimitiveKind::SubConst;
    p.dst_field = std::move(dst);
    p.value = v;
    return p;
}

Primitive Primitive::drop() {
    Primitive p;
    p.kind = PrimitiveKind::Drop;
    return p;
}

Primitive Primitive::forward(std::uint64_t port) {
    Primitive p;
    p.kind = PrimitiveKind::Forward;
    p.value = port;
    return p;
}

Primitive Primitive::forward_from_arg(int arg) {
    Primitive p;
    p.kind = PrimitiveKind::Forward;
    p.arg_index = arg;
    return p;
}

Primitive Primitive::noop() { return Primitive{}; }

bool Action::drops() const {
    for (const Primitive& p : primitives) {
        if (p.kind == PrimitiveKind::Drop) return true;
    }
    return false;
}

std::vector<std::string> Action::written_fields() const {
    std::vector<std::string> out;
    for (const Primitive& p : primitives) {
        switch (p.kind) {
            case PrimitiveKind::SetConst:
            case PrimitiveKind::CopyField:
            case PrimitiveKind::AddConst:
            case PrimitiveKind::SubConst:
                out.push_back(p.dst_field);
                break;
            default: break;
        }
    }
    return out;
}

std::vector<std::string> Action::read_fields() const {
    std::vector<std::string> out;
    for (const Primitive& p : primitives) {
        if (p.kind == PrimitiveKind::CopyField) out.push_back(p.src_field);
        // AddConst/SubConst read-modify-write their destination.
        if (p.kind == PrimitiveKind::AddConst ||
            p.kind == PrimitiveKind::SubConst) {
            out.push_back(p.dst_field);
        }
    }
    return out;
}

const char* to_string(CmpOp op) {
    switch (op) {
        case CmpOp::Eq: return "==";
        case CmpOp::Ne: return "!=";
        case CmpOp::Lt: return "<";
        case CmpOp::Le: return "<=";
        case CmpOp::Gt: return ">";
        case CmpOp::Ge: return ">=";
    }
    return "?";
}

CmpOp cmp_op_from_string(const std::string& s) {
    if (s == "==") return CmpOp::Eq;
    if (s == "!=") return CmpOp::Ne;
    if (s == "<") return CmpOp::Lt;
    if (s == "<=") return CmpOp::Le;
    if (s == ">") return CmpOp::Gt;
    if (s == ">=") return CmpOp::Ge;
    throw std::invalid_argument("unknown comparison op: " + s);
}

bool BranchCond::evaluate(std::uint64_t field_value) const {
    switch (op) {
        case CmpOp::Eq: return field_value == value;
        case CmpOp::Ne: return field_value != value;
        case CmpOp::Lt: return field_value < value;
        case CmpOp::Le: return field_value <= value;
        case CmpOp::Gt: return field_value > value;
        case CmpOp::Ge: return field_value >= value;
    }
    return false;
}

}  // namespace pipeleon::ir
