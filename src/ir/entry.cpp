#include "ir/entry.h"

#include <set>

namespace pipeleon::ir {

namespace {

std::uint64_t width_mask(int width_bits) {
    if (width_bits >= 64) return ~0ULL;
    if (width_bits <= 0) return 0;
    return (1ULL << width_bits) - 1;
}

std::uint64_t prefix_mask(int prefix_len, int width_bits) {
    if (prefix_len <= 0) return 0;
    if (prefix_len >= width_bits) return width_mask(width_bits);
    return width_mask(width_bits) & ~width_mask(width_bits - prefix_len);
}

}  // namespace

FieldMatch FieldMatch::exact(std::uint64_t v) {
    FieldMatch m;
    m.kind = MatchKind::Exact;
    m.value = v;
    return m;
}

FieldMatch FieldMatch::lpm(std::uint64_t v, int prefix_len) {
    FieldMatch m;
    m.kind = MatchKind::Lpm;
    m.value = v;
    m.prefix_len = prefix_len;
    return m;
}

FieldMatch FieldMatch::ternary(std::uint64_t v, std::uint64_t mask) {
    FieldMatch m;
    m.kind = MatchKind::Ternary;
    m.value = v;
    m.mask = mask;
    return m;
}

FieldMatch FieldMatch::range(std::uint64_t lo, std::uint64_t hi) {
    FieldMatch m;
    m.kind = MatchKind::Range;
    m.value = lo;
    m.mask = hi;
    return m;
}

FieldMatch FieldMatch::wildcard() {
    FieldMatch m;
    m.kind = MatchKind::Ternary;
    m.value = 0;
    m.mask = 0;
    return m;
}

bool FieldMatch::matches(std::uint64_t field_value, int width_bits) const {
    switch (kind) {
        case MatchKind::Exact:
            return field_value == value;
        case MatchKind::Lpm: {
            std::uint64_t pm = prefix_mask(prefix_len, width_bits);
            return (field_value & pm) == (value & pm);
        }
        case MatchKind::Ternary:
            return (field_value & mask) == (value & mask);
        case MatchKind::Range:
            return field_value >= value && field_value <= mask;
    }
    return false;
}

bool FieldMatch::is_wildcard() const {
    switch (kind) {
        case MatchKind::Ternary: return mask == 0;
        case MatchKind::Lpm: return prefix_len == 0;
        case MatchKind::Range: return value == 0 && mask == ~0ULL;
        case MatchKind::Exact: return false;
    }
    return false;
}

bool FieldMatch::covers(const FieldMatch& other, int width_bits) const {
    if (is_wildcard()) return true;
    switch (kind) {
        case MatchKind::Exact:
            // Exact covers only an identical exact or a fully-masked ternary
            // with the same value.
            if (other.kind == MatchKind::Exact) return value == other.value;
            if (other.kind == MatchKind::Ternary) {
                return other.mask == width_mask(width_bits) &&
                       (other.value & other.mask) == (value & other.mask);
            }
            return false;
        case MatchKind::Lpm: {
            if (other.kind != MatchKind::Lpm) {
                if (other.kind == MatchKind::Exact) {
                    return matches(other.value, width_bits);
                }
                return false;
            }
            if (other.prefix_len < prefix_len) return false;
            std::uint64_t pm = prefix_mask(prefix_len, width_bits);
            return (other.value & pm) == (value & pm);
        }
        case MatchKind::Ternary: {
            if (other.kind == MatchKind::Exact) {
                return matches(other.value, width_bits);
            }
            if (other.kind != MatchKind::Ternary) return false;
            // This covers other iff this.mask ⊆ other.mask and values agree
            // on this.mask.
            if ((mask & other.mask) != mask) return false;
            return (value & mask) == (other.value & mask);
        }
        case MatchKind::Range:
            if (other.kind == MatchKind::Exact) {
                return other.value >= value && other.value <= mask;
            }
            if (other.kind == MatchKind::Range) {
                return other.value >= value && other.mask <= mask;
            }
            return false;
    }
    return false;
}

bool TableEntry::compatible_with(const Table& table) const {
    if (key.size() != table.keys.size()) return false;
    if (action_index < 0 ||
        static_cast<std::size_t>(action_index) >= table.actions.size()) {
        return false;
    }
    for (std::size_t i = 0; i < key.size(); ++i) {
        MatchKind want = table.keys[i].kind;
        MatchKind got = key[i].kind;
        if (want == got) continue;
        // A ternary table key accepts exact components (full mask) and
        // wildcards; this is what merged tables rely on (Fig 6).
        if (want == MatchKind::Ternary &&
            (got == MatchKind::Exact || key[i].is_wildcard())) {
            continue;
        }
        return false;
    }
    return true;
}

bool TableEntry::matches(const std::vector<std::uint64_t>& field_values,
                         const std::vector<MatchKey>& keys) const {
    if (field_values.size() != key.size() || keys.size() != key.size()) {
        return false;
    }
    for (std::size_t i = 0; i < key.size(); ++i) {
        if (!key[i].matches(field_values[i], keys[i].width_bits)) return false;
    }
    return true;
}

int distinct_prefix_lengths(const std::vector<TableEntry>& entries) {
    std::set<int> lens;
    for (const TableEntry& e : entries) {
        for (const FieldMatch& m : e.key) {
            if (m.kind == MatchKind::Lpm) lens.insert(m.prefix_len);
        }
    }
    return static_cast<int>(lens.size());
}

int distinct_masks(const std::vector<TableEntry>& entries) {
    std::set<std::vector<std::uint64_t>> masks;
    for (const TableEntry& e : entries) {
        std::vector<std::uint64_t> combo;
        bool any = false;
        for (const FieldMatch& m : e.key) {
            if (m.kind == MatchKind::Ternary) {
                combo.push_back(m.mask);
                any = true;
            } else {
                combo.push_back(~0ULL);
            }
        }
        if (any) masks.insert(std::move(combo));
    }
    return static_cast<int>(masks.size());
}

}  // namespace pipeleon::ir
