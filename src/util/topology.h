// util/topology.h — host CPU/NUMA topology discovery. The paper's whole
// argument is that placement must respect the target's core/memory topology
// (§3.1 cost model); the emulator applies the same discipline to the host it
// runs on: sim::WorkerPool pins each worker to a concrete CPU and the
// emulator first-touches each worker's shard memory from that CPU, so shards
// land on the worker's NUMA node instead of wherever the control thread
// happened to allocate them.
//
// Discovery parses the Linux sysfs layout (/sys/devices/system/cpu/online,
// cpuN/topology/{core_id,physical_package_id}, and
// /sys/devices/system/node/nodeN/cpulist). Every path is optional: a missing
// or malformed sysfs (non-Linux, sandboxed CI, containers with masked /sys)
// degrades to a clean single-node fallback sized by hardware_concurrency —
// callers never branch on the platform, only on the Topology they got.
// Tests parse committed fixture trees via from_root().
#pragma once

#include <string>
#include <vector>

namespace pipeleon::util {

/// Expands a sysfs cpulist string ("0-3,8,10-11") into sorted CPU ids.
/// Whitespace/newlines are tolerated; malformed chunks are skipped.
std::vector<int> parse_cpu_list(const std::string& text);

class Topology {
public:
    struct Cpu {
        int id = 0;        ///< kernel CPU number (as used by sched_setaffinity)
        int node = 0;      ///< NUMA node, 0 when unknown
        int core = -1;     ///< physical core id (SMT siblings share it), -1 unknown
        int package = -1;  ///< socket id, -1 unknown
    };

    /// Parses the live host's /sys. Falls back (see fallback()) when the
    /// layout is absent or unreadable.
    static Topology detect();

    /// Parses a sysfs-shaped tree rooted at `root` (fixtures use this:
    /// `root` stands in for "/sys"). Returns a fallback topology when the
    /// tree has no readable online-CPU list.
    static Topology from_root(const std::string& root);

    /// Synthetic single-node topology with `cpus` CPUs (or
    /// hardware_concurrency when <= 0, or 1 when even that is unknown).
    static Topology fallback(int cpus = 0);

    /// True when the topology came from a real sysfs parse (pinning to its
    /// CPU ids is meaningful), false for the synthetic fallback.
    bool from_sysfs() const { return from_sysfs_; }

    int cpu_count() const { return static_cast<int>(cpus_.size()); }
    int node_count() const { return node_count_; }
    const std::vector<Cpu>& cpus() const { return cpus_; }

    /// NUMA node of a CPU id; 0 when the id is unknown.
    int node_of(int cpu_id) const;

    /// Picks the CPU each of `workers` workers should pin to. Policy:
    /// locality-first — fill every core of node 0, then node 1, ... (worker
    /// shards are independent, so packing a node keeps the per-batch
    /// wake/merge traffic on one socket as long as it fits); when workers
    /// exceed the online CPU count, assignment wraps around.
    std::vector<int> assign(int workers) const;

    /// Worker ids (0..workers-1) reordered so workers pinned to the same
    /// NUMA node are contiguous, nodes ascending; the order is stable within
    /// a node. The emulator's RETA steering (DESIGN.md §15) slices the
    /// indirection table into contiguous per-node blocks from this order, so
    /// adjacent hash buckets land on workers whose shards share a socket.
    std::vector<int> node_major_order(int workers) const;

    /// One-line human rendering ("8 cpus / 2 nodes [sysfs]") for bench
    /// reports and logs.
    std::string summary() const;

private:
    std::vector<Cpu> cpus_;
    int node_count_ = 1;
    bool from_sysfs_ = false;
};

}  // namespace pipeleon::util
