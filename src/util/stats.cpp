#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace pipeleon::util {

double mean(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
    if (xs.size() < 2) return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double q) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    if (q <= 0.0) return xs.front();
    if (q >= 100.0) return xs.back();
    double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size()) return xs.back();
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double entropy(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
        if (w > 0.0) total += w;
    }
    if (total <= 0.0) return 0.0;
    double h = 0.0;
    for (double w : weights) {
        if (w <= 0.0) continue;
        double p = w / total;
        h -= p * std::log2(p);
    }
    return h;
}

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
    assert(xs.size() == ys.size());
    assert(xs.size() >= 2);
    double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) return fit;  // all x identical; leave zeroed
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double ymean = sy / n;
    double ss_tot = 0.0, ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double pred = fit.slope * xs[i] + fit.intercept;
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
    }
    fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
    if (sorted_.empty()) return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
    if (sorted_.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::string EmpiricalCdf::to_table(std::size_t points) const {
    std::string out;
    if (points < 2) points = 2;
    char buf[64];
    for (std::size_t i = 0; i < points; ++i) {
        double q = static_cast<double>(i) / static_cast<double>(points - 1);
        std::snprintf(buf, sizeof(buf), "  p%-5.1f %12.4f\n", q * 100.0,
                      quantile(q));
        out += buf;
    }
    return out;
}

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++n_;
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

}  // namespace pipeleon::util
