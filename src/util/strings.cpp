#include "util/strings.h"

#include <algorithm>
#include <cstdio>

namespace pipeleon::util {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args2);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(args2);
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) {
    auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
    while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
    return s;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& cells, int precision) {
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (double c : cells) row.push_back(format("%.*f", precision, c));
    add_row(std::move(row));
}

std::string TextTable::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }
    auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            out += "  ";
            out += row[i];
            out.append(widths[i] - row[i].size(), ' ');
        }
        out += '\n';
    };
    std::string out;
    emit_row(headers_, out);
    std::string rule;
    for (std::size_t w : widths) rule += "  " + std::string(w, '-');
    out += rule + '\n';
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

}  // namespace pipeleon::util
