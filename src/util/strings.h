// util/strings.h — small string helpers shared by the IR printers, the
// benchmark table writers, and the DOT exporter.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace pipeleon::util {

/// Splits on a single-character separator; empty tokens are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins tokens with a separator string.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// A fixed-width text table builder used by the figure benches so their
/// output reads like the rows/series the paper reports.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    /// Convenience: formats each double with the given precision.
    void add_numeric_row(const std::vector<double>& cells, int precision = 2);

    std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace pipeleon::util
