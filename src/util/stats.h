// util/stats.h — statistics used across the evaluation harness: summary
// statistics, percentiles/CDFs (Figs 13, 14, 19), Shannon entropy of pipelet
// traffic distributions (§5.4.3, Fig 18), and ordinary least squares linear
// regression (the paper fits L_mat and L_act by "extrapolating with linear
// regression" in §3.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pipeleon::util {

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 100]. Input need not be sorted.
double percentile(std::vector<double> xs, double q);

double median(std::vector<double> xs);

/// Shannon entropy (base 2) of a discrete distribution. The input is
/// normalized internally; zero entries contribute nothing.
double entropy(const std::vector<double>& weights);

/// Result of an ordinary-least-squares fit y = slope * x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};

/// Fits y = a*x + b by least squares; requires xs.size() == ys.size() >= 2
/// and at least two distinct x values.
LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

/// An empirical CDF: sorted samples plus evaluation helpers. The figure
/// benches print CDFs as (value, cumulative fraction) rows.
class EmpiricalCdf {
public:
    explicit EmpiricalCdf(std::vector<double> samples);

    /// Fraction of samples <= x.
    double at(double x) const;
    /// Value at cumulative fraction q in [0, 1].
    double quantile(double q) const;

    std::size_t size() const { return sorted_.size(); }
    const std::vector<double>& sorted() const { return sorted_; }

    /// Renders `points` evenly spaced (fraction, value) rows, e.g. for
    /// reproducing the CDF figures as text series.
    std::string to_table(std::size_t points = 11) const;

private:
    std::vector<double> sorted_;
};

/// Online mean/min/max/count accumulator for streaming measurements
/// (per-packet latencies in the emulator).
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace pipeleon::util
