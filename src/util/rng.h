// util/rng.h — deterministic random number generation for reproducible
// experiments. Every benchmark and test seeds its own Rng so that results are
// stable across runs and machines (the paper's synthesized-program experiments
// depend on controlled randomness for program and profile generation).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pipeleon::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Seeded through SplitMix64 so that similar seeds diverge immediately.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). `bound` must be > 0.
    std::uint64_t next_below(std::uint64_t bound) {
        assert(bound > 0);
        // Debiased multiply-shift (Lemire).
        while (true) {
            std::uint64_t x = next_u64();
            __uint128_t m = static_cast<__uint128_t>(x) * bound;
            std::uint64_t lo = static_cast<std::uint64_t>(m);
            if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound) {
                return static_cast<std::uint64_t>(m >> 64);
            }
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        next_below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Bernoulli draw with probability `p` of true.
    bool chance(double p) { return uniform() < p; }

    /// Standard normal via Box–Muller (no cached spare; simple and stateless).
    double normal(double mean = 0.0, double stddev = 1.0) {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300) u1 = 1e-300;
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
        return mean + stddev * z;
    }

    /// Exponential with rate lambda.
    double exponential(double lambda) {
        double u = uniform();
        if (u < 1e-300) u = 1e-300;
        return -std::log(u) / lambda;
    }

    /// Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = next_below(i);
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Picks one element uniformly; container must be non-empty.
    template <typename T>
    const T& pick(const std::vector<T>& v) {
        assert(!v.empty());
        return v[next_below(v.size())];
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

/// Zipf-distributed integer sampler over {0, .., n-1} with exponent `s`.
/// Used by the traffic generator to model flow locality ("high traffic
/// locality" workloads in §5.2.2): small ranks receive most of the traffic.
class ZipfSampler {
public:
    ZipfSampler(std::size_t n, double s) : cdf_(n) {
        assert(n > 0);
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
            cdf_[i] = sum;
        }
        for (auto& c : cdf_) c /= sum;
    }

    std::size_t sample(Rng& rng) const {
        double u = rng.uniform();
        // Binary search the CDF.
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    std::size_t size() const { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

}  // namespace pipeleon::util
