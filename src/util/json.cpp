#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pipeleon::util {

namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
    static const char* names[] = {"null", "bool", "number", "string", "array",
                                  "object"};
    throw JsonError(std::string("JSON type error: wanted ") + wanted +
                    ", got " + names[static_cast<int>(got)]);
}

}  // namespace

// ---------------------------------------------------------------- JsonObject

bool JsonObject::contains(std::string_view key) const {
    return find(key) != nullptr;
}

const Json* JsonObject::find(std::string_view key) const {
    for (const auto& [k, v] : items_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Json& JsonObject::at(std::string_view key) const {
    if (const Json* v = find(key)) return *v;
    throw JsonError("JSON object: missing key '" + std::string(key) + "'");
}

Json& JsonObject::at(std::string_view key) {
    for (auto& [k, v] : items_) {
        if (k == key) return v;
    }
    throw JsonError("JSON object: missing key '" + std::string(key) + "'");
}

Json& JsonObject::operator[](std::string_view key) {
    for (auto& [k, v] : items_) {
        if (k == key) return v;
    }
    items_.emplace_back(std::string(key), Json());
    return items_.back().second;
}

void JsonObject::set(std::string key, Json value) {
    for (auto& [k, v] : items_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    items_.emplace_back(std::move(key), std::move(value));
}

bool JsonObject::erase(std::string_view key) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
        if (it->first == key) {
            items_.erase(it);
            return true;
        }
    }
    return false;
}

bool JsonObject::operator==(const JsonObject& other) const {
    if (items_.size() != other.items_.size()) return false;
    // Order-insensitive comparison: two objects are equal when they hold the
    // same key/value pairs regardless of insertion order.
    for (const auto& [k, v] : items_) {
        const Json* o = other.find(k);
        if (o == nullptr || !(*o == v)) return false;
    }
    return true;
}

// ---------------------------------------------------------------------- Json

Json::Json(const Json& other)
    : type_(other.type_),
      bool_(other.bool_),
      num_(other.num_),
      str_(other.str_),
      arr_(other.arr_) {
    if (other.obj_) obj_ = std::make_shared<JsonObject>(*other.obj_);
}

Json& Json::operator=(const Json& other) {
    if (this == &other) return *this;
    type_ = other.type_;
    bool_ = other.bool_;
    num_ = other.num_;
    str_ = other.str_;
    arr_ = other.arr_;
    obj_ = other.obj_ ? std::make_shared<JsonObject>(*other.obj_) : nullptr;
    return *this;
}

bool Json::as_bool() const {
    if (type_ != Type::Bool) type_error("bool", type_);
    return bool_;
}

double Json::as_double() const {
    if (type_ != Type::Number) type_error("number", type_);
    return num_;
}

std::int64_t Json::as_int() const {
    if (type_ != Type::Number) type_error("number", type_);
    return static_cast<std::int64_t>(std::llround(num_));
}

std::uint64_t Json::as_uint() const {
    std::int64_t v = as_int();
    if (v < 0) throw JsonError("JSON number is negative, wanted unsigned");
    return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
    if (type_ != Type::String) type_error("string", type_);
    return str_;
}

const std::vector<Json>& Json::as_array() const {
    if (type_ != Type::Array) type_error("array", type_);
    return arr_;
}

std::vector<Json>& Json::as_array() {
    if (type_ != Type::Array) type_error("array", type_);
    return arr_;
}

const JsonObject& Json::as_object() const {
    if (type_ != Type::Object || !obj_) type_error("object", type_);
    return *obj_;
}

JsonObject& Json::as_object() {
    if (type_ != Type::Object || !obj_) type_error("object", type_);
    return *obj_;
}

const Json& Json::at(std::size_t i) const {
    const auto& a = as_array();
    if (i >= a.size()) throw JsonError("JSON array index out of range");
    return a[i];
}

const Json& Json::at(std::string_view key) const { return as_object().at(key); }

const Json* Json::find(std::string_view key) const {
    if (type_ != Type::Object || !obj_) return nullptr;
    return obj_->find(key);
}

std::int64_t Json::get_int(std::string_view key, std::int64_t dflt) const {
    const Json* v = find(key);
    return (v != nullptr && v->is_number()) ? v->as_int() : dflt;
}

double Json::get_double(std::string_view key, double dflt) const {
    const Json* v = find(key);
    return (v != nullptr && v->is_number()) ? v->as_double() : dflt;
}

bool Json::get_bool(std::string_view key, bool dflt) const {
    const Json* v = find(key);
    return (v != nullptr && v->is_bool()) ? v->as_bool() : dflt;
}

std::string Json::get_string(std::string_view key, std::string dflt) const {
    const Json* v = find(key);
    return (v != nullptr && v->is_string()) ? v->as_string() : dflt;
}

void Json::push_back(Json v) { as_array().push_back(std::move(v)); }

bool Json::operator==(const Json& other) const {
    if (type_ != other.type_) return false;
    switch (type_) {
        case Type::Null: return true;
        case Type::Bool: return bool_ == other.bool_;
        case Type::Number: return num_ == other.num_;
        case Type::String: return str_ == other.str_;
        case Type::Array: return arr_ == other.arr_;
        case Type::Object: return *obj_ == *other.obj_;
    }
    return false;
}

// ------------------------------------------------------------------- dumping

namespace {

void dump_string(std::string& out, const std::string& s) {
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    out += '"';
}

void dump_number(std::string& out, double d) {
    if (std::isnan(d) || std::isinf(d)) {
        // JSON has no NaN/Inf; emit null like most tolerant writers.
        out += "null";
        return;
    }
    double intpart;
    if (std::modf(d, &intpart) == 0.0 && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        out += buf;
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
    }
}

void newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    switch (type_) {
        case Type::Null: out += "null"; return;
        case Type::Bool: out += bool_ ? "true" : "false"; return;
        case Type::Number: dump_number(out, num_); return;
        case Type::String: dump_string(out, str_); return;
        case Type::Array: {
            if (arr_.empty()) {
                out += "[]";
                return;
            }
            out += '[';
            bool first = true;
            for (const Json& v : arr_) {
                if (!first) out += ',';
                first = false;
                newline_indent(out, indent, depth + 1);
                v.dump_to(out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out += ']';
            return;
        }
        case Type::Object: {
            if (!obj_ || obj_->empty()) {
                out += "{}";
                return;
            }
            out += '{';
            bool first = true;
            for (const auto& [k, v] : *obj_) {
                if (!first) out += ',';
                first = false;
                newline_indent(out, indent, depth + 1);
                dump_string(out, k);
                out += indent > 0 ? ": " : ":";
                v.dump_to(out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out += '}';
            return;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

// ------------------------------------------------------------------- parsing

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw JsonError("JSON parse error at line " + std::to_string(line) +
                        ", column " + std::to_string(col) + ": " + msg);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char next() {
        char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    Json parse_value() {
        skip_ws();
        char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (consume_literal("true")) return Json(true);
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return Json(false);
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return Json(nullptr);
                fail("invalid literal");
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        JsonObject obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(obj));
        }
        while (true) {
            skip_ws();
            if (peek() != '"') fail("expected object key string");
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.set(std::move(key), parse_value());
            skip_ws();
            char c = next();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
        return Json(std::move(obj));
    }

    Json parse_array() {
        expect('[');
        std::vector<Json> arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            char c = next();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
        return Json(std::move(arr));
    }

    unsigned parse_hex4() {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = next();
            v <<= 4;
            if (c >= '0' && c <= '9') {
                v |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                v |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                v |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                --pos_;
                fail("invalid \\u escape");
            }
        }
        return v;
    }

    static void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            char c = next();
            if (c == '"') break;
            if (c == '\\') {
                char e = next();
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        unsigned cp = parse_hex4();
                        if (cp >= 0xD800 && cp <= 0xDBFF) {
                            // High surrogate: must be followed by \uDC00..DFFF.
                            if (next() != '\\' || next() != 'u') {
                                fail("unpaired UTF-16 surrogate");
                            }
                            unsigned lo = parse_hex4();
                            if (lo < 0xDC00 || lo > 0xDFFF) {
                                fail("invalid low surrogate");
                            }
                            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                        }
                        append_utf8(out, cp);
                        break;
                    }
                    default:
                        --pos_;
                        fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
        return out;
    }

    Json parse_number() {
        std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            fail("invalid number");
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("invalid number: digits required after '.'");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("invalid number: digits required in exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        std::string tok(text_.substr(start, pos_ - start));
        return Json(std::stod(tok));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json load_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw JsonError("cannot open file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return Json::parse(ss.str());
}

void save_json_file(const std::string& path, const Json& value) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw JsonError("cannot open file for writing: " + path);
    out << value.dump(2) << '\n';
    if (!out) throw JsonError("write failed: " + path);
}

}  // namespace pipeleon::util
