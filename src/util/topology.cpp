#include "util/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace pipeleon::util {

namespace {

/// Reads a whole small file; empty string when unreadable.
std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Reads a file holding one integer; `fallback` when absent/malformed.
int read_int(const std::string& path, int fallback) {
    std::string text = slurp(path);
    if (text.empty()) return fallback;
    try {
        return std::stoi(text);
    } catch (...) {
        return fallback;
    }
}

}  // namespace

std::vector<int> parse_cpu_list(const std::string& text) {
    std::vector<int> cpus;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto parse_num = [&](int& out) {
        std::size_t start = i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        if (i == start) return false;
        out = std::stoi(text.substr(start, i - start));
        return true;
    };
    while (i < n) {
        // Skip separators and whitespace between chunks.
        while (i < n && !std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        int lo = 0;
        if (!parse_num(lo)) break;
        int hi = lo;
        if (i < n && text[i] == '-') {
            ++i;
            if (!parse_num(hi)) hi = lo;  // "3-" — treat as the single CPU 3
        }
        if (hi < lo) std::swap(lo, hi);
        // Guard against absurd ranges from corrupt input.
        if (hi - lo > 1 << 16) hi = lo;
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

Topology Topology::fallback(int cpus) {
    if (cpus <= 0) {
        cpus = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (cpus <= 0) cpus = 1;
    Topology t;
    t.cpus_.reserve(static_cast<std::size_t>(cpus));
    for (int i = 0; i < cpus; ++i) t.cpus_.push_back(Cpu{i, 0, i, 0});
    t.node_count_ = 1;
    t.from_sysfs_ = false;
    return t;
}

Topology Topology::detect() { return from_root("/sys"); }

Topology Topology::from_root(const std::string& root) {
    const std::string cpu_dir = root + "/devices/system/cpu";
    std::vector<int> online = parse_cpu_list(slurp(cpu_dir + "/online"));
    if (online.empty()) return fallback();

    Topology t;
    t.from_sysfs_ = true;
    t.cpus_.reserve(online.size());
    for (int id : online) {
        const std::string topo = cpu_dir + "/cpu" + std::to_string(id) +
                                 "/topology";
        Cpu c;
        c.id = id;
        c.core = read_int(topo + "/core_id", -1);
        c.package = read_int(topo + "/physical_package_id", -1);
        t.cpus_.push_back(c);
    }

    // NUMA nodes: nodeN/cpulist names the CPUs each node owns. Offline CPUs
    // may appear in a node's list; only online ones were kept above.
    int max_node = 0;
    bool any_node = false;
    for (int node = 0; node < 1024; ++node) {
        const std::string list =
            slurp(root + "/devices/system/node/node" + std::to_string(node) +
                  "/cpulist");
        if (list.empty()) {
            // Node ids are contiguous in practice; stop at the first gap
            // (but always probe node0 and node1 so a missing node0 dir on a
            // weird layout doesn't hide node1).
            if (node > 1) break;
            continue;
        }
        any_node = true;
        for (int id : parse_cpu_list(list)) {
            for (Cpu& c : t.cpus_) {
                if (c.id == id) c.node = node;
            }
        }
        max_node = std::max(max_node, node);
    }
    t.node_count_ = any_node ? max_node + 1 : 1;
    return t;
}

int Topology::node_of(int cpu_id) const {
    for (const Cpu& c : cpus_) {
        if (c.id == cpu_id) return c.node;
    }
    return 0;
}

std::vector<int> Topology::assign(int workers) const {
    std::vector<int> picks;
    if (workers <= 0) return picks;
    picks.reserve(static_cast<std::size_t>(workers));

    // Locality-first order: node by node, ascending CPU id within a node.
    std::vector<int> order;
    order.reserve(cpus_.size());
    for (int node = 0; node < node_count_; ++node) {
        for (const Cpu& c : cpus_) {
            if (c.node == node) order.push_back(c.id);
        }
    }
    if (order.empty()) order.push_back(0);
    for (int w = 0; w < workers; ++w) {
        picks.push_back(order[static_cast<std::size_t>(w) % order.size()]);
    }
    return picks;
}

std::vector<int> Topology::node_major_order(int workers) const {
    std::vector<int> order;
    if (workers <= 0) return order;
    const std::vector<int> picks = assign(workers);
    order.reserve(picks.size());
    // Stable bucket by node: assign() is already locality-first, so this is
    // usually the identity — it exists to keep the RETA's node blocks
    // contiguous under any future assignment policy (and under wraparound,
    // where worker w and w + cpu_count share a CPU but not a position).
    for (int node = 0; node < node_count_; ++node) {
        for (int w = 0; w < workers; ++w) {
            if (node_of(picks[static_cast<std::size_t>(w)]) == node) {
                order.push_back(w);
            }
        }
    }
    // Defensive: any worker whose node fell outside [0, node_count_) (never
    // from our own parse) still gets a RETA position.
    for (int w = 0; w < workers; ++w) {
        const int n = node_of(picks[static_cast<std::size_t>(w)]);
        if (n < 0 || n >= node_count_) order.push_back(w);
    }
    return order;
}

std::string Topology::summary() const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%d cpus / %d nodes [%s]", cpu_count(),
                  node_count_, from_sysfs_ ? "sysfs" : "fallback");
    return buf;
}

}  // namespace pipeleon::util
