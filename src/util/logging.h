// util/logging.h — a minimal leveled logger. The runtime controller logs its
// reoptimization decisions (which pipelets were hot, which plan was deployed)
// so the case-study benches can narrate what Pipeleon did, mirroring the
// paper's timeline annotations in Fig 11.
#pragma once

#include <string>

namespace pipeleon::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a message to stderr as "[LEVEL] message" when enabled.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace pipeleon::util
