// frontend/p4mini.h — a small P4-flavored text frontend. Pipeleon proper
// consumes compiler IR (JSON); this frontend exists so examples, tests, and
// users can write match-action pipelines as text without running p4c. The
// language covers exactly what the IR can express:
//
//   program router;
//
//   table ipv4_lpm {
//     key { ipv4.dstAddr : lpm/32; meta.vrf : exact/16; }
//     actions {
//       set_nhop(port) { forward(port); meta.nhop = port; }
//       deny { drop; }
//       bump { meta.hits += 1; }
//     }
//     default deny;
//     size 1024;
//     cpu_only;            // optional: table requires CPU cores
//   }
//
//   control {
//     acl;
//     if (meta.proto == 6) { tcp_opts; } else { udp_table; }
//     ipv4_lpm;
//   }
//
// Tables execute in control order; if/else arms re-join at the following
// statement. Action statements: `drop;`, `forward(x);`, `field = x;`,
// `field += N;`, `field -= N;` where x is an action parameter, an integer
// literal (decimal or 0x hex), or another field.
#pragma once

#include <stdexcept>
#include <string>

#include "ir/program.h"

namespace pipeleon::frontend {

/// Parse error with line/column context.
class ParseError : public std::runtime_error {
public:
    ParseError(const std::string& what, int line, int column)
        : std::runtime_error("p4mini:" + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + what),
          line_(line),
          column_(column) {}

    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_, column_;
};

/// Parses a p4mini source text into a validated Program.
ir::Program parse_p4mini(const std::string& source);

/// Loads and parses a p4mini file.
ir::Program load_p4mini(const std::string& path);

}  // namespace pipeleon::frontend
