#include "frontend/p4mini.h"

#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

namespace pipeleon::frontend {

using ir::Action;
using ir::BranchCond;
using ir::CmpOp;
using ir::kNoNode;
using ir::MatchKind;
using ir::NodeId;
using ir::Primitive;
using ir::Program;
using ir::Table;

namespace {

// ------------------------------------------------------------------- lexer

enum class Tok {
    Ident,    // identifiers and keywords
    Number,   // decimal or 0x hex
    Symbol,   // punctuation / operators, text in `text`
    End
};

struct Token {
    Tok kind = Tok::End;
    std::string text;
    std::uint64_t number = 0;
    int line = 1, column = 1;
};

class Lexer {
public:
    explicit Lexer(const std::string& src) : src_(src) { advance(); }

    const Token& peek() const { return current_; }

    Token next() {
        Token t = current_;
        advance();
        return t;
    }

private:
    void advance() {
        skip_ws_and_comments();
        current_ = Token{};
        current_.line = line_;
        current_.column = column_;
        if (pos_ >= src_.size()) {
            current_.kind = Tok::End;
            current_.text = "<eof>";
            return;
        }
        char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string ident;
            while (pos_ < src_.size()) {
                char d = src_[pos_];
                if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
                    d == '.') {
                    ident += d;
                    bump();
                } else {
                    break;
                }
            }
            current_.kind = Tok::Ident;
            current_.text = std::move(ident);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string num;
            bool hex = false;
            if (c == '0' && pos_ + 1 < src_.size() &&
                (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
                hex = true;
                num += src_[pos_];
                bump();
                num += src_[pos_];
                bump();
            }
            while (pos_ < src_.size() &&
                   (std::isxdigit(static_cast<unsigned char>(src_[pos_])))) {
                num += src_[pos_];
                bump();
            }
            current_.kind = Tok::Number;
            current_.text = num;
            current_.number = std::stoull(num, nullptr, hex ? 16 : 10);
            return;
        }
        // Multi-character operators first.
        static const char* two_char[] = {"==", "!=", "<=", ">=", "+=", "-="};
        for (const char* op : two_char) {
            if (src_.compare(pos_, 2, op) == 0) {
                current_.kind = Tok::Symbol;
                current_.text = op;
                bump();
                bump();
                return;
            }
        }
        current_.kind = Tok::Symbol;
        current_.text = std::string(1, c);
        bump();
    }

    void skip_ws_and_comments() {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                bump();
            } else if (c == '/' && pos_ + 1 < src_.size() &&
                       src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n') bump();
            } else if (c == '/' && pos_ + 1 < src_.size() &&
                       src_[pos_ + 1] == '*') {
                bump();
                bump();
                while (pos_ + 1 < src_.size() &&
                       !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
                    bump();
                }
                if (pos_ + 1 < src_.size()) {
                    bump();
                    bump();
                }
            } else {
                break;
            }
        }
    }

    void bump() {
        if (pos_ < src_.size()) {
            if (src_[pos_] == '\n') {
                ++line_;
                column_ = 1;
            } else {
                ++column_;
            }
            ++pos_;
        }
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    int line_ = 1, column_ = 1;
    Token current_;
};

// ------------------------------------------------------------------ parser

/// Control-flow item: a table reference or an if/else block.
struct ControlItem {
    enum class Kind { TableRef, If } kind = Kind::TableRef;
    std::string table;
    // If:
    BranchCond cond;
    std::vector<ControlItem> then_items;
    std::vector<ControlItem> else_items;
    int line = 0, column = 0;
};

class Parser {
public:
    explicit Parser(const std::string& src) : lex_(src) {}

    Program parse() {
        expect_ident("program");
        std::string name = expect(Tok::Ident).text;
        expect_symbol(";");

        std::map<std::string, Table> tables;
        std::vector<ControlItem> control;
        bool saw_control = false;
        while (lex_.peek().kind != Tok::End) {
            const Token& t = lex_.peek();
            if (t.kind == Tok::Ident && t.text == "table") {
                Table table = parse_table();
                if (!tables.emplace(table.name, table).second) {
                    fail("duplicate table '" + table.name + "'", t);
                }
            } else if (t.kind == Tok::Ident && t.text == "control") {
                if (saw_control) fail("multiple control blocks", t);
                lex_.next();
                control = parse_control_block();
                saw_control = true;
            } else {
                fail("expected 'table' or 'control'", t);
            }
        }
        if (!saw_control) {
            Token eof = lex_.peek();
            fail("missing control block", eof);
        }
        return build_program(std::move(name), tables, control);
    }

private:
    [[noreturn]] void fail(const std::string& what, const Token& at) {
        throw ParseError(what + " (got '" + at.text + "')", at.line, at.column);
    }

    Token expect(Tok kind) {
        if (lex_.peek().kind != kind) {
            fail(kind == Tok::Ident    ? "expected identifier"
                 : kind == Tok::Number ? "expected number"
                                       : "expected symbol",
                 lex_.peek());
        }
        return lex_.next();
    }

    Token expect_symbol(const std::string& s) {
        if (lex_.peek().kind != Tok::Symbol || lex_.peek().text != s) {
            fail("expected '" + s + "'", lex_.peek());
        }
        return lex_.next();
    }

    Token expect_ident(const std::string& s) {
        if (lex_.peek().kind != Tok::Ident || lex_.peek().text != s) {
            fail("expected '" + s + "'", lex_.peek());
        }
        return lex_.next();
    }

    bool peek_symbol(const std::string& s) {
        return lex_.peek().kind == Tok::Symbol && lex_.peek().text == s;
    }

    bool peek_ident(const std::string& s) {
        return lex_.peek().kind == Tok::Ident && lex_.peek().text == s;
    }

    // table IDENT { key {...} actions {...} [default a;] [size N;]
    //               [cpu_only;] }
    Table parse_table() {
        expect_ident("table");
        Table table;
        table.name = expect(Tok::Ident).text;
        expect_symbol("{");

        expect_ident("key");
        expect_symbol("{");
        while (!peek_symbol("}")) {
            ir::MatchKey key;
            key.field = expect(Tok::Ident).text;
            expect_symbol(":");
            Token kind = expect(Tok::Ident);
            if (kind.text == "exact") {
                key.kind = MatchKind::Exact;
            } else if (kind.text == "lpm") {
                key.kind = MatchKind::Lpm;
            } else if (kind.text == "ternary") {
                key.kind = MatchKind::Ternary;
            } else if (kind.text == "range") {
                key.kind = MatchKind::Range;
            } else {
                fail("unknown match kind", kind);
            }
            if (peek_symbol("/")) {
                lex_.next();
                key.width_bits = static_cast<int>(expect(Tok::Number).number);
            }
            expect_symbol(";");
            table.keys.push_back(std::move(key));
        }
        expect_symbol("}");

        expect_ident("actions");
        expect_symbol("{");
        while (!peek_symbol("}")) {
            table.actions.push_back(parse_action());
        }
        expect_symbol("}");
        if (table.actions.empty()) {
            fail("table needs at least one action", lex_.peek());
        }

        while (!peek_symbol("}")) {
            Token t = expect(Tok::Ident);
            if (t.text == "default") {
                std::string name = expect(Tok::Ident).text;
                int idx = table.action_index(name);
                if (idx < 0) fail("unknown default action '" + name + "'", t);
                table.default_action = idx;
                expect_symbol(";");
            } else if (t.text == "size") {
                table.size = expect(Tok::Number).number;
                expect_symbol(";");
            } else if (t.text == "cpu_only") {
                table.asic_supported = false;
                expect_symbol(";");
            } else {
                fail("expected 'default', 'size', or 'cpu_only'", t);
            }
        }
        expect_symbol("}");
        return table;
    }

    // IDENT [(params)] { stmts }
    Action parse_action() {
        Action action;
        action.name = expect(Tok::Ident).text;
        std::vector<std::string> params;
        if (peek_symbol("(")) {
            lex_.next();
            while (!peek_symbol(")")) {
                params.push_back(expect(Tok::Ident).text);
                if (peek_symbol(",")) lex_.next();
            }
            expect_symbol(")");
        }
        auto param_index = [&params](const std::string& name) -> int {
            for (std::size_t i = 0; i < params.size(); ++i) {
                if (params[i] == name) return static_cast<int>(i);
            }
            return -1;
        };

        expect_symbol("{");
        while (!peek_symbol("}")) {
            Token first = lex_.next();
            if (first.kind != Tok::Ident) fail("expected statement", first);
            if (first.text == "drop") {
                expect_symbol(";");
                action.primitives.push_back(Primitive::drop());
            } else if (first.text == "forward") {
                expect_symbol("(");
                Token operand = lex_.next();
                if (operand.kind == Tok::Number) {
                    action.primitives.push_back(Primitive::forward(operand.number));
                } else if (operand.kind == Tok::Ident &&
                           param_index(operand.text) >= 0) {
                    action.primitives.push_back(
                        Primitive::forward_from_arg(param_index(operand.text)));
                } else {
                    fail("forward() takes a parameter or literal", operand);
                }
                expect_symbol(")");
                expect_symbol(";");
            } else if (first.text == "noop") {
                expect_symbol(";");
                action.primitives.push_back(Primitive::noop());
            } else {
                // field = x; | field += N; | field -= N;
                std::string dst = first.text;
                Token op = expect(Tok::Symbol);
                if (op.text == "=") {
                    Token operand = lex_.next();
                    if (operand.kind == Tok::Number) {
                        action.primitives.push_back(
                            Primitive::set_const(dst, operand.number));
                    } else if (operand.kind == Tok::Ident) {
                        int p = param_index(operand.text);
                        if (p >= 0) {
                            action.primitives.push_back(
                                Primitive::set_from_arg(dst, p));
                        } else {
                            action.primitives.push_back(
                                Primitive::copy_field(dst, operand.text));
                        }
                    } else {
                        fail("expected value", operand);
                    }
                } else if (op.text == "+=") {
                    action.primitives.push_back(
                        Primitive::add_const(dst, expect(Tok::Number).number));
                } else if (op.text == "-=") {
                    action.primitives.push_back(
                        Primitive::sub_const(dst, expect(Tok::Number).number));
                } else {
                    fail("expected '=', '+=', or '-='", op);
                }
                expect_symbol(";");
            }
        }
        expect_symbol("}");
        return action;
    }

    std::vector<ControlItem> parse_control_block() {
        expect_symbol("{");
        std::vector<ControlItem> items;
        while (!peek_symbol("}")) {
            items.push_back(parse_control_item());
        }
        expect_symbol("}");
        return items;
    }

    ControlItem parse_control_item() {
        ControlItem item;
        const Token& t = lex_.peek();
        item.line = t.line;
        item.column = t.column;
        if (peek_ident("if")) {
            lex_.next();
            item.kind = ControlItem::Kind::If;
            expect_symbol("(");
            item.cond.field = expect(Tok::Ident).text;
            Token op = expect(Tok::Symbol);
            static const std::map<std::string, CmpOp> ops = {
                {"==", CmpOp::Eq}, {"!=", CmpOp::Ne}, {"<", CmpOp::Lt},
                {"<=", CmpOp::Le}, {">", CmpOp::Gt},  {">=", CmpOp::Ge}};
            auto it = ops.find(op.text);
            if (it == ops.end()) fail("expected comparison operator", op);
            item.cond.op = it->second;
            item.cond.value = expect(Tok::Number).number;
            expect_symbol(")");
            item.then_items = parse_control_block();
            if (peek_ident("else")) {
                lex_.next();
                item.else_items = parse_control_block();
            }
        } else {
            item.kind = ControlItem::Kind::TableRef;
            item.table = expect(Tok::Ident).text;
            expect_symbol(";");
        }
        return item;
    }

    // ------------------------------------------------------------- builder

    Program build_program(std::string name,
                          const std::map<std::string, Table>& tables,
                          const std::vector<ControlItem>& control) {
        Program program(std::move(name));
        std::map<std::string, NodeId> placed;

        // Recursive: builds the item list so that its tail flows to `next`;
        // returns the head node.
        std::function<NodeId(const std::vector<ControlItem>&, NodeId)> build =
            [&](const std::vector<ControlItem>& items, NodeId next) -> NodeId {
            NodeId successor = next;
            for (std::size_t i = items.size(); i-- > 0;) {
                const ControlItem& item = items[i];
                if (item.kind == ControlItem::Kind::TableRef) {
                    auto it = tables.find(item.table);
                    if (it == tables.end()) {
                        throw ParseError("unknown table '" + item.table + "'",
                                         item.line, item.column);
                    }
                    if (placed.count(item.table) != 0) {
                        throw ParseError(
                            "table '" + item.table + "' used more than once",
                            item.line, item.column);
                    }
                    NodeId id = program.add_table(it->second);
                    placed[item.table] = id;
                    program.node(id).set_uniform_next(successor);
                    successor = id;
                } else {
                    NodeId then_head = build(item.then_items, successor);
                    NodeId else_head = build(item.else_items, successor);
                    NodeId branch = program.add_branch(item.cond);
                    program.node(branch).true_next = then_head;
                    program.node(branch).false_next = else_head;
                    successor = branch;
                }
            }
            return successor;
        };

        NodeId root = build(control, kNoNode);
        if (root == kNoNode) {
            throw ParseError("control block is empty", 1, 1);
        }
        program.set_root(root);
        program.validate();
        return program;
    }

    Lexer lex_;
};

}  // namespace

Program parse_p4mini(const std::string& source) {
    return Parser(source).parse();
}

Program load_p4mini(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw ParseError("cannot open file: " + path, 0, 0);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_p4mini(ss.str());
}

}  // namespace pipeleon::frontend
