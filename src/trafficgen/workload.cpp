#include "trafficgen/workload.h"

#include <algorithm>
#include <cmath>

namespace pipeleon::trafficgen {

FlowSet FlowSet::generate(const std::vector<FieldRange>& fields,
                          std::size_t n_flows, util::Rng& rng) {
    FlowSet set;
    set.fields_ = fields;
    set.values_.reserve(n_flows);
    for (std::size_t i = 0; i < n_flows; ++i) {
        std::vector<std::uint64_t> flow;
        flow.reserve(fields.size());
        for (const FieldRange& f : fields) {
            flow.push_back(static_cast<std::uint64_t>(rng.uniform_int(
                static_cast<std::int64_t>(f.min), static_cast<std::int64_t>(f.max))));
        }
        set.values_.push_back(std::move(flow));
    }
    return set;
}

std::uint64_t FlowSet::value(std::size_t flow, const std::string& field) const {
    if (flow >= values_.size()) return 0;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].field == field) return values_[flow][i];
    }
    return 0;
}

sim::Packet FlowSet::make_packet(std::size_t flow, sim::FieldTable& fields,
                                 std::size_t wire_bytes) const {
    sim::Packet packet;
    packet.set_wire_bytes(wire_bytes);
    if (flow >= values_.size()) return packet;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        packet.set(fields.intern(fields_[i].field), values_[flow][i]);
    }
    return packet;
}

ir::TableEntry FlowSet::exact_entry(std::size_t flow,
                                    const std::vector<std::string>& key_fields,
                                    int action_index,
                                    std::vector<std::uint64_t> action_data,
                                    int priority) const {
    ir::TableEntry entry;
    for (const std::string& field : key_fields) {
        entry.key.push_back(ir::FieldMatch::exact(value(flow, field)));
    }
    entry.action_index = action_index;
    entry.action_data = std::move(action_data);
    entry.priority = priority;
    return entry;
}

Workload::Workload(FlowSet flows, Locality locality, double zipf_s,
                   std::uint64_t seed)
    : flows_(std::move(flows)),
      locality_(locality),
      rng_(seed),
      zipf_(std::max<std::size_t>(1, flows_.size()),
            locality == Locality::Zipf ? zipf_s : 1.0) {
    rank_to_flow_.resize(flows_.size());
    for (std::size_t i = 0; i < rank_to_flow_.size(); ++i) rank_to_flow_[i] = i;
}

std::size_t Workload::next_flow() {
    if (flows_.size() == 0) return 0;
    if (locality_ == Locality::Uniform) {
        return rng_.next_below(flows_.size());
    }
    std::size_t rank = zipf_.sample(rng_);
    return rank_to_flow_[rank];
}

sim::Packet Workload::next_packet(sim::FieldTable& fields,
                                  std::size_t wire_bytes) {
    return flows_.make_packet(next_flow(), fields, wire_bytes);
}

sim::PacketBatch Workload::next_batch(sim::FieldTable& fields, std::size_t n,
                                      std::size_t wire_bytes) {
    // Intern the tuple once for the whole batch; make_packet would pay a
    // string hash per field per packet.
    std::vector<sim::FieldId> ids;
    ids.reserve(flows_.fields().size());
    for (const FieldRange& f : flows_.fields()) ids.push_back(fields.intern(f.field));

    sim::PacketBatch batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t flow = next_flow();
        sim::Packet packet;
        packet.set_wire_bytes(wire_bytes);
        for (std::size_t j = 0; j < ids.size(); ++j) {
            packet.set(ids[j], flows_.value_at(flow, j));
        }
        batch.push_back(std::move(packet));
    }
    return batch;
}

std::vector<std::size_t> Workload::pick_flows(double fraction) {
    std::size_t want = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(flows_.size())));
    want = std::min(want, flows_.size());
    std::vector<std::size_t> all(flows_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    rng_.shuffle(all);
    all.resize(want);
    return all;
}

void Workload::reshuffle_ranks() { rng_.shuffle(rank_to_flow_); }

std::size_t OfferedLoad::accrue(double dt) {
    if (pps_ <= 0.0 || dt <= 0.0) return 0;
    credit_ += pps_ * dt;
    const double whole = std::floor(credit_);
    credit_ -= whole;
    return static_cast<std::size_t>(whole);
}

std::size_t OfferedLoad::offer(sim::RssDispatcher& io, sim::FieldTable& fields,
                               std::size_t n, double now,
                               std::size_t wire_bytes) {
    if (tuple_ids_.empty()) {
        for (const FieldRange& f : workload_.flows().fields()) {
            tuple_ids_.push_back(fields.intern(f.field));
        }
    }
    const FlowSet& flows = workload_.flows();
    std::size_t ok = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t flow = workload_.next_flow();
        scratch_.set_wire_bytes(wire_bytes);
        for (std::size_t j = 0; j < tuple_ids_.size(); ++j) {
            scratch_.set(tuple_ids_[j], flows.value_at(flow, j));
        }
        if (io.dispatch(scratch_, now) >= 0) ++ok;
    }
    offered_ += n;
    accepted_ += ok;
    return ok;
}

std::size_t OfferedLoad::offer(sim::TenantRegistry& registry,
                               sim::TenantId tenant, std::size_t n,
                               std::size_t wire_bytes) {
    sim::FieldTable& fields = registry.emulator(tenant).fields();
    if (tuple_ids_.empty()) {
        for (const FieldRange& f : workload_.flows().fields()) {
            tuple_ids_.push_back(fields.intern(f.field));
        }
    }
    const FlowSet& flows = workload_.flows();
    std::size_t ok = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t flow = workload_.next_flow();
        scratch_.set_wire_bytes(wire_bytes);
        for (std::size_t j = 0; j < tuple_ids_.size(); ++j) {
            scratch_.set(tuple_ids_[j], flows.value_at(flow, j));
        }
        if (registry.offer(tenant, scratch_) ==
            sim::TenantRegistry::Admit::Enqueued) {
            ++ok;
        }
    }
    offered_ += n;
    accepted_ += ok;
    return ok;
}

}  // namespace pipeleon::trafficgen
